//! Survive the storm: the guarded e1000e driver under deterministic fault
//! injection (`kop-faultline`), with the recovery machinery — TX watchdog,
//! adapter reset, bounded retry — doing the surviving.
//!
//! Three runs of the same 512-frame TX workload:
//!   1. fault-free (control),
//!   2. a 5% storm against the baseline (unguarded) driver,
//!   3. the same seeded storm against the CARAT-guarded driver.
//!
//! The point of the figure-level result is visible here too: the guard
//! layer sits below the fault layer, sees the identical access sequence,
//! and delivers exactly as many frames — guards do not impede recovery.
//!
//! Run with: `cargo run --release --example fault_storm`

use std::sync::Arc;

use carat_kop::e1000e::device::CountSink;
use carat_kop::e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem, MemSpace};
use carat_kop::faultline::{FaultPlan, FaultStats, FaultyMem, Trigger};
use carat_kop::policy::PolicyModule;

const FRAMES: u64 = 512;
const DST: [u8; 6] = [0x52, 0x54, 0x00, 0xfa, 0x11, 0x7e];

/// A 5% storm: transient DMA drops plus a sustained TX hang window —
/// the fault shape the watchdog exists for.
fn storm_plan(seed: u64, rate: f64) -> FaultPlan {
    FaultPlan::new(seed)
        .with_dma_drop(Trigger::Probability(rate))
        .with_tx_hang(Trigger::Window {
            start: 64,
            len: (rate * 640.0).round() as u64,
        })
}

/// The workload: submit frames with bounded retry, run the watchdog
/// periodically, then drain the ring.
fn drive<M: MemSpace>(drv: &mut E1000Driver<M>) -> u64 {
    let mut sink = CountSink::default();
    for i in 0..FRAMES {
        let payload: Vec<u8> = (0..114).map(|b| (i as usize * 7 + b) as u8).collect();
        let _ = drv.xmit_with_retry(DST, 0x0800, &payload, &mut sink, 8);
        if i % 8 == 0 {
            let _ = drv.watchdog();
        }
    }
    for _ in 0..1024 {
        if drv.tx_pending() == 0 {
            break;
        }
        drv.mem().tx_tick(&mut sink);
        let _ = drv.clean_tx();
        let _ = drv.watchdog();
    }
    sink.frames
}

fn report<M: MemSpace>(label: &str, drv: &E1000Driver<M>, faults: FaultStats, delivered: u64) {
    let s = drv.stats();
    println!("--- {label} ---");
    println!(
        "  delivered {delivered}/{FRAMES} frames ({:.1}%)",
        100.0 * delivered as f64 / FRAMES as f64
    );
    println!(
        "  injected: {} tx-ticks suppressed, {} DMA frames dropped, {} faults total",
        faults.tx_ticks_suppressed,
        faults.frames_dropped,
        faults.total()
    );
    println!(
        "  recovery: {} watchdog fires, {} resets, {} retries, {} descriptors dropped by reset",
        s.watchdog_fires, s.resets, s.retries, s.tx_dropped
    );
}

fn main() {
    let seed = 0xfa17;
    let rate = 0.05;

    // 1. Control: the fault plan exists but never fires.
    let mem = FaultyMem::new(
        DirectMem::with_defaults(E1000Device::default()),
        FaultPlan::quiet(),
    );
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let delivered = drive(&mut drv);
    report(
        "fault-free control",
        &drv,
        drv.mem_ref().fault_stats(),
        delivered,
    );

    // 2. Baseline driver in the storm.
    let mem = FaultyMem::new(
        DirectMem::with_defaults(E1000Device::default()),
        storm_plan(seed, rate),
    );
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let base_delivered = drive(&mut drv);
    report(
        "baseline, 5% storm",
        &drv,
        drv.mem_ref().fault_stats(),
        base_delivered,
    );

    // 3. Guarded driver, same seed, same storm.
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mem = FaultyMem::new(
        GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy),
        storm_plan(seed, rate),
    );
    let mut drv = E1000Driver::probe(mem).expect("probe (guarded)");
    drv.up().expect("up (guarded)");
    let carat_delivered = drive(&mut drv);
    report(
        "CARAT-guarded, 5% storm",
        &drv,
        drv.mem_ref().fault_stats(),
        carat_delivered,
    );

    println!();
    if carat_delivered == base_delivered {
        println!(
            "guards did not impede recovery: baseline and guarded runs both \
             delivered {carat_delivered}/{FRAMES} frames under the same seeded storm"
        );
    } else {
        println!(
            "delivered under storm: baseline {base_delivered}, guarded {carat_delivered} \
             (expected equal — investigate!)"
        );
    }
}
