//! The §5 privileged-intrinsic extension: a performance-monitoring module
//! that programs MSRs — legal only when the operator grants those
//! intrinsics in the *intrinsic policy table*.
//!
//! Paper §5: *"Instrumentation and wrappers to these builtins could be
//! added during compilation, such that a guard is injected and a
//! different policy table could be consulted to determine if a given
//! kernel module has access to a privileged intrinsic."*
//!
//! Run with: `cargo run --example perfmon_intrinsics`
//!
//! The run also demonstrates kop-trace on the intrinsic path: every
//! wrapped `carat_intrinsic_guard` call has a guard-site identity, so
//! the per-site profile at the end is read from the kernel's trace
//! registry — not from ad-hoc counters in this example.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, intrinsic_id, CompileOptions, CompilerKey};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyCmd, PolicyModule, PolicyResponse};

const PERFMON_SRC: &str = r#"
module "perfmon"
declare void @__wrmsr(i64, i64)
declare i64 @__rdmsr(i64)
declare void @__cli()

define i64 @setup_counters() {
entry:
  call void @__wrmsr(i64 0x38F, i64 0x7)
  %v = call i64 @__rdmsr(i64 0x38F)
  ret i64 %v
}

define void @sneaky_lockup() {
entry:
  call void @__cli()
  ret void
}
"#;

fn main() {
    let key = CompilerKey::from_passphrase("operator-key", "perfmon demo");
    let module = parse_module(PERFMON_SRC).unwrap();

    // Without wrapping, the compiler refuses privileged calls outright.
    match compile_module(module.clone(), &CompileOptions::carat_kop(), &key) {
        Err(e) => println!("base CARAT KOP refuses the module: {e}"),
        Ok(_) => unreachable!(),
    }

    // With the §5 extension the calls are wrapped with intrinsic guards.
    let out = compile_module(module, &CompileOptions::carat_kop_privileged(), &key).unwrap();
    println!(
        "wrapped build: {} privileged call(s), {} intrinsic guard(s) injected",
        out.signed.attestation.privileged_calls,
        out.stats.get("intrinsics_wrapped")
    );

    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key], KernelConfig::default());
    // Turn tracing on before the module loads so every intrinsic-guard
    // check lands in the per-site profile.
    kernel.tracer().set_enabled(true);
    kernel.insmod(&out.signed).unwrap();
    println!(
        "module registered {} guard site(s) with the tracer",
        kernel.tracer().site_count()
    );

    // Operator grants exactly the MSR intrinsics over the ioctl protocol —
    // a *second* firewall table, for operations instead of bytes.
    for name in ["__wrmsr", "__rdmsr"] {
        let id = intrinsic_id(name).unwrap();
        let resp = kernel
            .ioctl("/dev/carat", &PolicyCmd::AllowIntrinsic(id).encode())
            .unwrap();
        assert_eq!(PolicyResponse::decode(&resp).unwrap(), PolicyResponse::Ok);
        println!("granted intrinsic {name} (id {id})");
    }

    // The granted path works.
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let v = interp.call("perfmon", "setup_counters", &[]).unwrap();
        println!("setup_counters -> {:#x} (MSR 0x38F programmed)", v.unwrap());
    }
    assert_eq!(kernel.rdmsr(0x38F), 0x7);

    // The ungranted __cli is stopped before it can mask interrupts.
    let mut interp = Interp::new(&mut kernel).unwrap();
    let err = interp.call("perfmon", "sneaky_lockup", &[]).unwrap_err();
    println!("ungranted __cli stopped: {err}");
    assert!(
        kernel.interrupts_enabled(),
        "interrupts were never disabled"
    );
    println!(
        "interrupts still enabled: {} — the lockup never happened",
        kernel.interrupts_enabled()
    );

    // Per-site profile, straight from the trace registry: which guard
    // sites ran, how often, and what the checks cost. The denied __cli
    // shows up against its own site.
    let tracer = kernel.tracer();
    println!();
    print!("{}", carat_kop::trace::report::top_sites(tracer, 5));
    let total = tracer.total_checks();
    let denied: u64 = tracer
        .profile_snapshot()
        .iter()
        .map(|(_, p)| p.denied)
        .sum();
    println!("total intrinsic-guard checks: {total} ({denied} denied)");
    assert!(total >= 3, "wrmsr + rdmsr + cli guards all profiled");
    assert_eq!(denied, 1, "exactly the __cli guard was denied");
}
