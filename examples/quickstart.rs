//! Quickstart: the full CARAT KOP pipeline in one file.
//!
//! 1. Author a tiny kernel module in KIR.
//! 2. Compile it with the CARAT KOP guard-injection pass and sign it.
//! 3. Boot the simulated kernel, configure a policy over `/dev/carat`.
//! 4. Insert the module (signature validated, `carat_guard` linked).
//! 5. Run it — permitted accesses go through, a forbidden one panics the
//!    kernel, exactly as the paper prescribes for production HPC.
//!
//! Run with: `cargo run --example quickstart`

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::{Protection, Region, Size, VAddr};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{PolicyCmd, PolicyModule, PolicyResponse};

const MODULE_SRC: &str = r#"
module "hello-kop"

global @counter : i64 = 0

define i64 @tick(ptr %scratch) {
entry:
  %old = load i64, ptr @counter
  %new = add i64 %old, 1
  store i64 %new, ptr @counter
  store i64 %new, ptr %scratch
  ret i64 %new
}
"#;

fn main() {
    // --- Compile: guard injection + attestation + signing. -------------
    let key = CompilerKey::from_passphrase("operator-key", "quickstart demo");
    let module = parse_module(MODULE_SRC).expect("module parses");
    println!(
        "input module: {} loads/stores",
        module.memory_access_count()
    );
    let out = compile_module(module, &CompileOptions::carat_kop(), &key).expect("compiles");
    println!(
        "compiled: {} guards injected, signed as {}",
        out.stats.get("guards_injected"),
        &out.signed.content_hash()[..16]
    );

    // --- Boot the kernel and configure the firewall. -------------------
    let policy = Arc::new(PolicyModule::new()); // default deny, panic on violation
    let mut kernel = Kernel::boot(policy, vec![key], KernelConfig::default());

    // Allow the kernel heap region the module will be handed (ioctl path,
    // like the paper's policy-manager tool).
    // The kmalloc arena lives 1 GiB into the direct map; cover it.
    let heap_rule = Region::new(
        VAddr(carat_kop::core::layout::DIRECT_MAP_BASE),
        Size(2 << 30),
        Protection::READ_WRITE,
    )
    .expect("rule");
    let resp = kernel
        .ioctl("/dev/carat", &PolicyCmd::AddRegion(heap_rule).encode())
        .expect("ioctl");
    assert_eq!(PolicyResponse::decode(&resp).unwrap(), PolicyResponse::Ok);

    // The module's own data section must be reachable too.
    let loaded = kernel.insmod(&out.signed).expect("insmod");
    let data_rule = Region::new(
        loaded.data_base,
        Size(loaded.data_size.max(1)),
        Protection::READ_WRITE,
    )
    .expect("rule");
    let name = loaded.name.clone();
    kernel
        .ioctl("/dev/carat", &PolicyCmd::AddRegion(data_rule).encode())
        .expect("ioctl");
    println!(
        "module '{name}' inserted; policy has {} rules",
        kernel.policy().region_count()
    );

    // --- Run: permitted accesses. ---------------------------------------
    let scratch = kernel.kmalloc(64).expect("kmalloc");
    {
        let mut interp = Interp::new(&mut kernel).expect("interp");
        for _ in 0..3 {
            let v = interp
                .call("hello-kop", "tick", &[scratch.raw()])
                .expect("tick")
                .expect("returns");
            println!("tick -> {v}");
        }
    }
    println!(
        "guard stats after permitted runs: {}",
        kernel.policy().stats()
    );

    // --- Run: a forbidden access (user-half pointer) panics. -----------
    let mut interp = Interp::new(&mut kernel).expect("interp");
    let err = interp
        .call("hello-kop", "tick", &[0x40_0000])
        .expect_err("user-half store must be blocked");
    println!("forbidden access stopped: {err}");
    assert!(kernel.panicked().is_some());
    println!("kernel log tail:");
    for line in kernel.dmesg().iter().rev().take(3).rev() {
        println!("  dmesg: {line}");
    }
}
