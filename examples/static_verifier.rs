//! Proving — not trusting — that a module is guarded.
//!
//! Signature checking (the paper's deployment) answers "did *our*
//! compiler build this?". The `kop-analysis` verifier answers the
//! stronger question "is every memory access in this module provably
//! guarded?", which holds even for modules built elsewhere. Scenarios:
//!
//! 1. **Analyze**: run the verifier on a guarded module and print the
//!    coverage report (facts proven, guards seen, precision).
//! 2. **Static-mode insmod**: a kernel with `Verification::Static`
//!    accepts a provably-guarded module signed by a key it has never
//!    seen — no trust relationship needed.
//! 3. **Stripped guard caught**: hand-remove one guard; both the
//!    compiler driver and the Static-mode loader refuse, each naming
//!    the offending instruction with a KA001 diagnostic.
//! 4. **Provenance lints**: the rootkit-style `inttoptr` scan from the
//!    malicious-module example trips the KA003 laundering lint.
//!
//! Run with: `cargo run --example static_verifier`

use std::sync::Arc;

use carat_kop::analysis::{analyze_module, verify_guard_coverage, LintCode};
use carat_kop::compiler::{
    compile_module, Attestation, CompileError, CompileOptions, CompilerKey, SignedModule,
};
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig, Verification};
use carat_kop::policy::PolicyModule;

const DRIVER_SRC: &str = r#"
module "nic"
global @stats : i64 = 0
define void @tx(ptr %desc, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %v = load i64, ptr %desc
  store i64 %v, ptr @stats
  %i2 = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;

const STRIPPED_SRC: &str = r#"
module "stripped"
declare void @carat_guard(ptr, i64, i32)
define i64 @bump(ptr %p, ptr %out) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %v2 = add i64 %v, 1
  store i64 %v2, ptr %out
  ret i64 %v2
}
"#;

const LAUNDER_SRC: &str = r#"
module "launder"
define i64 @peek(i64 %addr) {
entry:
  %p = inttoptr i64 %addr to ptr
  %v = load i64, ptr %p
  ret i64 %v
}
"#;

fn static_kernel() -> Kernel {
    Kernel::boot(
        Arc::new(PolicyModule::new()),
        vec![CompilerKey::from_passphrase("operator-key", "demo")],
        KernelConfig {
            require_signature: false,
            verification: Verification::Static,
            ..KernelConfig::default()
        },
    )
}

fn scenario_analyze() {
    println!("--- scenario 1: prove coverage of a guarded build ---");
    let key = CompilerKey::from_passphrase("anyone", "anywhere");
    let module = parse_module(DRIVER_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::optimized(), &key).unwrap();
    let ir = out.signed.verify(&[key]).unwrap();
    let report = verify_guard_coverage(&ir);
    assert!(report.is_clean());
    println!("{}", report.summary());
    for (key, value) in &report.stats {
        println!("  {key}: {value}");
    }
    println!();
}

fn scenario_static_insmod() {
    println!("--- scenario 2: Static-mode kernel trusts proof, not keys ---");
    let rogue = CompilerKey::from_passphrase("some-vendor", "never-enrolled");
    let module = parse_module(DRIVER_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &rogue).unwrap();
    let mut kernel = static_kernel();
    let loaded = kernel.insmod(&out.signed).unwrap();
    println!(
        "loaded '{}' without a trusted signature; protected: {}\n",
        loaded.name, loaded.is_protected
    );
}

fn scenario_stripped_caught() {
    println!("--- scenario 3: a stripped guard is caught at both gates ---");
    let key = CompilerKey::from_passphrase("operator-key", "demo");
    let module = parse_module(STRIPPED_SRC).unwrap();
    // Gate 1: the driver refuses to sign what it cannot prove.
    match compile_module(module.clone(), &CompileOptions::baseline(), &key) {
        Err(CompileError::GuardCoverage(report)) => {
            let diag = report.with_code(LintCode::UnguardedAccess).next().unwrap();
            println!("compiler refused to sign: {diag}");
        }
        other => panic!("expected coverage refusal, got {other:?}"),
    }
    // Gate 2: hand-assemble the container anyway; the Static-mode
    // loader re-proves coverage at insmod and refuses too.
    let attestation = Attestation::check(&module).unwrap();
    let signed = SignedModule::sign(&module, attestation, &key);
    match static_kernel().insmod(&signed) {
        Err(e) => println!("kernel refused the module: {e}\n"),
        Ok(_) => panic!("stripped module must not load"),
    }
}

fn scenario_provenance_lints() {
    println!("--- scenario 4: pointer-provenance lints ---");
    let module = parse_module(LAUNDER_SRC).unwrap();
    let report = analyze_module(&module);
    let ka003 = report.with_code(LintCode::LaunderedPointer).next().unwrap();
    println!("laundering surfaced before the module ever runs:");
    println!("{ka003}");
}

fn main() {
    scenario_analyze();
    scenario_static_insmod();
    scenario_stripped_caught();
    scenario_provenance_lints();
}
