//! A rootkit-style module versus the CARAT KOP firewall.
//!
//! The module scans low memory for a credential marker — the class of
//! "full-fledged rootkit-style attack" the paper's introduction warns
//! about. Three scenarios:
//!
//! 1. **Unprotected Linux default**: the module is built *without* CARAT
//!    KOP and inserted; the scan quietly succeeds.
//! 2. **CARAT KOP, audit mode**: guards log every forbidden access but let
//!    them through — the operator sees the module's true behaviour.
//! 3. **CARAT KOP, production mode**: the first forbidden access panics
//!    the kernel before the scan reads a single secret byte.
//!
//! Also demonstrated: a module containing inline assembly is refused at
//! *compile* time (attestation), and a tampered container is refused at
//! *insmod* time (signature).
//!
//! Run with: `cargo run --example malicious_module`

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileError, CompileOptions, CompilerKey};
use carat_kop::core::{KernelError, Size, VAddr};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{PolicyModule, ViolationAction};

const CREDSCAN_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

const SECRET_ADDR: u64 = 0x0060_0000; // user-half address holding "secret"
const SECRET_WORD: u64 = 0x6472_7773_7361_7020; // " passwrd" little-endian

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "demo")
}

fn plant_secret(kernel: &mut Kernel) {
    kernel
        .mem
        .write_uint(VAddr(SECRET_ADDR), Size(8), SECRET_WORD)
        .expect("plant secret");
}

fn scenario_unprotected() {
    println!("--- scenario 1: unprotected module (the Linux default) ---");
    let module = parse_module(CREDSCAN_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::baseline(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    plant_secret(&mut kernel);
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let found = interp
        .call("credscan", "scan", &[0x60_0000, 0x1000])
        .unwrap()
        .unwrap();
    println!("rootkit found credentials at {found:#x} — nothing stopped it");
    assert_eq!(found, SECRET_ADDR);
    println!(
        "guard checks executed: {} (no guards were ever injected)\n",
        kernel.policy().stats().checks
    );
}

fn scenario_audit() {
    println!("--- scenario 2: CARAT KOP in audit mode (LogAndAllow) ---");
    let module = parse_module(CREDSCAN_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::LogAndAllow);
    let mut kernel = Kernel::boot(policy.clone(), vec![key()], KernelConfig::default());
    plant_secret(&mut kernel);
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let _ = interp
        .call("credscan", "scan", &[0x60_0000, 0x1000])
        .unwrap();
    let stats = policy.stats();
    println!(
        "scan completed under audit; {} of {} accesses violated policy",
        stats.denied(),
        stats.checks
    );
    println!("first logged violation: {}\n", policy.violation_log()[0]);
}

fn scenario_production() {
    println!("--- scenario 3: CARAT KOP in production mode (Panic) ---");
    let module = parse_module(CREDSCAN_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    plant_secret(&mut kernel);
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let err = interp
        .call("credscan", "scan", &[0x60_0000, 0x1000])
        .expect_err("scan must be stopped");
    let squashed = interp.stats().squashed;
    println!("hard stop on the FIRST forbidden access: {err}");
    assert!(kernel.panicked().is_some());
    println!("secrets read before the stop: 0 (squashed count: {squashed})\n");
}

fn scenario_inline_asm_refused() {
    println!("--- bonus: inline assembly refused at compile time ---");
    let sneaky = r#"
module "sneaky"
define void @escalate() {
entry:
  asm "mov %rax, %cr3"
  ret void
}
"#;
    let module = parse_module(sneaky).unwrap();
    match compile_module(module, &CompileOptions::carat_kop(), &key()) {
        Err(CompileError::Attest(e)) => println!("compiler refused to sign: {e}"),
        other => panic!("expected attestation refusal, got {other:?}"),
    }
}

fn scenario_tampered_container_refused() {
    println!("\n--- bonus: tampered container refused at insmod ---");
    let module = parse_module(CREDSCAN_SRC).unwrap();
    let mut out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    // Strip the guards after signing (what an attacker would love to do).
    out.signed.ir_text = out
        .signed
        .ir_text
        .replace("call void @carat_guard", "; call void @carat_guard");
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    match kernel.insmod(&out.signed) {
        Err(KernelError::BadSignature(e)) => println!("kernel refused the module: {e}"),
        other => panic!("expected signature refusal, got {other:?}"),
    }
}

fn main() {
    scenario_unprotected();
    scenario_audit();
    scenario_production();
    scenario_inline_asm_refused();
    scenario_tampered_container_refused();
}
