//! `policy-manager` — the paper's Figure 1 user-space tool, as a CLI.
//!
//! Speaks the binary ioctl protocol to `/dev/carat` on a freshly booted
//! simulated kernel, then executes the commands you give it:
//!
//! ```text
//! cargo run --example policy_manager -- \
//!     add 0xffff888000000000 0x100000 rw \
//!     add 0x0 0x800000000000 none \
//!     default deny \
//!     list stats
//! ```
//!
//! With no arguments it runs a self-demo equivalent to the line above.

use std::sync::Arc;

use carat_kop::compiler::CompilerKey;
use carat_kop::core::{AccessFlags, Protection, Region, Size, VAddr};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyCmd, PolicyModule, PolicyResponse};

fn parse_u64(s: &str) -> u64 {
    if let Some(hex) = s.strip_prefix("0x") {
        u64::from_str_radix(hex, 16).expect("hex number")
    } else {
        s.parse().expect("number")
    }
}

fn parse_prot(s: &str) -> Protection {
    match s {
        "r" | "ro" => Protection::READ_ONLY,
        "w" | "wo" => Protection::WRITE_ONLY,
        "rw" => Protection::READ_WRITE,
        "rx" => Protection::READ_EXEC,
        "rwx" | "all" => Protection::ALL,
        "none" => Protection::NONE,
        other => panic!("unknown protection '{other}' (use r|w|rw|rx|rwx|none)"),
    }
}

fn issue(kernel: &Kernel, cmd: PolicyCmd) {
    println!("$ policy-manager {cmd:?}");
    let wire = cmd.encode();
    let resp_bytes = kernel.ioctl("/dev/carat", &wire).expect("ioctl");
    match PolicyResponse::decode(&resp_bytes).expect("response decodes") {
        PolicyResponse::Ok => println!("  ok"),
        PolicyResponse::Err(e) => println!("  error: {e}"),
        PolicyResponse::Stats(s) => println!("  {s}"),
        PolicyResponse::Regions(regions) => {
            println!("  {} rule(s):", regions.len());
            for r in regions {
                println!("    {r}");
            }
        }
        PolicyResponse::Intrinsics(ids) => {
            println!("  granted intrinsics: {ids:?}");
        }
    }
}

fn main() {
    let key = CompilerKey::from_passphrase("operator-key", "policy-manager demo");
    let policy = Arc::new(PolicyModule::new());
    let kernel = Kernel::boot(policy, vec![key], KernelConfig::default());
    println!("booted; devices: {:?}", kernel.devices.paths());

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmds: Vec<PolicyCmd> = Vec::new();
    if args.is_empty() {
        // Self-demo: the paper's two-region policy plus bookkeeping.
        cmds.push(PolicyCmd::AddRegion(
            Region::new(
                VAddr(0xffff_8880_0000_0000),
                Size(0x10_0000),
                Protection::READ_WRITE,
            )
            .unwrap(),
        ));
        cmds.push(PolicyCmd::AddRegion(
            Region::new(VAddr(0), Size(0x8000_0000_0000), Protection::NONE).unwrap(),
        ));
        cmds.push(PolicyCmd::SetDefault(DefaultAction::Deny));
        cmds.push(PolicyCmd::List);
        cmds.push(PolicyCmd::Stats);
    } else {
        let mut it = args.iter().map(|s| s.as_str());
        while let Some(word) = it.next() {
            match word {
                "add" => {
                    let base = parse_u64(it.next().expect("add <base> <len> <prot>"));
                    let len = parse_u64(it.next().expect("add <base> <len> <prot>"));
                    let prot = parse_prot(it.next().expect("add <base> <len> <prot>"));
                    cmds.push(PolicyCmd::AddRegion(
                        Region::new(VAddr(base), Size(len), prot).expect("valid region"),
                    ));
                }
                "remove" => {
                    cmds.push(PolicyCmd::RemoveRegion(VAddr(parse_u64(
                        it.next().expect("remove <base>"),
                    ))));
                }
                "default" => {
                    let action = match it.next().expect("default allow|deny") {
                        "allow" => DefaultAction::Allow,
                        "deny" => DefaultAction::Deny,
                        other => panic!("unknown default '{other}'"),
                    };
                    cmds.push(PolicyCmd::SetDefault(action));
                }
                "list" => cmds.push(PolicyCmd::List),
                "stats" => cmds.push(PolicyCmd::Stats),
                "reset" => cmds.push(PolicyCmd::Reset),
                other => panic!("unknown command '{other}'"),
            }
        }
    }

    for cmd in cmds {
        issue(&kernel, cmd);
    }

    // Show the policy actually enforcing: probe two addresses directly.
    let pm = kernel.policy();
    let probes = [
        (0xffff_8880_0000_0800u64, "kernel-half probe"),
        (0x0000_0000_0040_0000u64, "user-half probe"),
    ];
    for (addr, what) in probes {
        let verdict = match pm.check(VAddr(addr), Size(8), AccessFlags::RW) {
            Ok(()) => "permitted".to_string(),
            Err(v) => format!("DENIED ({})", v.kind),
        };
        println!("{what} at {addr:#x}: {verdict}");
    }
    issue(&kernel, PolicyCmd::Stats);
}
