//! The paper's headline experiment as a runnable demo: the e1000e-style
//! driver under a CARAT KOP firewall, baseline vs guarded, with the
//! measured throughput/latency deltas printed.
//!
//! Run with: `cargo run --release --example nic_firewall`

use std::sync::Arc;

use carat_kop::core::{Protection, Region, Size, VAddr};
use carat_kop::e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem};
use carat_kop::net::{tool, EtherType, MacAddr, RawSender, ToolConfig};
use carat_kop::policy::{PolicyModule, ViolationAction};
use carat_kop::sim::MachineProfile;

fn two_region_policy() -> Arc<PolicyModule> {
    // Paper §4.2 footnote 5: allow the kernel half, deny the user half.
    Arc::new(PolicyModule::two_region_paper_policy())
}

fn main() {
    let machine = MachineProfile::r350();
    println!("machine: {}", machine.name);

    // --- Baseline build: same driver code, direct memory space. --------
    let mut baseline = {
        let mem = DirectMem::with_defaults(E1000Device::default());
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        RawSender::new(drv, machine.clone())
    };

    // --- CARAT KOP build: identical driver over the guarded space. -----
    let policy = two_region_policy();
    let mut carat = {
        let mem = GuardedMem::new(
            DirectMem::with_defaults(E1000Device::default()),
            policy.clone(),
        );
        let mut drv = E1000Driver::probe(mem).expect("probe (guarded)");
        drv.up().expect("up (guarded)");
        RawSender::new(drv, machine.clone())
    };

    let cfg = ToolConfig {
        packets_per_trial: 100_000,
        trials: 41,
        frame_size: 128,
        seed: 42,
    };
    println!(
        "sending {} trials x {} packets of {} bytes...",
        cfg.trials, cfg.packets_per_trial, cfg.frame_size
    );

    let rb = tool::run_throughput(&mut baseline, &cfg).expect("baseline trials");
    let rc = tool::run_throughput(&mut carat, &cfg).expect("carat trials");

    println!(
        "baseline: median {:>10.0} pps  (p5 {:.0}, p95 {:.0})",
        rb.summary.median, rb.summary.p5, rb.summary.p95
    );
    println!(
        "carat:    median {:>10.0} pps  (p5 {:.0}, p95 {:.0})",
        rc.summary.median, rc.summary.p5, rc.summary.p95
    );
    let rel = rb.summary.median_rel_change(&rc.summary);
    println!(
        "median change: {:.3}% (paper: <0.1% on this machine)",
        rel * 100.0
    );

    println!(
        "guard checks executed: {} ({} denied)",
        policy.stats().checks,
        policy.stats().denied()
    );

    // --- The firewall part: a buggy DMA address is caught. -------------
    // Suppose the driver were handed a user-half buffer pointer (a classic
    // driver bug / attack). The guarded build stops it cold.
    policy.set_violation_action(ViolationAction::LogAndDeny);
    // Shrink the policy to prove the *driver's own* accesses are what is
    // being checked: deny writes to the NIC ring region by replacing the
    // blanket rule with a read-only one.
    policy.clear_regions();
    policy
        .add_region(
            Region::new(
                VAddr(carat_kop::core::layout::DIRECT_MAP_BASE),
                Size(64 << 20),
                Protection::READ_ONLY, // ring writes now forbidden!
            )
            .unwrap(),
        )
        .unwrap();
    policy
        .add_region(
            Region::new(
                VAddr(carat_kop::core::layout::MMIO_WINDOW_BASE),
                Size(4 << 30),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
    match carat.sendmsg(MacAddr::BROADCAST, EtherType::Experimental, &[0u8; 114]) {
        Err(e) => println!("policy tightened at runtime; driver write stopped: {e}"),
        Ok(_) => unreachable!("ring write should be denied"),
    }
    println!("violations logged: {}", policy.violation_log().len());
    println!("last violation: {}", policy.violation_log().last().unwrap());
}
