//! End-to-end module lifecycle: supervised restart and live upgrade.
//!
//! Test 1 drives the full supervision loop against the rootkit-style
//! credscan module while a guarded e1000e TX workload shares the policy:
//! quarantine → backoff → restart from the cached image → serving again,
//! with the concurrent workload byte-identical to a fault-free run and
//! the whole story visible through the `/dev/trace` `lifecycle` command.
//!
//! Test 2 performs a zero-downtime live upgrade while sequence-numbered
//! TX traffic flows: v1's NIC is wedged with a backlog, the bounded
//! drain times out, the backlog is force-migrated and resubmitted
//! through v2's driver, and a [`LedgerSink`] proves zero dropped and
//! zero duplicated frames. Calls through the module name reach v2.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::{KernelError, Size, VAddr};
use carat_kop::e1000e::device::VecSink;
use carat_kop::e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem, MemSpace};
use carat_kop::faultline::{FaultPlan, FaultyMem, Trigger};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig, TRACE_DEV};
use carat_kop::net::LedgerSink;
use carat_kop::policy::{PolicyModule, ViolationAction};
use carat_kop::supervisor::{
    upgrade_module, DrainPort, ModuleState, SuperConfig, Supervisor, UpgradeOptions,
};

const CREDSCAN_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

/// v2: the same scanner plus a version probe, so the test can prove that
/// post-swap dispatch reaches the new code.
const CREDSCAN_V2_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
define i64 @ver() {
entry:
  ret i64 2
}
"#;

const SECRET_ADDR: u64 = 0x0060_0000;
const SECRET_WORD: u64 = 0x6472_7773_7361_7020;
/// Legal scan target: inside the kernel direct map the policy permits.
const WORK_ADDR: u64 = carat_kop::core::layout::DIRECT_MAP_BASE + 0x10_0000;
const ROUNDS: usize = 12;
const FRAMES_PER_ROUND: usize = 10;
const DST: [u8; 6] = [0x52, 0x54, 0x00, 0x12, 0x34, 0x56];

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

fn compile(src: &str) -> carat_kop::compiler::SignedModule {
    let module = parse_module(src).expect("parse");
    compile_module(module, &CompileOptions::carat_kop(), &key())
        .expect("compile")
        .signed
}

fn guarded_driver(policy: Arc<PolicyModule>) -> E1000Driver<GuardedMem<Arc<PolicyModule>>> {
    let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy);
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    drv
}

/// One round of guarded TX work: deterministic payloads, synchronous DMA.
fn tx_round(
    drv: &mut E1000Driver<GuardedMem<Arc<PolicyModule>>>,
    sink: &mut VecSink,
    round: usize,
) {
    for i in 0..FRAMES_PER_ROUND {
        let payload: Vec<u8> = (0..114).map(|b| (round * 31 + i * 7 + b) as u8).collect();
        drv.xmit_and_flush(DST, 0x0800, &payload, sink)
            .expect("guarded TX must keep working");
    }
}

/// The same TX workload with no rootkit (and no supervisor) anywhere
/// near the system.
fn fault_free_frames() -> Vec<Vec<u8>> {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut drv = guarded_driver(policy);
    let mut sink = VecSink::default();
    for round in 0..ROUNDS {
        tx_round(&mut drv, &mut sink, round);
    }
    sink.frames
}

fn lifecycle_line(kernel: &Kernel, module: &str) -> String {
    let out = kernel
        .ioctl(TRACE_DEV, format!("lifecycle {module}").as_bytes())
        .expect("lifecycle ioctl");
    String::from_utf8(out).expect("utf-8 reply")
}

#[test]
fn quarantined_module_restarts_and_tx_stays_byte_identical() {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);

    let mut kernel = Kernel::boot(policy.clone(), vec![key()], KernelConfig::default());
    kernel
        .mem
        .write_uint(VAddr(SECRET_ADDR), Size(8), SECRET_WORD)
        .expect("plant secret");

    let signed = compile(CREDSCAN_SRC);
    kernel.insmod(&signed).expect("insmod");

    let mut sup = Supervisor::new(SuperConfig {
        max_restarts: 3,
        base_backoff_ticks: 2,
        max_backoff_ticks: 8,
    });
    sup.attach(&kernel, "credscan", &signed).expect("attach");

    // The driver shares the kernel's policy module but runs its own NIC —
    // the concurrent workload neither the quarantine nor the restart may
    // disturb.
    let mut drv = guarded_driver(policy.clone());
    let mut sink = VecSink::default();

    let mut quarantined_at = None;
    let mut restarted_at = None;
    for round in 0..ROUNDS {
        tx_round(&mut drv, &mut sink, round);
        {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            if (1..=3).contains(&round) {
                // One forbidden probe per round; the default violation
                // budget (3) quarantines on the third.
                match interp.call("credscan", "scan", &[SECRET_ADDR, 8]) {
                    Ok(Some(found)) => assert_eq!(found, 0, "squashed probe sees nothing"),
                    Err(KernelError::ModuleQuarantined { module, .. }) => {
                        assert_eq!(module, "credscan");
                        quarantined_at = Some(round);
                    }
                    other => panic!("unexpected probe outcome: {other:?}"),
                }
            } else if restarted_at.is_some() {
                // The restarted instance serves legal work every round.
                let r = interp
                    .call("credscan", "scan", &[WORK_ADDR, 64])
                    .expect("restarted module serves")
                    .expect("returns");
                assert_eq!(r, 0);
            }
        }
        if quarantined_at == Some(round) {
            let line = lifecycle_line(&kernel, "credscan");
            assert!(line.contains("state=quarantined"), "{line}");
            assert!(line.contains("last_quarantine(violations=3"), "{line}");
        }
        sup.tick(&mut kernel);
        if restarted_at.is_none()
            && quarantined_at.is_some()
            && sup.state("credscan") == Some(ModuleState::Running)
        {
            restarted_at = Some(sup.clock());
            assert!(kernel.module("credscan").is_some(), "re-inserted");
        }
    }

    let quarantined_at = quarantined_at.expect("budget was exhausted");
    assert_eq!(quarantined_at, 3);
    restarted_at.expect("supervisor restarted within the run");
    assert_eq!(sup.restarts("credscan"), 1);
    assert!(kernel.panicked().is_none(), "kernel must not panic");
    kernel.check_alive().expect("kernel keeps running");

    // Operator view: running again, one supervised restart on record,
    // the quarantine retained for the post-mortem.
    let line = lifecycle_line(&kernel, "credscan");
    assert!(line.contains("state=running"), "{line}");
    assert!(line.contains("restarts=1"), "{line}");
    assert!(line.contains("last_quarantine"), "{line}");

    // The concurrent workload was untouched through quarantine, backoff,
    // and restart: byte-identical to the fault-free run.
    let clean = fault_free_frames();
    assert_eq!(sink.frames.len(), ROUNDS * FRAMES_PER_ROUND);
    assert_eq!(
        sink.frames, clean,
        "delivered frames must match the fault-free run byte for byte"
    );
    assert_eq!(drv.stats().resets, 0, "driver never needed recovery");
}

/// A sequence-numbered raw frame (LE `u64` at `frame[14..22]`, where
/// [`LedgerSink`] audits it).
fn seq_frame(seq: u64) -> Vec<u8> {
    let mut f = vec![0u8; 96];
    f[0..6].copy_from_slice(&DST);
    f[6..12].copy_from_slice(&[0x02, 0x00, 0x00, 0x00, 0x00, 0x01]);
    f[12] = 0x88;
    f[13] = 0xb5;
    f[14..22].copy_from_slice(&seq.to_le_bytes());
    f
}

/// [`DrainPort`] over v1's (wedged) driver: the upgrade drains what it
/// can and force-migrates the rest.
struct DriverPort<M: MemSpace> {
    drv: E1000Driver<M>,
    ledger: LedgerSink,
}

impl<M: MemSpace> DrainPort for DriverPort<M> {
    fn drain(&mut self, max_ticks: u64) -> u64 {
        self.drv.drain(&mut self.ledger, max_ticks).unwrap_or(0)
    }
    fn pending(&self) -> u64 {
        self.drv.tx_pending()
    }
    fn migrate(&mut self) -> Vec<Vec<u8>> {
        self.drv.take_pending_frames().unwrap_or_default()
    }
}

#[test]
fn live_upgrade_under_tx_storm_drops_nothing() {
    const BACKLOG: u64 = 8;
    const FOREGROUND: u64 = 40;

    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy.clone(), vec![key()], KernelConfig::default());
    kernel.insmod(&compile(CREDSCAN_SRC)).expect("insmod v1");

    // v1's NIC wedges after its first DMA tick — the reason to upgrade —
    // with a backlog of sequenced frames stuck in the ring.
    let hung = FaultyMem::new(
        GuardedMem::new(
            DirectMem::with_defaults(E1000Device::default()),
            policy.clone(),
        ),
        FaultPlan::new(42).with_tx_hang(Trigger::Window {
            start: 1,
            len: u64::MAX / 2,
        }),
    );
    let mut v1 = E1000Driver::probe(hung).expect("probe v1");
    v1.up().expect("up v1");
    for seq in 0..BACKLOG {
        v1.xmit_raw(&seq_frame(seq)).expect("queue backlog");
    }
    assert_eq!(v1.tx_pending(), BACKLOG);
    let mut port = DriverPort {
        drv: v1,
        ledger: LedgerSink::new(),
    };

    // Foreground traffic on its own healthy queue, flowing before,
    // during (interleaved), and after the swap.
    let mut fg = guarded_driver(policy.clone());
    let mut ledger = LedgerSink::new();
    for seq in 1_000..1_000 + FOREGROUND / 2 {
        fg.xmit_raw(&seq_frame(seq)).expect("fg xmit");
        fg.drain(&mut ledger, 2).expect("fg drain");
    }

    let gen_before = policy.store_generation();
    let report = upgrade_module(
        &mut kernel,
        "credscan",
        &compile(CREDSCAN_V2_SRC),
        &mut port,
        UpgradeOptions { drain_ticks: 4 },
    )
    .expect("upgrade");

    for seq in 1_000 + FOREGROUND / 2..1_000 + FOREGROUND {
        fg.xmit_raw(&seq_frame(seq)).expect("fg xmit");
        fg.drain(&mut ledger, 2).expect("fg drain");
    }
    fg.drain(&mut ledger, 1_024).expect("fg final drain");
    assert_eq!(fg.tx_pending(), 0);

    // The wedged ring could not drain: every backlog frame migrated.
    assert_eq!(report.instance, "credscan#v2");
    assert_eq!(report.migrated.len() as u64, BACKLOG, "full migration");
    assert!(report.generation > gen_before, "epoch bumped at the swap");

    // Resubmit the migrated in-flight frames through v2's driver.
    let mut v2 = guarded_driver(policy.clone());
    for frame in &report.migrated {
        v2.xmit_raw(frame).expect("resubmit migrated");
    }
    v2.drain(&mut ledger, 1_024).expect("drain migrated");

    // Zero dropped, zero duplicated — across backlog and foreground.
    for l in [&port.ledger, &ledger] {
        assert_eq!(l.duplicates, 0, "no frame delivered twice");
    }
    for seq in 0..BACKLOG {
        assert!(ledger.has(seq), "backlog seq {seq} dropped");
    }
    for seq in 1_000..1_000 + FOREGROUND {
        assert!(ledger.has(seq), "foreground seq {seq} dropped");
    }
    assert_eq!(
        ledger.distinct() + port.ledger.distinct(),
        BACKLOG + FOREGROUND
    );

    // Dispatch through the module name reaches v2's code.
    assert_eq!(kernel.dispatch_target("credscan"), Some("credscan#v2"));
    let mut interp = Interp::new(&mut kernel).expect("interp");
    let ver = interp
        .call("credscan", "ver", &[])
        .expect("alias dispatch")
        .expect("returns");
    assert_eq!(ver, 2);
    drop(interp);

    assert!(
        kernel
            .dmesg()
            .iter()
            .any(|l| l.contains("upgraded 'credscan'")),
        "upgrade lands in dmesg"
    );
    let line = lifecycle_line(&kernel, "credscan#v2");
    assert!(line.contains("state=running"), "{line}");
}
