//! Differential property tests for the guard-optimizing tier.
//!
//! For every random KIR program, the unoptimized carat build and the
//! optimized build (cross-block redundant-guard elimination + range
//! coalescing) must be observationally equivalent on **both** execution
//! engines:
//!
//! * allow-all policy — identical results, identical memory and global
//!   effects, identical dynamic access counts, and the optimized build
//!   executes **no more** guards than the unoptimized one;
//! * deny-all policy with `ViolationAction::Panic` — identical violation
//!   *verdicts* (both builds panic, or both succeed). Site-for-site
//!   equality is deliberately not required: flag widening and range
//!   hoisting may surface the violation at an earlier guard, but they
//!   must never invent or lose one.
//!
//! The generator is biased toward shapes the optimizer actually fires
//! on: repeated `@g` traffic (elision + read→write flag widening) and
//! induction-indexed element walks (range coalescing).

use std::sync::Arc;

use proptest::prelude::*;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::interp::{Engine, ExecStats, Interp};
use carat_kop::ir::{verify_module, BinOp, GlobalInit, IcmpPred, IrBuilder, Type, Value};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyModule, ViolationAction};

/// One step of a random loop body over 4 registers, an 8-slot scratch
/// buffer, a global `@g`, and the loop induction variable `i`.
#[derive(Clone, Debug)]
enum Op {
    /// dst = a <op> b
    Arith(u8, BinOp, u8, u8),
    /// dst = buf[slot] (fresh gep each time — never elidable)
    SlotLoad(u8, u8),
    /// buf[slot] = src
    SlotStore(u8, u8),
    /// dst = buf[i] (induction-indexed — range-coalescable)
    WalkLoad(u8),
    /// buf[i] = src
    WalkStore(u8),
    /// g = g + src (same-SSA-pointer load+store — elide/widen fodder)
    BumpGlobal(u8),
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_op() -> impl Strategy<Value = Op> {
    let reg = 0u8..4;
    let slot = 0u8..8;
    prop_oneof![
        (reg.clone(), arb_binop(), reg.clone(), reg.clone())
            .prop_map(|(d, o, a, b)| Op::Arith(d, o, a, b)),
        (reg.clone(), slot.clone()).prop_map(|(d, s)| Op::SlotLoad(d, s)),
        (slot, reg.clone()).prop_map(|(s, r)| Op::SlotStore(s, r)),
        reg.clone().prop_map(Op::WalkLoad),
        reg.clone().prop_map(Op::WalkStore),
        reg.prop_map(Op::BumpGlobal),
    ]
}

/// `run(ptr buf, i64 seed)`: execute `ops` in a counted loop of `loop_n`
/// iterations, then fold the registers into the return value. The loop
/// is the canonical counted shape the range planner recognizes.
fn build_program(ops: &[Op], loop_n: u64) -> carat_kop::ir::Module {
    let mut b = IrBuilder::new("optdiff");
    b.global("g", Type::I64, GlobalInit::Int(1));
    let mut f = b.function("run", vec![Type::Ptr, Type::I64], Type::I64);
    f.name_params(&["buf", "seed"]);
    let entry = f.block("entry");
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");

    f.switch_to(entry);
    f.br(head);

    f.switch_to(head);
    let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
    let regs_phi: Vec<Value> = (0..4)
        .map(|k| {
            f.phi(
                Type::I64,
                vec![(entry, Value::ConstInt(Type::I64, 0xace1 + k as u64))],
            )
        })
        .collect();
    let cond = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::i64(loop_n));
    f.condbr(cond, body, exit);

    f.switch_to(body);
    let mut regs: Vec<Value> = regs_phi.clone();
    regs[0] = f.add(Type::I64, regs[0].clone(), Value::Arg(1));
    for op in ops {
        match op {
            Op::Arith(d, o, a, b2) => {
                let v = f.bin(
                    *o,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = v;
            }
            Op::SlotLoad(d, s) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                regs[*d as usize] = f.load(Type::I64, p);
            }
            Op::SlotStore(s, r) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                f.store(Type::I64, regs[*r as usize].clone(), p);
            }
            Op::WalkLoad(d) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![i.clone()]);
                regs[*d as usize] = f.load(Type::I64, p);
            }
            Op::WalkStore(r) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![i.clone()]);
                f.store(Type::I64, regs[*r as usize].clone(), p);
            }
            Op::BumpGlobal(r) => {
                let g = Value::Global("g".into());
                let old = f.load(Type::I64, g.clone());
                let new = f.add(Type::I64, old, regs[*r as usize].clone());
                f.store(Type::I64, new, g);
            }
        }
    }
    let i_next = f.add(Type::I64, i.clone(), Value::i64(1));
    f.br(head);

    // Patch the loop-carried phi incomings.
    let func = f.raw();
    let patch = |func: &mut carat_kop::ir::Function, phi: &Value, val: Value| {
        if let Value::Inst(id) = phi {
            if let carat_kop::ir::Inst::Phi { incomings, .. } = func.inst_mut(*id) {
                incomings.push((body, val));
            }
        }
    };
    patch(func, &i, i_next);
    for (k, phi) in regs_phi.iter().enumerate() {
        patch(func, phi, regs[k].clone());
    }

    f.switch_to(exit);
    // No trailing memory access here: a program whose ops touch no
    // memory must run violation-free even under deny-all.
    let mut acc = regs_phi[0].clone();
    for r in &regs_phi[1..] {
        acc = f.bin(BinOp::Xor, Type::I64, acc, r.clone());
    }
    f.ret(Some(acc));
    f.finish();
    b.finish()
}

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "proptest")
}

/// Everything one run observably produces.
#[derive(Debug, PartialEq)]
struct Obs {
    result: Result<Option<u64>, String>,
    stats: ExecStats,
    mem: Vec<u8>,
    global: Vec<u8>,
}

/// Compile `module` under `opts` and run `@run(buf, seed)` on `engine`.
/// `deny_panic` selects default-deny + `ViolationAction::Panic` (the
/// paper's enforcement mode) instead of allow-all.
fn observe(
    module: carat_kop::ir::Module,
    opts: &CompileOptions,
    seed: u64,
    engine: Engine,
    deny_panic: bool,
) -> Obs {
    let out = compile_module(module, opts, &key()).expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    if deny_panic {
        policy.set_default_action(DefaultAction::Deny);
        policy.set_violation_action(ViolationAction::Panic);
    } else {
        policy.set_default_action(DefaultAction::Allow);
    }
    let mut kernel = Kernel::boot(Arc::clone(&policy), vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).expect("loads");
    let buf = kernel.kmalloc(8 * 8).expect("buf");
    let global = kernel
        .module("optdiff")
        .expect("loaded")
        .image()
        .globals
        .get("g")
        .copied()
        .expect("global @g laid out");

    let mut interp = Interp::new(&mut kernel).expect("interp");
    interp.set_engine(engine);
    let result = interp
        .call("optdiff", "run", &[buf.raw(), seed])
        .map_err(|e| e.to_string());
    let stats = interp.stats();

    let mut mem = vec![0u8; 64];
    kernel.mem.read_bytes(buf, &mut mem).expect("read back");
    let mut gbytes = vec![0u8; 8];
    kernel.mem.read_bytes(global, &mut gbytes).expect("global");
    Obs {
        result,
        stats,
        mem,
        global: gbytes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Allow-all: the optimizer must be invisible in every observable
    /// except the guard count, which may only shrink.
    #[test]
    fn optimized_build_is_invisible_under_allow_all(
        ops in proptest::collection::vec(arb_op(), 1..20),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&ops, loop_n);
        verify_module(&module).expect("generated program verifies");

        for engine in [Engine::Tree, Engine::Bytecode] {
            let unopt = observe(
                module.clone(), &CompileOptions::carat_kop(), seed, engine, false,
            );
            let opt = observe(
                module.clone(), &CompileOptions::optimized(), seed, engine, false,
            );

            prop_assert!(unopt.result.is_ok());
            prop_assert_eq!(&unopt.result, &opt.result);
            prop_assert_eq!(&unopt.mem, &opt.mem);
            prop_assert_eq!(&unopt.global, &opt.global);

            // The optimizer rewrites guards, never accesses.
            prop_assert_eq!(unopt.stats.mem_accesses, opt.stats.mem_accesses);
            // Unoptimized carat: one guard per access. Optimized: never
            // more than that.
            prop_assert_eq!(unopt.stats.guards, unopt.stats.mem_accesses);
            prop_assert!(
                opt.stats.guards <= unopt.stats.guards,
                "optimizer executed more guards ({} > {})",
                opt.stats.guards, unopt.stats.guards,
            );
        }

        // And the two engines agree with each other on the optimized
        // build, byte for byte.
        let tree = observe(
            module.clone(), &CompileOptions::optimized(), seed, Engine::Tree, false,
        );
        let vm = observe(
            module, &CompileOptions::optimized(), seed, Engine::Bytecode, false,
        );
        prop_assert_eq!(&tree, &vm);
    }

    /// Deny-all + Panic: elision, widening, and range hoisting may move
    /// *where* the first violation fires, but never *whether* one fires.
    #[test]
    fn optimized_build_agrees_on_violation_verdicts_under_deny_panic(
        ops in proptest::collection::vec(arb_op(), 1..20),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&ops, loop_n);

        let mut verdicts = Vec::new();
        for opts in [CompileOptions::carat_kop(), CompileOptions::optimized()] {
            let tree = observe(module.clone(), &opts, seed, Engine::Tree, true);
            let vm = observe(module.clone(), &opts, seed, Engine::Bytecode, true);
            // Engines agree on everything, including the panic message.
            prop_assert_eq!(&tree, &vm);
            // No access may slip past a denying policy: a violating run
            // panics before its first access commits.
            if tree.result.is_err() {
                prop_assert_eq!(tree.stats.mem_accesses, 0);
                prop_assert_eq!(&tree.mem, &vec![0u8; 64]);
            }
            verdicts.push(tree.result.is_ok());
        }
        prop_assert_eq!(
            verdicts[0], verdicts[1],
            "builds disagree on whether the program violates (unopt ok={}, opt ok={})",
            verdicts[0], verdicts[1],
        );
    }
}
