//! Regression tests over the figure generators: the paper's qualitative
//! claims must keep holding. These assert *shapes* — who wins, by what
//! rough factor, where trends point — not absolute host performance.

use kop_bench::figures;

#[test]
fn fig3_slow_machine_overhead_under_0_8_percent() {
    let fig = figures::fig3();
    let rel = fig.headline("median_rel_change").unwrap();
    assert!(rel > 0.0, "carat must be (slightly) slower: rel={rel}");
    assert!(rel < 0.008, "paper: <0.8% — got {rel}");
    let delta = fig.headline("median_delta_pps").unwrap();
    assert!(
        delta > 100.0 && delta < 2_000.0,
        "paper: ~1,000 pps delta — got {delta}"
    );
    // Median throughput in the figure's plotted range (105k–130k pps).
    let base = fig.headline("baseline_median_pps").unwrap();
    assert!(base > 105_000.0 && base < 130_000.0, "{base}");
    // Both CDFs span the full 0..1 range and are monotone.
    for s in &fig.series {
        assert!(s.points.len() > 10);
        assert!((s.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in s.points.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 < w[1].1);
        }
    }
}

#[test]
fn fig4_fast_machine_overhead_under_0_1_percent() {
    let fig = figures::fig4();
    let rel = fig.headline("median_rel_change").unwrap();
    assert!(rel > 0.0);
    assert!(rel < 0.001, "paper: <0.1% — got {rel}");
    let base = fig.headline("baseline_median_pps").unwrap();
    assert!(base > 90_000.0 && base < 130_000.0, "{base}");
}

#[test]
fn fig4_effect_smaller_than_fig3() {
    let slow = figures::fig3().headline("median_rel_change").unwrap();
    let fast = figures::fig4().headline("median_rel_change").unwrap();
    assert!(
        fast < slow / 3.0,
        "the faster machine must hide guards much better ({fast} vs {slow})"
    );
}

#[test]
fn fig5_regions_ordered_and_all_under_1_percent() {
    let fig = figures::fig5();
    let r2 = fig.headline("carat_median_rel_change").unwrap();
    let r16 = fig.headline("carat16_median_rel_change").unwrap();
    let r64 = fig.headline("carat64_median_rel_change").unwrap();
    assert!(
        r2 < r16 && r16 < r64,
        "effect must grow with n: {r2} {r16} {r64}"
    );
    assert!(
        r64 < 0.01,
        "paper: even n=64 changes the median <1% — got {r64}"
    );
    assert!(r64 > r2 * 2.0, "n=64 must be visibly worse than n=2");
}

#[test]
fn fig6_slowdown_concentrated_on_small_packets() {
    let fig = figures::fig6();
    let series = fig.series("carat").unwrap();
    // Monotonically non-increasing slowdown with size.
    for w in series.points.windows(2) {
        assert!(
            w[1].1 <= w[0].1 + 1e-4,
            "slowdown must shrink with packet size: {:?}",
            series.points
        );
    }
    let max = fig.headline("max_slowdown").unwrap();
    assert!(max > 1.01 && max < 1.03, "paper: max ~2.5% — got {max}");
    let at1500 = fig.headline("slowdown_at_1500").unwrap();
    assert!(
        at1500 < 1.005,
        "large packets nearly unaffected — got {at1500}"
    );
}

#[test]
fn fig7_latency_medians_closely_matched() {
    let fig = figures::fig7();
    let base = fig.headline("base_median_cycles").unwrap();
    let carat = fig.headline("carat_median_cycles").unwrap();
    // Paper: 686 vs 694 cycles.
    assert!((base - 686.0).abs() < 25.0, "baseline median {base}");
    assert!(carat > base, "carat must be slower");
    assert!(
        carat - base < 30.0,
        "within measurement noise: {}",
        carat - base
    );
    // Histograms overlap: same bucket grid, both non-empty in the bulk.
    let b = fig.series("base").unwrap();
    let c = fig.series("carat").unwrap();
    assert_eq!(b.points.len(), c.points.len());
    let b_total: f64 = b.points.iter().map(|p| p.1).sum();
    let c_total: f64 = c.points.iter().map(|p| p.1).sum();
    assert!(b_total > 30_000.0 && c_total > 30_000.0);
    assert!(fig.headline("outliers_excluded").unwrap() > 0.0);
}

#[test]
fn claims_zero_source_change_guards() {
    let fig = figures::claims();
    // One guard per memory access for every corpus module.
    for module in ["mini-e1000e", "opt-workload", "credscan", "synthetic_19k"] {
        let accesses = fig.headline(&format!("{module}_mem_accesses")).unwrap();
        let guards = fig.headline(&format!("{module}_guards_injected")).unwrap();
        assert_eq!(accesses, guards, "{module}");
        assert!(accesses > 0.0);
    }
    // The paper-scale module (~19 kLoC) transforms in interactive time.
    let lines = fig.headline("synthetic_19k_ir_lines").unwrap();
    assert!(lines > 18_000.0, "scale module is paper-sized: {lines}");
    let ms = fig.headline("synthetic_19k_compile_ms").unwrap();
    assert!(ms < 5_000.0, "transformation stays interactive: {ms} ms");
}

#[test]
fn analysis_proves_corpus_with_full_precision() {
    let fig = figures::analysis();
    // Every guarded build — paper configuration and optimized — proves
    // every access covered (precision 1.0), at interactive cost.
    for module in ["mini-e1000e", "opt-workload", "credscan", "synthetic-200"] {
        for cfg in ["carat", "opt"] {
            let precision = fig
                .headline(&format!("{module}_{cfg}_precision"))
                .unwrap_or_else(|| panic!("missing {module}_{cfg}_precision"));
            assert_eq!(precision, 1.0, "{module}/{cfg}");
            let us = fig.headline(&format!("{module}_{cfg}_verify_us")).unwrap();
            assert!(us < 1_000_000.0, "{module}/{cfg} verify cost: {us} us");
        }
    }
    // The rootkit module's inttoptr laundering is surfaced.
    assert!(fig.headline("credscan_laundered_accesses").unwrap() > 0.0);
    // Cost series is present and covers the size spread.
    let series = fig.series("verify_us").unwrap();
    assert!(series.points.len() >= 8);
}

#[test]
fn ablation_opt_reduces_dynamic_guards() {
    let fig = figures::ablation_opt();
    let unopt = fig.headline("dynamic_guards_unopt").unwrap();
    let opt = fig.headline("dynamic_guards_opt").unwrap();
    assert!(opt < unopt, "optimization must reduce dynamic guards");
    let reduction = fig.headline("dynamic_reduction").unwrap();
    assert!(
        reduction > 0.5,
        "hoisting + dedup should eliminate most loop guards: {reduction}"
    );
    // Static count barely changes (guards move, and one dedups).
    let s_unopt = fig.headline("static_guards_unopt").unwrap();
    let s_opt = fig.headline("static_guards_opt").unwrap();
    assert!(s_opt <= s_unopt);
}

#[test]
fn opt_figure_reduces_guards_with_identical_observables() {
    // Byte-identity of ring/frame/stats memory and exact per-site trace
    // reconciliation are asserted unconditionally inside opt(); here we
    // pin the figure's shape and the headline arithmetic.
    let fig = figures::opt();
    assert_eq!(fig.id, "opt");

    // Four timed configurations: unopt/opt x tree/bytecode.
    let ns = fig.series("ns_per_packet").unwrap();
    assert_eq!(ns.points.len(), 4);
    assert!(ns.points.iter().all(|&(_, y)| y > 0.0));
    let gpp_series = fig.series("guards_per_packet").unwrap();
    assert_eq!(gpp_series.points.len(), 2);

    // The TX path sheds guards without shedding accesses.
    let unopt = fig.headline("guards_per_packet_unopt").unwrap();
    let opt = fig.headline("guards_per_packet_opt").unwrap();
    assert_eq!(unopt, 10.0, "mini-e1000e TX path is 10 guarded accesses");
    assert!(opt < unopt, "optimizer must shed TX-path guards: {opt}");
    let reduction = fig.headline("guards_per_packet_reduction").unwrap();
    assert!(
        (reduction - (1.0 - opt / unopt)).abs() < 1e-9,
        "reduction headline must reconcile: {reduction}"
    );
    assert!(reduction > 0.0 && reduction < 1.0);

    // Static guard count shrinks too (elision + coalescing).
    let s_unopt = fig.headline("static_guards_unopt").unwrap();
    let s_opt = fig.headline("static_guards_opt").unwrap();
    assert!(s_opt < s_unopt, "static: {s_opt} vs {s_unopt}");

    // The loop-heavy workload shows the range coalescer's full effect.
    let w_unopt = fig.headline("workload_dynamic_guards_unopt").unwrap();
    let w_opt = fig.headline("workload_dynamic_guards_opt").unwrap();
    assert!(
        w_opt < w_unopt / 2.0,
        "range coalescing should halve workload guards: {w_opt} vs {w_unopt}"
    );

    // All four ns/pkt headlines present and positive.
    for h in [
        "tree_unopt_ns_pkt",
        "tree_opt_ns_pkt",
        "bytecode_unopt_ns_pkt",
        "bytecode_opt_ns_pkt",
    ] {
        assert!(fig.headline(h).unwrap() > 0.0, "{h}");
    }
    let json = fig.render_json();
    assert!(json.contains("\"id\": \"opt\""));
    assert!(json.contains("\"guards_per_packet_reduction\""));
}

#[test]
fn resilience_degrades_smoothly_and_guards_do_not_impede_recovery() {
    let figs = figures::resilience();
    let fig = &figs[0];
    assert_eq!(fig.id, "resilience");

    // No faults, no loss.
    assert_eq!(fig.headline("base_delivered_frac_r0").unwrap(), 1.0);
    assert_eq!(fig.headline("carat_delivered_frac_r0").unwrap(), 1.0);

    let carat = fig.series("carat").unwrap();
    let base = fig.series("baseline").unwrap();
    // Guards do not impede recovery: the fault layer stacks above the
    // guard layer, so the two builds must degrade *identically* — a far
    // stronger property than the ±1% acceptance bound.
    assert_eq!(carat.points, base.points);
    // Delivered fraction degrades smoothly (non-increasing) with rate,
    // and even the worst storm keeps the majority of frames flowing.
    for w in carat.points.windows(2) {
        assert!(w[0].0 < w[1].0, "rates strictly increasing");
        assert!(
            w[1].1 <= w[0].1 + 1e-12,
            "delivery must not improve with more faults: {:?}",
            carat.points
        );
    }
    let worst = carat.points.last().unwrap().1;
    assert!(
        worst > 0.5 && worst < 1.0,
        "worst-case delivery degraded but survivable: {worst}"
    );

    // The sustained hang window at the top rates engages the watchdog,
    // and every fire leads to a reset.
    let fires = fig.headline("carat_watchdog_fires_r100").unwrap();
    let resets = fig.headline("carat_resets_r100").unwrap();
    assert!(fires >= 1.0, "watchdog must fire at the max rate");
    assert_eq!(fires, resets, "each confirmed hang ends in one reset");

    // Recovery latency is watchdog-bounded: transient stalls clear in a
    // couple of ticks, the sustained hang within the injected window.
    let p95 = fig.headline("carat_recovery_p95_ticks").unwrap();
    let max = fig.headline("carat_recovery_max_ticks").unwrap();
    assert!(p95 <= 4.0, "transient stalls clear quickly: p95={p95}");
    assert!(max <= 128.0, "watchdog bounds the worst stall: max={max}");
    assert!(max >= p95);

    // The stall-length CDF is a proper monotone CDF ending at 1.
    let latency = &figs[1];
    assert_eq!(latency.id, "resilience-latency");
    for s in &latency.series {
        assert!(!s.points.is_empty());
        assert!((s.points.last().unwrap().1 - 1.0).abs() < 1e-9);
        for w in s.points.windows(2) {
            assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1, "CDF monotone");
        }
    }
}

#[test]
fn resilience_output_is_deterministic() {
    let a = figures::resilience();
    let b = figures::resilience();
    assert_eq!(a.len(), b.len());
    for (fa, fb) in a.iter().zip(&b) {
        assert_eq!(fa.render_csv(), fb.render_csv(), "{}", fa.id);
        assert_eq!(fa.render_text(), fb.render_text(), "{}", fa.id);
    }
}

#[test]
fn smp_correctness_invariants_hold_at_paper_scale() {
    // Timing asserts are gated inside smp() (they need a quiet multi-core
    // host); what must hold everywhere is correctness: zero stale admits
    // under the revoke/grant storm, exact TLB reconciliation, and one
    // snapshot publish per table write. smp() asserts those internally;
    // here we additionally pin the figure's shape and the headline values.
    let fig = figures::smp();
    assert_eq!(fig.id, "smp");
    for label in [
        "checkrate_mutex",
        "checkrate_snapshot",
        "checkrate_snapshot_tlb",
        "mq_tx_mutex",
        "mq_tx_snapshot_tlb",
    ] {
        let s = fig
            .series(label)
            .unwrap_or_else(|| panic!("missing {label}"));
        assert!(!s.points.is_empty());
        assert!(
            s.points.iter().all(|&(_, y)| y > 0.0),
            "{label} has dead points"
        );
    }
    assert_eq!(fig.headline("stale_admits"), Some(0.0));
    let hits = fig.headline("tlb_hits").unwrap();
    let misses = fig.headline("tlb_misses").unwrap();
    let guards = fig.headline("mq_guard_calls").unwrap();
    assert_eq!(hits + misses, guards, "TLB counters must reconcile");
    assert!(
        hits > misses,
        "steady-state TX must be TLB-hit dominated ({hits} hits vs {misses} misses)"
    );
    // The JSON rendering is well-formed enough for line-based checks and
    // includes every headline.
    let json = fig.render_json();
    assert!(json.contains("\"stale_admits\": 0"));
    assert!(json.contains("\"id\": \"smp\""));
}

#[test]
fn exec_engines_agree_and_guard_accounting_reconciles() {
    // Timing asserts (the >=3x bytecode speedup) are gated inside exec()
    // to quick mode on a release build; the correctness invariants —
    // identical ExecStats, byte-identical ring/frame/stats memory, exact
    // per-site trace reconciliation — are asserted unconditionally inside
    // exec() on every run. Here we pin the figure's shape and the
    // headline arithmetic.
    let fig = figures::exec();
    assert_eq!(fig.id, "exec");

    let series = fig
        .series("ns_per_packet")
        .expect("ns_per_packet series present");
    assert_eq!(
        series.points.len(),
        4,
        "tree/bytecode x guarded/baseline = 4 bars"
    );
    assert!(series.points.iter().all(|&(_, y)| y > 0.0));

    let gpp = fig.headline("guards_per_packet").unwrap();
    assert_eq!(gpp, 10.0, "mini-e1000e TX path is 10 guarded accesses");
    let dynamic = fig.headline("dynamic_guards").unwrap();
    assert!(dynamic > 0.0);
    assert_eq!(
        dynamic % gpp,
        0.0,
        "every packet takes the full guarded path"
    );
    assert!(
        fig.headline("fused_superinstructions").unwrap() > 0.0,
        "lowering must fuse adjacent guard+access pairs"
    );
    // Per-site trace attribution reconciles with the policy counter.
    let profiled = fig.headline("profiled_checks").unwrap();
    assert!(profiled > 0.0);
    assert!(fig.headline("profiled_sites").unwrap() >= 10.0);
    // All four ns/pkt headlines present and positive.
    for h in [
        "tree_guarded_ns_pkt",
        "bytecode_guarded_ns_pkt",
        "tree_baseline_ns_pkt",
        "bytecode_baseline_ns_pkt",
    ] {
        assert!(fig.headline(h).unwrap() > 0.0, "{h}");
    }
    // JSON rendering carries the machine-readable results.
    let json = fig.render_json();
    assert!(json.contains("\"id\": \"exec\""));
    assert!(json.contains("\"guards_per_packet\""));
}

#[test]
fn soak_supervised_dominates_and_upgrade_is_lossless() {
    // The hard correctness claims — supervised >= baseline at every
    // rate, exact per-site trace reconciliation through restarts, zero
    // dropped/duplicated frames and zero stale admits across the live
    // upgrade — are asserted unconditionally inside soak() on every run.
    // Here we pin the figure's shape and the headline arithmetic.
    let fig = figures::soak();
    assert_eq!(fig.id, "soak");

    let sup = fig.series("supervised").unwrap();
    let base = fig.series("baseline").unwrap();
    assert_eq!(sup.points.len(), base.points.len());
    for (s, b) in sup.points.iter().zip(&base.points) {
        assert_eq!(s.0, b.0, "same rate grid");
        assert!(
            s.1 + 1e-9 >= b.1,
            "supervised must dominate at rate {}: {} < {}",
            s.0,
            s.1,
            b.1
        );
    }
    // The top storm rate separates the two fleets and forces restarts.
    let top = sup.points.last().unwrap();
    let top_base = base.points.last().unwrap();
    assert!(top.1 > top_base.1, "strict win under the worst storm");
    let pm = (top.0 * 1000.0).round() as u64;
    assert!(fig.headline(&format!("super_restarts_r{pm}")).unwrap() >= 1.0);

    // Live upgrade: lossless, no duplicates, no stale admits, epoch
    // advanced, and the wedged backlog actually exercised migration.
    assert_eq!(fig.headline("upgrade_missing"), Some(0.0));
    assert_eq!(fig.headline("upgrade_duplicates"), Some(0.0));
    assert_eq!(fig.headline("upgrade_stale_admits"), Some(0.0));
    assert!(fig.headline("upgrade_generation_delta").unwrap() >= 1.0);
    assert!(fig.headline("upgrade_migrated").unwrap() > 0.0);
    assert_eq!(
        fig.headline("upgrade_delivered"),
        fig.headline("upgrade_expected")
    );

    // The recovery-latency CDF is a proper monotone CDF.
    let cdf = fig
        .series(&format!("recovery-cdf-r{pm}"))
        .expect("recovery CDF present at the top rate");
    assert!(cdf.points.len() >= 2);
    for w in cdf.points.windows(2) {
        assert!(w[0].0 <= w[1].0 && w[0].1 <= w[1].1, "CDF monotone");
    }
    assert!((cdf.points.last().unwrap().1 - 1.0).abs() < 1e-9);
}

#[test]
fn jit_figure_shape_and_promotion_audits() {
    // Timing asserts (the >=2x guard-overhead reduction on TX and
    // forwarding) are gated inside jit() to the quick smoke run on a
    // release build; the correctness invariants — identical ExecStats
    // and ring/frame/@stats/TDT bytes across general and promoted,
    // every steady-state guard answered inline with zero deopts, exact
    // traced-pass reconciliation, atomic drop on epoch bump with
    // re-promotion via tick() — are asserted unconditionally inside
    // jit() on every run. Here we pin the figure's shape and headline
    // arithmetic.
    let fig = figures::jit();
    assert_eq!(fig.id, "jit");

    // Three timed configurations per datapath: baseline / general /
    // promoted, for the interpreter TX path and the native forwarder.
    for label in ["tx_ns_per_packet", "fwd_ns_per_frame"] {
        let s = fig
            .series(label)
            .unwrap_or_else(|| panic!("missing {label}"));
        assert_eq!(s.points.len(), 3, "{label}");
        assert!(s.points.iter().all(|&(_, y)| y > 0.0), "{label}");
    }

    // Promotion really happened and carried the whole steady state.
    assert!(fig.headline("vm_promoted_ops").unwrap() > 0.0);
    let admits = fig.headline("vm_inline_admits").unwrap();
    assert!(admits > 0.0);
    assert_eq!(fig.headline("vm_inline_deopts"), Some(0.0));
    assert_eq!(
        fig.headline("vm_guards_per_packet").unwrap(),
        10.0,
        "mini-e1000e TX path is 10 guarded accesses"
    );
    assert!(fig.headline("vm_traced_checks").unwrap() > 0.0);

    // Invalidation: the epoch bump advanced the generation at least once.
    assert!(fig.headline("bump_generation_delta").unwrap() >= 1.0);

    // Native datapath: the hot tier admitted inline, never deopted in
    // steady state, and promotion preseeded the guard TLB.
    assert!(fig.headline("fwd_inline_admits").unwrap() > 0.0);
    assert_eq!(fig.headline("fwd_inline_deopts"), Some(0.0));
    assert!(fig.headline("tlb_preseeded").unwrap() > 0.0);

    // Reduction headlines reconcile with the plotted overheads (the
    // residual is floored at 1 ns inside jit()).
    for (reduction, series) in [
        ("vm_overhead_reduction", "tx_ns_per_packet"),
        ("fwd_overhead_reduction", "fwd_ns_per_frame"),
    ] {
        let r = fig.headline(reduction).unwrap();
        assert!(r > 0.0 && r.is_finite(), "{reduction}: {r}");
        let pts = &fig.series(series).unwrap().points;
        let general_over = (pts[1].1 - pts[0].1).max(0.0);
        let promoted_over = (pts[2].1 - pts[0].1).max(0.0);
        assert!(
            (r - general_over / promoted_over.max(1.0)).abs() < 1e-9,
            "{reduction} must reconcile: {r}"
        );
    }

    // The machine-readable rendering carries the results.
    let json = fig.render_json();
    assert!(json.contains("\"id\": \"jit\""));
    assert!(json.contains("\"vm_overhead_reduction\""));
    assert!(json.contains("\"tlb_preseeded\""));
}

#[test]
fn forward_figure_shape_and_audits() {
    // The hard claims — byte-identical forwarded frames, identical
    // baseline/guarded ForwardReports, exact per-queue ledger audits,
    // RX+TX trace reconciliation, zero stale admits across the mid-load
    // epoch bump, and tree/bytecode equivalence of @fwd_rewrite — are
    // asserted unconditionally inside forward() on every run. Here we
    // pin the figure's shape and headline arithmetic.
    let fig = figures::forward();
    assert_eq!(fig.id, "forward");

    // Rate-vs-offered-load series for both builds, on the same grid.
    let guarded = fig.series("guarded").unwrap();
    let baseline = fig.series("baseline").unwrap();
    assert_eq!(guarded.points.len(), baseline.points.len());
    assert!(guarded.points.len() >= 2);
    for (g, b) in guarded.points.iter().zip(&baseline.points) {
        assert_eq!(g.0, b.0, "same offered-load grid");
        assert!(g.1 > 0.0 && b.1 > 0.0);
    }
    // Guards cost something: baseline wins at the top load (min-of-
    // repeats keeps this stable across hosts).
    let slowdown = fig
        .headlines
        .iter()
        .find(|(k, _)| k.starts_with("guard_slowdown_o"))
        .map(|&(_, v)| v)
        .expect("slowdown headline");
    assert!(
        slowdown > 1.0,
        "guarded forwarding must be slower: {slowdown}"
    );

    // Multi-queue scaling: one point per queue count, all productive.
    let mq = fig.series("mq-scaling").unwrap();
    assert!(mq.points.len() >= 2);
    assert!(mq.points.iter().all(|&(_, y)| y > 0.0));

    // Audited invariants surface as headlines.
    assert_eq!(fig.headline("churn_stale_admits"), Some(0.0));
    assert!(fig.headline("churn_generation_delta").unwrap() > 0.0);
    assert!(fig.headline("byte_identical_frames").unwrap() > 0.0);
    assert!(fig.headline("traced_guard_calls").unwrap() > 0.0);
    assert!(fig.headline("traced_sites").unwrap() >= 5.0);
    assert!(fig.headline("ir_guards_per_rewrite").unwrap() > 0.0);
    assert!(
        fig.headline("traced_polls_per_irq").unwrap() >= 1.0,
        "every ISR entry leads to at least one poll pass"
    );

    // The machine-readable rendering carries the results.
    let json = fig.render_json();
    assert!(json.contains("\"id\": \"forward\""));
    assert!(json.contains("\"churn_stale_admits\": 0"));
}

#[test]
fn fleet_figure_shape_and_audits() {
    // The hard claims — frozen-store/linear-scan parity across store
    // kinds, exact per-tenant guard reconciliation, zero stale admits
    // across the fleet-wide upgrade storm, 64/64 insmod-storm commits,
    // per-site trace reconciliation — are asserted unconditionally
    // inside fleet() on every run (the latency-ratio bounds are gated
    // to the quick multi-core smoke run). Here we pin the figure's
    // shape and headline arithmetic.
    let fig = figures::fleet();
    assert_eq!(fig.id, "fleet");

    // The p99 sweep: all three store series on the same module grid,
    // from a single module up to fleet scale.
    let flat = fig.series("flat-scan").unwrap();
    let sorted = fig.series("frozen-sorted").unwrap();
    let interval = fig.series("frozen-interval").unwrap();
    assert!(flat.points.len() >= 4);
    assert_eq!(flat.points.len(), sorted.points.len());
    assert_eq!(flat.points.len(), interval.points.len());
    for ((f, s), i) in flat.points.iter().zip(&sorted.points).zip(&interval.points) {
        assert_eq!(f.0, s.0, "same module grid");
        assert_eq!(f.0, i.0, "same module grid");
        assert!(f.1 > 0.0 && s.1 > 0.0 && i.1 > 0.0);
    }
    assert_eq!(flat.points.first().unwrap().0, 1.0);
    assert!(flat.points.last().unwrap().0 >= 256.0);

    // The scaling separation: the flat scan degrades super-linearly
    // (asserted >= 10x inside fleet()); at the top of the sweep it
    // must sit far above both frozen indexes.
    assert!(fig.headline("flat_p99_growth_1_to_256").unwrap() >= 10.0);
    let top = flat.points.last().unwrap().1;
    assert!(top > 4.0 * sorted.points.last().unwrap().1);
    assert!(top > 4.0 * interval.points.last().unwrap().1);

    // MQ fleet throughput: every fleet size forwards productively.
    let mq = fig.series("mq-fleet").unwrap();
    assert!(mq.points.len() >= 2);
    assert!(mq.points.iter().all(|&(_, y)| y > 0.0));

    // Audited invariants surface as headlines.
    assert_eq!(fig.headline("storm_stale_admits"), Some(0.0));
    assert!(fig.headline("storm_registrations").unwrap() > 0.0);
    assert_eq!(fig.headline("insmod_storm_modules"), Some(64.0));
    assert!(fig.headline("insmod_check_p99_before_ns").unwrap() > 0.0);
    assert!(fig.headline("insmod_check_p99_during_ns").unwrap() > 0.0);
    assert!(fig.headline("traced_tenant_guard_calls").unwrap() > 0.0);
    let r1 = fig.headline("fleet_fwd_rate_f1").unwrap();
    assert!(r1 > 0.0);

    // The machine-readable rendering carries the results.
    let json = fig.render_json();
    assert!(json.contains("\"id\": \"fleet\""));
    assert!(json.contains("\"storm_stale_admits\": 0"));
}

#[test]
fn renders_are_nonempty_and_csv_parses() {
    for fig in [figures::fig6(), figures::claims()]
        .into_iter()
        .chain(figures::resilience())
    {
        let text = fig.render_text();
        assert!(text.contains(&fig.id.to_uppercase()));
        let csv = fig.render_csv();
        assert!(csv.starts_with("series,x,y"));
        for line in csv.lines().skip(1) {
            assert_eq!(line.split(',').count(), 3, "bad csv line: {line}");
        }
    }
}
