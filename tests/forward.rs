//! End-to-end: the echo/forwarding datapath survives a quarantine.
//!
//! A guarded forwarding worker (RX DMA → NAPI polls → parse → rewrite →
//! TX) and a multi-queue guarded TX fleet run concurrently over one
//! shared policy module while a rootkit-style module probes forbidden
//! memory from the interpreter (engine selected by `KOP_ENGINE`, so the
//! bytecode CI leg exercises the same scenario). The offender must be
//! quarantined mid-run; forwarding and TX must not drop, duplicate, or
//! reorder a single frame, proven by ledger audit.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::{KernelError, Size, VAddr};
use carat_kop::e1000e::device::E1000Device;
use carat_kop::e1000e::{mq, DirectMem, E1000Driver, GuardedMem};
use carat_kop::interp::{Engine, Interp};
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::net::{FlowGen, LedgerSink};
use carat_kop::policy::{PolicyModule, ViolationAction};

/// A scanner that reads one forbidden word per call — the same shape as
/// the credscan rootkit, kept minimal: violation budget is 3, so the
/// third call quarantines it.
const PROBE_SRC: &str = r#"
module "probe"
define i64 @peek(i64 %addr) {
entry:
  %p = inttoptr i64 %addr to ptr
  %w = load i64, ptr %p
  ret i64 %w
}
"#;

const SECRET_ADDR: u64 = 0x0060_0000;
const CHUNKS: u64 = 8;
const PER_CHUNK: u64 = 120;
const FLOWS: usize = 256;
const BUDGET: u64 = 64;
const MQ_QUEUES: usize = 2;
const MQ_FRAMES: u64 = 400;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

#[test]
fn forwarding_continues_through_a_concurrent_quarantine() {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);

    let mut kernel = Kernel::boot(policy.clone(), vec![key()], KernelConfig::default());
    kernel
        .mem
        .write_uint(VAddr(SECRET_ADDR), Size(8), 0xdead_beef_cafe_f00d)
        .expect("plant secret");
    let module = parse_module(PROBE_SRC).expect("parse");
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).expect("compile");
    kernel.insmod(&out.signed).expect("insmod");

    // Forwarding-side progress counter so the main thread can seed the
    // violation genuinely mid-run (after some forwarding, before it ends).
    let fwd_progress = Arc::new(AtomicU64::new(0));

    let (fwd, mq_report, quarantined_after) = std::thread::scope(|s| {
        // The echo/forwarding worker: its own NIC, the shared policy.
        let fwd_handle = {
            let policy = Arc::clone(&policy);
            let progress = Arc::clone(&fwd_progress);
            s.spawn(move || {
                let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy);
                let mut drv = E1000Driver::probe(mem).expect("probe fwd");
                drv.up().expect("up fwd");
                let mut gen = FlowGen::new(4_242, FLOWS);
                let mut ledger = LedgerSink::new();
                let mut forwarded = 0u64;
                let mut dropped = 0u64;
                for _ in 0..CHUNKS {
                    let rep = carat_kop::net::run_forward(
                        &mut drv,
                        &mut gen,
                        &mut ledger,
                        PER_CHUNK,
                        BUDGET,
                    )
                    .expect("forwarding must keep working through the quarantine");
                    assert_eq!(rep.forwarded, rep.accepted);
                    forwarded += rep.forwarded;
                    dropped += rep.wire_dropped;
                    progress.fetch_add(1, Ordering::SeqCst);
                }
                let guard_calls = drv.counts().guard_calls;
                (forwarded, dropped, ledger, guard_calls)
            })
        };

        // The multi-queue TX fleet, sharing the same policy module.
        let mq_handle = {
            let policy = Arc::clone(&policy);
            s.spawn(move || {
                mq::run_mq_tx(MQ_QUEUES, MQ_FRAMES, 256, |_q| Arc::clone(&policy))
                    .expect("mq tx under shared policy")
            })
        };

        // Main thread: wait until forwarding is demonstrably underway,
        // then exhaust the probe module's violation budget.
        while fwd_progress.load(Ordering::SeqCst) < 2 {
            std::thread::yield_now();
        }
        let mut quarantined_after = None;
        {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(Engine::from_env());
            for attempt in 1u32..=3 {
                match interp.call("probe", "peek", &[SECRET_ADDR]) {
                    Ok(Some(w)) => {
                        assert_eq!(w, 0, "squashed probe must never see the secret");
                        assert!(attempt < 3, "budget must be exhausted by the third probe");
                    }
                    Err(KernelError::ModuleQuarantined { module, violation }) => {
                        assert_eq!(module, "probe");
                        assert_eq!(violation.addr, VAddr(SECRET_ADDR));
                        quarantined_after = Some(attempt);
                    }
                    other => panic!("unexpected probe outcome: {other:?}"),
                }
            }
        }

        let fwd = fwd_handle.join().expect("forwarding worker");
        let mq_report = mq_handle.join().expect("mq tx worker");
        (fwd, mq_report, quarantined_after)
    });

    // The offender died mid-run; the kernel did not.
    assert_eq!(quarantined_after, Some(3), "third probe quarantines");
    assert!(kernel.panicked().is_none());
    kernel.check_alive().expect("kernel keeps running");
    assert!(kernel.is_quarantined("probe"));
    assert!(kernel.module("probe").is_none(), "offender unloaded");

    // Forwarding never missed a beat: exact ledger audit across every
    // chunk, spanning the quarantine.
    let (forwarded, dropped, ledger, fwd_guards) = fwd;
    assert!(forwarded > 0);
    assert_eq!(ledger.frames, forwarded, "every forwarded frame delivered");
    assert_eq!(ledger.duplicates, 0, "zero duplicated frames");
    assert_eq!(ledger.unsequenced, 0);
    assert_eq!(
        ledger.missing(CHUNKS * PER_CHUNK).len() as u64,
        dropped,
        "every missing sequence is a counted wire drop"
    );

    // The TX fleet delivered everything it offered.
    assert_eq!(mq_report.delivered(), MQ_QUEUES as u64 * MQ_FRAMES);

    // Every guard from both datapaths (and the probe's squashed
    // accesses) reached the one shared policy.
    assert!(fwd_guards > 0 && mq_report.guard_calls() > 0);
    assert!(policy.stats().checks >= fwd_guards + mq_report.guard_calls());
    assert_eq!(kernel.violation_count("probe"), 3, "budget recorded");
}

#[test]
fn forwarding_is_engine_independent_under_the_shared_policy() {
    // The forwarding datapath itself is native, but CI runs this test
    // under both KOP_ENGINE settings; pin that the selected engine and a
    // forwarding run coexist on one policy with exact reconciliation.
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let before = policy.stats().checks;
    let mem = GuardedMem::new(
        DirectMem::with_defaults(E1000Device::default()),
        Arc::clone(&policy),
    );
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let mut gen = FlowGen::new(7, 64);
    let mut ledger = LedgerSink::new();
    let rep = carat_kop::net::run_forward(&mut drv, &mut gen, &mut ledger, 200, 32).expect("fwd");
    assert_eq!(rep.forwarded, rep.accepted);
    assert_eq!(ledger.duplicates, 0);
    assert_eq!(
        policy.stats().checks - before,
        drv.counts().guard_calls,
        "policy saw exactly the driver's guards"
    );
}
