//! Per-module policies: two modules in the same kernel with different
//! firewalls — §5's "determine if a *given* kernel module has access",
//! applied to both memory regions and privileged intrinsics.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, intrinsic_id, CompileOptions, CompilerKey};
use carat_kop::core::{Protection, Region, Size, VAddr};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyModule, ViolationAction};

const POKER_A: &str = r#"
module "driver-a"
define void @poke(ptr %p) {
entry:
  store i64 0xa, ptr %p
  ret void
}
"#;

const POKER_B: &str = r#"
module "driver-b"
declare void @__wrmsr(i64, i64)
define void @poke(ptr %p) {
entry:
  store i64 0xb, ptr %p
  ret void
}
define void @tune() {
entry:
  call void @__wrmsr(i64 0x1A0, i64 1)
  ret void
}
"#;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "per-module")
}

fn region(base: u64, len: u64) -> Region {
    Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
}

#[test]
fn two_modules_two_firewalls() {
    // Global policy: deny everything (so an un-overridden module can do
    // nothing). Two overrides: A may touch page P_A, B may touch P_B.
    let global = Arc::new(PolicyModule::new());
    let mut kernel = Kernel::boot(global, vec![key()], KernelConfig::default());

    let a_page = kop_core::layout::DIRECT_MAP_BASE + 0x10_0000;
    let b_page = kop_core::layout::DIRECT_MAP_BASE + 0x20_0000;

    let policy_a = Arc::new(PolicyModule::new());
    policy_a.set_violation_action(ViolationAction::LogAndDeny);
    policy_a.add_region(region(a_page, 0x1000)).unwrap();
    let policy_b = Arc::new(PolicyModule::new());
    policy_b.set_violation_action(ViolationAction::LogAndDeny);
    policy_b.add_region(region(b_page, 0x1000)).unwrap();
    policy_b.allow_intrinsic(intrinsic_id("__wrmsr").unwrap());

    let out_a = compile_module(
        parse_module(POKER_A).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .unwrap();
    let out_b = compile_module(
        parse_module(POKER_B).unwrap(),
        &CompileOptions::carat_kop_privileged(),
        &key(),
    )
    .unwrap();
    kernel.insmod(&out_a.signed).unwrap();
    kernel.insmod(&out_b.signed).unwrap();
    kernel.set_module_policy("driver-a", policy_a.clone());
    kernel.set_module_policy("driver-b", policy_b.clone());

    let mut interp = Interp::new(&mut kernel).unwrap();
    // A writes its own page: lands. A writes B's page: squashed.
    interp.call("driver-a", "poke", &[a_page]).unwrap();
    interp.call("driver-a", "poke", &[b_page]).unwrap();
    // B writes its own page: lands. B writes A's page: squashed.
    interp.call("driver-b", "poke", &[b_page]).unwrap();
    interp.call("driver-b", "poke", &[a_page]).unwrap();
    drop(interp);

    assert_eq!(kernel.mem.read_uint(VAddr(a_page), Size(8)).unwrap(), 0xa);
    assert_eq!(kernel.mem.read_uint(VAddr(b_page), Size(8)).unwrap(), 0xb);
    assert_eq!(policy_a.violation_log().len(), 1, "A denied once");
    assert_eq!(policy_b.violation_log().len(), 1, "B denied once");
    // The global policy never saw a check from either module.
    assert_eq!(kernel.policy().stats().checks, 0);
}

#[test]
fn intrinsic_grants_are_per_module_too() {
    let global = Arc::new(PolicyModule::new());
    global.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(global.clone(), vec![key()], KernelConfig::default());
    let out_b = compile_module(
        parse_module(POKER_B).unwrap(),
        &CompileOptions::carat_kop_privileged(),
        &key(),
    )
    .unwrap();
    kernel.insmod(&out_b.signed).unwrap();

    // Without an override, the global policy has no grant: panic.
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        assert!(interp.call("driver-b", "tune", &[]).is_err());
    }
    assert!(kernel.panicked().is_some());

    // Fresh kernel with a per-module grant: runs.
    let mut kernel = Kernel::boot(global, vec![key()], KernelConfig::default());
    kernel.insmod(&out_b.signed).unwrap();
    let pb = Arc::new(PolicyModule::new());
    pb.set_default_action(DefaultAction::Allow);
    pb.allow_intrinsic(intrinsic_id("__wrmsr").unwrap());
    kernel.set_module_policy("driver-b", pb);
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.call("driver-b", "tune", &[]).unwrap();
    drop(interp);
    assert_eq!(kernel.rdmsr(0x1A0), 1);
}

#[test]
fn clearing_override_falls_back_to_global() {
    let global = Arc::new(PolicyModule::new());
    global.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(global.clone(), vec![key()], KernelConfig::default());
    let out = compile_module(
        parse_module(POKER_A).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .unwrap();
    kernel.insmod(&out.signed).unwrap();
    let tight = Arc::new(PolicyModule::new());
    tight.set_violation_action(ViolationAction::LogAndDeny);
    kernel.set_module_policy("driver-a", tight.clone());

    let target = kop_core::layout::DIRECT_MAP_BASE + 0x30_0000;
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.call("driver-a", "poke", &[target]).unwrap(); // squashed
    }
    assert_eq!(kernel.mem.read_uint(VAddr(target), Size(8)).unwrap(), 0);
    assert!(kernel.clear_module_policy("driver-a"));
    assert!(!kernel.clear_module_policy("driver-a"));
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.call("driver-a", "poke", &[target]).unwrap(); // now global allow
    }
    assert_eq!(kernel.mem.read_uint(VAddr(target), Size(8)).unwrap(), 0xa);
}
