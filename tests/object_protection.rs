//! §5 extension, end to end: guarding file-system metadata (inodes) and
//! IPC message queues from kernel modules — "By delineating and then
//! guarding the memory addresses that contain the mapping and access
//! control details of specific files, CARAT KOP could effectively prevent
//! unauthorized file operations by a kernel module."

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::error::ViolationKind;
use carat_kop::core::{KernelError, Protection, Region, Size};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::objects::{INODE_MODE_OFF, MQ_HEADER_SIZE};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyModule, ViolationAction};

/// A module that, handed an inode address, makes the file world-writable
/// (a classic privilege-escalation step), and one that injects a message
/// into an IPC queue.
const TAMPER_SRC: &str = r#"
module "tamper"
define void @chmod777(ptr %inode) {
entry:
  store i64 511, ptr %inode
  ret void
}
define i64 @read_mode(ptr %inode) {
entry:
  %m = load i64, ptr %inode
  ret i64 %m
}
define void @inject_msg(ptr %slot, i64 %word) {
entry:
  store i64 %word, ptr %slot
  ret void
}
"#;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "objects")
}

fn booted(policy: Arc<PolicyModule>) -> Kernel {
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = parse_module(TAMPER_SRC).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    kernel
}

#[test]
fn unguarded_inode_tamper_succeeds_without_policy() {
    // Control: default-allow policy → the module can chmod anything.
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = booted(policy);
    let f = kernel.vfs_create("/etc/shadow", 0o600, 0).unwrap();
    let inode_mode = f.inode + INODE_MODE_OFF;
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp
        .call("tamper", "chmod777", &[inode_mode.raw()])
        .unwrap();
    assert_eq!(kernel.vfs_mode("/etc/shadow").unwrap(), 0o777);
}

#[test]
fn inode_region_rule_blocks_chmod_but_allows_read() {
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = booted(policy.clone());
    let f = kernel.vfs_create("/etc/shadow", 0o600, 0).unwrap();

    // Firewall rule: the inode is read-only for modules. One rule — "no
    // specific shared-state algorithms", exactly as §5 promises.
    policy
        .add_region(
            Region::new(
                f.inode,
                Size(carat_kop::kernel::objects::INODE_SIZE),
                Protection::READ_ONLY,
            )
            .unwrap(),
        )
        .unwrap();

    // Reading the mode is fine.
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let mode = interp
            .call("tamper", "read_mode", &[f.inode.raw()])
            .unwrap();
        assert_eq!(mode, Some(0o600));
    }
    // Chmod is a write → blocked, kernel panics (production mode).
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let err = interp
            .call("tamper", "chmod777", &[f.inode.raw()])
            .unwrap_err();
        match err {
            KernelError::Panic { violation, .. } => {
                let v = violation.unwrap();
                assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
                assert_eq!(v.addr, f.inode);
            }
            other => panic!("expected panic, got {other}"),
        }
    }
    // The file's permissions never changed.
    assert_eq!(
        kernel
            .mem
            .read_uint(f.inode + INODE_MODE_OFF, Size(8))
            .unwrap(),
        0o600
    );
}

#[test]
fn ipc_queue_rule_blocks_message_injection() {
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    policy.set_violation_action(ViolationAction::LogAndDeny);
    let mut kernel = booted(policy.clone());
    let q = kernel.ipc_create("audit-events", 8, 8).unwrap();

    // Guard the whole queue (header + slots) against module writes.
    policy
        .add_region(
            Region::new(
                q.header,
                Size(MQ_HEADER_SIZE + q.capacity * q.elem_size),
                Protection::READ_ONLY,
            )
            .unwrap(),
        )
        .unwrap();

    // A legitimate kernel-side message goes through (trusted path).
    kernel.ipc_send("audit-events", b"genuine").unwrap();

    // The module tries to forge a message directly into slot 1.
    let slot1 = q.header + MQ_HEADER_SIZE + q.elem_size;
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp
        .call("tamper", "inject_msg", &[slot1.raw(), 0x6567_726f_6621]) // "!forge"
        .unwrap(); // deny-mode squashes, doesn't panic
    drop(interp);

    // The forged bytes never landed.
    assert_eq!(kernel.mem.read_uint(slot1, Size(8)).unwrap(), 0);
    assert_eq!(policy.violation_log().len(), 1);
    // And the genuine message is intact.
    let msg = kernel.ipc_recv("audit-events").unwrap();
    assert_eq!(&msg[..7], b"genuine");
}

#[test]
fn per_file_granularity() {
    // Byte-granular rules (§2: "protection is possible down to individual
    // bytes"): protect only /etc/shadow's inode; /tmp/scratch stays
    // writable.
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = booted(policy.clone());
    let shadow = kernel.vfs_create("/etc/shadow", 0o600, 0).unwrap();
    let scratch = kernel.vfs_create("/tmp/scratch", 0o644, 1000).unwrap();
    policy
        .add_region(
            Region::new(
                shadow.inode,
                Size(carat_kop::kernel::objects::INODE_SIZE),
                Protection::READ_ONLY,
            )
            .unwrap(),
        )
        .unwrap();
    // Scratch chmod succeeds…
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp
            .call("tamper", "chmod777", &[scratch.inode.raw()])
            .unwrap();
    }
    assert_eq!(kernel.vfs_mode("/tmp/scratch").unwrap(), 0o777);
    // …shadow chmod panics.
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert!(interp
        .call("tamper", "chmod777", &[shadow.inode.raw()])
        .is_err());
    assert!(kernel.panicked().is_some());
}
