//! End-to-end SMP guard path: a TLB-fronted guarded driver transmits
//! while every counter — guard stats, TLB hits/misses, snapshot
//! publishes, dropped log entries — flows into the tracer's unified
//! registry and out through the `/dev/trace` control protocol, and the
//! books balance exactly.

use std::sync::Arc;

use kop_e1000e::device::CountSink;
use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem};
use kop_policy::PolicyModule;
use kop_trace::{control, Tracer};

#[test]
fn tlb_counters_flow_through_dev_trace_and_reconcile() {
    let pm = Arc::new(PolicyModule::two_region_paper_policy());
    let tracer = Tracer::new();
    // All policy counters (guard stats + snapshot publishes + dropped
    // log entries) into the tracer's registry, as the kernel does at
    // boot; with_tlb_and_tracer adds the TLB's hit/miss cells.
    pm.register_counters(tracer.counters());
    let mem = GuardedMem::with_tlb_and_tracer(
        DirectMem::with_defaults(E1000Device::default()),
        Arc::clone(&pm),
        Arc::clone(&tracer),
    );

    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let mut sink = CountSink::default();
    let payload = [0u8; 114];
    for _ in 0..200 {
        drv.xmit_and_flush([0xffu8; 6], 0x88b5, &payload, &mut sink)
            .expect("xmit");
    }
    let guard_calls = drv.counts().guard_calls;
    assert!(guard_calls > 0);

    // A policy mutation mid-run: bumps the publish counter and flushes
    // the TLB via generation bump; traffic keeps flowing afterwards.
    pm.add_region(
        kop_core::Region::new(
            kop_core::VAddr(0x1000),
            kop_core::Size(0x1000),
            kop_core::Protection::READ_ONLY,
        )
        .unwrap(),
    )
    .unwrap();
    for _ in 0..50 {
        drv.xmit_and_flush([0xffu8; 6], 0x88b5, &payload, &mut sink)
            .expect("xmit after publish");
    }
    let guard_calls = drv.counts().guard_calls;

    // Read everything back through the /dev/trace control protocol.
    let text = control::handle(&tracer, "counters").expect("counters view");
    let value = |name: &str| -> u64 {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name}=")))
            .unwrap_or_else(|| panic!("{name} missing from counters view:\n{text}"))
            .trim()
            .parse()
            .expect("counter value")
    };

    let hits = value("policy.tlb.hits");
    let misses = value("policy.tlb.misses");
    let publishes = value("policy.snapshot_publishes");
    let dropped = value("policy.log_dropped");

    // Exact reconciliation: every guard the driver issued was either a
    // TLB hit or a TLB miss — nothing lost, nothing double-counted.
    assert_eq!(hits + misses, guard_calls);
    assert!(hits > misses, "steady-state TX must be hit-dominated");
    // The mid-run mutation published exactly once (two_region_paper_policy
    // itself published twice while being built).
    assert_eq!(publishes, 3);
    assert_eq!(dropped, 0, "no denials, so nothing can have been dropped");
    // Only the misses reached the policy module's full check path.
    assert_eq!(value("policy.checks"), misses);

    // The driver's view agrees with the TLB's own cells.
    let tlb = drv.mem_ref().policy().tlb();
    assert_eq!(tlb.hits(), hits);
    assert_eq!(tlb.misses(), misses);
}
