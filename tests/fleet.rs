//! FLEET torture: the stall-free loader and the namespaced policy
//! engine under combined load (DESIGN §3.19).
//!
//! The headline test stages 64 module instances concurrently through
//! [`carat_kop::kernel::ModuleStager`] — signature verification, layout
//! sealing, static proof, and guard-site assignment all off the kernel
//! lock — while multi-queue guarded forwarding runs against per-tenant
//! policies resolved through the kernel's sharded `NamespaceStore`.
//! Invariants held throughout:
//!
//! * every staged module commits (64/64 loaded, then callable with live
//!   guards),
//! * every MQ forwarding round's ledger audit is exact (no duplicates,
//!   no unaccounted frames) and its guard calls reconcile one-for-one
//!   against the owning tenants' policy counters,
//! * a fleet-wide revocation issued mid-test reaches every tenant
//!   (zero stale grants observed after the epoch is published).

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc};

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::e1000e::{DirectMem, E1000Device, GuardedMem};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig, Verification};
use carat_kop::net::run_mq_forward;
use carat_kop::policy::PolicyModule;

const STORM_MODULES: usize = 64;
const TENANTS: usize = 4;

/// A module with a handful of guarded accesses — enough that every
/// committed instance exercises the guard path when called.
const STORM_SRC: &str = r#"
module "storm"
define i64 @work(ptr %buf) {
entry:
  store i64 1, ptr %buf
  %p1 = gep i64, ptr %buf, i64 1
  store i64 2, ptr %p1
  %a = load i64, ptr %buf
  %b = load i64, ptr %p1
  %s = add i64 %a, %b
  store i64 %s, ptr %p1
  ret i64 %s
}
"#;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "fleet-torture")
}

fn boot() -> Kernel {
    Kernel::boot(
        Arc::new(PolicyModule::two_region_paper_policy()),
        vec![key()],
        KernelConfig {
            verification: Verification::SignatureAndStatic,
            ..KernelConfig::default()
        },
    )
}

#[test]
fn insmod_storm_under_mq_forwarding_holds_invariants() {
    let out = compile_module(
        parse_module(STORM_SRC).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .unwrap();
    let mut kernel = boot();
    for t in 0..TENANTS {
        kernel.set_module_policy(
            &format!("nic{t}"),
            Arc::new(PolicyModule::two_region_paper_policy()),
        );
    }
    let ns = Arc::clone(kernel.namespaces());
    let stager = Arc::new(kernel.stager());
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let stager_threads = cores.clamp(2, 6);

    let next_idx = AtomicUsize::new(0);
    let revoked = AtomicBool::new(false);
    let (tx, rx) = mpsc::channel();

    let mq_rounds = std::thread::scope(|s| {
        // Stagers: the lock-free two thirds of insmod, in parallel.
        for _ in 0..stager_threads {
            let stager = Arc::clone(&stager);
            let out = &out;
            let next_idx = &next_idx;
            let tx = tx.clone();
            s.spawn(move || loop {
                let i = next_idx.fetch_add(1, Ordering::SeqCst);
                if i >= STORM_MODULES {
                    break;
                }
                let staged = stager
                    .stage(&out.signed, Some(&format!("storm{i}")))
                    .map_err(|e| e.err)
                    .expect("storm module stages clean");
                tx.send(staged).expect("main thread receives");
            });
        }
        drop(tx);

        // Forwarder: MQ rounds against namespaced tenants, concurrent
        // with the storm, continuing past the fleet revocation.
        let forwarder = {
            let ns = Arc::clone(&ns);
            let revoked = &revoked;
            s.spawn(move || {
                let mut rounds = 0u64;
                let mut seen_revoked = false;
                loop {
                    let tenants: Vec<Arc<PolicyModule>> = (0..2)
                        .map(|qi| ns.resolve(&format!("nic{qi}")))
                        .collect();
                    let before: Vec<u64> = tenants.iter().map(|p| p.stats().checks).collect();
                    let report = run_mq_forward(2, 120, 64, 9_000 + rounds, 64, |qi| {
                        GuardedMem::new(
                            DirectMem::with_defaults(E1000Device::default()),
                            Arc::clone(&tenants[qi]),
                        )
                    })
                    .expect("mq round");
                    assert!(report.all_clean(), "round {rounds}: ledger audit");
                    let delta: u64 = tenants
                        .iter()
                        .zip(&before)
                        .map(|(p, b)| p.stats().checks - b)
                        .sum();
                    assert_eq!(
                        delta,
                        report.guard_calls(),
                        "round {rounds}: per-tenant guard reconciliation"
                    );
                    // Once the fleet revocation is published, every
                    // tenant must already carry the bumped epoch — a
                    // stale grant would mean a cache outlived it.
                    if revoked.load(Ordering::SeqCst) {
                        for p in &tenants {
                            assert!(
                                p.revocation_epoch() >= 2,
                                "round {rounds}: tenant missed the fleet revocation"
                            );
                        }
                        seen_revoked = true;
                    }
                    rounds += 1;
                    if seen_revoked && rounds >= 2 {
                        return rounds;
                    }
                }
            })
        };

        // Main thread: the short reserve/commit sections, pipelined as
        // staged modules arrive.
        let mut committed = 0usize;
        for staged in rx {
            let res = kernel.reserve_module(&staged).expect("reserve");
            let lowered = staged.lower(&res, kernel.tracer());
            kernel.commit_module(staged, res, lowered).expect("commit");
            committed += 1;
        }
        assert_eq!(committed, STORM_MODULES);

        // Fleet-wide revocation mid-test: global + every tenant bumped.
        let bumped = kernel.revoke_fleet();
        assert_eq!(bumped, TENANTS + 1);
        revoked.store(true, Ordering::SeqCst);

        forwarder.join().expect("forwarder")
    });
    assert!(mq_rounds >= 2, "forwarding ran alongside the storm");

    // All 64 instances are live modules with working guards.
    assert_eq!(kernel.modules().len(), STORM_MODULES);
    let buf = kernel.kmalloc(4 * 8).expect("buffer");
    for i in [0usize, 17, STORM_MODULES - 1] {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let ret = interp.call(&format!("storm{i}"), "work", &[buf.raw()]).unwrap();
        assert_eq!(ret, Some(3), "storm{i} computes through guarded memory");
        assert!(interp.stats().guards > 0, "storm{i} executed live guards");
    }
}

#[test]
fn namespace_registration_is_monotone_and_falls_back_to_global() {
    let mut kernel = boot();
    let global = Arc::clone(kernel.policy());

    kernel.set_module_policy("a", Arc::new(PolicyModule::two_region_paper_policy()));
    kernel.set_module_policy("b", Arc::new(PolicyModule::two_region_paper_policy()));
    let ns = Arc::clone(kernel.namespaces());
    let ns_a = ns.namespace_of("a").expect("a registered");
    let ns_b = ns.namespace_of("b").expect("b registered");
    assert_ne!(ns_a, ns_b, "tenants get distinct namespace ids");
    assert!(!Arc::ptr_eq(&ns.resolve("a"), &ns.resolve("b")));

    // Re-registration (live upgrade) always gets a fresh id — stale
    // cache tags keyed on the old namespace can never match again.
    kernel.set_module_policy("a", Arc::new(PolicyModule::two_region_paper_policy()));
    let ns_a2 = ns.namespace_of("a").expect("a still registered");
    assert!(ns_a2 > ns_a.max(ns_b), "namespace ids are never reused");

    // Removal falls back to the global policy.
    assert!(kernel.clear_module_policy("b"));
    assert!(!kernel.clear_module_policy("b"), "second removal is a no-op");
    assert!(Arc::ptr_eq(&ns.resolve("b"), &global));
    assert_eq!(ns.len(), 1);
}

#[test]
fn fleet_revocation_reaches_every_tenant_every_time() {
    let mut kernel = boot();
    let tenants: Vec<Arc<PolicyModule>> = (0..8)
        .map(|t| {
            let pm = Arc::new(PolicyModule::two_region_paper_policy());
            kernel.set_module_policy(&format!("mod{t}"), Arc::clone(&pm));
            pm
        })
        .collect();
    let global = Arc::clone(kernel.policy());
    let before: Vec<u64> = tenants.iter().map(|p| p.revocation_epoch()).collect();
    let global_before = global.revocation_epoch();

    assert_eq!(kernel.revoke_fleet(), 9, "8 tenants + the global policy");
    for (p, b) in tenants.iter().zip(&before) {
        assert_eq!(p.revocation_epoch(), b + 1);
    }
    assert_eq!(global.revocation_epoch(), global_before + 1);

    // Revocation is repeatable and monotone.
    assert_eq!(kernel.revoke_fleet(), 9);
    for (p, b) in tenants.iter().zip(&before) {
        assert_eq!(p.revocation_epoch(), b + 2);
    }
    assert_eq!(kernel.namespaces().revocation_count(), 2);
}
