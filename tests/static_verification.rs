//! End-to-end: the static guard-coverage verifier closes the loop at both
//! ends of the pipeline. A hand-stripped guard is refused by the compiler
//! driver (it will not sign what it cannot prove) AND by a loader running
//! in `Verification::Static` mode — in both cases with a KA001 diagnostic
//! naming the offending instruction. Meanwhile everything the guard
//! passes actually produce, optimized or not, verifies cleanly and loads.

use std::sync::Arc;

use carat_kop::analysis::{verify_guard_coverage, LintCode};
use carat_kop::compiler::{
    compile_module, Attestation, CompileError, CompileOptions, CompilerKey, SignedModule,
};
use carat_kop::core::KernelError;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig, Verification};
use carat_kop::policy::PolicyModule;

/// A module whose author guarded the load of `%p` but "forgot" (stripped)
/// the guard for the store through `%out`.
const STRIPPED_SRC: &str = r#"
module "stripped"
declare void @carat_guard(ptr, i64, i32)
define i64 @bump(ptr %p, ptr %out) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %v2 = add i64 %v, 1
  store i64 %v2, ptr %out
  ret i64 %v2
}
"#;

const HONEST_SRC: &str = r#"
module "honest"
global @counter : i64 = 0
define i64 @bump(ptr %p, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %v = load i64, ptr %p
  %v2 = add i64 %v, 1
  store i64 %v2, ptr %p
  %i2 = add i64 %i, 1
  br %head
exit:
  %f = load i64, ptr @counter
  ret i64 %f
}
"#;

fn static_kernel() -> Kernel {
    Kernel::boot(
        Arc::new(PolicyModule::new()),
        vec![CompilerKey::from_passphrase(
            "operator-key",
            "carat-kop-dev",
        )],
        KernelConfig {
            require_signature: false,
            verification: Verification::Static,
            ..KernelConfig::default()
        },
    )
}

#[test]
fn stripped_guard_rejected_by_compiler_driver() {
    let key = CompilerKey::from_passphrase("operator-key", "carat-kop-dev");
    let m = parse_module(STRIPPED_SRC).unwrap();
    // Baseline mode injects nothing, so the driver must notice the module
    // already carries (incomplete) guards and refuse to sign it.
    let err = compile_module(m, &CompileOptions::baseline(), &key).unwrap_err();
    let CompileError::GuardCoverage(report) = err else {
        panic!("expected GuardCoverage, got {err}");
    };
    let unguarded: Vec<_> = report.with_code(LintCode::UnguardedAccess).collect();
    assert_eq!(unguarded.len(), 1);
    let diag = unguarded[0];
    assert_eq!(diag.function, "bump");
    assert_eq!(diag.block, "entry");
    assert!(diag.inst.contains("store"), "{}", diag.inst);
    // Rendered form pinpoints the instruction: "KA001 [error] @bump/entry#3".
    assert!(diag.to_string().contains("@bump/entry#3"), "{diag}");
}

#[test]
fn stripped_guard_rejected_by_static_loader() {
    // The driver refuses to produce this container, so an attacker must
    // hand-assemble it. The Static-mode loader re-proves coverage at
    // insmod and catches it regardless of what the container claims.
    let rogue = CompilerKey::from_passphrase("rogue", "rogue");
    let m = parse_module(STRIPPED_SRC).unwrap();
    let signed = SignedModule::sign(&m, Attestation::check(&m).unwrap(), &rogue);
    let mut kernel = static_kernel();
    let err = kernel.insmod(&signed).unwrap_err();
    let KernelError::StaticVerification(msg) = err else {
        panic!("expected StaticVerification, got {err:?}");
    };
    assert!(msg.contains("KA001"), "{msg}");
    assert!(msg.contains("store"), "{msg}");
    assert!(kernel.module("stripped").is_none());
}

#[test]
fn injected_modules_prove_and_load_in_static_mode() {
    // Whatever the guard passes produce — the paper-default pipeline or
    // the optimized (dedup + hoist) one — proves covered and loads in
    // Static mode even without a trusted signature.
    let rogue = CompilerKey::from_passphrase("rogue", "rogue");
    for opts in [CompileOptions::carat_kop(), CompileOptions::optimized()] {
        let m = parse_module(HONEST_SRC).unwrap();
        let out = compile_module(m, &opts, &rogue).unwrap();
        let ir = out.signed.verify(std::slice::from_ref(&rogue)).unwrap();
        assert!(verify_guard_coverage(&ir).is_clean());
        assert!(out.signed.attestation.guards_covered);
        let mut kernel = static_kernel();
        let loaded = kernel.insmod(&out.signed).unwrap();
        assert!(loaded.is_protected);
        kernel.rmmod("honest").unwrap();
    }
}
