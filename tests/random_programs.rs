//! Differential property testing over randomly generated KIR programs.
//!
//! For every random program P:
//! 1. `print(parse(print(P))) == print(P)` — the textual form round-trips,
//! 2. the verifier accepts P and the guard-injected P,
//! 3. `guards injected == loads + stores` (the core CARAT KOP invariant),
//! 4. **baseline, carat, and optimized-carat builds compute identical
//!    results and identical memory effects** under an allow-all policy —
//!    guard injection must be semantically invisible when the policy
//!    permits everything (the paper's whole premise),
//! 5. dynamic guard count equals dynamic memory-access count for the
//!    unoptimized carat build.

use std::sync::Arc;

use proptest::prelude::*;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::interp::Interp;
use carat_kop::ir::{
    print_module, verify_module, BinOp, GlobalInit, IcmpPred, IrBuilder, Type, Value,
};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, PolicyModule};

/// One step of a random straight-line program over 4 registers and an
/// 8-slot scratch buffer.
#[derive(Clone, Debug)]
enum Op {
    /// dst = a <op> b
    Arith(u8, BinOp, u8, u8),
    /// dst = buf[slot]
    Load(u8, u8),
    /// buf[slot] = src
    Store(u8, u8),
    /// dst = (a < b) ? a : b  (exercises icmp + select)
    Min(u8, u8, u8),
    /// g = g + src (global traffic)
    BumpGlobal(u8),
}

fn arb_op() -> impl Strategy<Value = Op> {
    let reg = 0u8..4;
    let slot = 0u8..8;
    prop_oneof![
        (reg.clone(), arb_binop(), reg.clone(), reg.clone())
            .prop_map(|(d, o, a, b)| Op::Arith(d, o, a, b)),
        (reg.clone(), slot.clone()).prop_map(|(d, s)| Op::Load(d, s)),
        (slot, reg.clone()).prop_map(|(s, r)| Op::Store(s, r)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Op::Min(d, a, b)),
        reg.prop_map(Op::BumpGlobal),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    // Division excluded: a divide-by-zero fault is legitimate but makes
    // equivalence vacuous; shifts included (they mask their RHS).
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
    ]
}

/// Build a module from the op list: a function `run(ptr buf, i64 seed)`
/// executing the ops `loop_n` times (loop_n in 1..=4 exercises phis).
fn build_program(ops: &[Op], loop_n: u64) -> carat_kop::ir::Module {
    let mut b = IrBuilder::new("random");
    b.global("g", Type::I64, GlobalInit::Int(1));
    let mut f = b.function("run", vec![Type::Ptr, Type::I64], Type::I64);
    f.name_params(&["buf", "seed"]);
    let entry = f.block("entry");
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");

    f.switch_to(entry);
    f.br(head);

    f.switch_to(head);
    let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
    let regs_phi: Vec<Value> = (0..4)
        .map(|k| {
            f.phi(
                Type::I64,
                vec![(entry, Value::ConstInt(Type::I64, 0x9e37 + k as u64))],
            )
        })
        .collect();
    let cond = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::i64(loop_n));
    f.condbr(cond, body, exit);

    f.switch_to(body);
    let mut regs: Vec<Value> = regs_phi.clone();
    // Mix the seed in so runs depend on inputs.
    regs[0] = f.add(Type::I64, regs[0].clone(), Value::Arg(1));
    for op in ops {
        match op {
            Op::Arith(d, o, a, b2) => {
                let v = f.bin(
                    *o,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = v;
            }
            Op::Load(d, s) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                regs[*d as usize] = f.load(Type::I64, p);
            }
            Op::Store(s, r) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                f.store(Type::I64, regs[*r as usize].clone(), p);
            }
            Op::Min(d, a, b2) => {
                let c = f.icmp(
                    IcmpPred::Slt,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = f.select(
                    Type::I64,
                    c,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
            }
            Op::BumpGlobal(r) => {
                let g = Value::Global("g".into());
                let old = f.load(Type::I64, g.clone());
                let new = f.add(Type::I64, old, regs[*r as usize].clone());
                f.store(Type::I64, new, g);
            }
        }
    }
    let i_next = f.add(Type::I64, i.clone(), Value::i64(1));
    f.br(head);

    // Patch loop-carried phis.
    let func = f.raw();
    let patch = |func: &mut carat_kop::ir::Function, phi: &Value, val: Value| {
        if let Value::Inst(id) = phi {
            if let carat_kop::ir::Inst::Phi { incomings, .. } = func.inst_mut(*id) {
                incomings.push((body, val));
            }
        }
    };
    patch(func, &i, i_next);
    for (k, phi) in regs_phi.iter().enumerate() {
        patch(func, phi, regs[k].clone());
    }

    f.switch_to(exit);
    // Result folds all registers together.
    let mut acc = regs_phi[0].clone();
    for r in &regs_phi[1..] {
        acc = f.bin(BinOp::Xor, Type::I64, acc, r.clone());
    }
    let gfin = f.load(Type::I64, Value::Global("g".into()));
    let result = f.add(Type::I64, acc, gfin);
    f.ret(Some(result));
    f.finish();
    b.finish()
}

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "proptest")
}

/// Run a build and return (result, final scratch buffer, dynamic stats).
fn run_build(
    module: carat_kop::ir::Module,
    opts: &CompileOptions,
    seed: u64,
) -> (u64, Vec<u8>, carat_kop::interp::ExecStats) {
    let out = compile_module(module, opts, &key()).expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).expect("loads");
    let buf = kernel.kmalloc(8 * 8).expect("buf");
    let mut interp = Interp::new(&mut kernel).expect("interp");
    let r = interp
        .call("random", "run", &[buf.raw(), seed])
        .expect("runs")
        .expect("returns");
    let stats = interp.stats();
    let mut mem = vec![0u8; 64];
    kernel.mem.read_bytes(buf, &mut mem).expect("read back");
    (r, mem, stats)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn random_programs_roundtrip_and_verify(
        ops in proptest::collection::vec(arb_op(), 1..24),
        loop_n in 1u64..4,
    ) {
        let module = build_program(&ops, loop_n);
        verify_module(&module).expect("generated program verifies");
        let text = print_module(&module);
        let reparsed = carat_kop::ir::parse_module(&text).expect("reparses");
        prop_assert_eq!(print_module(&reparsed), text);
    }

    #[test]
    fn guard_injection_is_semantically_invisible(
        ops in proptest::collection::vec(arb_op(), 1..24),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&ops, loop_n);
        let accesses = module.memory_access_count() as u64;

        let (r_base, mem_base, s_base) =
            run_build(module.clone(), &CompileOptions::baseline(), seed);
        let (r_carat, mem_carat, s_carat) =
            run_build(module.clone(), &CompileOptions::carat_kop(), seed);
        let (r_opt, mem_opt, _) =
            run_build(module, &CompileOptions::optimized(), seed);

        // Same results, same memory effects.
        prop_assert_eq!(r_base, r_carat);
        prop_assert_eq!(r_base, r_opt);
        prop_assert_eq!(&mem_base, &mem_carat);
        prop_assert_eq!(&mem_base, &mem_opt);

        // Baseline executes zero guards; carat executes exactly one guard
        // per dynamic memory access.
        prop_assert_eq!(s_base.guards, 0);
        prop_assert_eq!(s_carat.guards, s_carat.mem_accesses);
        prop_assert_eq!(s_base.mem_accesses, s_carat.mem_accesses);

        // Static invariant: one injected guard per static access.
        let out = compile_module(
            build_program(&ops, loop_n),
            &CompileOptions::carat_kop(),
            &key(),
        )
        .unwrap();
        prop_assert_eq!(out.signed.attestation.guard_count, accesses);
    }
}
