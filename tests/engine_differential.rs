//! Differential property testing: tree interpreter vs bytecode VM.
//!
//! The bytecode engine (`kop-vm` lowering + the `kop-interp` dispatch
//! loop) claims *exactly* the tree interpreter's observable semantics.
//! For every random verified program, under every build flavour and
//! under both an allow-all and a deny-all (`LogAndDeny`, i.e. squash)
//! policy, the two engines must agree on:
//!
//! * the returned value,
//! * [`ExecStats`] — instruction/fuel accounting included, so fused
//!   guard-access superinstructions and per-edge phi burns must charge
//!   exactly what the tree charges,
//! * guard outcomes as counted by the policy module (checks, permits,
//!   denial classification),
//! * memory effects — the scratch buffer and the module global read
//!   back byte-identical.

use std::sync::Arc;

use proptest::prelude::*;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::interp::{Engine, ExecStats, Interp};
use carat_kop::ir::{verify_module, BinOp, GlobalInit, IcmpPred, IrBuilder, Type, Value};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::stats::GuardStatsSnapshot;
use carat_kop::policy::{DefaultAction, PolicyModule, ViolationAction};

/// One step of a random straight-line program over 4 registers and an
/// 8-slot scratch buffer (same shape as `tests/random_programs.rs`).
#[derive(Clone, Debug)]
enum Step {
    /// dst = a <op> b
    Arith(u8, BinOp, u8, u8),
    /// dst = buf[slot]
    Load(u8, u8),
    /// buf[slot] = src
    Store(u8, u8),
    /// dst = (a < b) ? a : b  (exercises icmp + select)
    Min(u8, u8, u8),
    /// g = g + src (global traffic)
    BumpGlobal(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    let reg = 0u8..4;
    let slot = 0u8..8;
    prop_oneof![
        (reg.clone(), arb_binop(), reg.clone(), reg.clone())
            .prop_map(|(d, o, a, b)| Step::Arith(d, o, a, b)),
        (reg.clone(), slot.clone()).prop_map(|(d, s)| Step::Load(d, s)),
        (slot, reg.clone()).prop_map(|(s, r)| Step::Store(s, r)),
        (reg.clone(), reg.clone(), reg.clone()).prop_map(|(d, a, b)| Step::Min(d, a, b)),
        reg.prop_map(Step::BumpGlobal),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    // Division excluded so equivalence isn't vacuously cut short by a
    // legitimate divide-by-zero fault; shifts included (masked RHS).
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
        Just(BinOp::Shl),
        Just(BinOp::LShr),
    ]
}

/// Build a module from the step list: `run(ptr buf, i64 seed)` executes
/// the steps `loop_n` times — the loop header's phis exercise the
/// bytecode's per-edge move schedules (including the staged path when
/// registers swap).
fn build_program(steps: &[Step], loop_n: u64) -> carat_kop::ir::Module {
    let mut b = IrBuilder::new("random");
    b.global("g", Type::I64, GlobalInit::Int(1));
    let mut f = b.function("run", vec![Type::Ptr, Type::I64], Type::I64);
    f.name_params(&["buf", "seed"]);
    let entry = f.block("entry");
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");

    f.switch_to(entry);
    f.br(head);

    f.switch_to(head);
    let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
    let regs_phi: Vec<Value> = (0..4)
        .map(|k| {
            f.phi(
                Type::I64,
                vec![(entry, Value::ConstInt(Type::I64, 0x9e37 + k as u64))],
            )
        })
        .collect();
    let cond = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::i64(loop_n));
    f.condbr(cond, body, exit);

    f.switch_to(body);
    let mut regs: Vec<Value> = regs_phi.clone();
    regs[0] = f.add(Type::I64, regs[0].clone(), Value::Arg(1));
    for step in steps {
        match step {
            Step::Arith(d, o, a, b2) => {
                let v = f.bin(
                    *o,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = v;
            }
            Step::Load(d, s) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                regs[*d as usize] = f.load(Type::I64, p);
            }
            Step::Store(s, r) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                f.store(Type::I64, regs[*r as usize].clone(), p);
            }
            Step::Min(d, a, b2) => {
                let c = f.icmp(
                    IcmpPred::Slt,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = f.select(
                    Type::I64,
                    c,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
            }
            Step::BumpGlobal(r) => {
                let g = Value::Global("g".into());
                let old = f.load(Type::I64, g.clone());
                let new = f.add(Type::I64, old, regs[*r as usize].clone());
                f.store(Type::I64, new, g);
            }
        }
    }
    let i_next = f.add(Type::I64, i.clone(), Value::i64(1));
    f.br(head);

    // Patch loop-carried phis. Because `regs` can end up a permutation
    // of the phi registers (e.g. two Min/Arith steps swapping them),
    // some generated back-edges genuinely require the staged
    // parallel-move path in the bytecode engine.
    let func = f.raw();
    let patch = |func: &mut carat_kop::ir::Function, phi: &Value, val: Value| {
        if let Value::Inst(id) = phi {
            if let carat_kop::ir::Inst::Phi { incomings, .. } = func.inst_mut(*id) {
                incomings.push((body, val));
            }
        }
    };
    patch(func, &i, i_next);
    for (k, phi) in regs_phi.iter().enumerate() {
        patch(func, phi, regs[k].clone());
    }

    f.switch_to(exit);
    let mut acc = regs_phi[0].clone();
    for r in &regs_phi[1..] {
        acc = f.bin(BinOp::Xor, Type::I64, acc, r.clone());
    }
    let gfin = f.load(Type::I64, Value::Global("g".into()));
    let result = f.add(Type::I64, acc, gfin);
    f.ret(Some(result));
    f.finish();
    b.finish()
}

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "proptest")
}

/// Everything either engine can observably produce for one run.
#[derive(Debug, PartialEq)]
struct Observation {
    result: Result<Option<u64>, String>,
    stats: ExecStats,
    guard_stats: GuardStatsSnapshot,
    mem: Vec<u8>,
    global: Vec<u8>,
    violations: Vec<String>,
}

/// Compile `module` under `opts`, run `@run(buf, seed)` on `engine`,
/// and collect the full observable state. `deny_all` selects a
/// default-deny policy with `LogAndDeny` (every guarded access is
/// squashed) instead of allow-all.
fn observe(
    module: carat_kop::ir::Module,
    opts: &CompileOptions,
    seed: u64,
    engine: Engine,
    deny_all: bool,
) -> Observation {
    let out = compile_module(module, opts, &key()).expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    if deny_all {
        policy.set_default_action(DefaultAction::Deny);
        policy.set_violation_action(ViolationAction::LogAndDeny);
    } else {
        policy.set_default_action(DefaultAction::Allow);
    }
    let mut kernel = Kernel::boot(Arc::clone(&policy), vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).expect("loads");
    let buf = kernel.kmalloc(8 * 8).expect("buf");
    let global = kernel
        .module("random")
        .expect("loaded")
        .image()
        .globals
        .get("g")
        .copied()
        .expect("global @g laid out");

    let mut interp = Interp::new(&mut kernel).expect("interp");
    interp.set_engine(engine);
    assert_eq!(interp.engine(), engine);
    let result = interp
        .call("random", "run", &[buf.raw(), seed])
        .map_err(|e| e.to_string());
    let stats = interp.stats();

    let mut mem = vec![0u8; 64];
    kernel.mem.read_bytes(buf, &mut mem).expect("read back");
    let mut gbytes = vec![0u8; 8];
    kernel.mem.read_bytes(global, &mut gbytes).expect("global");
    Observation {
        result,
        stats,
        guard_stats: policy.stats(),
        mem,
        global: gbytes,
        violations: policy.violation_log(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Allow-all policy: both engines agree on every observable, for
    /// every build flavour (baseline has no guards; carat_kop fuses
    /// guard+access pairs; optimized leaves hoisted standalone guards).
    #[test]
    fn engines_agree_under_allow_all(
        steps in proptest::collection::vec(arb_step(), 1..24),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&steps, loop_n);
        verify_module(&module).expect("generated program verifies");

        for opts in [
            CompileOptions::baseline(),
            CompileOptions::carat_kop(),
            CompileOptions::optimized(),
        ] {
            let tree = observe(module.clone(), &opts, seed, Engine::Tree, false);
            let vm = observe(module.clone(), &opts, seed, Engine::Bytecode, false);
            prop_assert_eq!(&tree, &vm);
            prop_assert!(tree.result.is_ok());
        }
    }

    /// Deny-all + LogAndDeny: every guard denies and squashes the access
    /// it protects. The engines must agree on the squash count, the
    /// zero-filled loads' downstream effects, the unchanged memory, and
    /// the denial classification.
    #[test]
    fn engines_agree_under_deny_all_squash(
        steps in proptest::collection::vec(arb_step(), 1..24),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&steps, loop_n);

        for (opts, plain_carat) in [
            (CompileOptions::carat_kop(), true),
            (CompileOptions::optimized(), false),
        ] {
            let tree = observe(module.clone(), &opts, seed, Engine::Tree, true);
            let vm = observe(module.clone(), &opts, seed, Engine::Bytecode, true);
            prop_assert_eq!(&tree, &vm);

            // Under the unoptimized carat build every access has its own
            // guard, every guard denies, every access is squashed.
            if plain_carat {
                prop_assert!(tree.result.is_ok());
                prop_assert_eq!(tree.stats.guards, tree.stats.mem_accesses);
                prop_assert_eq!(tree.stats.squashed, tree.stats.mem_accesses);
                prop_assert_eq!(tree.guard_stats.permitted, 0);
                // Squashed stores leave the scratch buffer untouched.
                prop_assert_eq!(&tree.mem, &vec![0u8; 64]);
            }
        }
    }
}
