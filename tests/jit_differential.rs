//! Differential property testing for the promoted trace tier, plus
//! generation-bump torture for both halves of it.
//!
//! The promoted engine claims *exactly* the general engines' observable
//! semantics: for every random verified program the tree interpreter,
//! the bytecode VM, and the promoted tier (profiled, then re-lowered
//! with inlined guard bounds) must agree on the returned value,
//! [`ExecStats`], the policy's check/permit accounting, and every byte
//! of touched memory. The promoted run additionally proves it really
//! ran promoted: every guard admits inline with zero deopts.
//!
//! The torture half drives the *native* hot tier (per-queue
//! [`HotPolicy`] fronts over one shared policy) through a concurrent
//! multi-queue TX run while the main thread storms `bump_epoch`, and
//! drives the VM tier through a hand-installed stale-generation
//! promotion — in both cases a stale baked bound must never admit.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::e1000e::{
    driver_site_map, DirectMem, E1000Device, E1000Driver, GuardedMem, MemSpace, VecSink,
};
use carat_kop::interp::{Engine, ExecStats, Interp};
use carat_kop::ir::{verify_module, BinOp, GlobalInit, IcmpPred, IrBuilder, Type, Value};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{DefaultAction, HotSite, PolicyModule, ViolationAction};
use carat_kop::trace::{CounterRegistry, Tracer, DEFAULT_CAPACITY};
use carat_kop::vm::PromotionSpec;
use kop_core::AccessFlags;

/// One step of a random straight-line loop body over 4 registers, an
/// 8-slot scratch buffer, and a module global (same program shape as
/// `tests/engine_differential.rs`, which pins tree == bytecode; this
/// file extends the equivalence to the promoted tier).
#[derive(Clone, Debug)]
enum Step {
    Arith(u8, BinOp, u8, u8),
    Load(u8, u8),
    Store(u8, u8),
    BumpGlobal(u8),
}

fn arb_step() -> impl Strategy<Value = Step> {
    let reg = 0u8..4;
    let slot = 0u8..8;
    prop_oneof![
        (reg.clone(), arb_binop(), reg.clone(), reg.clone())
            .prop_map(|(d, o, a, b)| Step::Arith(d, o, a, b)),
        (reg.clone(), slot.clone()).prop_map(|(d, s)| Step::Load(d, s)),
        (slot, reg.clone()).prop_map(|(s, r)| Step::Store(s, r)),
        reg.prop_map(Step::BumpGlobal),
    ]
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

/// `run(ptr buf, i64 seed)`: execute the steps `loop_n` times.
fn build_program(steps: &[Step], loop_n: u64) -> carat_kop::ir::Module {
    let mut b = IrBuilder::new("random");
    b.global("g", Type::I64, GlobalInit::Int(1));
    let mut f = b.function("run", vec![Type::Ptr, Type::I64], Type::I64);
    f.name_params(&["buf", "seed"]);
    let entry = f.block("entry");
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");

    f.switch_to(entry);
    f.br(head);

    f.switch_to(head);
    let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
    let acc_phi = f.phi(Type::I64, vec![(entry, Value::ConstInt(Type::I64, 0x9e37))]);
    let cond = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::i64(loop_n));
    f.condbr(cond, body, exit);

    f.switch_to(body);
    let mut regs: Vec<Value> = (0..4).map(|_| acc_phi.clone()).collect();
    regs[0] = f.add(Type::I64, regs[0].clone(), Value::Arg(1));
    for step in steps {
        match step {
            Step::Arith(d, o, a, b2) => {
                let v = f.bin(
                    *o,
                    Type::I64,
                    regs[*a as usize].clone(),
                    regs[*b2 as usize].clone(),
                );
                regs[*d as usize] = v;
            }
            Step::Load(d, s) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                regs[*d as usize] = f.load(Type::I64, p);
            }
            Step::Store(s, r) => {
                let p = f.gep(Type::I64, Value::Arg(0), vec![Value::i64(*s as u64)]);
                f.store(Type::I64, regs[*r as usize].clone(), p);
            }
            Step::BumpGlobal(r) => {
                let g = Value::Global("g".into());
                let old = f.load(Type::I64, g.clone());
                let new = f.add(Type::I64, old, regs[*r as usize].clone());
                f.store(Type::I64, new, g);
            }
        }
    }
    let mut acc = regs[0].clone();
    for r in &regs[1..] {
        acc = f.bin(BinOp::Xor, Type::I64, acc, r.clone());
    }
    let i_next = f.add(Type::I64, i.clone(), Value::i64(1));
    f.br(head);

    let func = f.raw();
    let patch = |func: &mut carat_kop::ir::Function, phi: &Value, val: Value| {
        if let Value::Inst(id) = phi {
            if let carat_kop::ir::Inst::Phi { incomings, .. } = func.inst_mut(*id) {
                incomings.push((body, val));
            }
        }
    };
    patch(func, &i, i_next);
    patch(func, &acc_phi, acc);

    f.switch_to(exit);
    let gfin = f.load(Type::I64, Value::Global("g".into()));
    let result = f.add(Type::I64, acc_phi, gfin);
    f.ret(Some(result));
    f.finish();
    b.finish()
}

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "jit-proptest")
}

/// Everything one measured run can observably produce. Policy counters
/// and the violation log are *deltas over the measured call* so a
/// promoted observation (whose kernel also ran a profiling pass) stays
/// comparable to the general ones.
#[derive(Debug, PartialEq)]
struct Observation {
    result: Result<Option<u64>, String>,
    stats: ExecStats,
    checks: u64,
    permitted: u64,
    denied: u64,
    violations: usize,
    mem: Vec<u8>,
    global: Vec<u8>,
    inline_admits: u64,
    inline_deopts: u64,
}

/// Compile, load, optionally profile-and-promote, then run `@run(buf,
/// seed)` once on `engine` and collect the observable state.
fn observe(
    module: carat_kop::ir::Module,
    opts: &CompileOptions,
    seed: u64,
    engine: Engine,
    deny_all: bool,
    promote: bool,
) -> Observation {
    let out = compile_module(module, opts, &key()).expect("compiles");
    let policy = if deny_all {
        let p = Arc::new(PolicyModule::new());
        p.set_default_action(DefaultAction::Deny);
        p.set_violation_action(ViolationAction::LogAndDeny);
        p
    } else {
        // The paper's two-region policy: the whole kernel half (heap,
        // module data) is one RW grant, so every hot site has a
        // covering region to bake.
        Arc::new(PolicyModule::two_region_paper_policy())
    };
    let mut kernel = Kernel::boot(
        Arc::clone(&policy),
        vec![key()],
        KernelConfig {
            hot_threshold: 1,
            ..KernelConfig::default()
        },
    );
    kernel.insmod(&out.signed).expect("loads");
    let buf = kernel.kmalloc(8 * 8).expect("buf");
    let global = kernel
        .module("random")
        .expect("loaded")
        .image()
        .globals
        .get("g")
        .copied()
        .expect("global @g laid out");

    if promote {
        // Profile on a scratch buffer, then restore the global so the
        // measured run starts from the same state as the general runs.
        // The envelope differs from the measured buffer, but promotion
        // bakes the covering *region's* bound, which spans both.
        let buf2 = kernel.kmalloc(8 * 8).expect("profile buf");
        let mut g0 = vec![0u8; 8];
        kernel.mem.read_bytes(global, &mut g0).expect("global");
        kernel.tracer().set_enabled(true);
        {
            let mut interp = Interp::new(&mut kernel).expect("interp");
            interp.set_engine(Engine::Bytecode);
            let _ = interp.call("random", "run", &[buf2.raw(), seed]);
        }
        kernel.tracer().set_enabled(false);
        kernel.mem.write_bytes(global, &g0).expect("restore global");
        let promoted = kernel.promote_hot("random", 1).expect("promotion");
        if !deny_all {
            assert!(promoted > 0, "hot sites promoted under the allow policy");
        } else {
            // A site that ever denied is never promoted: the promoted
            // engine must degrade to the general path wholesale.
            assert_eq!(promoted, 0, "deny-all profiles promote nothing");
        }
    }

    let s0 = policy.stats();
    let v0 = policy.violation_log().len();
    let mut interp = Interp::new(&mut kernel).expect("interp");
    interp.set_engine(engine);
    let result = interp
        .call("random", "run", &[buf.raw(), seed])
        .map_err(|e| e.to_string());
    let stats = interp.stats();
    let inline_admits = interp.inline_admits();
    let inline_deopts = interp.inline_deopts();
    drop(interp);

    let s1 = policy.stats();
    let mut mem = vec![0u8; 64];
    kernel.mem.read_bytes(buf, &mut mem).expect("read back");
    let mut gbytes = vec![0u8; 8];
    kernel.mem.read_bytes(global, &mut gbytes).expect("global");
    Observation {
        result,
        stats,
        checks: s1.checks - s0.checks,
        permitted: s1.permitted - s0.permitted,
        denied: s1.denied() - s0.denied(),
        violations: policy.violation_log().len() - v0,
        mem,
        global: gbytes,
        inline_admits,
        inline_deopts,
    }
}

/// The fields every engine must agree on (the inline counters are
/// deliberately excluded — they are the promoted tier's private
/// bookkeeping, asserted separately).
fn comparable(o: &Observation) -> impl PartialEq + std::fmt::Debug + '_ {
    (
        &o.result,
        o.stats,
        (o.checks, o.permitted, o.denied, o.violations),
        (&o.mem, &o.global),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Allow-all (paper two-region policy): tree, bytecode, and the
    /// profiled-then-promoted engine agree on every observable, and the
    /// promoted run answers *every* guard from an inlined bound.
    #[test]
    fn three_engines_agree_and_promotion_admits_inline(
        steps in proptest::collection::vec(arb_step(), 1..16),
        loop_n in 1u64..4,
        seed in any::<u64>(),
    ) {
        let module = build_program(&steps, loop_n);
        verify_module(&module).expect("generated program verifies");

        for opts in [CompileOptions::carat_kop(), CompileOptions::optimized()] {
            let tree = observe(module.clone(), &opts, seed, Engine::Tree, false, false);
            let vm = observe(module.clone(), &opts, seed, Engine::Bytecode, false, false);
            let jit = observe(module.clone(), &opts, seed, Engine::Promoted, false, true);
            prop_assert_eq!(comparable(&tree), comparable(&vm));
            prop_assert_eq!(comparable(&tree), comparable(&jit));
            prop_assert!(tree.result.is_ok());
            prop_assert_eq!(tree.inline_admits, 0);
            // Same program, same seed, same initial memory: the profile
            // pass visited exactly the measured run's sites, so every
            // guard admits inline and none deopts.
            prop_assert_eq!(jit.inline_admits, jit.stats.guards);
            prop_assert_eq!(jit.inline_deopts, 0);
        }
    }

    /// Deny-all + squash: a profile in which every site denied promotes
    /// nothing, and the promoted engine must still match the general
    /// engines bit for bit (verdicts, squashes, denial accounting).
    #[test]
    fn engines_agree_under_deny_all(
        steps in proptest::collection::vec(arb_step(), 1..16),
        loop_n in 1u64..3,
        seed in any::<u64>(),
    ) {
        let module = build_program(&steps, loop_n);

        let opts = CompileOptions::carat_kop();
        let tree = observe(module.clone(), &opts, seed, Engine::Tree, true, false);
        let vm = observe(module.clone(), &opts, seed, Engine::Bytecode, true, false);
        let jit = observe(module.clone(), &opts, seed, Engine::Promoted, true, true);
        prop_assert_eq!(comparable(&tree), comparable(&vm));
        prop_assert_eq!(comparable(&tree), comparable(&jit));
        prop_assert_eq!(jit.inline_admits, 0);
        prop_assert_eq!(jit.inline_deopts, 0);
    }
}

/// A promotion installed under a generation the policy store never
/// published: every promoted guard's per-op generation check must fail
/// closed — deopt to the general path, admit nothing inline. This is
/// the VM-level race shape (`promote` racing a publish) pinned
/// deterministically.
#[test]
fn stale_generation_promotion_deopts_every_guard() {
    let steps = vec![Step::Load(0, 0), Step::Store(1, 0), Step::BumpGlobal(2)];
    let module = build_program(&steps, 4);
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).expect("compiles");
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(Arc::clone(&policy), vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).expect("loads");
    let buf = kernel.kmalloc(8 * 8).expect("buf");

    // Profile, then install the promotion by hand with a generation the
    // snapshot store never published (simulating a promote/publish race
    // the subscription-based invalidation lost).
    kernel.tracer().set_enabled(true);
    {
        let mut interp = Interp::new(&mut kernel).expect("interp");
        interp.set_engine(Engine::Bytecode);
        interp
            .call("random", "run", &[buf.raw(), 3])
            .expect("profile run");
    }
    kernel.tracer().set_enabled(false);

    let snap = policy.policy_snapshot();
    let mut specs = Vec::new();
    for (meta, prof) in kernel.tracer().hot_sites(1) {
        if meta.module != "random" || prof.lo_addr >= prof.hi_addr {
            continue;
        }
        let Some(r) = snap.regions().iter().find(|r| {
            r.base.raw() <= prof.lo_addr && prof.hi_addr <= r.base.raw().saturating_add(r.len.raw())
        }) else {
            continue;
        };
        specs.push(PromotionSpec {
            site: meta.id,
            lo: r.base.raw(),
            hi: r.base.raw().saturating_add(r.len.raw()),
            perm: r.prot.granted().raw(),
        });
    }
    assert!(!specs.is_empty(), "profiled sites cover the module");
    let stale_gen = snap.generation() + 7;
    let compiled = kernel
        .module("random")
        .expect("loaded")
        .image()
        .compiled
        .clone()
        .expect("bytecode image");
    assert!(compiled.promote(stale_gen, policy.revocation_epoch(), &specs) > 0);
    assert_eq!(compiled.promoted_generation(), stale_gen);

    let s0 = policy.stats();
    let mut interp = Interp::new(&mut kernel).expect("interp");
    interp.set_engine(Engine::Promoted);
    interp
        .call("random", "run", &[buf.raw(), 3])
        .expect("promoted run");
    let stats = interp.stats();
    let (admits, deopts) = (interp.inline_admits(), interp.inline_deopts());
    drop(interp);

    assert!(stats.guards > 0);
    assert_eq!(admits, 0, "a stale baked bound must never admit");
    assert_eq!(deopts, stats.guards, "every guard fell to the general path");
    // The deopt path is the exact general path: accounting reconciles.
    let s1 = policy.stats();
    assert_eq!(s1.checks - s0.checks, stats.guards);
    assert_eq!(s1.permitted - s0.permitted, stats.guards);
}

/// Profile one guarded TX pass and return the promotion requests plus
/// the shared policy they were profiled under.
fn profiled_tx_sites(pm: &Arc<PolicyModule>) -> Vec<HotSite> {
    let tracer = Tracer::with_capacity(DEFAULT_CAPACITY);
    let mem = GuardedMem::with_tracer(
        DirectMem::with_defaults(E1000Device::default()),
        Arc::clone(pm),
        Arc::clone(&tracer),
    );
    tracer.set_enabled(true);
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    let mut sink = VecSink::default();
    for _ in 0..32 {
        drv.xmit_and_flush([0xff; 6], 0x88b5, &[0u8; 128], &mut sink)
            .expect("profile xmit");
    }
    tracer.set_enabled(false);

    let probe = DirectMem::with_defaults(E1000Device::default());
    let map = driver_site_map(probe.arena_base(), probe.mmio_base());
    let mut sites = Vec::new();
    for (_meta, prof) in tracer.hot_sites(1) {
        let Some((lo, hi)) = prof.envelope() else {
            continue;
        };
        sites.push(HotSite {
            site: map.classify(lo),
            lo,
            hi,
            flags: AccessFlags::RW,
        });
    }
    assert!(!sites.is_empty(), "TX guard sites were profiled");
    sites
}

/// Generation-bump torture on the native datapath: several TX queues,
/// each fronted by its own per-thread [`HotPolicy`] over one shared
/// policy module, while the main thread storms `bump_epoch`. Soundness
/// and accounting must both hold: no frame is lost, no guard escapes
/// accounting (`policy.checks` reconciles exactly with the drivers'
/// guard counters), and once a bump lands, stale slots deopt rather
/// than admit.
#[test]
fn mq_tx_generation_bump_torture() {
    use carat_kop::e1000e::run_mq_tx_with;

    let pm = Arc::new(PolicyModule::two_region_paper_policy());
    let hot_sites = profiled_tx_sites(&pm);
    let reg = CounterRegistry::new();
    const QUEUES: usize = 3;
    const FRAMES: u64 = 300;

    // ---- Phase A: quiescent policy — the hot tier answers inline. ----
    let checks0 = pm.stats().checks;
    let rep = run_mq_tx_with(QUEUES, FRAMES, 256, |q| {
        let hm = GuardedMem::with_hot_prefixed(
            DirectMem::with_defaults(E1000Device::default()),
            Arc::clone(&pm),
            hot_sites.clone(),
            &format!("mqa.q{q}"),
        );
        assert!(hm.policy().promoted_count() > 0);
        hm.policy().register_into(&reg);
        hm
    })
    .expect("quiescent MQ run");
    let guard_calls: u64 = rep.queues.iter().map(|q| q.guard_calls).sum();
    for q in &rep.queues {
        assert_eq!(q.delivered, FRAMES);
    }
    // Every guard accounted exactly once, fast path included (the
    // per-thread pending cells flushed when each queue's front dropped).
    assert_eq!(pm.stats().checks - checks0, guard_calls);
    let (mut admits_a, mut deopts_a) = (0, 0);
    for q in 0..QUEUES {
        admits_a += reg.get(&format!("mqa.q{q}.inline_admits")).unwrap().get();
        deopts_a += reg.get(&format!("mqa.q{q}.deopts")).unwrap().get();
    }
    assert!(admits_a > 0, "the hot tier answered TX guards inline");
    assert_eq!(deopts_a, 0, "no deopts without a policy publish");

    // ---- Phase B: the same run under a bump_epoch storm. ----
    let stop = Arc::new(AtomicBool::new(false));
    let storm = {
        let pm = Arc::clone(&pm);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut bumps = 0u64;
            while !stop.load(Ordering::Relaxed) {
                pm.bump_epoch();
                bumps += 1;
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            bumps
        })
    };
    let checks1 = pm.stats().checks;
    let rep = run_mq_tx_with(QUEUES, FRAMES, 256, |q| {
        let hm = GuardedMem::with_hot_prefixed(
            DirectMem::with_defaults(E1000Device::default()),
            Arc::clone(&pm),
            hot_sites.clone(),
            &format!("mqb.q{q}"),
        );
        hm.policy().register_into(&reg);
        hm
    })
    .expect("stormed MQ run");
    stop.store(true, Ordering::Relaxed);
    let bumps = storm.join().expect("storm thread");
    assert!(bumps > 0);

    // Behaviour is unchanged under the storm: every frame delivered.
    let guard_calls: u64 = rep.queues.iter().map(|q| q.guard_calls).sum();
    for q in &rep.queues {
        assert_eq!(q.delivered, FRAMES);
    }
    // Exact accounting survives the storm: every guard was either a
    // (flushed) fast admit or a general-path check — a stale admit that
    // skipped accounting, or a double count, would break this balance.
    assert_eq!(pm.stats().checks - checks1, guard_calls);
    let (mut admits_b, mut deopts_b) = (0, 0);
    for q in 0..QUEUES {
        admits_b += reg.get(&format!("mqb.q{q}.inline_admits")).unwrap().get();
        deopts_b += reg.get(&format!("mqb.q{q}.deopts")).unwrap().get();
    }
    assert!(
        deopts_b > 0,
        "the storm landed mid-run: stale slots must deopt ({bumps} bumps)"
    );
    assert!(admits_b + deopts_b <= guard_calls);

    // ---- Phase C: zero stale admits, pinned deterministically. ----
    let hm = GuardedMem::with_hot_prefixed(
        DirectMem::with_defaults(E1000Device::default()),
        Arc::clone(&pm),
        hot_sites.clone(),
        "mqc",
    );
    let mut drv = E1000Driver::probe(hm).expect("probe");
    drv.up().expect("up");
    let mut sink = VecSink::default();
    for _ in 0..8 {
        drv.xmit_and_flush([0xff; 6], 0x88b5, &[0u8; 64], &mut sink)
            .expect("warm xmit");
    }
    let admits_before = drv.mem_ref().policy().admits();
    assert!(admits_before > 0);

    pm.bump_epoch();
    for _ in 0..8 {
        drv.xmit_and_flush([0xff; 6], 0x88b5, &[0u8; 64], &mut sink)
            .expect("post-bump xmit");
    }
    // Not one admit after the publish: every check at a promoted site
    // deopted to the general path instead.
    assert_eq!(drv.mem_ref().policy().admits(), admits_before);
    assert!(drv.mem_ref().policy().deopts() > 0);

    // Lazy re-promotion restores the fast path against the new snapshot.
    assert!(drv.mem_ref().policy().repromote() > 0);
    for _ in 0..8 {
        drv.xmit_and_flush([0xff; 6], 0x88b5, &[0u8; 64], &mut sink)
            .expect("re-promoted xmit");
    }
    assert!(drv.mem_ref().policy().admits() > admits_before);
}
