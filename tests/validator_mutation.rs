//! Mutation tests for the translation validator: hand-corrupt the
//! obligation ledger of an honestly optimized module and assert that
//! *both* enforcement points — the compile-time validator
//! ([`validate_module`] / [`SignedModule::verify`]) and the insmod-time
//! replay in `Verification::Static` mode — reject the module with the
//! distinct diagnostic for each corruption:
//!
//! - a dropped guard whose elide obligation survives  → `KA006`
//! - a forged range wider than the loop actually walks → `KA007`
//! - an elide citing a guard that does not dominate    → `KA008`
//! - ledger text that does not parse at all            → hard error
//!
//! The corrupt containers are re-signed with the kernel-trusted key, so
//! every rejection here is attributable to the validator re-deriving the
//! optimizer's claims — not to MAC or key checks.

use std::sync::Arc;

use carat_kop::analysis::{validate_module, LintCode, ObligationLedger};
use carat_kop::compiler::{
    compile_module, CompileOptions, CompilerKey, SignedModule, SigningError,
};
use carat_kop::core::KernelError;
use carat_kop::ir::{parse_module, Inst, Module};
use carat_kop::kernel::{Kernel, KernelConfig, Verification};
use carat_kop::policy::PolicyModule;

/// A canonical element walk plus scalar `@g` traffic. The optimized build
/// carries one range obligation (the `%p` walk) and one elide obligation
/// (the `store` guard widened into the `load @g` guard). The extra `@g`
/// load in `exit` keeps a guard the loop body does *not* dominate, which
/// the dominance-forgery test points an elide at.
const SRC: &str = r#"
module "mut"

global @g : i64 = 7

define void @walk(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %g0 = load i64, ptr @g
  store i64 %v, ptr @g
  %i2 = add i64 %i, 1
  br %head
exit:
  %gz = load i64, ptr @g
  ret void
}
"#;

fn trusted_key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

fn static_kernel() -> Kernel {
    Kernel::boot(
        Arc::new(PolicyModule::new()),
        vec![trusted_key()],
        KernelConfig {
            require_signature: false,
            verification: Verification::Static,
            ..KernelConfig::default()
        },
    )
}

/// Compile `SRC` optimized and return the signed container (whose
/// attestation embeds the honest ledger) plus the optimized IR.
fn optimized_build() -> (SignedModule, Module) {
    let m = parse_module(SRC).unwrap();
    let out = compile_module(m, &CompileOptions::optimized(), &trusted_key()).unwrap();
    let ir = parse_module(&out.signed.ir_text).unwrap();
    (out.signed, ir)
}

/// Re-sign `signed` with `obligations` swapped in. Models a compromised
/// or buggy optimizer that holds the real signing key: the MAC verifies,
/// so only the validator stands between the forged ledger and the kernel.
fn resign_with_ledger(signed: &SignedModule, ir: &Module, obligations: String) -> SignedModule {
    let mut attestation = signed.attestation.clone();
    attestation.obligations = obligations;
    SignedModule::sign(ir, attestation, &trusted_key())
}

/// Assert the corrupt container is rejected at both enforcement points
/// with a message carrying `code`'s name (e.g. `"KA006"`).
fn assert_rejected_everywhere(signed: &SignedModule, ir: &Module, code: LintCode) {
    let code_str = format!("{code:?}");
    let code_tag = match code {
        LintCode::ObligationUnfounded => "KA006",
        LintCode::RangeUnproven => "KA007",
        LintCode::ObligationDominance => "KA008",
        other => panic!("unexpected code under test: {other:?}"),
    };

    // Compile-time: the standalone validator re-derives the claims.
    let ledger = ObligationLedger::parse(&signed.attestation.obligations).unwrap();
    let report = validate_module(ir, &ledger);
    assert!(
        !report.is_clean(),
        "validator accepted corrupt ledger ({code_str})"
    );
    assert!(
        report.with_code(code).next().is_some(),
        "expected {code_tag} in:\n{}",
        report.summary()
    );

    // Signing boundary: container verification replays the same ledger.
    let err = signed.verify(&[trusted_key()]).unwrap_err();
    let SigningError::AttestationMismatch(msg) = err else {
        panic!("expected AttestationMismatch, got {err:?}");
    };
    assert!(msg.contains(code_tag), "{code_tag} missing from: {msg}");

    // Insmod: static verification replays the ledger once more and must
    // refuse to link the module.
    let mut kernel = static_kernel();
    let err = kernel.insmod(signed).unwrap_err();
    let KernelError::StaticVerification(msg) = err else {
        panic!("expected StaticVerification, got {err:?}");
    };
    assert!(msg.contains(code_tag), "{code_tag} missing from: {msg}");
}

/// Pull the single line starting with `kind ` out of the ledger text.
fn ledger_line(signed: &SignedModule, kind: &str) -> String {
    signed
        .attestation
        .obligations
        .lines()
        .find(|l| l.starts_with(kind))
        .unwrap_or_else(|| panic!("no {kind:?} obligation in honest ledger"))
        .to_string()
}

#[test]
fn honest_optimized_build_passes_every_checkpoint() {
    // Baseline sanity: before any mutation, the exact same container is
    // accepted everywhere, so the rejections below isolate the corruption.
    let (signed, ir) = optimized_build();
    assert!(signed.attestation.guards_covered);
    assert!(!signed.attestation.guards_strict);
    let ledger = ObligationLedger::parse(&signed.attestation.obligations).unwrap();
    assert!(
        ledger.obligations.len() >= 2,
        "expected a range and an elide obligation, got: {}",
        signed.attestation.obligations
    );
    assert!(validate_module(&ir, &ledger).is_clean());
    signed.verify(&[trusted_key()]).unwrap();
    static_kernel().insmod(&signed).unwrap();
}

#[test]
fn dropped_guard_with_surviving_obligation_is_rejected_ka006() {
    // Corruption 1: the optimizer "dropped" the surviving guard the elide
    // cites — the obligation now points at an instruction slot that holds
    // no guard. Redirect the elide's guard reference past the end of its
    // block, exactly what a deleted guard line does to every later index.
    let (signed, ir) = optimized_build();
    let elide = ledger_line(&signed, "elide ");
    let guard_tok = elide
        .split_whitespace()
        .find(|t| t.starts_with("guard="))
        .unwrap()
        .to_string();
    let forged = signed
        .attestation
        .obligations
        .replace(&guard_tok, "guard=body#99");
    assert_ne!(forged, signed.attestation.obligations);
    let corrupt = resign_with_ledger(&signed, &ir, forged);
    assert_rejected_everywhere(&corrupt, &ir, LintCode::ObligationUnfounded);
}

#[test]
fn forged_wider_range_is_rejected_ka007() {
    // Corruption 2: the range obligation claims a 16-byte stride over an
    // 8-byte walk — twice the memory the loop actually touches. The
    // validator recomputes `trip_count · stride` from the IR and refuses.
    let (signed, ir) = optimized_build();
    let range = ledger_line(&signed, "range ");
    assert!(
        range.contains("stride=8"),
        "fixture stride changed: {range}"
    );
    let forged = signed
        .attestation
        .obligations
        .replace("stride=8", "stride=16");
    let corrupt = resign_with_ledger(&signed, &ir, forged);
    assert_rejected_everywhere(&corrupt, &ir, LintCode::RangeUnproven);
}

#[test]
fn non_dominating_guard_citation_is_rejected_ka008() {
    // Corruption 3: an elide citing the widened `@g` guard in `body` as
    // the dominator of the `@g` load in `exit`. The guard structurally
    // covers that access (same pointer, size 8, READ ⊆ RW), so only the
    // independent dominance recomputation can catch it: `body` does not
    // dominate `exit` (the loop may run zero times).
    let (signed, ir) = optimized_build();
    let elide = ledger_line(&signed, "elide ");
    let guard_tok = elide
        .split_whitespace()
        .find(|t| t.starts_with("guard="))
        .unwrap()
        .to_string();

    // Locate the guarded load in `exit` without hardcoding its slot.
    let f = ir.function("walk").unwrap();
    let exit = f.block_by_name("exit").unwrap();
    let load_idx = f
        .block(exit)
        .insts
        .iter()
        .position(|&iid| matches!(f.inst(iid), Inst::Load { .. }))
        .unwrap();

    let forged = format!(
        "{}\nelide fn=walk {} access=exit#{} size=8 flags=1",
        signed.attestation.obligations.trim_end(),
        guard_tok,
        load_idx,
    );
    let corrupt = resign_with_ledger(&signed, &ir, forged);
    assert_rejected_everywhere(&corrupt, &ir, LintCode::ObligationDominance);
}

#[test]
fn unparseable_ledger_is_rejected_at_both_checkpoints() {
    // Garbage ledger text: the parser itself refuses, before any replay.
    let (signed, ir) = optimized_build();
    let corrupt = resign_with_ledger(&signed, &ir, "obligations-v1\nwarp fn=walk".to_string());

    let err = corrupt.verify(&[trusted_key()]).unwrap_err();
    let SigningError::AttestationMismatch(msg) = err else {
        panic!("expected AttestationMismatch, got {err:?}");
    };
    assert!(msg.contains("obligation ledger invalid"), "got: {msg}");

    let err = static_kernel().insmod(&corrupt).unwrap_err();
    let KernelError::StaticVerification(msg) = err else {
        panic!("expected StaticVerification, got {err:?}");
    };
    assert!(msg.contains("obligation ledger invalid"), "got: {msg}");
}

#[test]
fn obligation_for_still_missing_guard_is_rejected_ka001() {
    // A ledger whose obligations all validate cannot launder an access
    // that simply lost its guard with *no* covering claim: strip the
    // range obligation and the per-iteration walk becomes unguarded.
    let (signed, ir) = optimized_build();
    let kept: Vec<&str> = signed
        .attestation
        .obligations
        .lines()
        .filter(|l| !l.starts_with("range "))
        .collect();
    let corrupt = resign_with_ledger(&signed, &ir, kept.join("\n"));

    let ledger = ObligationLedger::parse(&corrupt.attestation.obligations).unwrap();
    let report = validate_module(&ir, &ledger);
    assert!(report.with_code(LintCode::UnguardedAccess).next().is_some());

    let err = static_kernel().insmod(&corrupt).unwrap_err();
    let KernelError::StaticVerification(msg) = err else {
        panic!("expected StaticVerification, got {err:?}");
    };
    assert!(msg.contains("KA001"), "got: {msg}");
}

// ---------------------------------------------------------------------
// Inline-bounds (promoted container) mutations: the profile-directed
// tier bakes a grant's `[lo, hi)` into the ledger as an `inline`
// obligation citing the snapshot generation it was lifted from. The
// validator treats the immediates as a *claim* and recomputes them from
// the grant oracle (the policy's retained snapshot history), so a
// forged bound (KA009), a stale citation (KA010), and a bound lifted
// from another site's grant (KA011) are each refused — at the signing
// boundary (`verify_with_grants`) and again at insmod.
// ---------------------------------------------------------------------

use carat_kop::core::{Protection, Region, Size, VAddr};

/// Region A: where the hot site's profiled envelope actually lives.
const GRANT_A: (u64, u64) = (0x1000, 0x2000);
/// Region B: a different, real grant of the same generation — the
/// wrong-site forgery bakes this bound.
const GRANT_B: (u64, u64) = (0x8000, 0x9000);

/// Boot a static-verification kernel over a policy holding grants A and
/// B, and return the kernel plus the shared policy and its generation.
fn promoted_kernel() -> (Kernel, Arc<PolicyModule>, u64) {
    let pm = Arc::new(PolicyModule::new());
    let kernel = Kernel::boot(
        Arc::clone(&pm),
        vec![trusted_key()],
        KernelConfig {
            require_signature: false,
            verification: Verification::Static,
            ..KernelConfig::default()
        },
    );
    for (lo, hi) in [GRANT_A, GRANT_B] {
        pm.add_region(Region::new(VAddr(lo), Size(hi - lo), Protection::READ_WRITE).unwrap())
            .unwrap();
    }
    let gen = pm.store_generation();
    (kernel, pm, gen)
}

/// The `block#index` citation of the first guard call in `@walk`.
fn first_guard_ref(ir: &Module) -> String {
    let f = ir.function("walk").unwrap();
    f.blocks
        .iter()
        .find_map(|b| {
            b.insts
                .iter()
                .position(|&iid| {
                    matches!(f.inst(iid), Inst::Call { callee, args, .. }
                        if callee == "carat_guard" && args.len() == 3)
                })
                .map(|i| format!("{}#{i}", b.name))
        })
        .expect("optimized build keeps at least one guard")
}

/// Re-sign the honest optimized container with one `inline` obligation
/// appended (upgrading the ledger header to v2) — the container shape
/// `Kernel::promote_hot` attests, built by hand so each field can be
/// forged independently.
fn resign_with_inline(
    signed: &SignedModule,
    ir: &Module,
    guard: &str,
    lo: u64,
    hi: u64,
    gen: u64,
    env: (u64, u64),
) -> SignedModule {
    let base = signed
        .attestation
        .obligations
        .replace(ObligationLedger::HEADER, ObligationLedger::HEADER_V2);
    let forged = format!(
        "{}inline fn=walk guard={guard} lo={lo} hi={hi} flags=3 gen={gen} elo={} ehi={}\n",
        base, env.0, env.1,
    );
    let mut attestation = signed.attestation.clone();
    attestation.obligations = forged;
    attestation.inline_obligations = 1;
    SignedModule::sign(ir, attestation, &trusted_key())
}

/// Assert the promoted container is rejected by the grant-aware signing
/// check and by insmod, both naming `code_tag`.
fn assert_inline_rejected(signed: &SignedModule, pm: &Arc<PolicyModule>, code_tag: &str) {
    let grants = |g: u64| pm.regions_at(g);
    let err = signed
        .verify_with_grants(&[trusted_key()], Some(&grants))
        .unwrap_err();
    let SigningError::AttestationMismatch(msg) = err else {
        panic!("expected AttestationMismatch, got {err:?}");
    };
    assert!(msg.contains(code_tag), "{code_tag} missing from: {msg}");

    let (mut kernel, _, _) = promoted_kernel_with(pm);
    let err = kernel.insmod(signed).unwrap_err();
    let KernelError::StaticVerification(msg) = err else {
        panic!("expected StaticVerification, got {err:?}");
    };
    assert!(msg.contains(code_tag), "{code_tag} missing from: {msg}");
}

/// Boot a fresh static kernel over an *existing* policy (so the forged
/// container faces the same grant history the oracle answered from).
fn promoted_kernel_with(pm: &Arc<PolicyModule>) -> (Kernel, Arc<PolicyModule>, u64) {
    let kernel = Kernel::boot(
        Arc::clone(pm),
        vec![trusted_key()],
        KernelConfig {
            require_signature: false,
            verification: Verification::Static,
            ..KernelConfig::default()
        },
    );
    let gen = pm.store_generation();
    (kernel, Arc::clone(pm), gen)
}

#[test]
fn honest_promoted_container_passes_with_a_grant_oracle() {
    let (mut kernel, pm, gen) = promoted_kernel();
    let (signed, ir) = optimized_build();
    let guard = first_guard_ref(&ir);
    let honest = resign_with_inline(
        &signed,
        &ir,
        &guard,
        GRANT_A.0,
        GRANT_A.1,
        gen,
        (0x1200, 0x1260),
    );

    // Without the oracle the citation is unverifiable — the signing
    // boundary refuses rather than trusting the immediates (KA010).
    let err = honest.verify(&[trusted_key()]).unwrap_err();
    let SigningError::AttestationMismatch(msg) = err else {
        panic!("expected AttestationMismatch, got {err:?}");
    };
    assert!(msg.contains("KA010"), "got: {msg}");

    // With it, the bound is re-derived and the container is accepted at
    // both enforcement points.
    let grants = |g: u64| pm.regions_at(g);
    honest
        .verify_with_grants(&[trusted_key()], Some(&grants))
        .unwrap();
    kernel.insmod(&honest).unwrap();
}

#[test]
fn forged_inline_bound_is_rejected_ka009() {
    // The baked interval is widened past the real grant: it equals no
    // region generation `gen` ever held, so the recomputation refuses.
    let (_, pm, gen) = promoted_kernel();
    let (signed, ir) = optimized_build();
    let guard = first_guard_ref(&ir);
    let corrupt = resign_with_inline(
        &signed,
        &ir,
        &guard,
        GRANT_A.0,
        GRANT_A.1 + 0x100,
        gen,
        (0x1200, 0x1260),
    );
    assert_inline_rejected(&corrupt, &pm, "KA009");
}

#[test]
fn stale_generation_citation_is_rejected_ka010() {
    // The citation names a generation the snapshot history never
    // retained — a bound the validator cannot recompute is a bound the
    // kernel does not trust, even though the immediates happen to match
    // a real current grant.
    let (_, pm, gen) = promoted_kernel();
    let (signed, ir) = optimized_build();
    let guard = first_guard_ref(&ir);
    let corrupt = resign_with_inline(
        &signed,
        &ir,
        &guard,
        GRANT_A.0,
        GRANT_A.1,
        gen + 1_000,
        (0x1200, 0x1260),
    );
    assert_inline_rejected(&corrupt, &pm, "KA010");
}

#[test]
fn wrong_site_bound_is_rejected_ka011() {
    // The immediates are lifted from grant B — a real region of the
    // cited generation — while the site's profiled envelope lives in
    // grant A. The bound does not cover the envelope, so admitting with
    // it would answer for the wrong site.
    let (_, pm, gen) = promoted_kernel();
    let (signed, ir) = optimized_build();
    let guard = first_guard_ref(&ir);
    let corrupt = resign_with_inline(
        &signed,
        &ir,
        &guard,
        GRANT_B.0,
        GRANT_B.1,
        gen,
        (0x1200, 0x1260),
    );
    assert_inline_rejected(&corrupt, &pm, "KA011");
}

#[test]
fn inline_count_mismatch_is_rejected_at_signing() {
    // The v6 attestation binds the inline-obligation count; a ledger
    // that grew an inline claim the count does not admit is refused
    // before any validation replay.
    let (_, pm, gen) = promoted_kernel();
    let (signed, ir) = optimized_build();
    let guard = first_guard_ref(&ir);
    let mut forged = resign_with_inline(
        &signed,
        &ir,
        &guard,
        GRANT_A.0,
        GRANT_A.1,
        gen,
        (0x1200, 0x1260),
    );
    forged.attestation.inline_obligations = 0;
    let forged = SignedModule::sign(&ir, forged.attestation, &trusted_key());
    let grants = |g: u64| pm.regions_at(g);
    let err = forged
        .verify_with_grants(&[trusted_key()], Some(&grants))
        .unwrap_err();
    let SigningError::AttestationMismatch(msg) = err else {
        panic!("expected AttestationMismatch, got {err:?}");
    };
    assert!(msg.contains("inline obligation count"), "got: {msg}");
}
