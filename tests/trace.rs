//! End-to-end kop-trace: guard checks made observable.
//!
//! The tracing pipeline the paper's tooling story needs: compiler-
//! assigned guard-site identities flow through the attestation, the
//! loader registers them at insmod, the interpreter attributes every
//! `carat_guard` check to its site, and the consumers (per-site
//! profiles, the `/dev/trace` chardev, the perfetto exporter) all agree
//! with each other and with the interpreter's own counters.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::KernelError;
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{PolicyModule, ViolationAction};
use carat_kop::trace::{self, Producer, TraceEvent};

const DRIVERISH_SRC: &str = r#"
module "drv"
global @stats : { i64, i64 } = zero
define i64 @touch(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  store i64 %i, ptr %p
  %v = load i64, ptr %p
  %pk.p = gep { i64, i64 }, ptr @stats, i64 0, i32 0
  %pk = load i64, ptr %pk.p
  %pk2 = add i64 %pk, %v
  store i64 %pk2, ptr %pk.p
  %i.next = add i64 %i, 1
  br %head
exit:
  %r.p = gep { i64, i64 }, ptr @stats, i64 0, i32 0
  %r = load i64, ptr %r.p
  ret i64 %r
}
"#;

const CREDSCAN_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @probe(i64 %addr) {
entry:
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  store i64 %word, ptr @found
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "trace-e2e")
}

/// Boot, load `DRIVERISH_SRC` with tracing enabled, run one `touch`
/// pass, and return the kernel plus the interpreter's guard count.
fn traced_touch_run(n: u64) -> (Kernel, u64) {
    let out = compile_module(
        parse_module(DRIVERISH_SRC).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(carat_kop::policy::DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.tracer().set_enabled(true);
    kernel.insmod(&out.signed).expect("insmod");
    let buf = kernel.kmalloc(n * 8).unwrap();
    let guards = {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let r = interp.call("drv", "touch", &[buf.raw(), n]).unwrap();
        assert_eq!(r, Some((0..n).sum::<u64>()));
        interp.stats().guards
    };
    (kernel, guards)
}

/// The reconciliation guarantee: per-site histogram totals equal the
/// interpreter's aggregate guard count exactly — the profiler sits off
/// the ring, so wraparound can never lose a check.
#[test]
fn per_site_totals_reconcile_with_interp_guard_count() {
    let (kernel, guards) = traced_touch_run(64);
    let tracer = kernel.tracer();
    assert_eq!(guards, 257, "64 iterations × 4 accesses + final load");
    assert_eq!(tracer.total_checks(), guards);
    // Sum of per-site hits — and of per-site histogram buckets — both
    // reconcile with the same aggregate.
    let snap = tracer.profile_snapshot();
    let hit_sum: u64 = snap.iter().map(|(_, p)| p.hits).sum();
    let bucket_sum: u64 = snap.iter().map(|(_, p)| p.hist.iter().sum::<u64>()).sum();
    assert_eq!(hit_sum, guards);
    assert_eq!(bucket_sum, guards);
    // Every profiled site resolves to a labelled site in @touch.
    for (meta, prof) in &snap {
        assert!(meta.label.starts_with("touch/g"), "label {}", meta.label);
        assert_eq!(meta.module, "drv");
        assert!(prof.hits > 0);
        assert!(prof.total_ns >= prof.hits, "at least 1 ns per check");
    }
    // The hot loop has 4 guard sites doing 64 hits each; the exit load
    // does one. Per-site attribution must reflect that shape.
    let mut hits: Vec<u64> = snap.iter().map(|(_, p)| p.hits).collect();
    hits.sort_unstable();
    assert_eq!(hits, vec![1, 64, 64, 64, 64]);
}

/// The ring holds paired GuardEnter/GuardExit events from the interp
/// producer with gap-free sequence numbers (capacity is larger than the
/// event count here, so nothing is dropped).
#[test]
fn ring_pairs_guard_events_with_gap_free_seqs() {
    let (kernel, guards) = traced_touch_run(8);
    let snap = kernel.tracer().snapshot();
    assert_eq!(snap.total_drops(), 0);
    let interp_events: Vec<_> = snap
        .records
        .iter()
        .filter(|r| r.producer == Producer::Interp)
        .collect();
    let enters = interp_events
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::GuardEnter { .. }))
        .count() as u64;
    let exits = interp_events
        .iter()
        .filter(|r| matches!(r.event, TraceEvent::GuardExit { .. }))
        .count() as u64;
    assert_eq!(enters, guards);
    assert_eq!(exits, guards);
    for (i, r) in interp_events.iter().enumerate() {
        assert_eq!(r.seq, i as u64, "per-producer seqs are gap-free");
    }
    // The loader's ModuleLoad event is in the ring too.
    assert!(snap.records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::ModuleLoad { module, guard_sites } if module == "drv" && *guard_sites > 0
    )));
}

/// A quarantine run exports structurally valid perfetto JSON: metadata
/// track names, balanced B/E spans, monotonic timestamps per track, and
/// the Violation/ModuleQuarantine instants from the kernel producer.
#[test]
fn quarantine_run_exports_valid_perfetto_json() {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.tracer().set_enabled(true);

    let out = compile_module(
        parse_module(CREDSCAN_SRC).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .expect("compiles");
    kernel.insmod(&out.signed).expect("insmod");

    // Forbidden probes (user half) until the violation budget quarantines
    // the module.
    let mut quarantined = false;
    {
        let mut interp = Interp::new(&mut kernel).expect("interp");
        for _ in 0..8 {
            match interp.call("credscan", "probe", &[0x40_0000]) {
                Ok(_) => {}
                Err(KernelError::ModuleQuarantined { module, .. }) => {
                    assert_eq!(module, "credscan");
                    quarantined = true;
                    break;
                }
                Err(e) => panic!("unexpected error: {e}"),
            }
        }
    }
    assert!(quarantined, "violation budget must trip");

    let tracer = kernel.tracer();
    let snap = tracer.snapshot();
    assert!(snap.records.iter().any(|r| {
        r.producer == Producer::Kernel && matches!(r.event, TraceEvent::Violation { .. })
    }));
    assert!(snap.records.iter().any(|r| matches!(
        &r.event,
        TraceEvent::ModuleQuarantine { module, violations } if module == "credscan" && *violations > 0
    )));

    // Structural validation of the export (the same checks the unit
    // tests apply, here over a real quarantine trace).
    let events = trace::perfetto::export_events(tracer, &snap);
    trace::perfetto::validate_events(&events).expect("perfetto events valid");
    let json = trace::perfetto::to_json(&events);
    trace::perfetto::validate_json(&json).expect("perfetto JSON valid");
    assert!(json.contains("\"ph\": \"B\"") && json.contains("\"ph\": \"E\""));
    assert!(json.contains("module_quarantine"));
}

/// The `/dev/trace` chardev mirrors the tracefs UX end-to-end: enable
/// over ioctl, run guarded work, read back the top-sites report, the
/// counter registry (policy cells included), and the perfetto export.
#[test]
fn dev_trace_chardev_controls_and_reads_the_tracer() {
    let out = compile_module(
        parse_module(DRIVERISH_SRC).unwrap(),
        &CompileOptions::carat_kop(),
        &key(),
    )
    .expect("compiles");
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(carat_kop::policy::DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());

    let io = |kernel: &mut Kernel, req: &str| -> String {
        let resp = kernel
            .ioctl(carat_kop::kernel::TRACE_DEV, req.as_bytes())
            .unwrap_or_else(|e| panic!("ioctl {req:?}: {e}"));
        String::from_utf8(resp).expect("utf-8 response")
    };

    assert_eq!(io(&mut kernel, "tracing_on"), "0");
    assert_eq!(io(&mut kernel, "tracing_on 1"), "ok");
    assert_eq!(io(&mut kernel, "tracing_on"), "1");

    kernel.insmod(&out.signed).expect("insmod");
    let buf = kernel.kmalloc(16 * 8).unwrap();
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.call("drv", "touch", &[buf.raw(), 16]).unwrap();
    }

    let top = io(&mut kernel, "top 3");
    assert!(top.contains("touch/g"), "top report names sites:\n{top}");
    let counters = io(&mut kernel, "counters");
    assert!(
        counters.contains("policy.checks"),
        "policy cells registered at boot:\n{counters}"
    );
    let dump = io(&mut kernel, "trace");
    assert!(
        dump.contains("guard_exit"),
        "ring dump lists events:\n{dump}"
    );
    let perfetto = io(&mut kernel, "perfetto");
    trace::perfetto::validate_json(&perfetto).expect("chardev perfetto output valid");

    // clear drains the ring but keeps the clock running.
    io(&mut kernel, "clear");
    let empty = io(&mut kernel, "trace");
    assert!(!empty.contains("guard_exit"), "{empty}");
}
