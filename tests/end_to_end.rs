//! Cross-crate integration tests: the full CARAT KOP pipeline
//! (author → compile → sign → boot → ioctl policy → insmod → execute →
//! enforce), exercising every crate through the public umbrella API.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::error::ViolationKind;
use carat_kop::core::{AccessFlags, KernelError, Protection, Region, Size, VAddr};
use carat_kop::interp::Interp;
use carat_kop::ir::{parse_module, print_module};
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{
    DefaultAction, PolicyCmd, PolicyModule, PolicyResponse, StoreKind, ViolationAction,
};

const DRIVERISH_SRC: &str = r#"
module "drv"
global @stats : { i64, i64 } = zero
define i64 @touch(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  store i64 %i, ptr %p
  %v = load i64, ptr %p
  %pk.p = gep { i64, i64 }, ptr @stats, i64 0, i32 0
  %pk = load i64, ptr %pk.p
  %pk2 = add i64 %pk, %v
  store i64 %pk2, ptr %pk.p
  %i.next = add i64 %i, 1
  br %head
exit:
  %r.p = gep { i64, i64 }, ptr @stats, i64 0, i32 0
  %r = load i64, ptr %r.p
  ret i64 %r
}
"#;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "integration")
}

fn heap_region() -> Region {
    Region::new(
        VAddr(carat_kop::core::layout::DIRECT_MAP_BASE),
        Size(4 << 30),
        Protection::READ_WRITE,
    )
    .unwrap()
}

/// The full happy path, with the policy configured through the ioctl wire
/// protocol exactly as the paper's Figure 1 shows.
#[test]
fn full_pipeline_happy_path() {
    let module = parse_module(DRIVERISH_SRC).expect("parses");
    let accesses = module.memory_access_count();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).expect("compiles");
    assert_eq!(out.stats.get("guards_injected") as usize, accesses);

    let policy = Arc::new(PolicyModule::new());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());

    // Configure policy over the wire.
    let resp = kernel
        .ioctl("/dev/carat", &PolicyCmd::AddRegion(heap_region()).encode())
        .unwrap();
    assert_eq!(PolicyResponse::decode(&resp).unwrap(), PolicyResponse::Ok);

    // Insert and allow the module's data section.
    let loaded = kernel.insmod(&out.signed).expect("insmod");
    let data_rule = Region::new(
        loaded.data_base,
        Size(loaded.data_size.max(1)),
        Protection::READ_WRITE,
    )
    .unwrap();
    kernel
        .ioctl("/dev/carat", &PolicyCmd::AddRegion(data_rule).encode())
        .unwrap();

    let buf = kernel.kmalloc(64 * 8).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let r = interp.call("drv", "touch", &[buf.raw(), 64]).unwrap();
    assert_eq!(r, Some((0..64).sum::<u64>()));
    // 64 iterations × 4 accesses + final load = 257 guards.
    assert_eq!(interp.stats().guards, 257);
    let stats = kernel.policy().stats();
    assert_eq!(stats.checks, 257);
    assert_eq!(stats.denied(), 0);
}

/// §3.2: "This allows one guard function to be swapped for another without
/// having to recompile the guarded module" — the same signed container
/// runs under every policy structure.
#[test]
fn policy_structure_swap_without_recompile() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    for kind in StoreKind::ALL {
        let policy = Arc::new(PolicyModule::with_kind(kind));
        let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
        kernel
            .ioctl("/dev/carat", &PolicyCmd::AddRegion(heap_region()).encode())
            .unwrap();
        let loaded = kernel.insmod(&out.signed).expect("insmod");
        let data_rule = Region::new(
            loaded.data_base,
            Size(loaded.data_size.max(1)),
            Protection::READ_WRITE,
        )
        .unwrap();
        kernel
            .ioctl("/dev/carat", &PolicyCmd::AddRegion(data_rule).encode())
            .unwrap();
        let buf = kernel.kmalloc(8 * 8).unwrap();
        let mut interp = Interp::new(&mut kernel).unwrap();
        let r = interp.call("drv", "touch", &[buf.raw(), 8]).unwrap();
        assert_eq!(r, Some(28), "store kind {kind}");
        assert!(kernel.panicked().is_none(), "store kind {kind}");
    }
}

/// The violation path end to end: the module is stopped, the kernel
/// panics, the violation is logged with the right diagnosis.
#[test]
fn violation_panics_kernel_with_diagnosis() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    // User-half buffer: covered by the explicit NONE rule.
    let err = interp.call("drv", "touch", &[0x40_0000, 4]).unwrap_err();
    match err {
        KernelError::Panic { violation, .. } => {
            let v = violation.unwrap();
            assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
            assert!(v.flags.contains(AccessFlags::WRITE));
        }
        other => panic!("expected panic, got {other}"),
    }
    assert!(kernel.panicked().is_some());
    // Post-panic, the whole kernel API is down.
    assert!(kernel
        .ioctl("/dev/carat", &PolicyCmd::List.encode())
        .is_err());
    assert!(kernel.rmmod("drv").is_err());
}

/// Deny-mode (squash) keeps the kernel alive and the forbidden data
/// untouched.
#[test]
fn deny_mode_squashes_and_survives() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::LogAndDeny);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let r = interp.call("drv", "touch", &[0x40_0000, 4]).unwrap();
    let squashed = interp.stats().squashed;
    // All loads squashed to 0 → stats accumulate 0.
    assert_eq!(r, Some(0));
    assert!(kernel.panicked().is_none());
    assert!(squashed > 0);
    // Forbidden memory never written.
    assert_eq!(kernel.mem.read_uint(VAddr(0x40_0000), Size(8)).unwrap(), 0);
}

/// Unloading and reloading a module works and reuses the policy.
#[test]
fn rmmod_and_reload() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    kernel.insmod(&out.signed).unwrap();
    kernel.rmmod("drv").unwrap();
    assert!(kernel.module("drv").is_none());
    kernel.insmod(&out.signed).expect("reload after rmmod");
    let buf = kernel.kmalloc(64).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(
        interp.call("drv", "touch", &[buf.raw(), 2]).unwrap(),
        Some(1)
    );
}

/// The signed container round-trips through its printed IR: what the
/// kernel verifies is exactly what the compiler signed.
#[test]
fn signed_container_text_is_canonical() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).unwrap();
    let reparsed = parse_module(&out.signed.ir_text).unwrap();
    assert_eq!(print_module(&reparsed), out.signed.ir_text);
    let verified = out.signed.verify(&[key()]).unwrap();
    assert_eq!(print_module(&verified), out.signed.ir_text);
}

/// Baseline (unguarded) builds of the same module run with zero guard
/// checks — and are not protected.
#[test]
fn baseline_build_runs_without_checks() {
    let module = parse_module(DRIVERISH_SRC).unwrap();
    let out = compile_module(module, &CompileOptions::baseline(), &key()).unwrap();
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let loaded = kernel.insmod(&out.signed).unwrap();
    assert!(!loaded.is_protected);
    let buf = kernel.kmalloc(64).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.call("drv", "touch", &[buf.raw(), 4]).unwrap();
    assert_eq!(kernel.policy().stats().checks, 0);
}
