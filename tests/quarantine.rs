//! End-to-end: survive the violation.
//!
//! A rootkit-style module (the credscan scanner from
//! `examples/malicious_module.rs`) runs under `ViolationAction::Quarantine`
//! while a guarded e1000e TX workload shares the same policy module. The
//! rootkit must be killed and unloaded mid-run — kernel alive, violation
//! budget recorded — and the driver workload must deliver frames
//! byte-identical to a run where the rootkit never existed.

use std::sync::Arc;

use carat_kop::compiler::{compile_module, CompileOptions, CompilerKey};
use carat_kop::core::{KernelError, Size, VAddr};
use carat_kop::e1000e::device::VecSink;
use carat_kop::e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem};
use carat_kop::interp::Interp;
use carat_kop::ir::parse_module;
use carat_kop::kernel::{Kernel, KernelConfig};
use carat_kop::policy::{PolicyModule, ViolationAction};

const CREDSCAN_SRC: &str = r#"
module "credscan"
global @found : i64 = 0
define i64 @scan(i64 %start, i64 %len) {
entry:
  br %head
head:
  %off = phi i64 [ 0, %entry ], [ %off.next, %next ]
  %c = icmp ult i64 %off, %len
  condbr i1 %c, %body, %done
body:
  %addr = add i64 %start, %off
  %p = inttoptr i64 %addr to ptr
  %word = load i64, ptr %p
  %hit = icmp eq i64 %word, 0x6472777373617020
  condbr i1 %hit, %record, %next
record:
  store i64 %addr, ptr @found
  br %next
next:
  %off.next = add i64 %off, 8
  br %head
done:
  %r = load i64, ptr @found
  ret i64 %r
}
"#;

const SECRET_ADDR: u64 = 0x0060_0000;
const SECRET_WORD: u64 = 0x6472_7773_7361_7020;
const ROUNDS: usize = 6;
const FRAMES_PER_ROUND: usize = 10;
const DST: [u8; 6] = [0x52, 0x54, 0x00, 0x12, 0x34, 0x56];

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

fn guarded_driver(policy: Arc<PolicyModule>) -> E1000Driver<GuardedMem<Arc<PolicyModule>>> {
    let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::default()), policy);
    let mut drv = E1000Driver::probe(mem).expect("probe");
    drv.up().expect("up");
    drv
}

/// One round of guarded TX work: deterministic payloads, synchronous DMA.
fn tx_round(
    drv: &mut E1000Driver<GuardedMem<Arc<PolicyModule>>>,
    sink: &mut VecSink,
    round: usize,
) {
    for i in 0..FRAMES_PER_ROUND {
        let payload: Vec<u8> = (0..114).map(|b| (round * 31 + i * 7 + b) as u8).collect();
        drv.xmit_and_flush(DST, 0x0800, &payload, sink)
            .expect("guarded TX must keep working");
    }
}

/// The same TX workload with no rootkit anywhere near the system.
fn fault_free_frames() -> Vec<Vec<u8>> {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut drv = guarded_driver(policy);
    let mut sink = VecSink::default();
    for round in 0..ROUNDS {
        tx_round(&mut drv, &mut sink, round);
    }
    sink.frames
}

#[test]
fn rootkit_is_quarantined_while_driver_keeps_delivering() {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);

    let mut kernel = Kernel::boot(policy.clone(), vec![key()], KernelConfig::default());
    kernel
        .mem
        .write_uint(VAddr(SECRET_ADDR), Size(8), SECRET_WORD)
        .expect("plant secret");

    let module = parse_module(CREDSCAN_SRC).expect("parse");
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).expect("compile");
    kernel.insmod(&out.signed).expect("insmod");
    assert!(kernel.module("credscan").is_some());

    // The driver shares the kernel's policy module but runs its own NIC —
    // the concurrent workload the quarantine must not disturb.
    let mut drv = guarded_driver(policy.clone());
    let mut sink = VecSink::default();

    let mut quarantined_at_round = None;
    {
        let mut interp = Interp::new(&mut kernel).expect("interp");
        for round in 0..ROUNDS {
            tx_round(&mut drv, &mut sink, round);
            // Rounds 1..=3: one forbidden 8-byte probe per round. The
            // default violation budget is 3: two squashed probes, then the
            // third quarantines the module mid-run.
            if (1..=3).contains(&round) {
                match interp.call("credscan", "scan", &[SECRET_ADDR, 8]) {
                    Ok(Some(found)) => {
                        assert_eq!(found, 0, "squashed probe must never see the secret");
                        assert!(quarantined_at_round.is_none());
                    }
                    Err(KernelError::ModuleQuarantined { module, violation }) => {
                        assert_eq!(module, "credscan");
                        assert_eq!(violation.addr, VAddr(SECRET_ADDR));
                        quarantined_at_round = Some(round);
                    }
                    other => panic!("unexpected scan outcome: {other:?}"),
                }
            } else if quarantined_at_round.is_some() {
                // The module is gone: further calls fail cleanly, the
                // kernel does not.
                match interp.call("credscan", "scan", &[SECRET_ADDR, 8]) {
                    Err(KernelError::NoSuchModule(m)) => assert_eq!(m, "credscan"),
                    other => panic!("expected NoSuchModule after quarantine, got {other:?}"),
                }
            }
        }
    }

    // The violation budget (3) was exhausted on the third probing round.
    assert_eq!(quarantined_at_round, Some(3));

    // Kernel alive; only the offender died.
    assert!(kernel.panicked().is_none(), "kernel must not panic");
    kernel.check_alive().expect("kernel keeps running");
    assert!(kernel.module("credscan").is_none(), "module unloaded");
    assert!(kernel.symbols.get("scan").is_none(), "no symbols remain");
    assert!(kernel.is_quarantined("credscan"));
    let rec = &kernel.quarantine_records()[0];
    assert_eq!(rec.module, "credscan");
    assert_eq!(rec.violations, 3, "budget recorded");
    assert_eq!(kernel.violation_count("credscan"), 3);
    assert!(
        kernel.dmesg().iter().any(|l| l.contains("Oops")),
        "quarantine leaves an oops in dmesg"
    );

    // The concurrent workload was untouched: every frame delivered,
    // byte-identical to the fault-free run.
    let clean = fault_free_frames();
    assert_eq!(sink.frames.len(), ROUNDS * FRAMES_PER_ROUND);
    assert_eq!(
        sink.frames, clean,
        "delivered frames must match the fault-free run byte for byte"
    );
    assert_eq!(drv.stats().resets, 0, "driver never needed recovery");
}

#[test]
fn quarantine_does_not_fire_under_budget() {
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());

    let module = parse_module(CREDSCAN_SRC).expect("parse");
    let out = compile_module(module, &CompileOptions::carat_kop(), &key()).expect("compile");
    kernel.insmod(&out.signed).expect("insmod");

    let mut interp = Interp::new(&mut kernel).expect("interp");
    for _ in 0..2 {
        let r = interp
            .call("credscan", "scan", &[SECRET_ADDR, 8])
            .expect("under budget: call survives")
            .expect("returns");
        assert_eq!(r, 0);
    }
    assert_eq!(kernel.violation_count("credscan"), 2);
    assert!(!kernel.is_quarantined("credscan"));
    assert!(kernel.module("credscan").is_some());
}
