//! # carat-kop
//!
//! Umbrella crate for the CARAT KOP reproduction: re-exports every subsystem
//! so downstream users (and the examples in `examples/`) can depend on a
//! single crate.
//!
//! The pipeline, end to end:
//!
//! 1. [`ir`] — author or parse a kernel module in KIR (a miniature LLVM-like
//!    IR).
//! 2. [`compiler`] — run the CARAT KOP guard-injection pass, attest that the
//!    module has no inline assembly, and sign it.
//! 3. [`kernel`] — insert the signed module into the simulated kernel, which
//!    validates the signature and links `carat_guard` against the policy
//!    module.
//! 4. [`policy`] — configure the memory-access policy ("firewall rules")
//!    through the ioctl interface.
//! 5. [`interp`] — run module code; every load/store now calls the guard.
//! 6. [`e1000e`]/[`net`]/[`sim`] — the paper's evaluation vehicle: a
//!    simulated e1000e NIC driver whose transmit path is measured with and
//!    without guards.

pub use kop_analysis as analysis;
pub use kop_compiler as compiler;
pub use kop_core as core;
pub use kop_e1000e as e1000e;
pub use kop_faultline as faultline;
pub use kop_interp as interp;
pub use kop_ir as ir;
pub use kop_kernel as kernel;
pub use kop_net as net;
pub use kop_policy as policy;
pub use kop_sim as sim;
pub use kop_super as supervisor;
pub use kop_trace as trace;
pub use kop_vm as vm;
