//! Offline stand-in for the `rand` crate (0.9-style API surface).
//!
//! Implements only what this workspace uses: `rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::random::<T>()` for a handful
//! of primitive types. The generator is splitmix64 — deterministic,
//! fast, and statistically fine for simulation jitter; it makes no
//! compatibility promise with upstream rand's stream.

/// Types that can be produced uniformly at random by [`Rng::random`].
pub trait Standard: Sized {
    fn from_u64(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for u8 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 56) as u8
    }
}

impl Standard for bool {
    fn from_u64(bits: u64) -> Self {
        bits >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in [0, 1): 53 high bits scaled down, like upstream.
    fn from_u64(bits: u64) -> Self {
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Core RNG interface: a stream of `u64`s plus typed convenience draws.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Extension methods over [`RngCore`], mirroring `rand::Rng`.
pub trait Rng: RngCore {
    fn random<T: Standard>(&mut self) -> T {
        T::from_u64(self.next_u64())
    }

    /// Uniform draw in `[0, bound)`.
    fn random_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded draw (Lemire); bias is negligible here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction from seeds, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.random::<u64>(), b.random::<u64>());
    }

    #[test]
    fn bounded_draw_in_range() {
        let mut r = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            assert!(r.random_below(10) < 10);
        }
        assert_eq!(r.random_below(0), 0);
    }
}
