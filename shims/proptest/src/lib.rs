//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest API this workspace uses:
//! the [`Strategy`] trait with `prop_map`/`boxed`, [`Just`], unions
//! (`prop_oneof!`), `any::<T>()` over a small [`Arbitrary`] universe
//! (including `prop::sample::Index`), `collection::vec`, range and
//! tuple and string-pattern strategies, plus the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, and `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//! * no shrinking — a failing case reports its inputs via panic message
//!   only through whatever the assertion formats;
//! * deterministic generation — each test's RNG is seeded from a hash of
//!   the test name, so runs are reproducible without a persistence file;
//! * string "regex" strategies only honor the length part of the
//!   pattern (`*` or `{lo,hi}`) and draw printable characters, which is
//!   exactly what the fuzz tests here need.

use std::fmt;
use std::ops::Range;

pub mod test_runner {
    use std::fmt;

    /// Deterministic splitmix64 RNG used to drive generation.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from a test name (FNV-1a hash).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            TestRng { state: h | 1 }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`; 0 when `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            if bound == 0 {
                return 0;
            }
            ((self.next_u64() as u128 * bound as u128) >> 64) as u64
        }

        /// Uniform f64 in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }

    /// Why a single generated case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// `prop_assume!` filtered the case out; it does not count as a failure.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
                TestCaseError::Fail(m) => write!(f, "failed: {m}"),
            }
        }
    }

    /// Per-test configuration. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestCaseError, TestRng};

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase this strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (**self).generate(rng)
    }
}

/// Always produces a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Uniform choice among type-erased alternatives (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

impl<T> fmt::Debug for Union<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.arms.len())
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as u64).saturating_sub(self.start as u64);
                assert!(span > 0, "empty range strategy {}..{}", self.start, self.end);
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end as i128 - self.start as i128).max(0) as u64;
                assert!(span > 0, "empty range strategy {}..{}", self.start, self.end);
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

signed_range_strategy!(i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0, B.1);
    (A.0, B.1, C.2);
    (A.0, B.1, C.2, D.3);
    (A.0, B.1, C.2, D.3, E.4);
    (A.0, B.1, C.2, D.3, E.4, F.5);
}

/// String "regex" pattern strategy. Only the length suffix is honored
/// (`*` → 0..64, `{lo,hi}` → lo..=hi); characters are drawn from a
/// printable set with a few multi-byte code points mixed in.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        const EXTRA: &[char] = &['é', 'λ', '中', '\u{2028}'];
        let (lo, hi) = parse_len_bounds(self);
        let len = lo + rng.below((hi - lo + 1) as u64) as usize;
        let mut s = String::with_capacity(len);
        for _ in 0..len {
            // Mostly printable ASCII, occasionally multi-byte.
            if rng.below(16) == 0 {
                s.push(EXTRA[rng.below(EXTRA.len() as u64) as usize]);
            } else {
                s.push((0x20 + rng.below(0x5f) as u8) as char);
            }
        }
        s
    }
}

/// Extract `(lo, hi)` length bounds from the tail of a pattern like
/// `\PC*` or `\PC{0,40}`.
fn parse_len_bounds(pattern: &str) -> (usize, usize) {
    if let Some(open) = pattern.rfind('{') {
        if let Some(close) = pattern.rfind('}') {
            if close > open {
                let inner = &pattern[open + 1..close];
                let mut parts = inner.splitn(2, ',');
                let lo = parts.next().and_then(|s| s.trim().parse().ok());
                let hi = parts.next().and_then(|s| s.trim().parse().ok());
                if let (Some(lo), Some(hi)) = (lo, hi) {
                    return (lo, hi);
                }
            }
        }
    }
    (0, 64)
}

pub mod arbitrary {
    use super::{Strategy, TestRng};
    use std::marker::PhantomData;

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() >> 63 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            rng.unit_f64()
        }
    }

    /// Strategy produced by [`any`].
    #[derive(Debug, Clone)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub use arbitrary::{any, Arbitrary};

pub mod sample {
    use super::arbitrary::Arbitrary;
    use super::TestRng;

    /// An index into a runtime-sized collection, as in
    /// `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Map onto `0..len`. Panics when `len == 0`, like upstream.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Self {
            Index(rng.next_u64())
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.len.end.saturating_sub(self.len.start).max(1);
            let n = self.len.start + rng.below(span as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::test_runner::{TestCaseError, TestRng};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        BoxedStrategy, Just, ProptestConfig, Strategy, Union,
    };

    /// Mirror of upstream's `prelude::prop` namespace module.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Defines deterministic property tests. Each `fn name(arg in strategy, ...)`
/// item becomes a `fn name()` that generates `cases` inputs and runs the
/// body on each.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut __rejected: u32 = 0;
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)*
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match __outcome {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                        __rejected += 1;
                        assert!(
                            __rejected < __cfg.cases * 8,
                            "too many prop_assume! rejections in {}",
                            stringify!($name)
                        );
                    }
                    ::std::result::Result::Err($crate::TestCaseError::Fail(__msg)) => {
                        panic!(
                            "proptest {} failed at case {}: {}",
                            stringify!($name), __case, __msg
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), __l, __r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(*__l == *__r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "{}\n  left: {:?}\n right: {:?}",
                format!($($fmt)+), __l, __r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if *__l == *__r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                __l
            )));
        }
    }};
}

/// Filter out the current case without failing the test.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject(
                stringify!($cond).to_string(),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair() -> impl Strategy<Value = (u64, u64)> {
        (0u64..10, 5u64..6).prop_map(|(a, b)| (a, b))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3u64..17, y in -4i64..4, z in 0.5f64..2.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-4..4).contains(&y));
            prop_assert!((0.5..2.0).contains(&z));
        }

        #[test]
        fn tuples_and_maps_compose(p in arb_pair()) {
            prop_assert!(p.0 < 10);
            prop_assert_eq!(p.1, 5);
        }

        #[test]
        fn oneof_covers_arms(v in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&v));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(any::<u8>(), 2..9)) {
            prop_assert!((2..9).contains(&v.len()));
        }

        #[test]
        fn index_in_bounds(ix in any::<prop::sample::Index>()) {
            prop_assert!(ix.index(7) < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }

        #[test]
        fn string_patterns_bounded(s in "\\PC{0,40}") {
            prop_assert!(s.chars().count() <= 40);
        }
    }

    #[test]
    fn determinism_same_name_same_stream() {
        let mut a = TestRng::deterministic("x");
        let mut b = TestRng::deterministic("x");
        for _ in 0..8 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest")]
    fn failing_property_panics() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn inner(x in 0u64..4) {
                prop_assert!(x > 100);
            }
        }
        inner();
    }
}
