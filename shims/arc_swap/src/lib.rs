//! Offline API-compatible stand-in for `arc-swap` (subset used by this
//! workspace): an atomically swappable `Arc<T>` whose readers never lock.
//!
//! # Algorithm
//!
//! The cell keeps a small fixed array of *slots*, each holding an
//! `Arc<T>` plus a striped pin count, and a `current` index naming the
//! live slot.
//!
//! **Reader** ([`ArcSwap::load`]): read `current`, increment a pin on
//! that slot, then re-read `current`. If it still names the same slot the
//! pin is effective — the writer cannot reclaim a pinned slot — and the
//! reader may dereference the slot's value for as long as it holds the
//! [`Guard`]. If `current` moved in between, the pin came too late to be
//! trusted: drop it and retry. The reader never dereferences a slot it
//! has not successfully pinned *while current*.
//!
//! **Writer** ([`ArcSwap::store`] / [`ArcSwap::swap`], serialized by an
//! internal mutex): pick a slot that is not current and spin until its
//! pin count is zero, install the new `Arc` into it, then publish it by
//! storing `current`. Reclamation of the value previously parked in that
//! slot is thereby *deferred* until every reader that could have seen it
//! has unpinned — the epoch/RCU discipline.
//!
//! # Why a racing reader is safe
//!
//! Suppose the writer scans a slot's pins, sees zero, and a reader pins
//! the slot immediately after. The reader then re-reads `current`:
//!
//! * If the re-read happens before the writer's `current` store, it fails
//!   (the slot is not current — the writer only ever writes non-current
//!   slots), so the reader unpins and retries without dereferencing.
//! * If it happens after, all ordering is `SeqCst`: the writer's value
//!   install precedes its `current` store in program order, so the reader
//!   observes the fully written new value.
//!
//! Either way no reader ever dereferences a slot while the writer is
//! mutating it, and once a reader holds an effective pin the writer's
//! zero-pin wait keeps the value alive. Pins are striped across padded
//! cache lines (indexed by a per-thread id) so concurrent readers do not
//! contend on one counter.

use std::cell::UnsafeCell;
use std::ops::Deref;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of value slots. Three non-current slots is plenty: the writer
/// is serialized and readers pin only transiently.
const SLOTS: usize = 4;

/// Pin-count stripes per slot (readers hash their thread onto one).
const STRIPES: usize = 8;

/// A cache-line padded pin counter, so reader pins on different stripes
/// do not false-share.
#[repr(align(64))]
#[derive(Default)]
struct PinStripe(AtomicUsize);

struct Slot<T> {
    /// Written only by the (mutex-serialized) writer, and only while the
    /// slot is not current and has zero pins.
    value: UnsafeCell<Option<Arc<T>>>,
    pins: [PinStripe; STRIPES],
}

impl<T> Slot<T> {
    fn empty() -> Slot<T> {
        Slot {
            value: UnsafeCell::new(None),
            pins: Default::default(),
        }
    }

    fn pinned(&self) -> usize {
        self.pins.iter().map(|p| p.0.load(Ordering::SeqCst)).sum()
    }
}

/// An `Arc<T>` that can be atomically replaced while readers dereference
/// it without taking any lock.
pub struct ArcSwap<T> {
    slots: [Slot<T>; SLOTS],
    current: AtomicUsize,
    writer: Mutex<()>,
}

// Readers on any thread dereference &T and clone Arc<T>; the writer
// moves Arc<T> between threads. Both need T: Send + Sync, same as
// Arc<T>: Send + Sync.
unsafe impl<T: Send + Sync> Send for ArcSwap<T> {}
unsafe impl<T: Send + Sync> Sync for ArcSwap<T> {}

/// The stripe this thread pins on.
fn stripe() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static STRIPE: usize = NEXT.fetch_add(1, Ordering::Relaxed) % STRIPES;
    }
    STRIPE.with(|s| *s)
}

impl<T> ArcSwap<T> {
    /// A cell holding `initial`.
    pub fn new(initial: Arc<T>) -> ArcSwap<T> {
        let slots = std::array::from_fn(|_| Slot::empty());
        let cell = ArcSwap {
            slots,
            current: AtomicUsize::new(0),
            writer: Mutex::new(()),
        };
        // No readers exist yet; installing directly is fine.
        unsafe { *cell.slots[0].value.get() = Some(initial) };
        cell
    }

    /// A cell holding `Arc::new(value)`.
    pub fn from_pointee(value: T) -> ArcSwap<T> {
        ArcSwap::new(Arc::new(value))
    }

    /// Lock-free read: pin the current value and borrow it. The value
    /// stays alive (and the slot unreclaimed) until the guard drops —
    /// keep guards short so writers can recycle slots.
    pub fn load(&self) -> Guard<'_, T> {
        let stripe = stripe();
        loop {
            let i = self.current.load(Ordering::SeqCst);
            let slot = &self.slots[i];
            slot.pins[stripe].0.fetch_add(1, Ordering::SeqCst);
            if self.current.load(Ordering::SeqCst) == i {
                // Effective pin: the writer will observe it before it
                // next touches this slot. Safe to dereference.
                let value = unsafe {
                    (*slot.value.get())
                        .as_ref()
                        .expect("current slot always holds a value")
                };
                return Guard {
                    slot,
                    stripe,
                    value,
                };
            }
            // The writer republished between our two loads; this pin is
            // not trustworthy. Retry on the new current slot.
            slot.pins[stripe].0.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Clone out the current `Arc` (pin only for the duration of the
    /// refcount bump).
    pub fn load_full(&self) -> Arc<T> {
        Arc::clone(self.load().as_arc())
    }

    /// Replace the value, dropping the previous `Arc` once no longer
    /// referenced.
    pub fn store(&self, new: Arc<T>) {
        drop(self.swap(new));
    }

    /// Replace the value and return the previously current `Arc`.
    pub fn swap(&self, new: Arc<T>) -> Arc<T> {
        let _serialize = self.writer.lock().expect("arc-swap writer lock");
        let cur = self.current.load(Ordering::SeqCst);
        // Pick a reclaimable slot: never the current one, and only once
        // unpinned. Readers pin non-current slots only transiently (the
        // recheck fails and they unpin), so this terminates.
        let mut target = (cur + 1) % SLOTS;
        loop {
            if self.slots[target].pinned() == 0 {
                break;
            }
            target = (target + 1) % SLOTS;
            if target == cur {
                target = (target + 1) % SLOTS;
            }
            std::hint::spin_loop();
        }
        // Deferred reclamation happens here: whatever Arc was parked in
        // this slot from an earlier reign is provably unobserved now
        // (zero pins, not current) and gets dropped by `replace`.
        unsafe { (*self.slots[target].value.get()).replace(new) };
        // The previously current value stays in its slot — readers may
        // still be mid-dereference on it — we only clone the handle.
        let prev = unsafe {
            (*self.slots[cur].value.get())
                .as_ref()
                .expect("current slot always holds a value")
                .clone()
        };
        self.current.store(target, Ordering::SeqCst);
        prev
    }
}

impl<T: std::fmt::Debug> std::fmt::Debug for ArcSwap<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_tuple("ArcSwap").field(&*self.load()).finish()
    }
}

/// A pinned borrow of the value in an [`ArcSwap`]. Dereferences to `T`.
pub struct Guard<'a, T> {
    slot: &'a Slot<T>,
    stripe: usize,
    value: &'a Arc<T>,
}

impl<'a, T> Guard<'a, T> {
    /// The borrowed `Arc` itself (e.g. to clone it out).
    pub fn as_arc(&self) -> &Arc<T> {
        self.value
    }
}

impl<T> Deref for Guard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.value
    }
}

impl<T> Drop for Guard<'_, T> {
    fn drop(&mut self) {
        self.slot.pins[self.stripe].0.fetch_sub(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    #[test]
    fn load_and_store_roundtrip() {
        let cell = ArcSwap::from_pointee(1u64);
        assert_eq!(*cell.load(), 1);
        cell.store(Arc::new(2));
        assert_eq!(*cell.load(), 2);
        assert_eq!(*cell.load_full(), 2);
    }

    #[test]
    fn swap_returns_previous() {
        let cell = ArcSwap::from_pointee("a".to_string());
        let prev = cell.swap(Arc::new("b".to_string()));
        assert_eq!(*prev, "a");
        assert_eq!(*cell.load(), "b");
    }

    #[test]
    fn guard_outlives_store() {
        let cell = ArcSwap::from_pointee(vec![1, 2, 3]);
        let g = cell.load();
        cell.store(Arc::new(vec![9]));
        // The pinned guard still sees the old value, un-reclaimed.
        assert_eq!(*g, vec![1, 2, 3]);
        drop(g);
        assert_eq!(*cell.load(), vec![9]);
    }

    #[test]
    fn many_stores_cycle_slots() {
        let cell = ArcSwap::from_pointee(0usize);
        for i in 1..100 {
            cell.store(Arc::new(i));
            assert_eq!(*cell.load(), i);
        }
    }

    #[test]
    fn concurrent_readers_never_see_torn_pairs() {
        // Each published value is a pair (a, b) with a + b == 1000; a torn
        // or dangling read would break the invariant (or crash).
        let cell = Arc::new(ArcSwap::from_pointee((0u64, 1000u64)));
        let stop = Arc::new(AtomicBool::new(false));
        let mut readers = Vec::new();
        for _ in 0..4 {
            let cell = Arc::clone(&cell);
            let stop = Arc::clone(&stop);
            readers.push(std::thread::spawn(move || {
                let mut reads = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let g = cell.load();
                    assert_eq!(g.0 + g.1, 1000);
                    reads += 1;
                }
                reads
            }));
        }
        for i in 0..20_000u64 {
            let a = i % 1000;
            cell.store(Arc::new((a, 1000 - a)));
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            assert!(r.join().unwrap() > 0);
        }
    }

    #[test]
    fn dropped_values_are_reclaimed() {
        // Arc strong counts prove deferred reclamation actually reclaims:
        // after enough stores, earlier values are dropped.
        let first = Arc::new(7u64);
        let cell = ArcSwap::new(Arc::clone(&first));
        for i in 0..SLOTS as u64 + 2 {
            cell.store(Arc::new(i));
        }
        // `first` has been rotated out of every slot by now.
        assert_eq!(Arc::strong_count(&first), 1);
    }
}
