//! Offline stand-in for the `parking_lot` crate.
//!
//! Implements only the subset this workspace uses: `Mutex` and `RwLock`
//! with non-poisoning lock acquisition. Backed by `std::sync`; a
//! poisoned std lock is transparently recovered, matching parking_lot's
//! "no poisoning" semantics.

use std::sync::{MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion primitive whose `lock` never returns a `Result`.
///
/// Supports unsized `T` (e.g. `Mutex<dyn Trait>`) so `Arc<Mutex<Concrete>>`
/// coerces to `Arc<Mutex<dyn Trait>>`, as with the real crate.
#[derive(Default, Debug)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::Mutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(g),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(p.into_inner()),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

/// A reader-writer lock whose guards are infallible, mirroring parking_lot.
#[derive(Default, Debug)]
pub struct RwLock<T: ?Sized> {
    inner: std::sync::RwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        Self {
            inner: std::sync::RwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(PoisonError::into_inner)
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn mutex_unsized_coercion() {
        trait Speak {
            fn speak(&self) -> &'static str;
        }
        struct Dog;
        impl Speak for Dog {
            fn speak(&self) -> &'static str {
                "woof"
            }
        }
        let m: Arc<Mutex<dyn Speak>> = Arc::new(Mutex::new(Dog));
        assert_eq!(m.lock().speak(), "woof");
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(String::from("a"));
        l.write().push('b');
        assert_eq!(&*l.read(), "ab");
    }
}
