//! Offline stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset this workspace's benches use: `Criterion`,
//! `benchmark_group` with `sample_size`/`throughput`/`bench_function`/
//! `bench_with_input`/`finish`, `Bencher::iter` and `iter_batched`,
//! `BenchmarkId`, `Throughput`, `BatchSize`, and the `criterion_group!`
//! / `criterion_main!` macros.
//!
//! Reporting is intentionally plain: one line per benchmark with the
//! median and min/max per-iteration time (and MB/s when a throughput is
//! set). There is no statistical outlier analysis, no HTML report, and
//! no baseline persistence — the point is that `cargo bench` runs
//! offline and produces comparable wall-clock numbers.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Per-sample batch sizing hint. The shim times whole batches either way;
/// the variants only exist for API compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Declares how many "elements" one iteration processes, enabling
/// rate reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

/// A benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    full: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        let mut full = function_name.into();
        let _ = write!(full, "/{parameter}");
        BenchmarkId { full }
    }
}

/// Entry point, mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size: 100,
            throughput: None,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        self.report(&id.into_benchmark_id().full, &b);
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b, input);
        self.report(&id.full, &b);
        self
    }

    pub fn finish(self) {}

    fn report(&self, bench_name: &str, b: &Bencher) {
        let mut per_iter: Vec<f64> = b.samples.clone();
        if per_iter.is_empty() {
            println!("{}/{}: no samples", self.name, bench_name);
            return;
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
        let median = per_iter[per_iter.len() / 2];
        let min = per_iter[0];
        let max = per_iter[per_iter.len() - 1];
        let mut line = format!(
            "{}/{}: time [{} {} {}]",
            self.name,
            bench_name,
            fmt_time(min),
            fmt_time(median),
            fmt_time(max),
        );
        if let Some(t) = self.throughput {
            let (amount, unit) = match t {
                Throughput::Bytes(n) => (n as f64, "MB/s"),
                Throughput::Elements(n) => (n as f64, "Melem/s"),
            };
            if median > 0.0 {
                let _ = write!(line, " thrpt {:.1} {unit}", amount / median / 1e6);
            }
        }
        println!("{line}");
    }
}

/// Accepts both `&str`/`String` names and full `BenchmarkId`s.
pub trait IntoBenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            full: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { full: self }
    }
}

/// Runs and times one benchmark routine.
pub struct Bencher {
    sample_size: usize,
    /// Seconds per iteration, one entry per sample.
    samples: Vec<f64>,
}

/// Target wall-clock spent measuring one sample.
const SAMPLE_TARGET: Duration = Duration::from_micros(500);

impl Bencher {
    fn new(sample_size: usize) -> Self {
        Bencher {
            sample_size,
            samples: Vec::new(),
        }
    }

    /// Time `routine`, amortized over enough iterations per sample to
    /// dominate timer overhead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warmup + calibration: how many iterations fill SAMPLE_TARGET?
        let start = Instant::now();
        let mut calib_iters: u64 = 0;
        while start.elapsed() < SAMPLE_TARGET {
            std::hint::black_box(routine());
            calib_iters += 1;
        }
        let iters = calib_iters.max(1);
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            for _ in 0..iters {
                std::hint::black_box(routine());
            }
            self.samples.push(t0.elapsed().as_secs_f64() / iters as f64);
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        self.samples.clear();
        // Batch enough iterations per sample to amortize timer overhead.
        let batch: u64 = 64;
        for _ in 0..self.sample_size {
            let inputs: Vec<I> = (0..batch).map(|_| setup()).collect();
            let t0 = Instant::now();
            for input in inputs {
                std::hint::black_box(routine(input));
            }
            self.samples.push(t0.elapsed().as_secs_f64() / batch as f64);
        }
    }
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} µs", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(5);
        let mut ran = 0u64;
        group.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
                ran
            })
        });
        group.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_runs_setup_per_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim_test");
        group.sample_size(3);
        group.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
        group.finish();
    }

    #[test]
    fn benchmark_id_formats() {
        let id = BenchmarkId::new("carat", 128);
        assert_eq!(id.full, "carat/128");
    }

    #[test]
    fn time_formatting_picks_unit() {
        assert!(fmt_time(2.0).ends_with(" s"));
        assert!(fmt_time(2e-3).ends_with(" ms"));
        assert!(fmt_time(2e-6).ends_with(" µs"));
        assert!(fmt_time(2e-9).ends_with(" ns"));
    }
}
