//! Property tests tying the guard passes to the coverage verifier.
//!
//! * **Acceptance**: for random programs, every `GuardInjectionPass`
//!   output — unoptimized, deduplicated, hoisted, or both — must verify
//!   clean. The verifier may be conservative, but never so conservative
//!   that it rejects the compiler's own work.
//! * **Mutation**: after deduplication every remaining guard is
//!   load-bearing, so deleting any single one (or shrinking its size
//!   operand) must flip the verdict to rejected. This is the soundness
//!   direction: the verifier cannot be fooled by a stripped guard.

use proptest::prelude::*;

use kop_analysis::verify_guard_coverage;
use kop_compiler::{GuardInjectionPass, Pass, RangeCoalescing, RedundantGuardElim, GUARD_SYMBOL};
use kop_ir::{verify_module, IcmpPred, Inst, IrBuilder, Module, Type, Value};

/// One random memory access: which pointer, what type, load or store.
#[derive(Clone, Debug)]
struct Access {
    target: u8, // 0 = arg %a, 1 = arg %b, 2 = global @g, 3 = alloca slot
    ty: Type,
    is_store: bool,
}

fn arb_access() -> impl Strategy<Value = Access> {
    (0u8..4, 0u8..4, any::<bool>()).prop_map(|(target, tysel, is_store)| Access {
        target,
        ty: match tysel {
            0 => Type::I8,
            1 => Type::I16,
            2 => Type::I32,
            _ => Type::I64,
        },
        is_store,
    })
}

/// Straight-line program: a single block issuing the accesses in order.
fn build_straightline(accesses: &[Access]) -> Module {
    let mut b = IrBuilder::new("slp");
    b.global("g", Type::I64, kop_ir::GlobalInit::Int(0));
    let mut f = b.function("run", vec![Type::Ptr, Type::Ptr], Type::Void);
    f.name_params(&["a", "b"]);
    let entry = f.block("entry");
    f.switch_to(entry);
    let slot = f.alloca(Type::I64, 1);
    emit_accesses(&mut f, accesses, &slot);
    f.ret(None);
    f.finish();
    b.finish()
}

/// Loop program: the same accesses inside a counted loop body, so the
/// hoisting pass has loop-invariant guards to move.
fn build_loop(accesses: &[Access], n: u64) -> Module {
    let mut b = IrBuilder::new("loopp");
    b.global("g", Type::I64, kop_ir::GlobalInit::Int(0));
    let mut f = b.function("run", vec![Type::Ptr, Type::Ptr], Type::Void);
    f.name_params(&["a", "b"]);
    let entry = f.block("entry");
    let head = f.block("head");
    let body = f.block("body");
    let exit = f.block("exit");
    f.switch_to(entry);
    let slot = f.alloca(Type::I64, 1);
    f.br(head);
    f.switch_to(head);
    let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
    let c = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::i64(n));
    f.condbr(c, body, exit);
    f.switch_to(body);
    emit_accesses(&mut f, accesses, &slot);
    let i2 = f.add(Type::I64, i.clone(), Value::i64(1));
    let func = f.raw();
    if let Value::Inst(id) = &i {
        if let Inst::Phi { incomings, .. } = func.inst_mut(*id) {
            incomings.push((body, i2));
        }
    }
    f.br(head);
    f.switch_to(exit);
    f.ret(None);
    f.finish();
    b.finish()
}

fn emit_accesses(f: &mut kop_ir::builder::FuncBuilder<'_>, accesses: &[Access], slot: &Value) {
    for acc in accesses {
        let ptr = match acc.target {
            0 => Value::Arg(0),
            1 => Value::Arg(1),
            2 => Value::Global("g".into()),
            _ => slot.clone(),
        };
        let ty = acc.ty.clone();
        if acc.is_store {
            f.store(ty.clone(), Value::ConstInt(ty, 1), ptr);
        } else {
            f.load(ty, ptr);
        }
    }
}

/// All placed guard call sites in a module.
fn guard_sites(m: &Module) -> Vec<(usize, kop_ir::BlockId, kop_ir::InstId)> {
    let mut sites = Vec::new();
    for (fi, f) in m.functions.iter().enumerate() {
        for (bid, iid) in f.placed_insts() {
            if let Inst::Call { callee, .. } = f.inst(iid) {
                if callee == GUARD_SYMBOL {
                    sites.push((fi, bid, iid));
                }
            }
        }
    }
    sites
}

/// Delete one guard call from its block (the "stripped module" attack).
fn delete_guard(m: &mut Module, site: (usize, kop_ir::BlockId, kop_ir::InstId)) {
    let (fi, bid, iid) = site;
    m.functions[fi].block_mut(bid).insts.retain(|&x| x != iid);
}

/// Shrink one guard's size operand by a byte (the "lying guard" attack).
/// Returns false when the size is already 1 (cannot shrink further).
fn shrink_guard_size(m: &mut Module, site: (usize, kop_ir::BlockId, kop_ir::InstId)) -> bool {
    let (fi, _, iid) = site;
    if let Inst::Call { args, .. } = m.functions[fi].inst_mut(iid) {
        if let Value::ConstInt(ty, size) = &args[1] {
            if *size > 1 {
                args[1] = Value::ConstInt(ty.clone(), *size - 1);
                return true;
            }
        }
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Acceptance: every pipeline configuration over random programs
    /// (straight-line and loops) produces a provably covered module.
    #[test]
    fn injected_output_always_verifies(
        accesses in proptest::collection::vec(arb_access(), 1..16),
        n in 1u64..8,
    ) {
        for module in [build_straightline(&accesses), build_loop(&accesses, n)] {
            verify_module(&module).expect("generated program verifies");
            prop_assert!(
                !verify_guard_coverage(&module).is_clean(),
                "raw module must be rejected"
            );
            // Unoptimized.
            let mut m = module.clone();
            GuardInjectionPass.run(&mut m);
            prop_assert!(verify_guard_coverage(&m).is_clean(), "unoptimized");
            // Deduplicated.
            RedundantGuardElim.run(&mut m);
            prop_assert!(verify_guard_coverage(&m).is_clean(), "deduplicated");
            // Range coalescing on top (a no-op for these shapes, but
            // it must preserve coverage either way).
            RangeCoalescing.run(&mut m);
            prop_assert!(verify_guard_coverage(&m).is_clean(), "coalesced");
            verify_module(&m).expect("optimized module verifies");
        }
    }

    /// Mutation: after dedup every surviving guard is load-bearing, so
    /// stripping any single one must be caught.
    #[test]
    fn deleting_any_guard_is_caught(
        accesses in proptest::collection::vec(arb_access(), 1..12),
    ) {
        let mut m = build_straightline(&accesses);
        GuardInjectionPass.run(&mut m);
        RedundantGuardElim.run(&mut m);
        prop_assert!(verify_guard_coverage(&m).is_clean());
        for site in guard_sites(&m) {
            let mut mutant = m.clone();
            delete_guard(&mut mutant, site);
            let report = verify_guard_coverage(&mutant);
            prop_assert!(
                !report.is_clean(),
                "deleting guard {:?} went unnoticed",
                site
            );
        }
    }

    /// Mutation: shrinking any guard's size operand must be caught — a
    /// guard that checks fewer bytes than the access touches is a hole.
    #[test]
    fn shrinking_any_guard_size_is_caught(
        accesses in proptest::collection::vec(arb_access(), 1..12),
    ) {
        let mut m = build_straightline(&accesses);
        GuardInjectionPass.run(&mut m);
        RedundantGuardElim.run(&mut m);
        for site in guard_sites(&m) {
            let mut mutant = m.clone();
            if shrink_guard_size(&mut mutant, site) {
                let report = verify_guard_coverage(&mutant);
                prop_assert!(
                    !report.is_clean(),
                    "shrunk guard {:?} went unnoticed",
                    site
                );
            }
        }
    }
}
