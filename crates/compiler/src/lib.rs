//! # kop-compiler — the CARAT KOP compiler
//!
//! The paper's "compiler" is a ~200-line LLVM pass plus a wrapper script
//! around clang 14 (§3.3). This crate reproduces that pipeline over KIR:
//!
//! * [`guard`] — the guard-injection pass: a call to `@carat_guard` is
//!   inserted before **every** `load` and `store`, unconditionally and
//!   unoptimized, exactly as the paper describes.
//! * [`opt`] — the optimizations the paper deliberately *omits* (they
//!   belong to CARAT CAKE's NOELLE-based pipeline): cross-block
//!   redundant-guard elimination and counted-loop range coalescing.
//!   These exist for the ablation benchmarks.
//! * [`obligations`] — the optimizer's obligation recorder: every guard
//!   reduction is justified by a machine-checkable claim that travels in
//!   the attestation and is re-derived by the independent validator
//!   (`kop_analysis::validate_module`) at signing and again at load.
//! * [`attest`] — compile-time attestation that the module contains no
//!   inline assembly and no calls to privileged intrinsics (§2, §5).
//! * [`sha256`] — a from-scratch SHA-256/HMAC-SHA256 (FIPS 180-4 / RFC
//!   2104) so code signing needs no external crypto dependency.
//! * [`signing`] — cryptographic code signing of the canonical module text
//!   plus its attestation; the kernel loader verifies this before linking
//!   (§2: "prove to the kernel that the proper processing has been
//!   performed ... and by which compiler").
//! * [`driver`] — the "wrapper script": transform → attest → sign in one
//!   call, yielding a [`signing::SignedModule`] ready for insertion.

#![warn(missing_docs)]

pub mod attest;
pub mod driver;
pub mod guard;
pub mod intrinsics;
pub mod obligations;
pub mod opt;
pub mod pass;
pub mod sha256;
pub mod signing;

pub use attest::{AttestError, Attestation};
pub use driver::{compile_module, CompileError, CompileOptions, CompileOutput};
pub use guard::{check_guards, GuardInjectionPass, GUARD_SYMBOL};
pub use intrinsics::{
    intrinsic_id, intrinsic_name, validate_intrinsic_wraps, IntrinsicWrapPass,
    INTRINSIC_GUARD_SYMBOL,
};
pub use obligations::ObligationRecorder;
pub use opt::{RangeCoalescing, RedundantGuardElim};
pub use pass::{Pass, PassManager, PassStats};
pub use signing::{CompilerKey, SignedModule, SigningError};
