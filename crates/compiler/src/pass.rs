//! Pass infrastructure: the [`Pass`] trait and a simple [`PassManager`].
//!
//! Mirrors the structure of an LLVM middle-end pipeline at the scale CARAT
//! KOP needs: passes run module-at-a-time and report statistics (the paper
//! reports, e.g., how many guards were injected into the e1000e driver).

use std::collections::BTreeMap;
use std::fmt;

use kop_ir::Module;

use crate::obligations::ObligationRecorder;

/// Statistics reported by a pass run.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PassStats {
    counters: BTreeMap<String, u64>,
}

impl PassStats {
    /// Create empty statistics.
    pub fn new() -> PassStats {
        PassStats::default()
    }

    /// Add `n` to a named counter.
    pub fn bump(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += n;
    }

    /// Read a counter (0 if never bumped).
    pub fn get(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Merge another stats block into this one.
    pub fn merge(&mut self, other: &PassStats) {
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v;
        }
    }

    /// Iterate over `(name, value)` pairs in sorted order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }
}

impl fmt::Display for PassStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (k, v)) in self.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
        }
        Ok(())
    }
}

/// A module transformation (or analysis) pass.
pub trait Pass {
    /// Human-readable pass name.
    fn name(&self) -> &'static str;

    /// Run over the module, mutating it in place, and report statistics.
    fn run(&self, module: &mut Module) -> PassStats;

    /// Like [`Pass::run`], but with an [`ObligationRecorder`] the pass
    /// may use to record machine-checkable justifications for any guard
    /// it removes or coalesces. The default ignores the recorder —
    /// passes that never reduce guards have nothing to justify.
    fn run_with(&self, module: &mut Module, _obligations: &mut ObligationRecorder) -> PassStats {
        self.run(module)
    }
}

/// Runs a sequence of passes, collecting per-pass and aggregate statistics.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
}

impl PassManager {
    /// An empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Append a pass.
    pub fn add(&mut self, pass: impl Pass + 'static) -> &mut Self {
        self.passes.push(Box::new(pass));
        self
    }

    /// Number of registered passes.
    pub fn len(&self) -> usize {
        self.passes.len()
    }

    /// Whether the pipeline is empty.
    pub fn is_empty(&self) -> bool {
        self.passes.is_empty()
    }

    /// Run the pipeline. Returns `(pass name, stats)` per pass in order.
    pub fn run(&self, module: &mut Module) -> Vec<(&'static str, PassStats)> {
        let mut unused = ObligationRecorder::new();
        self.run_with(module, &mut unused)
    }

    /// Run the pipeline, collecting guard-reduction obligations into
    /// `obligations` (the driver finalizes them into the attestation's
    /// ledger after `seal_layout`).
    pub fn run_with(
        &self,
        module: &mut Module,
        obligations: &mut ObligationRecorder,
    ) -> Vec<(&'static str, PassStats)> {
        self.passes
            .iter()
            .map(|p| (p.name(), p.run_with(module, obligations)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct CountLoads;
    impl Pass for CountLoads {
        fn name(&self) -> &'static str {
            "count-loads"
        }
        fn run(&self, module: &mut Module) -> PassStats {
            let mut s = PassStats::new();
            s.bump("mem_accesses", module.memory_access_count() as u64);
            s
        }
    }

    #[test]
    fn stats_accumulate() {
        let mut s = PassStats::new();
        s.bump("x", 2);
        s.bump("x", 3);
        s.bump("y", 1);
        assert_eq!(s.get("x"), 5);
        assert_eq!(s.get("y"), 1);
        assert_eq!(s.get("z"), 0);
        let mut t = PassStats::new();
        t.bump("x", 10);
        s.merge(&t);
        assert_eq!(s.get("x"), 15);
        assert_eq!(s.to_string(), "x=15, y=1");
    }

    #[test]
    fn manager_runs_in_order() {
        let mut pm = PassManager::new();
        pm.add(CountLoads).add(CountLoads);
        assert_eq!(pm.len(), 2);
        let mut m = Module::new("empty");
        let results = pm.run(&mut m);
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].0, "count-loads");
        assert_eq!(results[0].1.get("mem_accesses"), 0);
    }
}
