//! Privileged-intrinsic guarding — the §5 extension, implemented.
//!
//! From the paper: *"As of now, CARAT KOP does not attempt to prevent
//! access to privileged instructions beyond its compiler attestation to
//! the lack of inline assembly ... Instrumentation and wrappers to these
//! builtins could be added during compilation, such that a guard is
//! injected and a different policy table could be consulted to determine
//! if a given kernel module has access to a privileged intrinsic."*
//!
//! [`IntrinsicWrapPass`] injects
//! `call void @carat_intrinsic_guard(i32 <intrinsic id>)` before every
//! call to a privileged intrinsic; the policy module's *intrinsic table*
//! (see `kop-policy::intrinsics`) is the "different policy table".

use kop_ir::{Function, Inst, Module, Type, Value};

use crate::attest::PRIVILEGED_INTRINSICS;
use crate::pass::{Pass, PassStats};

/// The intrinsic-guard symbol protected modules import when built with
/// `wrap_privileged`.
pub const INTRINSIC_GUARD_SYMBOL: &str = "carat_intrinsic_guard";

/// The stable id of a privileged intrinsic (its index in
/// [`PRIVILEGED_INTRINSICS`]).
pub fn intrinsic_id(name: &str) -> Option<u32> {
    PRIVILEGED_INTRINSICS
        .iter()
        .position(|&n| n == name)
        .map(|i| i as u32)
}

/// The intrinsic name for an id.
pub fn intrinsic_name(id: u32) -> Option<&'static str> {
    PRIVILEGED_INTRINSICS.get(id as usize).copied()
}

/// Inject intrinsic guards before every privileged-intrinsic call.
#[derive(Clone, Copy, Debug, Default)]
pub struct IntrinsicWrapPass;

impl Pass for IntrinsicWrapPass {
    fn name(&self) -> &'static str {
        "carat-kop-intrinsic-wrap"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        let mut stats = PassStats::new();
        let mut wrapped_any = false;
        for f in &mut module.functions {
            let n = wrap_in_function(f);
            stats.bump("intrinsics_wrapped", n);
            wrapped_any |= n > 0;
        }
        if wrapped_any {
            module.declare_extern(kop_ir::ExternDecl {
                name: INTRINSIC_GUARD_SYMBOL.to_string(),
                params: vec![Type::I32],
                ret_ty: Type::Void,
            });
        }
        stats
    }
}

fn wrap_in_function(f: &mut Function) -> u64 {
    let mut wrapped = 0u64;
    for bid in f.block_ids().collect::<Vec<_>>() {
        let old = f.block(bid).insts.clone();
        let mut new_list = Vec::with_capacity(old.len());
        for iid in old {
            if let Inst::Call { callee, .. } = f.inst(iid) {
                if let Some(id) = intrinsic_id(callee) {
                    let guard = f.alloc_inst(Inst::Call {
                        callee: INTRINSIC_GUARD_SYMBOL.to_string(),
                        ret_ty: Type::Void,
                        args: vec![Value::ConstInt(Type::I32, id as u64)],
                    });
                    new_list.push(guard);
                    wrapped += 1;
                }
            }
            new_list.push(iid);
        }
        f.block_mut(bid).insts = new_list;
    }
    wrapped
}

/// Validate that every privileged-intrinsic call is immediately preceded
/// by its matching intrinsic guard (the kernel-side check for wrapped
/// modules).
pub fn validate_intrinsic_wraps(module: &Module) -> bool {
    for f in &module.functions {
        for bid in f.block_ids() {
            let insts = &f.block(bid).insts;
            for (pos, &iid) in insts.iter().enumerate() {
                let Inst::Call { callee, .. } = f.inst(iid) else {
                    continue;
                };
                let Some(id) = intrinsic_id(callee) else {
                    continue;
                };
                if pos == 0 {
                    return false;
                }
                let Inst::Call {
                    callee: prev_callee,
                    args,
                    ..
                } = f.inst(insts[pos - 1])
                else {
                    return false;
                };
                let ok = prev_callee == INTRINSIC_GUARD_SYMBOL
                    && args.len() == 1
                    && args[0] == Value::ConstInt(Type::I32, id as u64);
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

/// Count privileged-intrinsic call sites.
pub fn privileged_call_count(module: &Module) -> u64 {
    let mut n = 0;
    for f in &module.functions {
        for (_, iid) in f.placed_insts() {
            if let Inst::Call { callee, .. } = f.inst(iid) {
                if intrinsic_id(callee).is_some() {
                    n += 1;
                }
            }
        }
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::{parse_module, verify_module};

    const PRIV_SRC: &str = r#"
module "msr"
declare void @__wrmsr(i64, i64)
declare i64 @__rdmsr(i64)
define i64 @setup() {
entry:
  call void @__wrmsr(i64 0xC0000080, i64 0x500)
  %v = call i64 @__rdmsr(i64 0xC0000080)
  ret i64 %v
}
"#;

    #[test]
    fn ids_are_stable_and_distinct() {
        let id_wrmsr = intrinsic_id("__wrmsr").unwrap();
        let id_rdmsr = intrinsic_id("__rdmsr").unwrap();
        assert_ne!(id_wrmsr, id_rdmsr);
        assert_eq!(intrinsic_name(id_wrmsr), Some("__wrmsr"));
        assert_eq!(intrinsic_id("not_privileged"), None);
        assert_eq!(intrinsic_name(9999), None);
    }

    #[test]
    fn wrap_pass_inserts_guards() {
        let mut m = parse_module(PRIV_SRC).unwrap();
        assert!(!validate_intrinsic_wraps(&m));
        let stats = IntrinsicWrapPass.run(&mut m);
        assert_eq!(stats.get("intrinsics_wrapped"), 2);
        assert_eq!(m.call_count(INTRINSIC_GUARD_SYMBOL), 2);
        assert!(validate_intrinsic_wraps(&m));
        verify_module(&m).expect("verifies after wrapping");
        assert!(m.imported_symbols().contains(&INTRINSIC_GUARD_SYMBOL));
    }

    #[test]
    fn wrap_pass_noop_without_privileged_calls() {
        let src = r#"
module "clean"
declare void @printk(i64)
define void @f() {
entry:
  call void @printk(i64 1)
  ret void
}
"#;
        let mut m = parse_module(src).unwrap();
        let stats = IntrinsicWrapPass.run(&mut m);
        assert_eq!(stats.get("intrinsics_wrapped"), 0);
        assert!(!m.imported_symbols().contains(&INTRINSIC_GUARD_SYMBOL));
        assert!(validate_intrinsic_wraps(&m), "vacuously valid");
    }

    #[test]
    fn validate_rejects_wrong_id() {
        let mut m = parse_module(PRIV_SRC).unwrap();
        IntrinsicWrapPass.run(&mut m);
        // Tamper: change one guard's id argument.
        let f = m.function_mut("setup").unwrap();
        for (_, iid) in f.placed_insts() {
            if let Inst::Call { callee, args, .. } = f.inst_mut(iid) {
                if callee == INTRINSIC_GUARD_SYMBOL {
                    args[0] = Value::ConstInt(Type::I32, 999);
                    break;
                }
            }
        }
        assert!(!validate_intrinsic_wraps(&m));
    }

    #[test]
    fn privileged_counting() {
        let m = parse_module(PRIV_SRC).unwrap();
        assert_eq!(privileged_call_count(&m), 2);
    }
}
