//! The compiler driver — CARAT KOP's "wrapper script around clang".
//!
//! From the paper (§3.3): the pass "is separately compiled from the core
//! compiler, and invoked by a script that wraps the underlying clang
//! compiler". [`compile_module`] is that script: it verifies the input,
//! runs guard injection (and, optionally, the ablation optimizations),
//! attests, re-verifies, and signs — producing a [`SignedModule`] ready
//! for `insmod`.
//!
//! Optimized builds carry an extra artifact: the obligation ledger. The
//! optimizer records a machine-checkable justification for every guard
//! it removes or coalesces; the driver finalizes the ledger after layout
//! sealing, hands it to the *independent* translation validator
//! ([`kop_analysis::validate_module`]) — which re-derives every claim
//! from the module text alone — and refuses to sign when any claim
//! fails. The ledger then travels inside the attestation so the kernel
//! loader can run the exact same audit at `insmod`.

use kop_ir::{verify_module, Module, VerifyError};

use crate::attest::{AttestError, Attestation};
use crate::guard::GuardInjectionPass;
use crate::intrinsics::IntrinsicWrapPass;
use crate::obligations::ObligationRecorder;
use crate::opt::{RangeCoalescing, RedundantGuardElim};
use crate::pass::{PassManager, PassStats};
use crate::signing::{CompilerKey, SignedModule};

/// Options for a compilation.
#[derive(Clone, Debug)]
pub struct CompileOptions {
    /// Inject guards (turn off to build the *baseline* module the paper
    /// compares against — same compiler, same flags, no transformation).
    pub inject_guards: bool,
    /// Run redundant-guard elimination (CARAT CAKE-style; off in the paper).
    pub optimize_redundant: bool,
    /// Run counted-loop range coalescing (CARAT CAKE-style; off in the
    /// paper).
    pub optimize_range: bool,
    /// Wrap privileged-intrinsic calls with intrinsic guards instead of
    /// refusing them (the §5 extension). Off by default — the paper's
    /// base system refuses such modules at attestation time.
    pub wrap_privileged: bool,
}

impl Default for CompileOptions {
    fn default() -> Self {
        // The paper's configuration: guards on, optimizations off.
        CompileOptions {
            inject_guards: true,
            optimize_redundant: false,
            optimize_range: false,
            wrap_privileged: false,
        }
    }
}

impl CompileOptions {
    /// The paper's CARAT KOP configuration (unoptimized guards).
    pub fn carat_kop() -> Self {
        Self::default()
    }

    /// The baseline: no transformation at all, just verify + sign.
    pub fn baseline() -> Self {
        CompileOptions {
            inject_guards: false,
            ..Self::default()
        }
    }

    /// CARAT CAKE-style optimized guards (for the ablation).
    pub fn optimized() -> Self {
        CompileOptions {
            optimize_redundant: true,
            optimize_range: true,
            ..Self::default()
        }
    }

    /// The §5 extension: memory guards plus wrapped privileged intrinsics.
    pub fn carat_kop_privileged() -> Self {
        CompileOptions {
            wrap_privileged: true,
            ..Self::default()
        }
    }
}

/// What a compilation failed on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CompileError {
    /// The input module did not verify.
    InputVerify(VerifyError),
    /// The transformed module did not verify (compiler bug guard).
    OutputVerify(VerifyError),
    /// Attestation refused the module.
    Attest(AttestError),
    /// The guard-coverage verifier (plus the translation validator, for
    /// optimized builds) could not prove every memory access guarded and
    /// every optimizer obligation founded; the report carries the `KA…`
    /// diagnostics. The driver refuses to sign such a module — signing
    /// it would attest to a property that does not hold.
    GuardCoverage(Box<kop_analysis::AnalysisReport>),
}

impl core::fmt::Display for CompileError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CompileError::InputVerify(e) => write!(f, "input module invalid: {e}"),
            CompileError::OutputVerify(e) => write!(f, "transformed module invalid: {e}"),
            CompileError::Attest(e) => write!(f, "attestation refused: {e}"),
            CompileError::GuardCoverage(report) => {
                write!(f, "guard coverage not provable:\n{}", report.summary())
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// Result of a successful compilation.
#[derive(Clone, Debug)]
pub struct CompileOutput {
    /// The signed, loadable container.
    pub signed: SignedModule,
    /// Aggregate pass statistics (guards injected/removed/coalesced).
    pub stats: PassStats,
}

/// Compile (transform + attest + sign) a module.
///
/// Note the input is **unmodified source IR** — per the paper, "No code was
/// modified in the driver": applying CARAT KOP is a recompilation, nothing
/// more.
pub fn compile_module(
    mut module: Module,
    options: &CompileOptions,
    key: &CompilerKey,
) -> Result<CompileOutput, CompileError> {
    verify_module(&module).map_err(CompileError::InputVerify)?;

    // Attest *before* transformation too: inline asm must be rejected even
    // in baseline builds (it is an assertion about the input code). When
    // privileged wrapping is enabled, raw privileged calls in the input
    // are tolerated here — the wrap pass instruments them, and the final
    // attestation proves it did.
    Attestation::precheck(&module, options.wrap_privileged).map_err(CompileError::Attest)?;

    let mut pm = PassManager::new();
    if options.inject_guards {
        pm.add(GuardInjectionPass);
    }
    if options.wrap_privileged {
        pm.add(IntrinsicWrapPass);
    }
    // Range coalescing runs before elimination: a coalesced range guard
    // is never a constant fact, so elim cannot remove a guard that a
    // recorded range obligation depends on.
    if options.optimize_range {
        pm.add(RangeCoalescing);
    }
    if options.optimize_redundant {
        pm.add(RedundantGuardElim);
    }
    let mut recorder = ObligationRecorder::new();
    let mut stats = PassStats::new();
    for (_, s) in pm.run_with(&mut module, &mut recorder) {
        stats.merge(&s);
    }
    // Passes restructured blocks; re-seal the layout caches so everything
    // downstream (verifier walks, the interpreter) sees sealed functions.
    module.seal_layout();

    verify_module(&module).map_err(CompileError::OutputVerify)?;

    // Obligations are recorded against arena ids while passes run; now
    // that layout is final, pin them to stable `block#index` positions.
    let ledger = recorder.finalize(&module);

    // Independent proof obligation: whenever this build claims guards
    // (it injected them, or the input already carried guard calls, or
    // the optimizer claims elisions), the translation validator must be
    // able to re-derive coverage plus every optimizer claim from the
    // module text alone. Baseline builds of guard-free sources skip this
    // — they claim nothing.
    if options.inject_guards
        || module.call_count(crate::guard::GUARD_SYMBOL) > 0
        || !ledger.is_empty()
    {
        let report = kop_analysis::validate_module(&module, &ledger);
        if !report.is_clean() {
            return Err(CompileError::GuardCoverage(Box::new(report)));
        }
    }

    let attestation = Attestation::check_with_ledger(&module, options.wrap_privileged, &ledger)
        .map_err(CompileError::Attest)?;
    let signed = SignedModule::sign(&module, attestation, key);
    Ok(CompileOutput { signed, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    const SRC: &str = r#"
module "drv"
global @reg : i64 = 0
define void @poke(ptr %mmio, i64 %v) {
entry:
  store i64 %v, ptr %mmio
  %old = load i64, ptr @reg
  %new = add i64 %old, 1
  store i64 %new, ptr @reg
  ret void
}
"#;

    fn key() -> CompilerKey {
        CompilerKey::from_passphrase("k", "s")
    }

    #[test]
    fn carat_kop_build_guards_everything() {
        let m = parse_module(SRC).unwrap();
        let out = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap();
        assert_eq!(out.stats.get("guards_injected"), 3);
        assert!(out.signed.attestation.guards_strict);
        assert_eq!(out.signed.attestation.guard_count, 3);
        assert!(out.signed.attestation.obligations.is_empty());
        let verified = out.signed.verify(&[key()]).unwrap();
        assert_eq!(verified.call_count("carat_guard"), 3);
    }

    #[test]
    fn baseline_build_injects_nothing() {
        let m = parse_module(SRC).unwrap();
        let out = compile_module(m, &CompileOptions::baseline(), &key()).unwrap();
        assert_eq!(out.stats.get("guards_injected"), 0);
        assert_eq!(out.signed.attestation.guard_count, 0);
        // Baseline is still signed and verifiable.
        out.signed.verify(&[key()]).unwrap();
    }

    #[test]
    fn optimized_build_is_not_strict() {
        // Element walk so range coalescing has something to do, plus a
        // repeated global access so elimination does too.
        let src = r#"
module "opt"
global @g : i64 = 0
define void @f(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %g0 = load i64, ptr @g
  %v2 = add i64 %v, %g0
  store i64 %v2, ptr @g
  %i.next = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let out = compile_module(m, &CompileOptions::optimized(), &key()).unwrap();
        assert!(out.stats.get("guards_range_coalesced") > 0);
        assert!(out.stats.get("guards_removed") > 0);
        assert!(!out.signed.attestation.guards_strict);
        // The ledger made it into the attestation and survives signing.
        assert!(!out.signed.attestation.obligations.is_empty());
        out.signed.verify(&[key()]).unwrap();
    }

    #[test]
    fn asm_refused_even_in_baseline() {
        let src = r#"
module "evil"
define void @f() {
entry:
  asm "cli"
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let err = compile_module(m, &CompileOptions::baseline(), &key()).unwrap_err();
        assert!(matches!(err, CompileError::Attest(_)));
    }

    #[test]
    fn guard_stripped_input_refused() {
        // A module that *claims* to be guarded (it calls carat_guard)
        // but leaves one access uncovered: the coverage verifier must
        // refuse to let it be signed, even in baseline mode where no
        // guards are injected.
        let src = r#"
module "stripped"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p, ptr %q) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 2)
  store i64 1, ptr %p
  store i64 2, ptr %q
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let err = compile_module(m, &CompileOptions::baseline(), &key()).unwrap_err();
        let CompileError::GuardCoverage(report) = err else {
            panic!("expected GuardCoverage, got {err}");
        };
        assert!(!report.is_clean());
        assert_eq!(
            report
                .with_code(kop_analysis::LintCode::UnguardedAccess)
                .count(),
            1
        );
    }

    #[test]
    fn optimized_build_attests_covered() {
        let m = parse_module(SRC).unwrap();
        let out = compile_module(m, &CompileOptions::optimized(), &key()).unwrap();
        assert!(out.signed.attestation.guards_covered);
    }

    #[test]
    fn invalid_input_refused() {
        let src = r#"
module "bad"
define i64 @f() {
entry:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let err = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap_err();
        assert!(matches!(err, CompileError::InputVerify(_)));
    }
}
