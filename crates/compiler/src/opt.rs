//! Guard optimizations — the passes CARAT KOP deliberately does *not* run.
//!
//! The paper (§2, §3.3) explains that CARAT CAKE amortizes guards through
//! extensive compiler analysis, while CARAT KOP skips all of it for
//! engineering simplicity and still sees <1% overhead. These passes
//! implement the two cheapest of those optimizations so the ablation
//! benchmarks (`ablation_guard_opts`) can quantify what the paper left on
//! the table:
//!
//! * [`RedundantGuardElim`] — within a basic block, a guard is removed if an
//!   earlier guard in the same block already covers the same pointer with
//!   at least the same size and intent, with no intervening non-guard call
//!   (an intervening call could unload/alter the policy).
//! * [`LoopGuardHoisting`] — guards inside a natural loop whose operands
//!   are loop-invariant are moved to the end of the loop header's immediate
//!   dominator, executing once instead of once per iteration. Like LLVM's
//!   speculative hoisting this can over-approximate (a guard may fire for
//!   an access the loop never performs); CARAT KOP's policy model treats
//!   that as acceptable because policies are per-module, not per-path.

use std::collections::BTreeSet;

use kop_ir::dom::{natural_loops, DomTree};
use kop_ir::{BlockId, Function, Inst, InstId, Module, Type, Value};

use crate::guard::GUARD_SYMBOL;
use crate::pass::{Pass, PassStats};

/// Remove intra-block redundant guards.
#[derive(Clone, Copy, Debug, Default)]
pub struct RedundantGuardElim;

impl Pass for RedundantGuardElim {
    fn name(&self) -> &'static str {
        "carat-kop-redundant-guard-elim"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        let mut stats = PassStats::new();
        for f in &mut module.functions {
            stats.bump("guards_removed", elim_in_function(f));
        }
        stats
    }
}

/// A guard call's key: pointer operand, size, flags.
fn guard_key(f: &Function, iid: InstId) -> Option<(Value, u64, u64)> {
    if let Inst::Call { callee, args, .. } = f.inst(iid) {
        if callee == GUARD_SYMBOL && args.len() == 3 {
            if let (Value::ConstInt(_, size), Value::ConstInt(_, flags)) = (&args[1], &args[2]) {
                return Some((args[0].clone(), *size, *flags));
            }
        }
    }
    None
}

fn elim_in_function(f: &mut Function) -> u64 {
    let mut removed = 0u64;
    for bid in f.block_ids().collect::<Vec<_>>() {
        let old = f.block(bid).insts.clone();
        // Guards seen since the last clobbering call: (ptr, size, flags).
        let mut seen: Vec<(Value, u64, u64)> = Vec::new();
        let mut new_list = Vec::with_capacity(old.len());
        for iid in old {
            if let Some((ptr, size, flags)) = guard_key(f, iid) {
                let covered = seen
                    .iter()
                    .any(|(p, s, fl)| p == &ptr && *s >= size && (fl & flags) == flags);
                if covered {
                    removed += 1;
                    continue; // drop the redundant guard
                }
                seen.push((ptr, size, flags));
                new_list.push(iid);
                continue;
            }
            // A non-guard call may change the policy or transfer control to
            // code that does; conservatively clobber the seen-set.
            if matches!(f.inst(iid), Inst::Call { .. }) {
                seen.clear();
            }
            new_list.push(iid);
        }
        f.block_mut(bid).insts = new_list;
    }
    removed
}

/// Hoist loop-invariant guards out of natural loops.
#[derive(Clone, Copy, Debug, Default)]
pub struct LoopGuardHoisting;

impl Pass for LoopGuardHoisting {
    fn name(&self) -> &'static str {
        "carat-kop-loop-guard-hoisting"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        let mut stats = PassStats::new();
        for f in &mut module.functions {
            stats.bump("guards_hoisted", hoist_in_function(f));
        }
        stats
    }
}

fn hoist_in_function(f: &mut Function) -> u64 {
    let dom = DomTree::compute(f);
    let loops = natural_loops(f, &dom);
    if loops.is_empty() {
        return 0;
    }
    let mut hoisted = 0u64;

    for l in loops {
        // Hoist target: the header's immediate dominator, provided it is
        // outside the loop (this is where a preheader would sit).
        let Some(target) = dom.idom(l.header) else {
            continue;
        };
        if l.body.contains(&target) {
            continue;
        }

        // Definitions inside the loop.
        let mut defined_in_loop: BTreeSet<InstId> = BTreeSet::new();
        for &b in &l.body {
            for &iid in &f.block(b).insts {
                defined_in_loop.insert(iid);
            }
        }
        let is_invariant = |v: &Value| -> bool {
            match v {
                Value::Inst(id) => !defined_in_loop.contains(id),
                _ => true, // consts, args, globals
            }
        };

        // Collect hoistable guards per block, then move them.
        let body_blocks: Vec<BlockId> = l.body.iter().copied().collect();
        for bid in body_blocks {
            let old = f.block(bid).insts.clone();
            let mut keep = Vec::with_capacity(old.len());
            let mut moved = Vec::new();
            for iid in old {
                let hoistable = match f.inst(iid) {
                    Inst::Call { callee, args, .. } if callee == GUARD_SYMBOL => {
                        args.iter().all(is_invariant)
                    }
                    _ => false,
                };
                if hoistable {
                    moved.push(iid);
                } else {
                    keep.push(iid);
                }
            }
            if moved.is_empty() {
                continue;
            }
            hoisted += moved.len() as u64;
            f.block_mut(bid).insts = keep;
            // Append to the end of the target block (before its
            // terminator, which lives separately from `insts`).
            for iid in moved {
                f.push_inst(target, iid);
            }
        }
    }
    hoisted
}

/// Convenience: total static guard count of a module.
pub fn guard_count(module: &Module) -> usize {
    module.call_count(GUARD_SYMBOL)
}

/// Convenience: make a guard call instruction (used by tests).
pub fn make_guard(ptr: Value, size: u64, flags: u64) -> Inst {
    Inst::Call {
        callee: GUARD_SYMBOL.to_string(),
        ret_ty: Type::Void,
        args: vec![
            ptr,
            Value::ConstInt(Type::I64, size),
            Value::ConstInt(Type::I32, flags),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardInjectionPass;
    use kop_ir::{parse_module, verify_module};

    #[test]
    fn elim_removes_same_block_duplicates() {
        // Two i64 loads through the same pointer in one block: the second
        // guard is redundant.
        let src = r#"
module "dup"
define i64 @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  %b = load i64, ptr %p
  %s = add i64 %a, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 2);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 1);
        assert_eq!(guard_count(&m), 1);
        verify_module(&m).expect("still verifies");
    }

    #[test]
    fn elim_respects_smaller_earlier_guard() {
        // An earlier 4-byte guard does not cover a later 8-byte access.
        let src = r#"
module "sz"
define i64 @f(ptr %p) {
entry:
  %a = load i32, ptr %p
  %b = load i64, ptr %p
  %a64 = zext i32 %a to i64
  %s = add i64 %a64, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 0);
        assert_eq!(guard_count(&m), 2);
    }

    #[test]
    fn elim_read_guard_does_not_cover_write() {
        let src = r#"
module "rw"
define void @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  store i64 %a, ptr %p
  ret void
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        // Read guard (flags=1) does not imply write permission (flags=2).
        assert_eq!(stats.get("guards_removed"), 0);
    }

    #[test]
    fn elim_clobbered_by_intervening_call() {
        let src = r#"
module "clob"
declare void @ext()
define i64 @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  call void @ext()
  %b = load i64, ptr %p
  %s = add i64 %a, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 0);
    }

    #[test]
    fn hoist_moves_invariant_guard_out_of_loop() {
        // The guard on @flag (loop-invariant global) hoists; the guard on
        // the per-iteration element pointer stays.
        let src = r#"
module "hoist"
global @flag : i64 = 0
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %fl = load i64, ptr @flag
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %vv = add i64 %v, %fl
  %acc.next = add i64 %acc, %vv
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 %acc
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 2);
        let stats = LoopGuardHoisting.run(&mut m);
        assert_eq!(stats.get("guards_hoisted"), 1);
        assert_eq!(guard_count(&m), 2, "hoisting moves, never removes");
        verify_module(&m).expect("still verifies");

        // The hoisted guard must now be in `entry` (idom of the header).
        let f = m.function("sum").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let entry_guards = f
            .block(entry)
            .insts
            .iter()
            .filter(|&&iid| guard_key(f, iid).is_some())
            .count();
        assert_eq!(entry_guards, 1);
        let body = f.block_by_name("body").unwrap();
        let body_guards = f
            .block(body)
            .insts
            .iter()
            .filter(|&&iid| guard_key(f, iid).is_some())
            .count();
        assert_eq!(body_guards, 1);
    }

    #[test]
    fn hoist_noop_without_loops() {
        let src = r#"
module "flat"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = LoopGuardHoisting.run(&mut m);
        assert_eq!(stats.get("guards_hoisted"), 0);
    }

    #[test]
    fn combined_pipeline_reduces_dynamic_guards() {
        // elim + hoist on a loop with both an invariant and repeated access.
        let src = r#"
module "combo"
global @g : i64 = 0
define i64 @f(ptr %p, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %a = load i64, ptr @g
  %b = load i64, ptr @g
  %ab = add i64 %a, %b
  store i64 %ab, ptr @g
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 3);
        let e = RedundantGuardElim.run(&mut m);
        assert_eq!(e.get("guards_removed"), 1); // second read guard on @g
        let h = LoopGuardHoisting.run(&mut m);
        assert_eq!(h.get("guards_hoisted"), 2); // read + write guards on @g
        verify_module(&m).expect("verifies");
    }
}
