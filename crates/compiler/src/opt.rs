//! Guard optimizations — the analysis tier CARAT KOP deliberately omits.
//!
//! The paper (§2, §3.3) explains that CARAT CAKE amortizes guards through
//! extensive compiler analysis, while CARAT KOP skips all of it for
//! engineering simplicity and still sees <1% overhead. These passes
//! implement that analysis tier so the ablation benchmarks can quantify
//! what the paper left on the table — and, unlike a conventional
//! optimizer, every transform here must *justify itself*: each removed
//! or coalesced guard is recorded as a machine-checkable obligation (via
//! [`crate::obligations::ObligationRecorder`]) that the independent
//! translation validator ([`kop_analysis::validate_module`]) re-derives
//! from scratch before the module can be signed or loaded.
//!
//! * [`RedundantGuardElim`] — cross-block elimination over the
//!   AvailableGuards dataflow ([`kop_analysis::available`]): a guard is
//!   removed when a single earlier guard instruction establishes a
//!   covering fact on **every** path (source agreement ⇒ dominance),
//!   with no intervening non-guard call. When the dominating guard names
//!   the same pointer with enough bytes but narrower intent, the pass
//!   *widens* its flags (read + write → rw) instead of keeping both.
//! * [`RangeCoalescing`] — replaces the per-iteration element guards of
//!   a counted loop (`for (i = 0; i <u n; i++)` walking `gep base, i`)
//!   with one preheader guard over the whole interval
//!   `[base, base + n·stride)`, computed as `mul i64 n, stride`. One
//!   guard executes where `n` used to.

use kop_analysis::available::{available_guards, transfer_avail};
use kop_analysis::coverage::{guard_fact, GuardFact};
use kop_analysis::plan_ranges;
use kop_ir::{Function, Inst, InstId, Module, Type, Value};

use crate::guard::GUARD_SYMBOL;
use crate::obligations::ObligationRecorder;
use crate::pass::{Pass, PassStats};

/// Remove guards dominated by a covering (or widenable) earlier guard.
#[derive(Clone, Copy, Debug, Default)]
pub struct RedundantGuardElim;

impl Pass for RedundantGuardElim {
    fn name(&self) -> &'static str {
        "carat-kop-redundant-guard-elim"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        self.run_with(module, &mut ObligationRecorder::new())
    }

    fn run_with(&self, module: &mut Module, obligations: &mut ObligationRecorder) -> PassStats {
        let mut stats = PassStats::new();
        for f in &mut module.functions {
            let (removed, widened) = elim_in_function(f, obligations);
            stats.bump("guards_removed", removed);
            stats.bump("guards_widened", widened);
        }
        stats
    }
}

/// A guard call's key: pointer operand, size, flags.
#[cfg(test)]
fn guard_key(f: &Function, iid: InstId) -> Option<(Value, u64, u64)> {
    guard_fact(f, iid).map(|g| (g.ptr, g.size, g.flags))
}

/// The access immediately after position `idx` in `insts`, if the guard
/// fact at `idx` covers it — i.e. the access the strict-layout injector
/// paired with this guard. Used to attach the protected access to an
/// elide obligation; when the layout is non-strict the obligation is
/// simply not recorded (the validator's coverage replay still gates the
/// elision).
fn paired_access(f: &Function, insts: &[InstId], idx: usize, fact: &GuardFact) -> Option<InstId> {
    let &next = insts.get(idx + 1)?;
    let (ptr, size, flags) = match f.inst(next) {
        Inst::Load { ty, ptr } => (ptr.clone(), ty.size_of(), 1),
        Inst::Store { ty, ptr, .. } => (ptr.clone(), ty.size_of(), 2),
        _ => return None,
    };
    fact.covers(&ptr, size, flags).then_some(next)
}

/// Rewrite the flags operand of the guard call `iid` to `flags`.
fn widen_guard_flags(f: &mut Function, iid: InstId, flags: u64) {
    if let Inst::Call { args, .. } = f.inst_mut(iid) {
        args[2] = Value::ConstInt(Type::I32, flags);
    }
}

fn elim_in_function(f: &mut Function, obligations: &mut ObligationRecorder) -> (u64, u64) {
    let fname = f.name.clone();
    let mut removed = 0u64;
    let mut widened = 0u64;
    // Widening changes facts other blocks' solved entry states were
    // computed from, so iterate to a fixpoint. Stale facts within one
    // round are strictly *weaker* than reality (widening only adds flag
    // bits, and a fact's source is removed only when a covering fact
    // survives), so decisions made on them remain sound.
    loop {
        let states = available_guards(f);
        let mut changed = false;
        for bid in f.block_ids().collect::<Vec<_>>() {
            let Some(entry) = states.entry_of(bid) else {
                continue; // unreachable block: nothing executes there
            };
            let mut state = entry.clone();
            let old = f.block(bid).insts.clone();
            let mut keep = Vec::with_capacity(old.len());
            for (idx, &iid) in old.iter().enumerate() {
                let Some(fact) = guard_fact(f, iid) else {
                    transfer_avail(f, iid, &mut state);
                    keep.push(iid);
                    continue;
                };
                // Covered outright by a single dominating guard?
                if let Some(src) = state
                    .iter()
                    .find(|(have, _)| have.covers(&fact.ptr, fact.size, fact.flags))
                    .map(|(_, &src)| src)
                {
                    if let Some(access) = paired_access(f, &old, idx, &fact) {
                        obligations.record_elide(&fname, src, access, fact.size, fact.flags);
                    }
                    obligations.redirect(&fname, iid, src);
                    removed += 1;
                    changed = true;
                    continue;
                }
                // Same pointer, enough bytes, narrower intent: widen the
                // dominating guard's flags and drop this one.
                if let Some((have, src)) = state
                    .iter()
                    .find(|(have, _)| have.ptr == fact.ptr && have.size >= fact.size)
                    .map(|(have, &src)| (have.clone(), src))
                {
                    let merged = have.flags | fact.flags;
                    widen_guard_flags(f, src, merged);
                    state.remove(&have);
                    state.insert(
                        GuardFact {
                            ptr: have.ptr,
                            size: have.size,
                            flags: merged,
                        },
                        src,
                    );
                    if let Some(access) = paired_access(f, &old, idx, &fact) {
                        obligations.record_elide(&fname, src, access, fact.size, fact.flags);
                    }
                    obligations.redirect(&fname, iid, src);
                    removed += 1;
                    widened += 1;
                    changed = true;
                    continue;
                }
                state.insert(fact, iid);
                keep.push(iid);
            }
            if keep.len() != old.len() {
                f.block_mut(bid).insts = keep;
            }
        }
        if !changed {
            break;
        }
    }
    (removed, widened)
}

/// Coalesce per-iteration element guards into one range guard.
#[derive(Clone, Copy, Debug, Default)]
pub struct RangeCoalescing;

impl Pass for RangeCoalescing {
    fn name(&self) -> &'static str {
        "carat-kop-range-coalescing"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        self.run_with(module, &mut ObligationRecorder::new())
    }

    fn run_with(&self, module: &mut Module, obligations: &mut ObligationRecorder) -> PassStats {
        let mut stats = PassStats::new();
        for f in &mut module.functions {
            let (coalesced, inserted) = coalesce_in_function(f, obligations);
            stats.bump("guards_range_coalesced", coalesced);
            stats.bump("range_guards_inserted", inserted);
        }
        stats
    }
}

fn coalesce_in_function(f: &mut Function, obligations: &mut ObligationRecorder) -> (u64, u64) {
    let fname = f.name.clone();
    let plans = plan_ranges(f);
    let mut coalesced = 0u64;
    let mut inserted = 0u64;
    for (pi, plan) in plans.into_iter().enumerate() {
        // Only coalesce guards whose paired access is itself a
        // per-iteration element access the range interval covers — the
        // obligation must name the access, and the validator re-checks
        // it. With strict injected layout this is every planned guard.
        let mut replaced: Vec<(InstId, InstId)> = Vec::new(); // (guard, access)
        let mut flags = 0u64;
        for &g in &plan.guards {
            let Some(fact) = guard_fact(f, g) else {
                continue;
            };
            let Some((bid, idx)) = position_of(f, g) else {
                continue;
            };
            let Some(access) = paired_access(f, &f.block(bid).insts, idx, &fact) else {
                continue;
            };
            replaced.push((g, access));
            flags |= fact.flags;
        }
        if replaced.is_empty() {
            continue;
        }
        // `[base, base + n·stride)` — one guard in the preheader, whose
        // byte count the validator re-derives as `mul trip_count, stride`.
        let len = f.alloc_named_inst(
            Inst::Bin {
                op: kop_ir::BinOp::Mul,
                ty: Type::I64,
                lhs: plan.loop_.bound.clone(),
                rhs: Value::ConstInt(Type::I64, plan.stride),
            },
            format!("rg.len{pi}"),
        );
        let guard = f.alloc_inst(Inst::Call {
            callee: GUARD_SYMBOL.to_string(),
            ret_ty: Type::Void,
            args: vec![
                plan.base.clone(),
                Value::Inst(len),
                Value::ConstInt(Type::I32, flags),
            ],
        });
        f.push_inst(plan.loop_.preheader, len);
        f.push_inst(plan.loop_.preheader, guard);
        for &(g, _) in &replaced {
            if let Some((bid, _)) = position_of(f, g) {
                f.block_mut(bid).insts.retain(|&i| i != g);
            }
        }
        obligations.record_range(
            &fname,
            guard,
            f.block(plan.loop_.header).name.clone(),
            plan.stride,
            flags,
            replaced.iter().map(|&(_, a)| a).collect(),
        );
        coalesced += replaced.len() as u64;
        inserted += 1;
    }
    (coalesced, inserted)
}

fn position_of(f: &Function, iid: InstId) -> Option<(kop_ir::BlockId, usize)> {
    for bid in f.block_ids() {
        if let Some(idx) = f.block(bid).insts.iter().position(|&i| i == iid) {
            return Some((bid, idx));
        }
    }
    None
}

/// Convenience: total static guard count of a module.
pub fn guard_count(module: &Module) -> usize {
    module.call_count(GUARD_SYMBOL)
}

/// Convenience: make a guard call instruction (used by tests).
pub fn make_guard(ptr: Value, size: u64, flags: u64) -> Inst {
    Inst::Call {
        callee: GUARD_SYMBOL.to_string(),
        ret_ty: Type::Void,
        args: vec![
            ptr,
            Value::ConstInt(Type::I64, size),
            Value::ConstInt(Type::I32, flags),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardInjectionPass;
    use kop_analysis::{validate_module, verify_guard_coverage, ObligationLedger};
    use kop_ir::{parse_module, verify_module};

    fn opt_with_ledger(m: &mut Module, passes: &[&dyn Pass]) -> ObligationLedger {
        let mut rec = ObligationRecorder::new();
        for p in passes {
            p.run_with(m, &mut rec);
        }
        m.seal_layout();
        rec.finalize(m)
    }

    #[test]
    fn elim_removes_same_block_duplicates() {
        // Two i64 loads through the same pointer in one block: the second
        // guard is redundant.
        let src = r#"
module "dup"
define i64 @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  %b = load i64, ptr %p
  %s = add i64 %a, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 2);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 1);
        assert_eq!(guard_count(&m), 1);
        verify_module(&m).expect("still verifies");
        assert!(verify_guard_coverage(&m).is_clean());
    }

    #[test]
    fn elim_works_across_blocks_with_dominating_guard() {
        // The entry guard dominates both arms and the join: all three
        // later guards fall to the one in entry.
        let src = r#"
module "xblk"
define i64 @f(ptr %p, i1 %c) {
entry:
  %a = load i64, ptr %p
  condbr i1 %c, %t, %e
t:
  %x = load i64, ptr %p
  br %join
e:
  %y = load i64, ptr %p
  br %join
join:
  %m = phi i64 [ %x, %t ], [ %y, %e ]
  %z = load i64, ptr %p
  %s = add i64 %m, %z
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 4);
        let mut rec = ObligationRecorder::new();
        let stats = RedundantGuardElim.run_with(&mut m, &mut rec);
        assert_eq!(stats.get("guards_removed"), 3);
        assert_eq!(guard_count(&m), 1);
        verify_module(&m).expect("still verifies");
        m.seal_layout();
        let ledger = rec.finalize(&m);
        assert_eq!(ledger.len(), 3, "one obligation per cross-block elision");
        assert!(validate_module(&m, &ledger).is_clean());
    }

    #[test]
    fn elim_does_not_cross_a_join_without_dominance() {
        // Guards in both arms establish the same fact but via different
        // instructions: neither dominates the join, so the join's guard
        // must survive (plain coverage would accept its removal; the
        // obligation discipline must not).
        let src = r#"
module "join"
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %t, %e
t:
  %x = load i64, ptr %p
  br %join
e:
  %y = load i64, ptr %p
  br %join
join:
  %m = phi i64 [ %x, %t ], [ %y, %e ]
  %z = load i64, ptr %p
  ret i64 %z
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 0);
        assert_eq!(guard_count(&m), 3);
    }

    #[test]
    fn elim_keys_on_ssa_def_identity_not_value_shape() {
        // Regression for the post-phi alias-by-value hazard: the guarded
        // pointer is recomputed every iteration under the *same* SSA
        // name-shape (`gep %buf, %i`), so a fact from a previous
        // iteration must never justify eliding the current iteration's
        // guard. Facts key on the SSA definition, and entering the
        // defining block kills them.
        let src = r#"
module "alias"
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 1);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(
            stats.get("guards_removed"),
            0,
            "per-iteration guard must survive elim"
        );
    }

    #[test]
    fn elim_respects_smaller_earlier_guard() {
        // An earlier 4-byte guard does not cover a later 8-byte access —
        // and must not be "widened" into covering it either (widening
        // extends intent bits, never byte counts).
        let src = r#"
module "sz"
define i64 @f(ptr %p) {
entry:
  %a = load i32, ptr %p
  %b = load i64, ptr %p
  %a64 = zext i32 %a to i64
  %s = add i64 %a64, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 0);
        assert_eq!(guard_count(&m), 2);
    }

    #[test]
    fn elim_widens_read_guard_to_cover_write() {
        // load then store through the same pointer: the write guard is
        // folded into the read guard by widening its flags to rw.
        let src = r#"
module "rw"
define void @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  store i64 %a, ptr %p
  ret void
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 2);
        let mut rec = ObligationRecorder::new();
        let stats = RedundantGuardElim.run_with(&mut m, &mut rec);
        assert_eq!(stats.get("guards_removed"), 1);
        assert_eq!(stats.get("guards_widened"), 1);
        assert_eq!(guard_count(&m), 1);
        // The surviving guard now grants rw.
        let f = m.function("f").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let g = f.block(entry).insts[0];
        assert_eq!(guard_key(f, g).unwrap().2, 3, "flags widened to rw");
        verify_module(&m).expect("still verifies");
        assert!(verify_guard_coverage(&m).is_clean());
        m.seal_layout();
        let ledger = rec.finalize(&m);
        assert!(validate_module(&m, &ledger).is_clean());
    }

    #[test]
    fn elim_clobbered_by_intervening_call() {
        let src = r#"
module "clob"
declare void @ext()
define i64 @f(ptr %p) {
entry:
  %a = load i64, ptr %p
  call void @ext()
  %b = load i64, ptr %p
  %s = add i64 %a, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RedundantGuardElim.run(&mut m);
        assert_eq!(stats.get("guards_removed"), 0);
    }

    #[test]
    fn range_coalesces_counted_loop_walk() {
        let src = r#"
module "walk"
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 1);
        let mut rec = ObligationRecorder::new();
        let stats = RangeCoalescing.run_with(&mut m, &mut rec);
        assert_eq!(stats.get("guards_range_coalesced"), 1);
        assert_eq!(stats.get("range_guards_inserted"), 1);
        assert_eq!(
            guard_count(&m),
            1,
            "per-iteration guard replaced, not added"
        );
        verify_module(&m).expect("still verifies");

        // The guard moved to the preheader with a computed byte count.
        let f = m.function("sum").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let body = f.block_by_name("body").unwrap();
        assert!(f
            .block(body)
            .insts
            .iter()
            .all(|&i| guard_key(f, i).is_none()));
        let pre_guard = f
            .block(entry)
            .insts
            .iter()
            .any(|&i| matches!(f.inst(i), Inst::Call { callee, .. } if callee == GUARD_SYMBOL));
        assert!(pre_guard, "range guard sits in the preheader");

        // Without the ledger the loop body is unproven; with it, the
        // independent validator accepts.
        m.seal_layout();
        let ledger = rec.finalize(&m);
        assert_eq!(ledger.len(), 1);
        assert!(!validate_module(&m, &ObligationLedger::empty()).is_clean());
        assert!(validate_module(&m, &ledger).is_clean());
    }

    #[test]
    fn range_leaves_non_counted_loops_alone() {
        // Bound checked with `ne` — not a recognizable counted loop.
        let src = r#"
module "ne"
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ne i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let stats = RangeCoalescing.run(&mut m);
        assert_eq!(stats.get("guards_range_coalesced"), 0);
        assert_eq!(guard_count(&m), 1);
    }

    #[test]
    fn combined_pipeline_reduces_static_guards() {
        // A loop mixing an element walk (range-coalesced) with repeated
        // access to a loop-invariant global (elided + widened after the
        // walk guard no longer splits the block).
        let src = r#"
module "combo"
global @g : i64 = 0
define i64 @f(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %a = load i64, ptr @g
  %ab = add i64 %a, %v
  store i64 %ab, ptr @g
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        assert_eq!(guard_count(&m), 3);
        let ledger = opt_with_ledger(&mut m, &[&RangeCoalescing, &RedundantGuardElim]);
        // Element guard → range guard (net 0); the @g write guard folds
        // into the @g read guard by widening.
        assert_eq!(guard_count(&m), 2);
        verify_module(&m).expect("verifies");
        assert!(
            validate_module(&m, &ledger).is_clean(),
            "validator accepts the combined pipeline's ledger"
        );
    }
}
