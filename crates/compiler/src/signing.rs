//! Cryptographic code signing of transformed modules.
//!
//! From the paper (§2): *"the compilation process also performs
//! cryptographic code signing. This is then used at load time to prove to
//! the kernel that the proper processing has been performed (e.g., that
//! guards have been injected) and by which compiler."*
//!
//! The scheme here is HMAC-SHA256 under a compiler key that the kernel
//! also holds (a symmetric trust anchor — operationally, the operator
//! provisions the same key into the kernel's trusted-key list and the
//! build machine). The MAC covers the canonical printed module text plus
//! the canonical attestation bytes, so tampering with either invalidates
//! the signature.

use core::fmt;

use kop_ir::{parse_module, print_module, Module, ParseError};

use crate::attest::Attestation;
use crate::sha256::{digest_eq, hex, hmac_sha256, sha256, DIGEST_LEN};

/// A compiler signing key (symmetric trust anchor).
#[derive(Clone)]
pub struct CompilerKey {
    /// Short identifier the kernel uses to pick the verification key.
    pub key_id: String,
    secret: [u8; 32],
}

impl CompilerKey {
    /// Create a key from raw secret bytes.
    pub fn new(key_id: impl Into<String>, secret: [u8; 32]) -> CompilerKey {
        CompilerKey {
            key_id: key_id.into(),
            secret,
        }
    }

    /// Derive a deterministic key from a passphrase (test/demo helper; a
    /// deployment would provision random keys).
    pub fn from_passphrase(key_id: impl Into<String>, passphrase: &str) -> CompilerKey {
        CompilerKey {
            key_id: key_id.into(),
            secret: sha256(passphrase.as_bytes()),
        }
    }

    fn mac(&self, message: &[u8]) -> [u8; DIGEST_LEN] {
        hmac_sha256(&self.secret, message)
    }
}

impl fmt::Debug for CompilerKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Never print the secret.
        write!(f, "CompilerKey({})", self.key_id)
    }
}

/// Signature verification / container errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SigningError {
    /// MAC did not verify.
    BadSignature,
    /// The key id on the container is not a trusted key.
    UnknownKey(String),
    /// The embedded IR text no longer parses (container corrupted).
    CorruptIr(ParseError),
    /// The attestation embedded in the container does not match the IR.
    AttestationMismatch(String),
    /// The on-disk container bytes are malformed.
    Malformed(String),
}

impl fmt::Display for SigningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SigningError::BadSignature => f.write_str("module signature verification failed"),
            SigningError::UnknownKey(id) => write!(f, "unknown signing key '{id}'"),
            SigningError::CorruptIr(e) => write!(f, "corrupt module IR: {e}"),
            SigningError::AttestationMismatch(s) => write!(f, "attestation mismatch: {s}"),
            SigningError::Malformed(s) => write!(f, "malformed module container: {s}"),
        }
    }
}

impl std::error::Error for SigningError {}

/// A signed, loadable module container: canonical IR text + attestation +
/// MAC. This is CARAT KOP's analogue of a signed `.ko` file.
#[derive(Clone, Debug)]
pub struct SignedModule {
    /// Canonical printed IR of the transformed module.
    pub ir_text: String,
    /// The compile-time attestation.
    pub attestation: Attestation,
    /// Key identifier used to sign.
    pub key_id: String,
    /// HMAC-SHA256 over `ir_text || attestation bytes`.
    pub signature: [u8; DIGEST_LEN],
}

fn signed_message(ir_text: &str, attestation: &Attestation) -> Vec<u8> {
    let mut msg = Vec::with_capacity(ir_text.len() + 128);
    msg.extend_from_slice(ir_text.as_bytes());
    msg.extend_from_slice(&attestation.to_bytes());
    msg
}

impl SignedModule {
    /// Sign a transformed module with its attestation.
    pub fn sign(module: &Module, attestation: Attestation, key: &CompilerKey) -> SignedModule {
        let ir_text = print_module(module);
        let signature = key.mac(&signed_message(&ir_text, &attestation));
        SignedModule {
            ir_text,
            attestation,
            key_id: key.key_id.clone(),
            signature,
        }
    }

    /// Verify the container against a set of trusted keys and re-derive the
    /// parsed module. This is the load-time check the kernel performs: MAC
    /// valid, IR parses, attestation consistent with the IR it shipped
    /// with.
    ///
    /// Runs without a grant oracle, so a ledger carrying inline-bounds
    /// obligations cannot attest coverage here — use
    /// [`Self::verify_with_grants`] when the verifier holds the policy
    /// whose snapshot history can re-derive the baked bounds.
    pub fn verify(&self, trusted_keys: &[CompilerKey]) -> Result<Module, SigningError> {
        self.verify_with_grants(trusted_keys, None)
    }

    /// [`Self::verify`] with a grant oracle for auditing inline-bounds
    /// obligations (a promoted container): the validator recomputes every
    /// baked `[lo, hi)` from the regions the cited snapshot generation
    /// held and refuses forged, stale, or wrong-site immediates
    /// (KA009/KA010/KA011).
    pub fn verify_with_grants(
        &self,
        trusted_keys: &[CompilerKey],
        grants: Option<&dyn kop_analysis::GrantOracle>,
    ) -> Result<Module, SigningError> {
        let key = trusted_keys
            .iter()
            .find(|k| k.key_id == self.key_id)
            .ok_or_else(|| SigningError::UnknownKey(self.key_id.clone()))?;
        let expect = key.mac(&signed_message(&self.ir_text, &self.attestation));
        if !digest_eq(&expect, &self.signature) {
            return Err(SigningError::BadSignature);
        }
        let module = parse_module(&self.ir_text).map_err(SigningError::CorruptIr)?;
        // Cross-check the attestation's counts against the module: a
        // correctly signed container can still be internally inconsistent
        // if a buggy compiler signed it; the kernel refuses those too.
        let guards = module.call_count(crate::guard::GUARD_SYMBOL) as u64;
        if guards != self.attestation.guard_count {
            return Err(SigningError::AttestationMismatch(format!(
                "guard count {} vs attested {}",
                guards, self.attestation.guard_count
            )));
        }
        let accesses = module.memory_access_count() as u64;
        if accesses != self.attestation.mem_access_count {
            return Err(SigningError::AttestationMismatch(format!(
                "memory access count {} vs attested {}",
                accesses, self.attestation.mem_access_count
            )));
        }
        if self.attestation.guards_strict && !crate::guard::strict_guard_layout(&module) {
            return Err(SigningError::AttestationMismatch(
                "attested strict guards but validation failed".into(),
            ));
        }
        if self.attestation.guards_covered {
            // The coverage claim is audited by the *independent*
            // translation validator against the attested obligation
            // ledger: every optimizer elision must be re-derivable from
            // the shipped IR alone. An unparseable ledger, an unfounded
            // obligation, or an unproven access all refuse the module.
            let ledger = kop_analysis::ObligationLedger::parse(&self.attestation.obligations)
                .map_err(|e| {
                    SigningError::AttestationMismatch(format!("obligation ledger invalid: {e}"))
                })?;
            let inline = ledger
                .obligations
                .iter()
                .filter(|ob| matches!(ob, kop_analysis::Obligation::Inline { .. }))
                .count() as u64;
            if inline != self.attestation.inline_obligations {
                return Err(SigningError::AttestationMismatch(format!(
                    "inline obligation count {} vs attested {}",
                    inline, self.attestation.inline_obligations
                )));
            }
            let report = kop_analysis::validate_module_with_grants(&module, &ledger, grants);
            if !report.is_clean() {
                return Err(SigningError::AttestationMismatch(format!(
                    "attested guard coverage but the validator disproves it:\n{}",
                    report.summary()
                )));
            }
        }
        let sites = kop_trace::assign_guard_sites(&module);
        if sites.len() as u64 != self.attestation.guard_sites {
            return Err(SigningError::AttestationMismatch(format!(
                "guard site count {} vs attested {}",
                sites.len(),
                self.attestation.guard_sites
            )));
        }
        let site_digest = hex(&sha256(
            kop_trace::canonical_site_text(&module.name, &sites).as_bytes(),
        ));
        if site_digest != self.attestation.site_digest {
            return Err(SigningError::AttestationMismatch(format!(
                "guard site digest {site_digest} vs attested {}",
                self.attestation.site_digest
            )));
        }
        Ok(module)
    }

    /// The content hash (SHA-256 of the signed message) — a stable module
    /// identity for logs.
    pub fn content_hash(&self) -> String {
        hex(&sha256(&signed_message(&self.ir_text, &self.attestation)))
    }

    /// Serialize the container to its on-disk format (the analogue of a
    /// signed `.ko` file an operator would copy onto the machine).
    pub fn to_bytes(&self) -> Vec<u8> {
        fn put_str(out: &mut Vec<u8>, s: &str) {
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        let mut out = Vec::with_capacity(self.ir_text.len() + 256);
        out.extend_from_slice(MAGIC);
        put_str(&mut out, &self.key_id);
        out.extend_from_slice(&self.signature);
        let a = &self.attestation;
        put_str(&mut out, &a.module_name);
        let flags = (a.no_inline_asm as u8)
            | (a.no_privileged_calls as u8) << 1
            | (a.guards_strict as u8) << 2
            | (a.privileged_wrapped as u8) << 3
            | (a.guards_covered as u8) << 4;
        out.push(flags);
        out.extend_from_slice(&a.guard_count.to_le_bytes());
        out.extend_from_slice(&a.mem_access_count.to_le_bytes());
        out.extend_from_slice(&a.privileged_calls.to_le_bytes());
        out.extend_from_slice(&a.guard_sites.to_le_bytes());
        put_str(&mut out, &a.site_digest);
        put_str(&mut out, &a.compiler_id);
        put_str(&mut out, &a.obligations);
        put_str(&mut out, &self.ir_text);
        out
    }

    /// Parse a container from its on-disk format. Parsing does **not**
    /// imply trust — callers must still [`SignedModule::verify`].
    pub fn from_bytes(data: &[u8]) -> Result<SignedModule, SigningError> {
        fn get_str<'a>(data: &'a [u8], off: &mut usize) -> Result<&'a str, SigningError> {
            let malformed = || SigningError::Malformed("truncated string".into());
            let len_end = off.checked_add(4).ok_or_else(malformed)?;
            if len_end > data.len() {
                return Err(malformed());
            }
            let len = u32::from_le_bytes(data[*off..len_end].try_into().expect("4 bytes")) as usize;
            let end = len_end.checked_add(len).ok_or_else(malformed)?;
            if end > data.len() {
                return Err(malformed());
            }
            let s = std::str::from_utf8(&data[len_end..end])
                .map_err(|_| SigningError::Malformed("invalid utf-8".into()))?;
            *off = end;
            Ok(s)
        }
        fn get_u64(data: &[u8], off: &mut usize) -> Result<u64, SigningError> {
            let end = *off + 8;
            if end > data.len() {
                return Err(SigningError::Malformed("truncated u64".into()));
            }
            let v = u64::from_le_bytes(data[*off..end].try_into().expect("8 bytes"));
            *off = end;
            Ok(v)
        }
        if data.len() < MAGIC.len() || &data[..MAGIC.len()] != MAGIC {
            return Err(SigningError::Malformed("bad magic".into()));
        }
        let mut off = MAGIC.len();
        let key_id = get_str(data, &mut off)?.to_string();
        if off + DIGEST_LEN > data.len() {
            return Err(SigningError::Malformed("truncated signature".into()));
        }
        let mut signature = [0u8; DIGEST_LEN];
        signature.copy_from_slice(&data[off..off + DIGEST_LEN]);
        off += DIGEST_LEN;
        let module_name = get_str(data, &mut off)?.to_string();
        let flags = *data
            .get(off)
            .ok_or_else(|| SigningError::Malformed("truncated flags".into()))?;
        off += 1;
        let guard_count = get_u64(data, &mut off)?;
        let mem_access_count = get_u64(data, &mut off)?;
        let privileged_calls = get_u64(data, &mut off)?;
        let guard_sites = get_u64(data, &mut off)?;
        let site_digest = get_str(data, &mut off)?.to_string();
        let compiler_id = get_str(data, &mut off)?.to_string();
        let obligations = get_str(data, &mut off)?.to_string();
        let ir_text = get_str(data, &mut off)?.to_string();
        if off != data.len() {
            return Err(SigningError::Malformed("trailing bytes".into()));
        }
        // Not a container field of its own: recomputed from the ledger
        // text exactly as the signer computed it, so the attestation
        // bytes (and thus the signature) round-trip.
        let inline_obligations = kop_analysis::ObligationLedger::parse(&obligations)
            .map(|l| {
                l.obligations
                    .iter()
                    .filter(|ob| matches!(ob, kop_analysis::Obligation::Inline { .. }))
                    .count() as u64
            })
            .unwrap_or(0);
        Ok(SignedModule {
            ir_text,
            attestation: Attestation {
                module_name,
                no_inline_asm: flags & 1 != 0,
                no_privileged_calls: flags & 2 != 0,
                guards_strict: flags & 4 != 0,
                guards_covered: flags & 16 != 0,
                guard_count,
                guard_sites,
                site_digest,
                mem_access_count,
                privileged_calls,
                privileged_wrapped: flags & 8 != 0,
                compiler_id,
                obligations,
                inline_obligations,
            },
            key_id,
            signature,
        })
    }
}

/// On-disk container magic: "KOPMOD" + format version.
const MAGIC: &[u8; 8] = b"KOPMOD ";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardInjectionPass;
    use crate::pass::Pass;

    fn demo_module() -> Module {
        let src = r#"
module "demo"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        m
    }

    fn key() -> CompilerKey {
        CompilerKey::from_passphrase("build-key-1", "correct horse battery staple")
    }

    #[test]
    fn sign_verify_roundtrip() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let signed = SignedModule::sign(&m, att, &key());
        let out = signed.verify(&[key()]).expect("verifies");
        assert_eq!(print_module(&out), signed.ir_text);
    }

    #[test]
    fn tampered_ir_rejected() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let mut signed = SignedModule::sign(&m, att, &key());
        signed.ir_text = signed.ir_text.replace("i64 8", "i64 1");
        assert_eq!(
            signed.verify(&[key()]).unwrap_err(),
            SigningError::BadSignature
        );
    }

    #[test]
    fn tampered_attestation_rejected() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let mut signed = SignedModule::sign(&m, att, &key());
        signed.attestation.guard_count = 0;
        assert_eq!(
            signed.verify(&[key()]).unwrap_err(),
            SigningError::BadSignature
        );
    }

    #[test]
    fn wrong_key_rejected() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let signed = SignedModule::sign(&m, att, &key());
        let other = CompilerKey::from_passphrase("build-key-1", "different secret");
        assert_eq!(
            signed.verify(&[other]).unwrap_err(),
            SigningError::BadSignature
        );
    }

    #[test]
    fn unknown_key_id_rejected() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let signed = SignedModule::sign(&m, att, &key());
        let unrelated = CompilerKey::from_passphrase("other-key", "zzz");
        assert_eq!(
            signed.verify(&[unrelated]).unwrap_err(),
            SigningError::UnknownKey("build-key-1".into())
        );
    }

    #[test]
    fn buggy_compiler_attestation_mismatch_rejected() {
        // Sign with an attestation whose counts don't match the module:
        // MAC verifies (same key, consistent container) but the kernel's
        // cross-check refuses it.
        let m = demo_module();
        let mut att = Attestation::check(&m).unwrap();
        att.guard_count += 7;
        let signed = SignedModule::sign(&m, att, &key());
        match signed.verify(&[key()]).unwrap_err() {
            SigningError::AttestationMismatch(msg) => {
                assert!(msg.contains("guard count"), "{msg}")
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn container_bytes_roundtrip() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let signed = SignedModule::sign(&m, att, &key());
        let bytes = signed.to_bytes();
        let back = SignedModule::from_bytes(&bytes).expect("parses");
        assert_eq!(back.ir_text, signed.ir_text);
        assert_eq!(back.attestation, signed.attestation);
        assert_eq!(back.key_id, signed.key_id);
        assert_eq!(back.signature, signed.signature);
        // And the re-parsed container still verifies.
        back.verify(&[key()]).expect("verifies after roundtrip");
    }

    #[test]
    fn container_rejects_garbage_and_truncation() {
        assert!(SignedModule::from_bytes(b"").is_err());
        assert!(SignedModule::from_bytes(b"ELF....").is_err());
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let bytes = SignedModule::sign(&m, att, &key()).to_bytes();
        for cut in [8usize, 16, bytes.len() / 2, bytes.len() - 1] {
            assert!(
                SignedModule::from_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(SignedModule::from_bytes(&trailing).is_err());
    }

    #[test]
    fn container_bitflip_fails_verification() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let mut bytes = SignedModule::sign(&m, att, &key()).to_bytes();
        // Flip a bit in the IR text region (near the end).
        let n = bytes.len();
        bytes[n - 10] ^= 0x40;
        // Structurally invalid is fine too; a parseable container must
        // still fail verification.
        if let Ok(parsed) = SignedModule::from_bytes(&bytes) {
            assert!(parsed.verify(&[key()]).is_err());
        }
    }

    #[test]
    fn content_hash_stable() {
        let m = demo_module();
        let att = Attestation::check(&m).unwrap();
        let s1 = SignedModule::sign(&m, att.clone(), &key());
        let s2 = SignedModule::sign(&m, att, &key());
        assert_eq!(s1.content_hash(), s2.content_hash());
        assert_eq!(s1.content_hash().len(), 64);
    }

    #[test]
    fn debug_never_leaks_secret() {
        let k = key();
        let s = format!("{k:?}");
        assert!(s.contains("build-key-1"));
        assert!(!s.contains("horse"));
        assert_eq!(s, "CompilerKey(build-key-1)");
    }
}
