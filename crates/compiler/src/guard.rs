//! The guard-injection pass — the heart of CARAT KOP.
//!
//! From the paper (§3.3): *"To ensure guards are inserted, it simply
//! iterates over each load/store operation and inserts a call to the guard
//! function before. Unlike CARAT CAKE, CARAT KOP does not currently
//! optimize guards — every memory access results in a guard, even if it
//! would be redundant."*
//!
//! The injected call is
//! `call void @carat_guard(ptr <addr>, i64 <size>, i32 <flags>)` where
//! `<size>` is the byte width of the accessed type and `<flags>` encodes
//! the intent (`1` read, `2` write), matching
//! [`kop_core::AccessFlags`]'s ABI.

use kop_core::AccessFlags;
use kop_ir::{Function, Inst, Module, Type, Value};

use crate::pass::{Pass, PassStats};

/// The guard symbol every protected module imports. The policy module
/// privately exports it and the loader links them (paper §3.1–§3.2).
pub const GUARD_SYMBOL: &str = "carat_guard";

/// The guard-injection pass.
///
/// ```
/// use kop_compiler::{GuardInjectionPass, Pass};
///
/// let mut m = kop_ir::parse_module(r#"
/// module "m"
/// define i64 @read(ptr %p) {
/// entry:
///   %v = load i64, ptr %p
///   ret i64 %v
/// }
/// "#).unwrap();
/// let stats = GuardInjectionPass.run(&mut m);
/// assert_eq!(stats.get("guards_injected"), 1);
/// assert_eq!(m.call_count("carat_guard"), 1);
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct GuardInjectionPass;

impl Pass for GuardInjectionPass {
    fn name(&self) -> &'static str {
        "carat-kop-guard-injection"
    }

    fn run(&self, module: &mut Module) -> PassStats {
        let mut stats = PassStats::new();
        let mut injected_any = false;
        for f in &mut module.functions {
            let n = inject_guards_in_function(f);
            stats.bump("guards_injected", n);
            injected_any |= n > 0;
        }
        stats.bump("functions", module.functions.len() as u64);
        if injected_any {
            module.declare_extern(kop_ir::ExternDecl {
                name: GUARD_SYMBOL.to_string(),
                params: vec![Type::Ptr, Type::I64, Type::I32],
                ret_ty: Type::Void,
            });
        }
        stats
    }
}

/// Inject a guard before every load/store in `f`; returns how many.
fn inject_guards_in_function(f: &mut Function) -> u64 {
    let mut injected = 0u64;
    for bid in f.block_ids().collect::<Vec<_>>() {
        // Walk a snapshot of the block's instruction list; rebuild with
        // guards interleaved.
        let old = f.block(bid).insts.clone();
        let mut new_list = Vec::with_capacity(old.len() * 2);
        for iid in old {
            let (ptr, size, flags) = match f.inst(iid) {
                Inst::Load { ty, ptr } => (ptr.clone(), ty.size_of(), AccessFlags::READ),
                Inst::Store { ty, ptr, .. } => (ptr.clone(), ty.size_of(), AccessFlags::WRITE),
                _ => {
                    new_list.push(iid);
                    continue;
                }
            };
            let guard = f.alloc_inst(Inst::Call {
                callee: GUARD_SYMBOL.to_string(),
                ret_ty: Type::Void,
                args: vec![
                    ptr,
                    Value::ConstInt(Type::I64, size),
                    Value::ConstInt(Type::I32, flags.raw() as u64),
                ],
            });
            new_list.push(guard);
            new_list.push(iid);
            injected += 1;
        }
        f.block_mut(bid).insts = new_list;
    }
    injected
}

/// Check guard coverage with the dataflow verifier and return structured
/// diagnostics.
///
/// This replaces the old boolean `validate_guards` scan (removed): instead of a
/// strict same-block layout check, the [`kop_analysis`] verifier *proves*
/// that every load/store is dominated on all paths by a covering guard —
/// so modules whose guards were hoisted or deduplicated by the optional
/// optimization passes still verify. Findings come back as
/// [`kop_analysis::Diagnostic`]s with stable lint codes (`KA001`
/// unguarded access, `KA002` guard/access mismatch, `KA004` dead guard)
/// naming the exact function, block, and instruction.
pub fn check_guards(module: &Module) -> kop_analysis::AnalysisReport {
    kop_analysis::verify_guard_coverage(module)
}

/// The strict layout check the attestation records: every load/store is
/// *immediately* preceded by a matching guard call (same pointer operand,
/// correct size and flags). This holds for unoptimized CARAT KOP output;
/// optimized modules (hoisted/deduplicated guards) legitimately fail it
/// while still passing the dataflow verifier.
pub(crate) fn strict_guard_layout(module: &Module) -> bool {
    for f in &module.functions {
        for bid in f.block_ids() {
            let insts = &f.block(bid).insts;
            for (pos, &iid) in insts.iter().enumerate() {
                let (ptr, size, flags) = match f.inst(iid) {
                    Inst::Load { ty, ptr } => (ptr, ty.size_of(), AccessFlags::READ),
                    Inst::Store { ty, ptr, .. } => (ptr, ty.size_of(), AccessFlags::WRITE),
                    _ => continue,
                };
                if pos == 0 {
                    return false;
                }
                let prev = f.inst(insts[pos - 1]);
                let Inst::Call { callee, args, .. } = prev else {
                    return false;
                };
                if callee != GUARD_SYMBOL || args.len() != 3 {
                    return false;
                }
                let ok = &args[0] == ptr
                    && args[1] == Value::ConstInt(Type::I64, size)
                    && args[2] == Value::ConstInt(Type::I32, flags.raw() as u64);
                if !ok {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::{parse_module, print_module, verify_module};

    const DRIVERISH: &str = r#"
module "mini-driver"

global @stats : { i64, i64 } = zero

define void @tx(ptr %ring, i64 %idx, i64 %addr) {
entry:
  %slot = gep { i64, i32, i32 }, ptr %ring, i64 %idx
  store i64 %addr, ptr %slot
  %len.p = gep { i64, i32, i32 }, ptr %ring, i64 %idx, i32 1
  store i32 128, ptr %len.p
  %count.p = gep { i64, i64 }, ptr @stats, i64 0, i32 0
  %count = load i64, ptr %count.p
  %count.next = add i64 %count, 1
  store i64 %count.next, ptr %count.p
  ret void
}
"#;

    #[test]
    fn injects_one_guard_per_access() {
        let mut m = parse_module(DRIVERISH).unwrap();
        let before = m.memory_access_count();
        assert_eq!(before, 4); // 3 stores + 1 load
        let stats = GuardInjectionPass.run(&mut m);
        assert_eq!(stats.get("guards_injected"), 4);
        assert_eq!(m.call_count(GUARD_SYMBOL), 4);
        // Loads/stores themselves are untouched.
        assert_eq!(m.memory_access_count(), before);
        // The import is declared exactly once.
        assert_eq!(m.imported_symbols(), vec![GUARD_SYMBOL]);
        // And the transformed module still verifies.
        verify_module(&m).expect("transformed module verifies");
    }

    #[test]
    fn guards_carry_correct_size_and_flags() {
        let mut m = parse_module(DRIVERISH).unwrap();
        GuardInjectionPass.run(&mut m);
        let f = m.function("tx").unwrap();
        let text = print_module(&m);
        // i32 store guarded with size 4, write flag 2.
        assert!(
            text.contains("call void @carat_guard(ptr %len.p, i64 4, i32 2)"),
            "{text}"
        );
        // i64 load guarded with size 8, read flag 1.
        assert!(
            text.contains("call void @carat_guard(ptr %count.p, i64 8, i32 1)"),
            "{text}"
        );
        assert_eq!(f.call_count(GUARD_SYMBOL), 4);
    }

    #[test]
    fn validate_accepts_transformed_rejects_raw() {
        let mut m = parse_module(DRIVERISH).unwrap();
        assert!(!check_guards(&m).is_clean(), "unguarded module must fail");
        assert!(!strict_guard_layout(&m));
        GuardInjectionPass.run(&mut m);
        assert!(check_guards(&m).is_clean(), "guarded module must pass");
        assert!(strict_guard_layout(&m));
    }

    #[test]
    fn checker_verdict_flips_after_injection() {
        let mut m = parse_module(DRIVERISH).unwrap();
        assert!(!check_guards(&m).is_clean());
        GuardInjectionPass.run(&mut m);
        assert!(check_guards(&m).is_clean());
    }

    #[test]
    fn validate_rejects_tampered_guard_args() {
        let mut m = parse_module(DRIVERISH).unwrap();
        GuardInjectionPass.run(&mut m);
        // Tamper: change one guard's size argument.
        let f = m.function_mut("tx").unwrap();
        let all = f.placed_insts();
        for (_, iid) in all {
            if let Inst::Call { callee, args, .. } = f.inst_mut(iid) {
                if callee == GUARD_SYMBOL {
                    args[1] = Value::ConstInt(Type::I64, 1);
                    break;
                }
            }
        }
        let report = check_guards(&m);
        assert!(!report.is_clean());
        assert!(!strict_guard_layout(&m));
    }

    #[test]
    fn idempotent_module_without_memory_ops() {
        let src = r#"
module "pure"
define i64 @add(i64 %a, i64 %b) {
entry:
  %s = add i64 %a, %b
  ret i64 %s
}
"#;
        let mut m = parse_module(src).unwrap();
        let stats = GuardInjectionPass.run(&mut m);
        assert_eq!(stats.get("guards_injected"), 0);
        // No guard import added when nothing was guarded.
        assert!(m.imported_symbols().is_empty());
        assert!(check_guards(&m).is_clean()); // vacuously true
    }

    #[test]
    fn double_transformation_guards_guardless_module_only_once_each() {
        // Running the pass twice would double-guard; CARAT KOP's driver
        // runs it once. Verify the count doubles so the driver-level
        // protection against re-running is meaningful.
        let mut m = parse_module(DRIVERISH).unwrap();
        GuardInjectionPass.run(&mut m);
        let first = m.call_count(GUARD_SYMBOL);
        GuardInjectionPass.run(&mut m);
        assert_eq!(m.call_count(GUARD_SYMBOL), first * 2);
    }

    #[test]
    fn guarded_loop_verifies_and_roundtrips() {
        let src = r#"
module "loop"
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %acc.next = add i64 %acc, %v
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 %acc
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        verify_module(&m).expect("verifies");
        let text = print_module(&m);
        let m2 = parse_module(&text).unwrap();
        assert_eq!(print_module(&m2), text);
        assert!(check_guards(&m2).is_clean());
        assert!(strict_guard_layout(&m2));
    }
}
