//! Obligation recording — the optimizer's side of the ledger.
//!
//! Every guard-reducing transform records a raw, `InstId`-addressed
//! claim here while passes run; after the pipeline finishes (and
//! `seal_layout` fixes final positions) the driver calls
//! [`ObligationRecorder::finalize`] to resolve each claim into the
//! position-stable `block#index` form of
//! [`kop_analysis::ObligationLedger`] that travels in the attestation.
//!
//! Raw claims may reference guards that a *later* elimination round
//! removes (round 2 can elide a guard that round 1 cited as a
//! dominator). [`ObligationRecorder::redirect`] records "guard X was
//! elided because Y covers it"; finalization chases those links, which
//! is sound because coverage and dominance are both transitive: if Y
//! covers and dominates X, and X covered and dominated the claim, then
//! so does Y.

use std::collections::HashMap;

use kop_analysis::{InstRef, Obligation, ObligationLedger};
use kop_ir::{Function, InstId, Module};

/// One raw claim, addressed by arena instruction id.
#[derive(Clone, Debug)]
enum RawObligation {
    Elide {
        function: String,
        guard: InstId,
        access: InstId,
        size: u64,
        flags: u64,
    },
    Range {
        function: String,
        guard: InstId,
        header: String,
        stride: u64,
        flags: u64,
        accesses: Vec<InstId>,
    },
}

/// Collects raw obligations across a pass pipeline.
#[derive(Clone, Debug, Default)]
pub struct ObligationRecorder {
    raw: Vec<RawObligation>,
    /// `(function, elided guard) → surviving guard` links.
    redirects: HashMap<(String, InstId), InstId>,
}

impl ObligationRecorder {
    /// An empty recorder.
    pub fn new() -> ObligationRecorder {
        ObligationRecorder::default()
    }

    /// Number of raw obligations recorded so far.
    pub fn len(&self) -> usize {
        self.raw.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.raw.is_empty()
    }

    /// Record the elision of a guard of `(size, flags)` that protected
    /// `access`, justified by the dominating `guard`.
    pub fn record_elide(
        &mut self,
        function: &str,
        guard: InstId,
        access: InstId,
        size: u64,
        flags: u64,
    ) {
        self.raw.push(RawObligation::Elide {
            function: function.to_string(),
            guard,
            access,
            size,
            flags,
        });
    }

    /// Record the coalescing of per-iteration guards into the range
    /// `guard` hoisted before the counted loop headed at `header`.
    pub fn record_range(
        &mut self,
        function: &str,
        guard: InstId,
        header: String,
        stride: u64,
        flags: u64,
        accesses: Vec<InstId>,
    ) {
        self.raw.push(RawObligation::Range {
            function: function.to_string(),
            guard,
            header,
            stride,
            flags,
            accesses,
        });
    }

    /// Note that guard `from` was itself elided because `to` covers it:
    /// obligations citing `from` as their dominator are rewritten to
    /// cite `to` at finalization.
    pub fn redirect(&mut self, function: &str, from: InstId, to: InstId) {
        let to = self.resolve(function, to);
        self.redirects.insert((function.to_string(), from), to);
    }

    /// Chase redirect links (bounded — links always point at a guard
    /// recorded as surviving *at the time*, so chains cannot cycle, but
    /// bound defensively anyway).
    fn resolve(&self, function: &str, mut id: InstId) -> InstId {
        for _ in 0..self.redirects.len() + 1 {
            match self.redirects.get(&(function.to_string(), id)) {
                Some(&next) => id = next,
                None => break,
            }
        }
        id
    }

    /// Resolve every raw claim against the final module layout. Claims
    /// whose instructions are no longer placed are dropped (they can no
    /// longer be audited and no longer exempt anything — the validator's
    /// coverage replay remains the backstop).
    pub fn finalize(&self, module: &Module) -> ObligationLedger {
        let mut positions: HashMap<&str, HashMap<InstId, InstRef>> = HashMap::new();
        for f in &module.functions {
            positions.insert(f.name.as_str(), placed_positions(f));
        }
        let mut obligations = Vec::with_capacity(self.raw.len());
        for raw in &self.raw {
            match raw {
                RawObligation::Elide {
                    function,
                    guard,
                    access,
                    size,
                    flags,
                } => {
                    let Some(pos) = positions.get(function.as_str()) else {
                        continue;
                    };
                    let guard = self.resolve(function, *guard);
                    let (Some(g), Some(a)) = (pos.get(&guard), pos.get(access)) else {
                        continue;
                    };
                    obligations.push(Obligation::Elide {
                        function: function.clone(),
                        guard: g.clone(),
                        access: a.clone(),
                        size: *size,
                        flags: *flags,
                    });
                }
                RawObligation::Range {
                    function,
                    guard,
                    header,
                    stride,
                    flags,
                    accesses,
                } => {
                    let Some(pos) = positions.get(function.as_str()) else {
                        continue;
                    };
                    let Some(g) = pos.get(guard) else {
                        continue;
                    };
                    let Some(refs) = accesses
                        .iter()
                        .map(|a| pos.get(a).cloned())
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    obligations.push(Obligation::Range {
                        function: function.clone(),
                        guard: g.clone(),
                        header: header.clone(),
                        stride: *stride,
                        flags: *flags,
                        accesses: refs,
                    });
                }
            }
        }
        ObligationLedger { obligations }
    }
}

fn placed_positions(f: &Function) -> HashMap<InstId, InstRef> {
    let mut map = HashMap::new();
    for bid in f.block_ids() {
        let block = f.block(bid);
        for (idx, &iid) in block.insts.iter().enumerate() {
            map.insert(
                iid,
                InstRef {
                    block: block.name.clone(),
                    index: idx,
                },
            );
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    #[test]
    fn finalize_resolves_positions_and_redirects() {
        let src = r#"
module "fin"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  store i64 1, ptr %p
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let entry = f.block_by_name("entry").unwrap();
        let guard = f.block(entry).insts[0];
        let store = f.block(entry).insts[1];

        let mut rec = ObligationRecorder::new();
        // Pretend a guard with arena id 99 was elided, its claim backed
        // by id 98, which was in turn elided and backed by the real one.
        rec.record_elide("f", InstId(98), store, 8, 2);
        rec.redirect("f", InstId(98), guard);
        let ledger = rec.finalize(&m);
        assert_eq!(ledger.len(), 1);
        let Obligation::Elide {
            guard: g, access, ..
        } = &ledger.obligations[0]
        else {
            panic!("expected elide");
        };
        assert_eq!(g.to_string(), "entry#0");
        assert_eq!(access.to_string(), "entry#1");
    }

    #[test]
    fn unplaced_references_are_dropped() {
        let m = parse_module("module \"empty\"").unwrap();
        let mut rec = ObligationRecorder::new();
        rec.record_elide("ghost", InstId(0), InstId(1), 8, 1);
        assert!(rec.finalize(&m).is_empty());
    }
}
