//! Compile-time attestation.
//!
//! From the paper (§2): *"The signature also is in effect an assertion, by
//! the compilation process, that the code it compiled does not include any
//! problematic elements such as inline or separate assembly."* And §5 notes
//! that privileged intrinsics/builtins are a known hole that instrumentation
//! could close.
//!
//! [`Attestation::check`] scans a module and either produces an attestation
//! record (which the signer binds into the signature) or refuses with
//! [`AttestError`], in which case the module cannot be signed at all.

use std::fmt;

use kop_analysis::{GrantOracle, Obligation, ObligationLedger};
use kop_ir::{Inst, Module};

use crate::guard::{strict_guard_layout, GUARD_SYMBOL};

/// Privileged intrinsics a kernel module must not call directly. Mirrors
/// the x86 privileged-instruction surface a real attestor would reject
/// (paper §5 lists this as future work; we implement the check).
pub const PRIVILEGED_INTRINSICS: &[&str] = &[
    "__wrmsr",
    "__rdmsr",
    "__cli",
    "__sti",
    "__hlt",
    "__invlpg",
    "__lgdt",
    "__lidt",
    "__ltr",
    "__mov_cr0",
    "__mov_cr3",
    "__mov_cr4",
    "__outb",
    "__outw",
    "__outl",
    "__vmcall",
];

/// Why attestation refused a module.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AttestError {
    /// The module contains an inline-assembly instruction.
    InlineAsm {
        /// Function containing the asm.
        function: String,
        /// The assembly text found.
        text: String,
    },
    /// The module calls a privileged intrinsic.
    PrivilegedIntrinsic {
        /// Function containing the call.
        function: String,
        /// The intrinsic called.
        intrinsic: String,
    },
    /// Wrapped-intrinsic mode was requested but some privileged call is
    /// not immediately preceded by its matching intrinsic guard.
    UnwrappedIntrinsic,
}

impl fmt::Display for AttestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttestError::InlineAsm { function, text } => {
                write!(f, "inline assembly in @{function}: \"{text}\"")
            }
            AttestError::PrivilegedIntrinsic {
                function,
                intrinsic,
            } => write!(
                f,
                "privileged intrinsic @{intrinsic} called from @{function}"
            ),
            AttestError::UnwrappedIntrinsic => {
                f.write_str("privileged intrinsic call lacks its intrinsic guard")
            }
        }
    }
}

impl std::error::Error for AttestError {}

/// The attestation record bound into a module's signature.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Attestation {
    /// Module name the record was computed for.
    pub module_name: String,
    /// Asserted: no inline assembly anywhere in the module.
    pub no_inline_asm: bool,
    /// Asserted: no calls to privileged intrinsics.
    pub no_privileged_calls: bool,
    /// Whether every load/store is immediately preceded by a matching
    /// guard (true for unoptimized CARAT KOP output; false once the
    /// optional optimization passes have moved or removed guards).
    pub guards_strict: bool,
    /// Whether the dataflow verifier proved every load/store dominated by
    /// a covering guard on all paths. Unlike [`guards_strict`] this holds
    /// for optimized (hoisted/deduplicated) builds too — it is the
    /// compiler's record of the proof the loader can independently
    /// recompute in static-verification mode.
    ///
    /// [`guards_strict`]: Attestation::guards_strict
    pub guards_covered: bool,
    /// Static count of guard call sites.
    pub guard_count: u64,
    /// Number of stable guard-site IDs assigned by the deterministic
    /// site walk ([`kop_trace::assign_guard_sites`]) — memory *and*
    /// intrinsic guards, so ≥ [`guard_count`].
    ///
    /// [`guard_count`]: Attestation::guard_count
    pub guard_sites: u64,
    /// SHA-256 (hex) of the canonical site text
    /// ([`kop_trace::canonical_site_text`]). The loader recomputes this
    /// at insmod and refuses modules whose site map diverges from what
    /// the compiler signed, so per-site profiles can't be misattributed.
    pub site_digest: String,
    /// Static count of loads + stores.
    pub mem_access_count: u64,
    /// Static count of privileged-intrinsic call sites (0 unless the
    /// module was built with `wrap_privileged` — unwrapped privileged
    /// calls are refused outright).
    pub privileged_calls: u64,
    /// Whether every privileged call carries its intrinsic guard (§5
    /// extension). Always true when `privileged_calls > 0`.
    pub privileged_wrapped: bool,
    /// Identifier of the compiler that produced the module.
    pub compiler_id: String,
    /// The obligation ledger, in [`ObligationLedger`] text form: one
    /// machine-checkable claim per guard the optimizer removed or
    /// coalesced. Empty for unoptimized builds. The ledger is *bound
    /// into the signature* and re-audited by the independent translation
    /// validator at `insmod` — a module whose elisions the loader cannot
    /// re-derive does not load.
    pub obligations: String,
    /// Count of inline-bounds obligations in the ledger (the
    /// profile-directed tier's baked `[lo, hi)` immediates). Non-zero
    /// only for ledgers in `obligations-v2` form; each such claim must
    /// have been audited against a grant oracle for `guards_covered` to
    /// hold.
    pub inline_obligations: u64,
}

impl Attestation {
    /// The compiler identifier embedded in every attestation. The paper
    /// pins clang 14.0.0; we pin this crate.
    pub const COMPILER_ID: &'static str = concat!("carat-kop-kir-", env!("CARGO_PKG_VERSION"));

    /// Scan `module` and produce an attestation, or refuse. Privileged
    /// intrinsic calls are refused outright (the paper's base behaviour).
    pub fn check(module: &Module) -> Result<Attestation, AttestError> {
        Self::check_with(module, false)
    }

    /// Input-side scan only: refuse inline assembly always, and privileged
    /// calls unless `allow_privileged`. Used by the driver *before* the
    /// wrap pass has run, so wrap validation is not yet applicable.
    pub fn precheck(module: &Module, allow_privileged: bool) -> Result<(), AttestError> {
        scan(module, allow_privileged)
    }

    /// Like [`Attestation::check`], but when `allow_wrapped` is set,
    /// privileged-intrinsic calls are accepted *iff* each one is
    /// immediately preceded by its matching `carat_intrinsic_guard` call
    /// (the §5 extension).
    pub fn check_with(module: &Module, allow_wrapped: bool) -> Result<Attestation, AttestError> {
        Self::check_with_ledger(module, allow_wrapped, &ObligationLedger::empty())
    }

    /// Like [`Attestation::check_with`], but binds `ledger` — the
    /// optimizer's obligation record — into the attestation.
    /// `guards_covered` is computed by the independent translation
    /// validator against that ledger, so it asserts both full coverage
    /// *and* that every optimizer claim was independently re-derived.
    pub fn check_with_ledger(
        module: &Module,
        allow_wrapped: bool,
        ledger: &ObligationLedger,
    ) -> Result<Attestation, AttestError> {
        Self::check_with_ledger_and_grants(module, allow_wrapped, ledger, None)
    }

    /// Like [`Attestation::check_with_ledger`], with a grant oracle for
    /// auditing inline-bounds obligations at signing time. Without an
    /// oracle a ledger carrying inline obligations cannot attest
    /// coverage (the validator refuses unverifiable citations), so the
    /// promotion path must pass the policy it baked the bounds from.
    pub fn check_with_ledger_and_grants(
        module: &Module,
        allow_wrapped: bool,
        ledger: &ObligationLedger,
        grants: Option<&dyn GrantOracle>,
    ) -> Result<Attestation, AttestError> {
        scan(module, allow_wrapped)?;
        let privileged_calls = crate::intrinsics::privileged_call_count(module);
        if privileged_calls > 0 && !crate::intrinsics::validate_intrinsic_wraps(module) {
            return Err(AttestError::UnwrappedIntrinsic);
        }
        let sites = kop_trace::assign_guard_sites(module);
        let site_text = kop_trace::canonical_site_text(&module.name, &sites);
        Ok(Attestation {
            module_name: module.name.clone(),
            no_inline_asm: true,
            no_privileged_calls: privileged_calls == 0,
            guards_strict: strict_guard_layout(module),
            guards_covered: kop_analysis::validate_module_with_grants(module, ledger, grants)
                .is_clean(),
            guard_count: module.call_count(GUARD_SYMBOL) as u64,
            guard_sites: sites.len() as u64,
            site_digest: crate::sha256::hex(&crate::sha256::sha256(site_text.as_bytes())),
            mem_access_count: module.memory_access_count() as u64,
            privileged_calls,
            privileged_wrapped: privileged_calls > 0,
            compiler_id: Self::COMPILER_ID.to_string(),
            obligations: ledger.to_text(),
            inline_obligations: ledger
                .obligations
                .iter()
                .filter(|ob| matches!(ob, Obligation::Inline { .. }))
                .count() as u64,
        })
    }

    /// Canonical byte encoding, bound into the module signature. The
    /// obligation ledger rides at the end, prefixed by its byte length so
    /// the encoding stays unambiguous (ledger text is multi-line). v6
    /// adds the `inline_obligations` count, so a signature over a
    /// promoted module's attestation cannot be replayed onto one whose
    /// ledger dropped (or grew) inline claims.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "attestation-v6\nmodule={}\nno_asm={}\nno_priv={}\nstrict={}\ncovered={}\nguards={}\nsites={}\nsite_digest={}\naccesses={}\npriv_calls={}\npriv_wrapped={}\ncompiler={}\ninline_obligations={}\nobligations_len={}\n{}",
            self.module_name,
            self.no_inline_asm,
            self.no_privileged_calls,
            self.guards_strict,
            self.guards_covered,
            self.guard_count,
            self.guard_sites,
            self.site_digest,
            self.mem_access_count,
            self.privileged_calls,
            self.privileged_wrapped,
            self.compiler_id,
            self.inline_obligations,
            self.obligations.len(),
            self.obligations,
        )
        .into_bytes()
    }
}

/// Shared scan: refuse inline asm always; refuse privileged calls unless
/// `allow_privileged`.
fn scan(module: &Module, allow_privileged: bool) -> Result<(), AttestError> {
    for f in &module.functions {
        for (_, iid) in f.placed_insts() {
            match f.inst(iid) {
                Inst::Asm { text } => {
                    return Err(AttestError::InlineAsm {
                        function: f.name.clone(),
                        text: text.clone(),
                    })
                }
                Inst::Call { callee, .. }
                    if PRIVILEGED_INTRINSICS.contains(&callee.as_str()) && !allow_privileged =>
                {
                    return Err(AttestError::PrivilegedIntrinsic {
                        function: f.name.clone(),
                        intrinsic: callee.clone(),
                    });
                }
                _ => {}
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::guard::GuardInjectionPass;
    use crate::pass::Pass;
    use kop_ir::parse_module;

    #[test]
    fn clean_module_attests() {
        let src = r#"
module "clean"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let a = Attestation::check(&m).expect("attests");
        assert!(a.no_inline_asm);
        assert!(a.guards_strict);
        assert!(a.guards_covered);
        assert_eq!(a.guard_count, 1);
        assert_eq!(a.mem_access_count, 1);
        assert_eq!(a.compiler_id, Attestation::COMPILER_ID);
    }

    #[test]
    fn attestation_records_guard_sites_and_digest() {
        // The site walk and the guard pass must agree on the symbol.
        assert_eq!(kop_trace::sites::GUARD_SYMBOL, crate::guard::GUARD_SYMBOL);
        assert_eq!(
            kop_trace::sites::INTRINSIC_GUARD_SYMBOL,
            crate::intrinsics::INTRINSIC_GUARD_SYMBOL
        );
        let src = r#"
module "sited"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  store i64 %v, ptr %p
  ret i64 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let a = Attestation::check(&m).expect("attests");
        assert_eq!(a.guard_sites, a.guard_count, "no intrinsic guards here");
        assert_eq!(a.site_digest.len(), 64, "hex sha256");
        // The digest is position-sensitive: a module with the same guard
        // count in a differently-named function digests differently.
        let src2 = src.replace("@f", "@g");
        let mut m2 = parse_module(&src2).unwrap();
        GuardInjectionPass.run(&mut m2);
        let a2 = Attestation::check(&m2).expect("attests");
        assert_eq!(a2.guard_sites, a.guard_sites);
        assert_ne!(a2.site_digest, a.site_digest);
    }

    #[test]
    fn inline_asm_rejected() {
        let src = r#"
module "sneaky"
define void @f() {
entry:
  asm "mov %cr3, %rax"
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let err = Attestation::check(&m).unwrap_err();
        match err {
            AttestError::InlineAsm { function, .. } => assert_eq!(function, "f"),
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn privileged_intrinsic_rejected() {
        let src = r#"
module "priv"
declare void @__wrmsr(i64, i64)
define void @f() {
entry:
  call void @__wrmsr(i64 0xC0000080, i64 0)
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let err = Attestation::check(&m).unwrap_err();
        match err {
            AttestError::PrivilegedIntrinsic { intrinsic, .. } => {
                assert_eq!(intrinsic, "__wrmsr")
            }
            other => panic!("wrong error: {other}"),
        }
    }

    #[test]
    fn unguarded_module_attests_non_strict() {
        let src = r#"
module "raw"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let a = Attestation::check(&m).expect("attests");
        assert!(!a.guards_strict);
        assert!(!a.guards_covered);
        assert_eq!(a.guard_count, 0);
        assert_eq!(a.mem_access_count, 1);
    }

    #[test]
    fn coalesced_guards_are_covered_by_ledger_but_not_strict() {
        use crate::obligations::ObligationRecorder;
        use crate::opt::RangeCoalescing;
        let src = r#"
module "coalesce"
define void @f(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i2 = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let mut rec = ObligationRecorder::new();
        let s = RangeCoalescing.run_with(&mut m, &mut rec);
        assert!(s.get("guards_range_coalesced") > 0);
        m.seal_layout();
        let ledger = rec.finalize(&m);
        let a = Attestation::check_with_ledger(&m, false, &ledger).expect("attests");
        assert!(!a.guards_strict, "coalesced layout is not strict");
        assert!(a.guards_covered, "the range obligation proves the body");
        assert_eq!(a.obligations, ledger.to_text());
        // Without the ledger the same module cannot attest coverage: the
        // loop body access has no per-iteration guard any more.
        let bare = Attestation::check(&m).expect("attests");
        assert!(!bare.guards_covered);
    }

    #[test]
    fn inline_obligations_attest_only_with_a_grant_oracle() {
        use kop_analysis::{InstRef, Obligation};
        use kop_core::{Protection, Region, Size, VAddr};
        let src = r#"
module "hot"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let mut m = parse_module(src).unwrap();
        GuardInjectionPass.run(&mut m);
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Inline {
                function: "f".into(),
                guard: InstRef::parse("entry#0").unwrap(),
                lo: 0x1000,
                hi: 0x2000,
                flags: 1,
                gen: 3,
                env_lo: 0x1100,
                env_hi: 0x1180,
            }],
        };
        // Signing without an oracle: the citation is unverifiable, so the
        // attestation records coverage as unproven.
        let blind = Attestation::check_with_ledger(&m, false, &ledger).expect("attests");
        assert!(!blind.guards_covered);
        assert_eq!(blind.inline_obligations, 1);
        // With the oracle the bound is recomputed and coverage attests.
        let oracle = |gen: u64| {
            (gen == 3).then(|| {
                vec![Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap()]
            })
        };
        let a = Attestation::check_with_ledger_and_grants(&m, false, &ledger, Some(&oracle))
            .expect("attests");
        assert!(a.guards_covered, "oracle-audited inline bound attests");
        assert!(a.obligations.starts_with(ObligationLedger::HEADER_V2));
        // The v6 encoding binds the inline count.
        let bytes = String::from_utf8(a.to_bytes()).unwrap();
        assert!(bytes.starts_with("attestation-v6\n"), "{bytes}");
        assert!(bytes.contains("inline_obligations=1"), "{bytes}");
    }

    #[test]
    fn byte_encoding_is_stable_and_distinct() {
        let src = r#"
module "x"
define void @f() {
entry:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let a = Attestation::check(&m).unwrap();
        let b1 = a.to_bytes();
        let b2 = a.to_bytes();
        assert_eq!(b1, b2);
        let mut a2 = a.clone();
        a2.guard_count = 99;
        assert_ne!(b1, a2.to_bytes());
    }
}
