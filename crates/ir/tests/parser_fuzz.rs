//! Parser robustness: arbitrary input must never panic — the kernel
//! loader parses module text from untrusted containers (after MAC
//! verification, but defense in depth is free here).

use proptest::prelude::*;

use kop_ir::{parse_module, print_module};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Totally random bytes: parse returns Ok or Err, never panics.
    #[test]
    fn random_strings_never_panic(s in "\\PC*") {
        let _ = parse_module(&s);
    }

    /// Random token soup from the IR alphabet: much more likely to get
    /// deep into the parser; still must never panic.
    #[test]
    fn token_soup_never_panics(tokens in proptest::collection::vec(
        prop_oneof![
            Just("module".to_string()),
            Just("define".to_string()),
            Just("declare".to_string()),
            Just("global".to_string()),
            Just("i64".to_string()),
            Just("ptr".to_string()),
            Just("void".to_string()),
            Just("load".to_string()),
            Just("store".to_string()),
            Just("call".to_string()),
            Just("gep".to_string()),
            Just("phi".to_string()),
            Just("br".to_string()),
            Just("condbr".to_string()),
            Just("ret".to_string()),
            Just("add".to_string()),
            Just("icmp".to_string()),
            Just("entry:".to_string()),
            Just("{".to_string()),
            Just("}".to_string()),
            Just("[".to_string()),
            Just("]".to_string()),
            Just("(".to_string()),
            Just(")".to_string()),
            Just(",".to_string()),
            Just("=".to_string()),
            Just("@f".to_string()),
            Just("%x".to_string()),
            Just("\"name\"".to_string()),
            Just("42".to_string()),
            Just("-1".to_string()),
            Just("0xff".to_string()),
        ],
        0..40,
    )) {
        let src = tokens.join(" ");
        let _ = parse_module(&src);
    }

    /// A valid prefix plus garbage suffix: never panics, and if it parses,
    /// the result round-trips.
    #[test]
    fn corrupted_valid_module_never_panics(garbage in "\\PC{0,40}") {
        let src = format!(
            "module \"m\"\ndefine i64 @f(i64 %x) {{\nentry:\n  %y = add i64 %x, 1\n  ret i64 %y\n}}\n{garbage}"
        );
        if let Ok(m) = parse_module(&src) {
            let text = print_module(&m);
            let m2 = parse_module(&text).expect("canonical text parses");
            assert_eq!(print_module(&m2), text);
        }
    }
}
