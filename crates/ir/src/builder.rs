//! Ergonomic programmatic construction of KIR.
//!
//! Used throughout the workspace to build test modules, the synthetic
//! driver-model modules, and workload corpora without writing textual IR by
//! hand.
//!
//! ```
//! use kop_ir::{IrBuilder, Type, Value};
//!
//! let mut b = IrBuilder::new("demo");
//! let mut f = b.function("double", vec![Type::I64], Type::I64);
//! let entry = f.block("entry");
//! f.switch_to(entry);
//! let doubled = f.add(Type::I64, Value::Arg(0), Value::Arg(0));
//! f.ret(Some(doubled));
//! f.finish();
//! let module = b.finish();
//! assert!(kop_ir::verify_module(&module).is_ok());
//! ```

use crate::function::{BlockId, Function};
use crate::inst::{BinOp, CastOp, IcmpPred, Inst, Terminator, Value};
use crate::module::{ExternDecl, Global, GlobalInit, Module};
use crate::types::Type;

/// Builds a [`Module`].
pub struct IrBuilder {
    module: Module,
}

impl IrBuilder {
    /// Start a new module.
    pub fn new(name: impl Into<String>) -> IrBuilder {
        IrBuilder {
            module: Module::new(name),
        }
    }

    /// Declare an external function (import).
    pub fn declare_extern(&mut self, name: impl Into<String>, params: Vec<Type>, ret_ty: Type) {
        self.module.declare_extern(ExternDecl {
            name: name.into(),
            params,
            ret_ty,
        });
    }

    /// Declare the canonical `carat_guard` import:
    /// `void carat_guard(ptr, i64, i32)`.
    pub fn declare_carat_guard(&mut self) {
        self.declare_extern(
            "carat_guard",
            vec![Type::Ptr, Type::I64, Type::I32],
            Type::Void,
        );
    }

    /// Add a global variable.
    pub fn global(&mut self, name: impl Into<String>, ty: Type, init: GlobalInit) -> Value {
        let name = name.into();
        self.module.globals.push(Global {
            name: name.clone(),
            ty,
            init,
        });
        Value::Global(name)
    }

    /// Start building a function. Call [`FuncBuilder::finish`] to add it to
    /// the module.
    pub fn function(
        &mut self,
        name: impl Into<String>,
        params: Vec<Type>,
        ret_ty: Type,
    ) -> FuncBuilder<'_> {
        FuncBuilder {
            func: Function::new(name, params, ret_ty),
            cur: None,
            module: &mut self.module,
        }
    }

    /// Finish and return the module.
    pub fn finish(self) -> Module {
        self.module
    }
}

/// Builds a [`Function`] inside an [`IrBuilder`].
pub struct FuncBuilder<'a> {
    func: Function,
    cur: Option<BlockId>,
    module: &'a mut Module,
}

impl FuncBuilder<'_> {
    /// Create a new block (does not switch to it).
    pub fn block(&mut self, name: impl Into<String>) -> BlockId {
        self.func.add_block(name)
    }

    /// Make `b` the insertion point.
    pub fn switch_to(&mut self, b: BlockId) {
        self.cur = Some(b);
    }

    /// Rename the function parameters (for readable printed IR).
    pub fn name_params(&mut self, names: &[&str]) {
        assert_eq!(names.len(), self.func.params.len());
        self.func.param_names = names.iter().map(|s| s.to_string()).collect();
    }

    fn emit(&mut self, inst: Inst) -> Value {
        let b = self.cur.expect("no insertion block; call switch_to first");
        let id = self.func.alloc_inst(inst);
        self.func.push_inst(b, id);
        Value::Inst(id)
    }

    fn set_term(&mut self, t: Terminator) {
        let b = self.cur.expect("no insertion block; call switch_to first");
        let blk = self.func.block_mut(b);
        assert!(blk.term.is_none(), "block already terminated");
        blk.term = Some(t);
    }

    /// `alloca ty, count`
    pub fn alloca(&mut self, ty: Type, count: u64) -> Value {
        self.emit(Inst::Alloca { ty, count })
    }

    /// `load ty, ptr`
    pub fn load(&mut self, ty: Type, ptr: Value) -> Value {
        self.emit(Inst::Load { ty, ptr })
    }

    /// `store ty val, ptr`
    pub fn store(&mut self, ty: Type, val: Value, ptr: Value) {
        self.emit(Inst::Store { ty, val, ptr });
    }

    /// `gep base_ty, ptr, indices...`
    pub fn gep(&mut self, base_ty: Type, ptr: Value, indices: Vec<Value>) -> Value {
        self.emit(Inst::Gep {
            base_ty,
            ptr,
            indices,
        })
    }

    /// Generic binary operation.
    pub fn bin(&mut self, op: BinOp, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.emit(Inst::Bin { op, ty, lhs, rhs })
    }

    /// `add`
    pub fn add(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Add, ty, lhs, rhs)
    }

    /// `sub`
    pub fn sub(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Sub, ty, lhs, rhs)
    }

    /// `mul`
    pub fn mul(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Mul, ty, lhs, rhs)
    }

    /// `and`
    pub fn and(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::And, ty, lhs, rhs)
    }

    /// `or`
    pub fn or(&mut self, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.bin(BinOp::Or, ty, lhs, rhs)
    }

    /// `icmp pred ty lhs, rhs`
    pub fn icmp(&mut self, pred: IcmpPred, ty: Type, lhs: Value, rhs: Value) -> Value {
        self.emit(Inst::Icmp { pred, ty, lhs, rhs })
    }

    /// Cast.
    pub fn cast(&mut self, op: CastOp, from_ty: Type, to_ty: Type, val: Value) -> Value {
        self.emit(Inst::Cast {
            op,
            from_ty,
            to_ty,
            val,
        })
    }

    /// `select i1 cond, ty a, ty b`
    pub fn select(&mut self, ty: Type, cond: Value, then_val: Value, else_val: Value) -> Value {
        self.emit(Inst::Select {
            ty,
            cond,
            then_val,
            else_val,
        })
    }

    /// `call ret_ty @callee(args...)`
    pub fn call(&mut self, callee: impl Into<String>, ret_ty: Type, args: Vec<Value>) -> Value {
        self.emit(Inst::Call {
            callee: callee.into(),
            ret_ty,
            args,
        })
    }

    /// `phi ty [v, b]...`
    pub fn phi(&mut self, ty: Type, incomings: Vec<(BlockId, Value)>) -> Value {
        self.emit(Inst::Phi { ty, incomings })
    }

    /// Inline assembly marker.
    pub fn asm(&mut self, text: impl Into<String>) {
        self.emit(Inst::Asm { text: text.into() });
    }

    /// Unconditional branch.
    pub fn br(&mut self, target: BlockId) {
        self.set_term(Terminator::Br(target));
    }

    /// Conditional branch.
    pub fn condbr(&mut self, cond: Value, then_blk: BlockId, else_blk: BlockId) {
        self.set_term(Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        });
    }

    /// Switch.
    pub fn switch(&mut self, ty: Type, val: Value, default: BlockId, arms: Vec<(u64, BlockId)>) {
        self.set_term(Terminator::Switch {
            ty,
            val,
            default,
            arms,
        });
    }

    /// Return.
    pub fn ret(&mut self, val: Option<Value>) {
        self.set_term(Terminator::Ret(val));
    }

    /// Unreachable terminator.
    pub fn unreachable(&mut self) {
        self.set_term(Terminator::Unreachable);
    }

    /// Name the most recently emitted instruction's result.
    pub fn name_last(&mut self, name: impl Into<String>) {
        let n = self.func.inst_count();
        assert!(n > 0, "no instruction emitted yet");
        self.func
            .set_inst_name(crate::function::InstId((n - 1) as u32), name);
    }

    /// Direct access to the function under construction.
    pub fn raw(&mut self) -> &mut Function {
        &mut self.func
    }

    /// Finish the function and add it to the module.
    pub fn finish(self) {
        let mut func = self.func;
        func.seal_layout();
        self.module.functions.push(func);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_module;

    #[test]
    fn build_loop_and_verify() {
        // Equivalent to the parser test's sum function.
        let mut b = IrBuilder::new("sum");
        b.declare_carat_guard();
        b.global("total", Type::I64, GlobalInit::Int(0));
        let mut f = b.function("sum", vec![Type::Ptr, Type::I64], Type::I64);
        f.name_params(&["buf", "n"]);
        let entry = f.block("entry");
        let head = f.block("head");
        let body = f.block("body");
        let exit = f.block("exit");

        f.switch_to(entry);
        f.br(head);

        f.switch_to(head);
        let i = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let acc = f.phi(Type::I64, vec![(entry, Value::i64(0))]);
        let c = f.icmp(IcmpPred::Ult, Type::I64, i.clone(), Value::Arg(1));
        f.condbr(c, body, exit);

        f.switch_to(body);
        let p = f.gep(Type::I64, Value::Arg(0), vec![i.clone()]);
        let v = f.load(Type::I64, p);
        let acc_next = f.add(Type::I64, acc.clone(), v);
        let i_next = f.add(Type::I64, i.clone(), Value::i64(1));
        f.br(head);

        // Patch the phis with the loop-carried values.
        if let (Value::Inst(i_id), Value::Inst(acc_id)) = (&i, &acc) {
            if let Inst::Phi { incomings, .. } = f.raw().inst_mut(*i_id) {
                incomings.push((body, i_next.clone()));
            }
            if let Inst::Phi { incomings, .. } = f.raw().inst_mut(*acc_id) {
                incomings.push((body, acc_next.clone()));
            }
        }

        f.switch_to(exit);
        f.store(Type::I64, acc, Value::Global("total".into()));
        f.ret(Some(Value::i64(0)));
        f.finish();

        let m = b.finish();
        verify_module(&m).expect("verifies");
        assert_eq!(m.memory_access_count(), 2);

        // And the printed form round-trips.
        let text = crate::print_module(&m);
        let m2 = crate::parse_module(&text).expect("reparses");
        assert_eq!(crate::print_module(&m2), text);
    }

    #[test]
    #[should_panic(expected = "block already terminated")]
    fn double_terminate_panics() {
        let mut b = IrBuilder::new("x");
        let mut f = b.function("f", vec![], Type::Void);
        let e = f.block("entry");
        f.switch_to(e);
        f.ret(None);
        f.ret(None);
    }

    #[test]
    fn named_instructions_print_nicely() {
        let mut b = IrBuilder::new("n");
        let mut f = b.function("f", vec![Type::I64], Type::I64);
        let e = f.block("entry");
        f.switch_to(e);
        let x = f.add(Type::I64, Value::Arg(0), Value::i64(5));
        f.name_last("plus5");
        f.ret(Some(x));
        f.finish();
        let m = b.finish();
        let text = crate::print_module(&m);
        assert!(text.contains("%plus5 = add i64 %arg0, 5"));
    }
}
