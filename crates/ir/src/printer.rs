//! Textual KIR printer.
//!
//! The printed form is the *canonical* representation: code signing hashes
//! it (see `kop-compiler::signing`), and the parser accepts exactly what the
//! printer emits (plus whitespace/comments), so `parse(print(m))` is
//! structurally equal to `m`.

use core::fmt::Write;

use crate::function::{Function, InstId};
use crate::inst::{Inst, Terminator, Value};
use crate::module::{GlobalInit, Module};
use crate::types::Type;

/// Print a whole module in canonical textual form.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "module \"{}\"", m.name);
    if !m.externs.is_empty() {
        out.push('\n');
    }
    for e in &m.externs {
        let params: Vec<String> = e.params.iter().map(|t| t.to_string()).collect();
        let _ = writeln!(
            out,
            "declare {} @{}({})",
            e.ret_ty,
            e.name,
            params.join(", ")
        );
    }
    if !m.globals.is_empty() {
        out.push('\n');
    }
    for g in &m.globals {
        let init = match &g.init {
            GlobalInit::Zero => "zero".to_string(),
            GlobalInit::Int(v) => format!("{v}"),
            GlobalInit::Bytes(bytes) => {
                let hex: Vec<String> = bytes.iter().map(|b| format!("{b:#04x}")).collect();
                format!("bytes [{}]", hex.join(" "))
            }
        };
        let _ = writeln!(out, "global @{} : {} = {}", g.name, g.ty, init);
    }
    for f in &m.functions {
        out.push('\n');
        out.push_str(&print_function(f));
    }
    out
}

/// Print a single function.
pub fn print_function(f: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = f
        .params
        .iter()
        .zip(f.param_names.iter())
        .map(|(t, n)| format!("{t} %{n}"))
        .collect();
    let _ = writeln!(
        out,
        "define {} @{}({}) {{",
        f.ret_ty,
        f.name,
        params.join(", ")
    );
    for bid in f.block_ids() {
        let blk = f.block(bid);
        let _ = writeln!(out, "{}:", blk.name);
        for &iid in &blk.insts {
            let _ = writeln!(out, "  {}", print_inst(f, iid));
        }
        match &blk.term {
            Some(t) => {
                let _ = writeln!(out, "  {}", print_term(f, t));
            }
            None => {
                let _ = writeln!(out, "  ; <no terminator>");
            }
        }
    }
    out.push_str("}\n");
    out
}

/// The printable name of an instruction result: the user name if set,
/// otherwise a generated `__t<id>` name.
pub fn result_name(f: &Function, id: InstId) -> String {
    let n = f.inst_name(id);
    if n.is_empty() {
        format!("__t{}", id.0)
    } else {
        n.to_string()
    }
}

fn print_value(f: &Function, v: &Value) -> String {
    match v {
        Value::ConstInt(_, val) => format!("{val}"),
        Value::NullPtr => "null".to_string(),
        Value::Global(name) | Value::FuncAddr(name) => format!("@{name}"),
        Value::Arg(i) => format!(
            "%{}",
            f.param_names
                .get(*i as usize)
                .cloned()
                .unwrap_or_else(|| format!("arg{i}"))
        ),
        Value::Inst(id) => format!("%{}", result_name(f, *id)),
    }
}

fn print_inst(f: &Function, id: InstId) -> String {
    let inst = f.inst(id);
    let lhs = if inst.result_type() == Type::Void {
        String::new()
    } else {
        format!("%{} = ", result_name(f, id))
    };
    let body = match inst {
        Inst::Alloca { ty, count } => format!("alloca {ty}, {count}"),
        Inst::Load { ty, ptr } => format!("load {ty}, ptr {}", print_value(f, ptr)),
        Inst::Store { ty, val, ptr } => format!(
            "store {ty} {}, ptr {}",
            print_value(f, val),
            print_value(f, ptr)
        ),
        Inst::Gep {
            base_ty,
            ptr,
            indices,
        } => {
            let mut s = format!("gep {base_ty}, ptr {}", print_value(f, ptr));
            for idx in indices {
                let ty = f.value_type(idx).unwrap_or(Type::I64);
                let _ = write!(s, ", {ty} {}", print_value(f, idx));
            }
            s
        }
        Inst::Bin { op, ty, lhs, rhs } => {
            format!("{op} {ty} {}, {}", print_value(f, lhs), print_value(f, rhs))
        }
        Inst::Icmp { pred, ty, lhs, rhs } => format!(
            "icmp {pred} {ty} {}, {}",
            print_value(f, lhs),
            print_value(f, rhs)
        ),
        Inst::Cast {
            op,
            from_ty,
            to_ty,
            val,
        } => format!("{op} {from_ty} {} to {to_ty}", print_value(f, val)),
        Inst::Select {
            ty,
            cond,
            then_val,
            else_val,
        } => format!(
            "select i1 {}, {ty} {}, {ty} {}",
            print_value(f, cond),
            print_value(f, then_val),
            print_value(f, else_val)
        ),
        Inst::Call {
            callee,
            ret_ty,
            args,
        } => {
            let printed: Vec<String> = args
                .iter()
                .map(|a| {
                    let ty = f.value_type(a).unwrap_or(Type::I64);
                    format!("{ty} {}", print_value(f, a))
                })
                .collect();
            format!("call {ret_ty} @{callee}({})", printed.join(", "))
        }
        Inst::Phi { ty, incomings } => {
            let arms: Vec<String> = incomings
                .iter()
                .map(|(b, v)| format!("[ {}, %{} ]", print_value(f, v), f.block(*b).name))
                .collect();
            format!("phi {ty} {}", arms.join(", "))
        }
        Inst::Asm { text } => format!("asm \"{}\"", escape(text)),
    };
    format!("{lhs}{body}")
}

fn print_term(f: &Function, t: &Terminator) -> String {
    match t {
        Terminator::Br(b) => format!("br %{}", f.block(*b).name),
        Terminator::CondBr {
            cond,
            then_blk,
            else_blk,
        } => format!(
            "condbr i1 {}, %{}, %{}",
            print_value(f, cond),
            f.block(*then_blk).name,
            f.block(*else_blk).name
        ),
        Terminator::Switch {
            ty,
            val,
            default,
            arms,
        } => {
            let printed: Vec<String> = arms
                .iter()
                .map(|(c, b)| format!("{c}: %{}", f.block(*b).name))
                .collect();
            format!(
                "switch {ty} {}, %{} [ {} ]",
                print_value(f, val),
                f.block(*default).name,
                printed.join(", ")
            )
        }
        Terminator::Ret(None) => "ret void".to_string(),
        Terminator::Ret(Some(v)) => {
            let ty = f.value_type(v).unwrap_or(Type::I64);
            format!("ret {ty} {}", print_value(f, v))
        }
        Terminator::Unreachable => "unreachable".to_string(),
    }
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::function::Function;
    use crate::inst::{BinOp, Inst, Terminator, Value};
    use crate::module::{ExternDecl, Global, GlobalInit, Module};

    #[test]
    fn print_simple_module() {
        let mut m = Module::new("demo");
        m.declare_extern(ExternDecl {
            name: "carat_guard".into(),
            params: vec![Type::Ptr, Type::I64, Type::I32],
            ret_ty: Type::Void,
        });
        m.globals.push(Global {
            name: "g".into(),
            ty: Type::I64,
            init: GlobalInit::Int(7),
        });
        let mut f = Function::new("f", vec![Type::I64], Type::I64);
        f.param_names = vec!["a".into()];
        let entry = f.add_block("entry");
        let x = f.alloc_named_inst(
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
            "x",
        );
        f.push_inst(entry, x);
        f.block_mut(entry).term = Some(Terminator::Ret(Some(Value::Inst(x))));
        m.functions.push(f);

        let text = print_module(&m);
        assert!(text.contains("module \"demo\""));
        assert!(text.contains("declare void @carat_guard(ptr, i64, i32)"));
        assert!(text.contains("global @g : i64 = 7"));
        assert!(text.contains("define i64 @f(i64 %a) {"));
        assert!(text.contains("%x = add i64 %a, 1"));
        assert!(text.contains("ret i64 %x"));
    }

    #[test]
    fn unnamed_results_get_generated_names() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.add_block("entry");
        let a = f.alloc_inst(Inst::Alloca {
            ty: Type::I64,
            count: 1,
        });
        f.push_inst(entry, a);
        f.block_mut(entry).term = Some(Terminator::Ret(None));
        let text = print_function(&f);
        assert!(text.contains("%__t0 = alloca i64, 1"));
    }

    #[test]
    fn asm_text_is_escaped() {
        let mut f = Function::new("f", vec![], Type::Void);
        let entry = f.add_block("entry");
        let a = f.alloc_inst(Inst::Asm {
            text: "mov \"x\"".into(),
        });
        f.push_inst(entry, a);
        f.block_mut(entry).term = Some(Terminator::Ret(None));
        let text = print_function(&f);
        assert!(text.contains(r#"asm "mov \"x\"""#));
    }

    #[test]
    fn bytes_global() {
        let mut m = Module::new("b");
        m.globals.push(Global {
            name: "blob".into(),
            ty: Type::Array(Box::new(Type::I8), 4),
            init: GlobalInit::Bytes(vec![0xde, 0xad, 0xbe, 0xef]),
        });
        let text = print_module(&m);
        assert!(text.contains("global @blob : [4 x i8] = bytes [0xde 0xad 0xbe 0xef]"));
    }
}
