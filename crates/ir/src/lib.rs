//! # kop-ir — "KIR", a miniature LLVM-like IR
//!
//! CARAT KOP's compiler is an LLVM middle-end pass: it iterates over every
//! `load` and `store` in a kernel module and inserts a call to
//! `@carat_guard` before it (§3.3 of the paper). To reproduce that without
//! linking LLVM, this crate implements a small typed SSA IR with exactly the
//! surface such a pass needs:
//!
//! * a type system (`void`, integers, `ptr`, arrays, structs) with layout
//!   rules ([`types`]),
//! * an arena-based module/function/block/instruction representation
//!   ([`module`], [`function`], [`inst`]),
//! * a textual assembly syntax with a full parser ([`parser`]) and printer
//!   ([`printer`]) that round-trip,
//! * a verifier ([`verify`]) enforcing SSA and type discipline (the loader
//!   re-verifies modules at insertion time),
//! * dominator analysis ([`dom`]) used by the verifier and by the guard
//!   hoisting optimization, and
//! * an ergonomic [`builder::IrBuilder`] for programmatic construction.
//!
//! Undefined behaviour note (paper §2): KIR, like LLVM IR here, is the level
//! at which all guarding happens — front-end language semantics are assumed
//! to have been lowered away. The only "dangerous" construct KIR can express
//! is the [`inst::Inst::Asm`] marker, which exists precisely so attestation
//! has something to reject.

#![warn(missing_docs)]

pub mod builder;
pub mod dom;
pub mod function;
pub mod inst;
pub mod loops;
pub mod module;
pub mod parser;
pub mod printer;
pub mod types;
pub mod verify;

pub use builder::IrBuilder;
pub use function::{Block, BlockId, Function, InstId};
pub use inst::{BinOp, CastOp, IcmpPred, Inst, Terminator, Value};
pub use loops::{find_counted_loops, CountedLoop};
pub use module::{ExternDecl, Global, GlobalId, GlobalInit, Module};
pub use parser::{parse_module, ParseError};
pub use printer::print_module;
pub use types::Type;
pub use verify::{verify_module, VerifyError};
