//! The KIR verifier.
//!
//! The kernel loader re-verifies modules at insertion time (paper §2: the
//! compiler's signature asserts the module was processed, and the kernel
//! "validates" it when the transformed module is inserted). The verifier
//! enforces:
//!
//! * every block has a terminator, every branch target exists,
//! * SSA discipline: every use is dominated by its definition (phi inputs
//!   checked against the corresponding predecessor edge),
//! * type correctness of every instruction,
//! * calls match the signature of a defined function or extern declaration,
//! * phis list exactly the block's predecessors,
//! * globals' initializers match their types.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use crate::dom::DomTree;
use crate::function::{BlockId, Function, InstId};
use crate::inst::{CastOp, Inst, Terminator, Value};
use crate::module::{GlobalInit, Module};
use crate::types::Type;

/// A verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred (empty for module-level errors).
    pub function: String,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.function.is_empty() {
            write!(f, "verify error: {}", self.message)
        } else {
            write!(f, "verify error in @{}: {}", self.function, self.message)
        }
    }
}

impl std::error::Error for VerifyError {}

/// Verify a whole module. Returns the first error found.
pub fn verify_module(m: &Module) -> Result<(), VerifyError> {
    // Module-level: unique symbol names.
    let mut seen = BTreeSet::new();
    for name in m
        .functions
        .iter()
        .map(|f| &f.name)
        .chain(m.globals.iter().map(|g| &g.name))
        .chain(m.externs.iter().map(|e| &e.name))
    {
        if !seen.insert(name.clone()) {
            return Err(VerifyError {
                function: String::new(),
                message: format!("duplicate symbol '@{name}'"),
            });
        }
    }

    // Globals: initializer matches type.
    for g in &m.globals {
        match &g.init {
            GlobalInit::Zero => {}
            GlobalInit::Int(_) => {
                if !g.ty.is_int() && g.ty != Type::Ptr {
                    return Err(VerifyError {
                        function: String::new(),
                        message: format!(
                            "global '@{}' has integer initializer but type {}",
                            g.name, g.ty
                        ),
                    });
                }
            }
            GlobalInit::Bytes(b) => {
                if b.len() as u64 != g.ty.size_of() {
                    return Err(VerifyError {
                        function: String::new(),
                        message: format!(
                            "global '@{}' byte initializer has {} bytes but type {} has {}",
                            g.name,
                            b.len(),
                            g.ty,
                            g.ty.size_of()
                        ),
                    });
                }
            }
        }
    }

    for f in &m.functions {
        verify_function(m, f)?;
    }
    Ok(())
}

fn err(f: &Function, message: impl Into<String>) -> VerifyError {
    VerifyError {
        function: f.name.clone(),
        message: message.into(),
    }
}

fn verify_function(m: &Module, f: &Function) -> Result<(), VerifyError> {
    if f.blocks.is_empty() {
        return Err(err(f, "function has no blocks"));
    }
    for ty in &f.params {
        if !ty.is_first_class() {
            return Err(err(f, "parameter of type void"));
        }
    }

    // Structural checks.
    for bid in f.block_ids() {
        let blk = f.block(bid);
        match &blk.term {
            None => return Err(err(f, format!("block '{}' has no terminator", blk.name))),
            Some(t) => {
                for succ in t.successors() {
                    if succ.0 as usize >= f.blocks.len() {
                        return Err(err(f, format!("branch to nonexistent block {succ:?}")));
                    }
                }
            }
        }
    }

    // Definition sites for dominance checking.
    let mut def_site: BTreeMap<InstId, (BlockId, usize)> = BTreeMap::new();
    for bid in f.block_ids() {
        for (pos, &iid) in f.block(bid).insts.iter().enumerate() {
            if def_site.insert(iid, (bid, pos)).is_some() {
                return Err(err(f, format!("instruction {iid:?} placed twice")));
            }
        }
    }

    let dom = DomTree::compute(f);
    let preds = f.predecessors();

    // Per-instruction checks.
    for bid in f.block_ids() {
        let blk = f.block(bid);
        for (pos, &iid) in blk.insts.iter().enumerate() {
            let inst = f.inst(iid);
            verify_inst_types(m, f, inst)?;

            // Phis must be at the head of the block and match predecessors.
            if let Inst::Phi { incomings, .. } = inst {
                let leading_phis = blk
                    .insts
                    .iter()
                    .take_while(|&&i| matches!(f.inst(i), Inst::Phi { .. }))
                    .count();
                if pos >= leading_phis {
                    return Err(err(f, format!("phi not at head of block '{}'", blk.name)));
                }
                if dom.is_reachable(bid) {
                    let expected: BTreeSet<BlockId> =
                        preds[bid.0 as usize].iter().copied().collect();
                    let got: BTreeSet<BlockId> = incomings.iter().map(|(b, _)| *b).collect();
                    if got.len() != incomings.len() {
                        return Err(err(f, "phi has duplicate incoming blocks"));
                    }
                    if expected != got {
                        return Err(err(
                            f,
                            format!(
                                "phi in '{}' incoming blocks do not match predecessors",
                                blk.name
                            ),
                        ));
                    }
                }
            }

            // Dominance of operands (skip for phis — handled per-edge).
            if !matches!(inst, Inst::Phi { .. }) {
                let mut bad: Option<String> = None;
                inst.for_each_operand(|v| {
                    if bad.is_some() {
                        return;
                    }
                    if let Some(msg) = check_use(f, &dom, &def_site, v, bid, pos) {
                        bad = Some(msg);
                    }
                });
                if let Some(msg) = bad {
                    return Err(err(f, msg));
                }
            } else if let Inst::Phi { incomings, .. } = inst {
                for (pred, v) in incomings {
                    if let Value::Inst(src) = v {
                        let Some(&(db, _)) = def_site.get(src) else {
                            return Err(err(f, format!("phi uses unplaced {src:?}")));
                        };
                        // The def must dominate the end of the incoming edge's
                        // predecessor block.
                        if dom.is_reachable(*pred) && !dom.dominates(db, *pred) {
                            return Err(err(
                                f,
                                format!(
                                    "phi incoming value {src:?} does not dominate edge from '{}'",
                                    f.block(*pred).name
                                ),
                            ));
                        }
                    }
                }
            }
        }

        // Terminator operands.
        let term = blk.term.as_ref().expect("checked above");
        let mut bad: Option<String> = None;
        term.for_each_operand(|v| {
            if bad.is_some() {
                return;
            }
            if let Some(msg) = check_use(f, &dom, &def_site, v, bid, blk.insts.len()) {
                bad = Some(msg);
            }
        });
        if let Some(msg) = bad {
            return Err(err(f, msg));
        }
        verify_terminator_types(f, term)?;
    }
    Ok(())
}

/// Check that a use of `v` at position `(bid, pos)` is dominated by its def.
fn check_use(
    f: &Function,
    dom: &DomTree,
    def_site: &BTreeMap<InstId, (BlockId, usize)>,
    v: &Value,
    bid: BlockId,
    pos: usize,
) -> Option<String> {
    match v {
        Value::Inst(src) => {
            let Some(&(db, dp)) = def_site.get(src) else {
                return Some(format!("use of unplaced instruction {src:?}"));
            };
            if !dom.is_reachable(bid) {
                return None; // uses in unreachable code are not checked
            }
            let ok = if db == bid {
                dp < pos
            } else {
                dom.dominates(db, bid)
            };
            if ok {
                None
            } else {
                Some(format!(
                    "use of {src:?} in '{}' not dominated by its definition",
                    f.block(bid).name
                ))
            }
        }
        Value::Arg(i) => {
            if (*i as usize) < f.params.len() {
                None
            } else {
                Some(format!("use of out-of-range argument %{i}"))
            }
        }
        _ => None,
    }
}

fn verify_inst_types(m: &Module, f: &Function, inst: &Inst) -> Result<(), VerifyError> {
    let want = |v: &Value, want_ty: &Type, what: &str| -> Result<(), VerifyError> {
        match f.value_type(v) {
            Some(got) if &got == want_ty => Ok(()),
            Some(got) => Err(err(f, format!("{what}: expected {want_ty}, got {got}"))),
            None => Err(err(f, format!("{what}: untyped operand"))),
        }
    };

    match inst {
        Inst::Alloca { ty, count } => {
            if !ty.is_first_class() {
                return Err(err(f, "alloca of void"));
            }
            if *count == 0 {
                return Err(err(f, "alloca of zero elements"));
            }
        }
        Inst::Load { ty, ptr } => {
            if !ty.is_memory_scalar() {
                return Err(err(f, format!("load of non-scalar type {ty}")));
            }
            want(ptr, &Type::Ptr, "load pointer")?;
        }
        Inst::Store { ty, val, ptr } => {
            if !ty.is_memory_scalar() {
                return Err(err(f, format!("store of non-scalar type {ty}")));
            }
            want(val, ty, "store value")?;
            want(ptr, &Type::Ptr, "store pointer")?;
        }
        Inst::Gep {
            base_ty,
            ptr,
            indices,
        } => {
            if indices.is_empty() {
                return Err(err(f, "gep with no indices"));
            }
            want(ptr, &Type::Ptr, "gep pointer")?;
            // First index scales by base_ty; must be an integer.
            let mut cur = base_ty.clone();
            for (k, idx) in indices.iter().enumerate() {
                let ity = f
                    .value_type(idx)
                    .ok_or_else(|| err(f, "gep index untyped"))?;
                if !ity.is_int() {
                    return Err(err(f, format!("gep index {k} of type {ity}")));
                }
                if k == 0 {
                    continue;
                }
                // Step into the aggregate.
                match &cur {
                    Type::Array(elem, _) => cur = (**elem).clone(),
                    Type::Struct(_) => {
                        let Value::ConstInt(_, c) = idx else {
                            return Err(err(f, "gep struct index must be constant"));
                        };
                        let next = cur
                            .indexed_type(*c)
                            .ok_or_else(|| err(f, format!("gep struct index {c} out of range")))?
                            .clone();
                        cur = next;
                    }
                    other => {
                        return Err(err(
                            f,
                            format!("gep index {k} steps into non-aggregate {other}"),
                        ))
                    }
                }
            }
        }
        Inst::Bin { ty, lhs, rhs, .. } => {
            if !ty.is_int() {
                return Err(err(f, format!("binary op on non-integer type {ty}")));
            }
            want(lhs, ty, "binop lhs")?;
            want(rhs, ty, "binop rhs")?;
        }
        Inst::Icmp { ty, lhs, rhs, .. } => {
            if !ty.is_int() && ty != &Type::Ptr {
                return Err(err(f, format!("icmp on type {ty}")));
            }
            want(lhs, ty, "icmp lhs")?;
            want(rhs, ty, "icmp rhs")?;
        }
        Inst::Cast {
            op,
            from_ty,
            to_ty,
            val,
        } => {
            want(val, from_ty, "cast operand")?;
            let ok = match op {
                CastOp::Zext | CastOp::Sext => {
                    from_ty.is_int() && to_ty.is_int() && from_ty.int_bits() < to_ty.int_bits()
                }
                CastOp::Trunc => {
                    from_ty.is_int() && to_ty.is_int() && from_ty.int_bits() > to_ty.int_bits()
                }
                CastOp::PtrToInt => from_ty == &Type::Ptr && to_ty.is_int(),
                CastOp::IntToPtr => from_ty.is_int() && to_ty == &Type::Ptr,
            };
            if !ok {
                return Err(err(f, format!("invalid cast {op} {from_ty} to {to_ty}")));
            }
        }
        Inst::Select {
            ty,
            cond,
            then_val,
            else_val,
        } => {
            if !ty.is_first_class() {
                return Err(err(f, "select of void"));
            }
            want(cond, &Type::I1, "select condition")?;
            want(then_val, ty, "select then")?;
            want(else_val, ty, "select else")?;
        }
        Inst::Call {
            callee,
            ret_ty,
            args,
        } => {
            let Some((params, ret)) = m.callee_signature(callee) else {
                return Err(err(f, format!("call to unknown symbol '@{callee}'")));
            };
            if &ret != ret_ty {
                return Err(err(
                    f,
                    format!("call to '@{callee}': declared return {ret}, written {ret_ty}"),
                ));
            }
            if params.len() != args.len() {
                return Err(err(
                    f,
                    format!(
                        "call to '@{callee}': {} args, expected {}",
                        args.len(),
                        params.len()
                    ),
                ));
            }
            for (i, (a, p)) in args.iter().zip(params.iter()).enumerate() {
                want(a, p, &format!("call arg {i}"))?;
            }
        }
        Inst::Phi { ty, incomings } => {
            if !ty.is_first_class() {
                return Err(err(f, "phi of void"));
            }
            for (_, v) in incomings {
                want(v, ty, "phi incoming")?;
            }
        }
        Inst::Asm { .. } => {}
    }
    Ok(())
}

fn verify_terminator_types(f: &Function, term: &Terminator) -> Result<(), VerifyError> {
    match term {
        Terminator::CondBr { cond, .. } => match f.value_type(cond) {
            Some(Type::I1) => Ok(()),
            other => Err(err(f, format!("condbr condition of type {other:?}"))),
        },
        Terminator::Switch { ty, val, .. } => {
            if !ty.is_int() {
                return Err(err(f, format!("switch on non-integer {ty}")));
            }
            match f.value_type(val) {
                Some(got) if &got == ty => Ok(()),
                other => Err(err(f, format!("switch scrutinee of type {other:?}"))),
            }
        }
        Terminator::Ret(None) => {
            if f.ret_ty == Type::Void {
                Ok(())
            } else {
                Err(err(f, "ret void in non-void function"))
            }
        }
        Terminator::Ret(Some(v)) => match f.value_type(v) {
            Some(got) if got == f.ret_ty => Ok(()),
            other => Err(err(
                f,
                format!("ret of type {other:?}, function returns {}", f.ret_ty),
            )),
        },
        Terminator::Br(_) | Terminator::Unreachable => Ok(()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn check(src: &str) -> Result<(), VerifyError> {
        verify_module(&parse_module(src).expect("parse"))
    }

    #[test]
    fn valid_module_passes() {
        let src = r#"
module "ok"
declare void @carat_guard(ptr, i64, i32)
global @g : i64 = 0
define i64 @f(ptr %p, i64 %n) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %s = add i64 %v, %n
  store i64 %s, ptr @g
  ret i64 %s
}
"#;
        check(src).expect("verifies");
    }

    #[test]
    fn rejects_type_mismatch_in_binop() {
        let src = r#"
module "bad"
define i64 @f(i32 %x) {
entry:
  %v = add i64 %x, 1
  ret i64 %v
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("binop lhs"), "{e}");
    }

    #[test]
    fn rejects_call_to_unknown_symbol() {
        let src = r#"
module "bad"
define void @f() {
entry:
  call void @mystery()
  ret void
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("unknown symbol"), "{e}");
    }

    #[test]
    fn rejects_call_arity_mismatch() {
        let src = r#"
module "bad"
declare void @g(i64)
define void @f() {
entry:
  call void @g()
  ret void
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("expected 1"), "{e}");
    }

    #[test]
    fn rejects_use_before_def_in_straightline() {
        let src = r#"
module "bad"
define i64 @f() {
entry:
  %a = add i64 %b, 1
  %b = add i64 1, 1
  ret i64 %a
}
"#;
        // Parser itself rejects this (undefined at parse point is allowed
        // only via forward refs)... the parser pre-allocates all names, so
        // this parses; the verifier must catch the dominance violation.
        let e = check(src).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn rejects_use_not_dominating_across_blocks() {
        let src = r#"
module "bad"
define i64 @f(i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  %x = add i64 1, 1
  br %join
b:
  br %join
join:
  ret i64 %x
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("not dominated"), "{e}");
    }

    #[test]
    fn accepts_phi_merge() {
        let src = r#"
module "ok"
define i64 @f(i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  %x = add i64 1, 1
  br %join
b:
  %y = add i64 2, 2
  br %join
join:
  %m = phi i64 [ %x, %a ], [ %y, %b ]
  ret i64 %m
}
"#;
        check(src).expect("verifies");
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let src = r#"
module "bad"
define i64 @f(i1 %c) {
entry:
  condbr i1 %c, %a, %join
a:
  br %join
join:
  %m = phi i64 [ 1, %a ], [ 2, %a ]
  ret i64 %m
}
"#;
        let e = check(src).unwrap_err();
        assert!(
            e.message.contains("duplicate incoming") || e.message.contains("do not match"),
            "{e}"
        );
    }

    #[test]
    fn rejects_phi_not_at_head() {
        let src = r#"
module "bad"
define i64 @f() {
entry:
  br %l
l:
  %a = add i64 1, 1
  %m = phi i64 [ 0, %entry ]
  ret i64 %m
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("phi not at head"), "{e}");
    }

    #[test]
    fn rejects_bad_cast() {
        let src = r#"
module "bad"
define i64 @f(i64 %x) {
entry:
  %v = zext i64 %x to i64
  ret i64 %v
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("invalid cast"), "{e}");
    }

    #[test]
    fn rejects_ret_type_mismatch() {
        let src = r#"
module "bad"
define i64 @f() {
entry:
  ret void
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("ret void in non-void"), "{e}");
    }

    #[test]
    fn rejects_duplicate_symbols() {
        let src = r#"
module "bad"
global @f : i64 = 0
define void @f() {
entry:
  ret void
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("duplicate symbol"), "{e}");
    }

    #[test]
    fn rejects_bad_global_bytes_len() {
        let src = r#"
module "bad"
global @b : [4 x i8] = bytes [0x01 0x02]
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("byte initializer"), "{e}");
    }

    #[test]
    fn rejects_load_of_aggregate() {
        let src = r#"
module "bad"
define void @f(ptr %p) {
entry:
  %v = load [4 x i8], ptr %p
  ret void
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("non-scalar"), "{e}");
    }

    #[test]
    fn gep_struct_index_must_be_constant() {
        let src = r#"
module "bad"
define ptr @f(ptr %p, i32 %i) {
entry:
  %q = gep { i64, i32 }, ptr %p, i64 0, i32 %i
  ret ptr %q
}
"#;
        let e = check(src).unwrap_err();
        assert!(e.message.contains("must be constant"), "{e}");
    }

    #[test]
    fn gep_valid_struct_walk() {
        let src = r#"
module "ok"
define ptr @f(ptr %p, i64 %i) {
entry:
  %q = gep { i64, [4 x i32], i8 }, ptr %p, i64 %i, i32 1, i64 2
  ret ptr %q
}
"#;
        check(src).expect("verifies");
    }
}
