//! Dominator analysis and natural-loop discovery.
//!
//! Used by the verifier (SSA dominance checking) and by the guard-hoisting
//! optimization pass in `kop-compiler`. The implementation is the classic
//! iterative dataflow algorithm — KIR functions are small enough that the
//! asymptotically faster algorithms are unnecessary.

use std::collections::BTreeSet;

use crate::function::{BlockId, Function};

/// Dominator tree for a function's CFG.
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[b]` = immediate dominator of block `b` (`None` for the entry
    /// block and for unreachable blocks).
    idom: Vec<Option<BlockId>>,
    /// Whether each block is reachable from the entry.
    reachable: Vec<bool>,
}

impl DomTree {
    /// Compute the dominator tree of `f`. Returns a tree where unreachable
    /// blocks have no dominator and are flagged unreachable.
    pub fn compute(f: &Function) -> DomTree {
        let n = f.blocks.len();
        if n == 0 {
            return DomTree {
                idom: vec![],
                reachable: vec![],
            };
        }

        // Reverse-postorder over reachable blocks.
        let mut visited = vec![false; n];
        let mut postorder: Vec<BlockId> = Vec::with_capacity(n);
        let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
        visited[0] = true;
        while let Some((b, child)) = stack.last().copied() {
            let succs = f
                .block(b)
                .term
                .as_ref()
                .map(|t| t.successors())
                .unwrap_or_default();
            if child < succs.len() {
                stack.last_mut().unwrap().1 += 1;
                let s = succs[child];
                if !visited[s.0 as usize] {
                    visited[s.0 as usize] = true;
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let mut rpo_index = vec![usize::MAX; n];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.0 as usize] = i;
        }

        let preds = f.predecessors();
        let mut idom: Vec<Option<BlockId>> = vec![None; n];
        idom[0] = Some(BlockId(0)); // sentinel: entry dominated by itself

        let intersect = |idom: &[Option<BlockId>], mut a: BlockId, mut b: BlockId| -> BlockId {
            while a != b {
                while rpo_index[a.0 as usize] > rpo_index[b.0 as usize] {
                    a = idom[a.0 as usize].expect("processed");
                }
                while rpo_index[b.0 as usize] > rpo_index[a.0 as usize] {
                    b = idom[b.0 as usize].expect("processed");
                }
            }
            a
        };

        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in &preds[b.0 as usize] {
                    if !visited[p.0 as usize] || idom[p.0 as usize].is_none() {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.0 as usize] != Some(ni) {
                        idom[b.0 as usize] = Some(ni);
                        changed = true;
                    }
                }
            }
        }

        // Clear the entry sentinel.
        idom[0] = None;
        DomTree {
            idom,
            reachable: visited,
        }
    }

    /// Immediate dominator of `b` (`None` for entry/unreachable).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        self.idom.get(b.0 as usize).copied().flatten()
    }

    /// Whether `b` is reachable from the entry block.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.reachable.get(b.0 as usize).copied().unwrap_or(false)
    }

    /// Whether `a` dominates `b` (reflexive). Unreachable blocks dominate
    /// nothing and are dominated by nothing.
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.is_reachable(a) || !self.is_reachable(b) {
            return false;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom(cur) {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }
}

/// A natural loop: a back edge `latch -> header` where the header dominates
/// the latch, plus the set of blocks in the loop body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NaturalLoop {
    /// Loop header.
    pub header: BlockId,
    /// The latch (source of the back edge).
    pub latch: BlockId,
    /// All blocks in the loop (including header and latch).
    pub body: BTreeSet<BlockId>,
}

/// Find all natural loops in `f` (one per back edge).
pub fn natural_loops(f: &Function, dom: &DomTree) -> Vec<NaturalLoop> {
    let mut loops = Vec::new();
    for b in f.block_ids() {
        if !dom.is_reachable(b) {
            continue;
        }
        let Some(term) = &f.block(b).term else {
            continue;
        };
        for succ in term.successors() {
            if dom.dominates(succ, b) {
                // Back edge b -> succ. Collect the loop body: all nodes that
                // can reach `b` without passing through `succ`.
                let header = succ;
                let latch = b;
                let mut body: BTreeSet<BlockId> = BTreeSet::new();
                body.insert(header);
                body.insert(latch);
                let preds = f.predecessors();
                let mut work = vec![latch];
                while let Some(x) = work.pop() {
                    if x == header {
                        continue;
                    }
                    for &p in &preds[x.0 as usize] {
                        if body.insert(p) {
                            work.push(p);
                        }
                    }
                }
                loops.push(NaturalLoop {
                    header,
                    latch,
                    body,
                });
            }
        }
    }
    loops
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    fn loop_func_src() -> &'static str {
        r#"
module "looped"
define i64 @f(i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 %i
}
"#
    }

    #[test]
    fn dominators_of_loop() {
        let m = parse_module(loop_func_src()).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        let entry = f.block_by_name("entry").unwrap();
        let head = f.block_by_name("head").unwrap();
        let body = f.block_by_name("body").unwrap();
        let exit = f.block_by_name("exit").unwrap();

        assert_eq!(dom.idom(entry), None);
        assert_eq!(dom.idom(head), Some(entry));
        assert_eq!(dom.idom(body), Some(head));
        assert_eq!(dom.idom(exit), Some(head));

        assert!(dom.dominates(entry, exit));
        assert!(dom.dominates(head, body));
        assert!(!dom.dominates(body, exit));
        assert!(dom.dominates(head, head));
    }

    #[test]
    fn natural_loop_discovery() {
        let m = parse_module(loop_func_src()).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        let loops = natural_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, f.block_by_name("head").unwrap());
        assert_eq!(l.latch, f.block_by_name("body").unwrap());
        assert_eq!(l.body.len(), 2); // head + body
    }

    #[test]
    fn diamond_dominators() {
        let src = r#"
module "d"
define void @f(i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  br %join
b:
  br %join
join:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        let entry = f.block_by_name("entry").unwrap();
        let a = f.block_by_name("a").unwrap();
        let b = f.block_by_name("b").unwrap();
        let join = f.block_by_name("join").unwrap();
        assert_eq!(dom.idom(join), Some(entry));
        assert!(!dom.dominates(a, join));
        assert!(!dom.dominates(b, join));
        assert!(dom.dominates(entry, join));
        assert!(natural_loops(f, &dom).is_empty());
    }

    #[test]
    fn unreachable_block() {
        let src = r#"
module "u"
define void @f() {
entry:
  ret void
dead:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        let dead = f.block_by_name("dead").unwrap();
        assert!(!dom.is_reachable(dead));
        assert!(!dom.dominates(BlockId(0), dead));
    }
}
