//! The KIR type system and its layout rules.
//!
//! Types are structural. Pointers are opaque (`ptr`), as in modern LLVM.
//! Layout follows the usual C rules for x86-64: integer types are naturally
//! aligned, arrays have the element layout, struct fields are padded to
//! their alignment and the struct is padded to the max field alignment.

use core::fmt;

/// A KIR type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Type {
    /// No value. Only valid as a function return type.
    Void,
    /// 1-bit boolean.
    I1,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// Opaque pointer (64-bit).
    Ptr,
    /// Fixed-length array `[n x elem]`.
    Array(Box<Type>, u64),
    /// Structural struct `{ f0, f1, ... }`.
    Struct(Vec<Type>),
}

impl Type {
    /// Whether this is an integer type (including `i1`).
    pub fn is_int(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64
        )
    }

    /// Whether this type can be the type of an SSA value.
    pub fn is_first_class(&self) -> bool {
        !matches!(self, Type::Void)
    }

    /// Whether values of this type can be loaded/stored directly.
    /// Aggregates must be accessed field-by-field through `gep`.
    pub fn is_memory_scalar(&self) -> bool {
        matches!(
            self,
            Type::I1 | Type::I8 | Type::I16 | Type::I32 | Type::I64 | Type::Ptr
        )
    }

    /// Bit width of an integer type; `None` otherwise.
    pub fn int_bits(&self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I16 => Some(16),
            Type::I32 => Some(32),
            Type::I64 => Some(64),
            _ => None,
        }
    }

    /// Size in bytes, including trailing padding (like LLVM's alloc size).
    pub fn size_of(&self) -> u64 {
        match self {
            Type::Void => 0,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::Ptr => 8,
            Type::Array(elem, n) => elem.size_of() * n,
            Type::Struct(fields) => {
                let mut off = 0u64;
                let mut max_align = 1u64;
                for f in fields {
                    let a = f.align_of();
                    max_align = max_align.max(a);
                    off = round_up(off, a) + f.size_of();
                }
                round_up(off, max_align)
            }
        }
    }

    /// Alignment in bytes.
    pub fn align_of(&self) -> u64 {
        match self {
            Type::Void => 1,
            Type::I1 | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::Ptr => 8,
            Type::Array(elem, _) => elem.align_of(),
            Type::Struct(fields) => fields.iter().map(|f| f.align_of()).max().unwrap_or(1),
        }
    }

    /// Byte offset of struct field `idx`; `None` if not a struct or out of
    /// range.
    pub fn struct_field_offset(&self, idx: usize) -> Option<u64> {
        let Type::Struct(fields) = self else {
            return None;
        };
        if idx >= fields.len() {
            return None;
        }
        let mut off = 0u64;
        for (i, f) in fields.iter().enumerate() {
            off = round_up(off, f.align_of());
            if i == idx {
                return Some(off);
            }
            off += f.size_of();
        }
        unreachable!()
    }

    /// The type of struct field `idx` or array element.
    pub fn indexed_type(&self, idx: u64) -> Option<&Type> {
        match self {
            Type::Array(elem, n) => {
                if idx < *n {
                    Some(elem)
                } else {
                    None
                }
            }
            Type::Struct(fields) => fields.get(usize::try_from(idx).ok()?),
            _ => None,
        }
    }
}

#[inline]
fn round_up(v: u64, align: u64) -> u64 {
    debug_assert!(align >= 1);
    v.div_ceil(align) * align
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Void => f.write_str("void"),
            Type::I1 => f.write_str("i1"),
            Type::I8 => f.write_str("i8"),
            Type::I16 => f.write_str("i16"),
            Type::I32 => f.write_str("i32"),
            Type::I64 => f.write_str("i64"),
            Type::Ptr => f.write_str("ptr"),
            Type::Array(elem, n) => write!(f, "[{n} x {elem}]"),
            Type::Struct(fields) => {
                f.write_str("{ ")?;
                for (i, field) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(", ")?;
                    }
                    write!(f, "{field}")?;
                }
                f.write_str(" }")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_sizes() {
        assert_eq!(Type::I1.size_of(), 1);
        assert_eq!(Type::I8.size_of(), 1);
        assert_eq!(Type::I16.size_of(), 2);
        assert_eq!(Type::I32.size_of(), 4);
        assert_eq!(Type::I64.size_of(), 8);
        assert_eq!(Type::Ptr.size_of(), 8);
        assert_eq!(Type::Void.size_of(), 0);
    }

    #[test]
    fn array_layout() {
        let t = Type::Array(Box::new(Type::I32), 10);
        assert_eq!(t.size_of(), 40);
        assert_eq!(t.align_of(), 4);
    }

    #[test]
    fn struct_layout_with_padding() {
        // { i8, i64, i16 } -> i8 at 0, pad to 8, i64 at 8, i16 at 16, pad to 24.
        let t = Type::Struct(vec![Type::I8, Type::I64, Type::I16]);
        assert_eq!(t.struct_field_offset(0), Some(0));
        assert_eq!(t.struct_field_offset(1), Some(8));
        assert_eq!(t.struct_field_offset(2), Some(16));
        assert_eq!(t.size_of(), 24);
        assert_eq!(t.align_of(), 8);
        assert_eq!(t.struct_field_offset(3), None);
    }

    #[test]
    fn nested_aggregate_layout() {
        // Like an e1000e TX descriptor: { i64 addr, i32 fields, i32 status }.
        let desc = Type::Struct(vec![Type::I64, Type::I32, Type::I32]);
        assert_eq!(desc.size_of(), 16);
        let ring = Type::Array(Box::new(desc.clone()), 256);
        assert_eq!(ring.size_of(), 4096);
        assert_eq!(ring.align_of(), 8);
        assert_eq!(ring.indexed_type(0), Some(&desc));
        assert_eq!(ring.indexed_type(256), None);
    }

    #[test]
    fn empty_struct() {
        let t = Type::Struct(vec![]);
        assert_eq!(t.size_of(), 0);
        assert_eq!(t.align_of(), 1);
    }

    #[test]
    fn display_roundtrip_shapes() {
        assert_eq!(Type::I64.to_string(), "i64");
        assert_eq!(Type::Array(Box::new(Type::I8), 4).to_string(), "[4 x i8]");
        assert_eq!(
            Type::Struct(vec![Type::I64, Type::Ptr]).to_string(),
            "{ i64, ptr }"
        );
    }

    #[test]
    fn classification() {
        assert!(Type::I1.is_int());
        assert!(!Type::Ptr.is_int());
        assert!(Type::Ptr.is_memory_scalar());
        assert!(!Type::Struct(vec![]).is_memory_scalar());
        assert!(!Type::Void.is_first_class());
        assert_eq!(Type::I32.int_bits(), Some(32));
        assert_eq!(Type::Ptr.int_bits(), None);
    }
}
