//! Counted-loop recognition (SCEV-lite trip counts).
//!
//! A *counted loop* is the canonical shape front-ends emit for
//! `for (i = 0; i < n; i++)`:
//!
//! ```text
//! preheader:                       ; single successor: the header
//!   br %head
//! head:
//!   %i = phi i64 [ 0, %preheader ], [ %i.next, %latch ]
//!   %c = icmp ult i64 %i, %n       ; %n loop-invariant
//!   condbr i1 %c, %body..., %exit  ; true edge into the loop, false out
//! ...body...:
//!   %i.next = add i64 %i, 1
//!   br %head
//! ```
//!
//! Recognizing this shape yields a symbolic trip count (`%n`) and the
//! guarantee that the induction variable is in `[0, n)` whenever any
//! non-header loop block executes — the foundation both for the
//! compiler's `RangeCoalescing` pass (replace per-iteration element
//! guards with one `[base, base + stride·n)` range guard) and for the
//! independent translation validator, which re-derives the same facts
//! when auditing a range obligation. Keeping the recognizer here in
//! `kop-ir` (like [`crate::dom`]) lets both sides use it without the
//! validator depending on any optimizer code.

use std::collections::BTreeSet;

use crate::dom::{natural_loops, DomTree};
use crate::function::{BlockId, Function, InstId};
use crate::inst::{BinOp, IcmpPred, Inst, Terminator, Value};
use crate::types::Type;

/// A recognized counted loop: `for (iv = 0; iv <u bound; iv++)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CountedLoop {
    /// Loop header (contains the induction phi and the bound check).
    pub header: BlockId,
    /// The unique edge into the loop from outside; terminates with an
    /// unconditional branch to the header, so code placed at its end runs
    /// exactly once, immediately before the loop.
    pub preheader: BlockId,
    /// Source of the back edge.
    pub latch: BlockId,
    /// All blocks of the natural loop (header and latch included).
    pub body: BTreeSet<BlockId>,
    /// The induction phi: `phi i64 [ 0, preheader ], [ iv_next, latch ]`.
    pub iv: InstId,
    /// The increment: `add i64 iv, 1`.
    pub iv_next: InstId,
    /// The `icmp ult i64 iv, bound` bound check in the header.
    pub cond: InstId,
    /// The loop-invariant trip count.
    pub bound: Value,
    /// The false-edge target of the header branch (outside the loop).
    pub exit: BlockId,
}

impl CountedLoop {
    /// Whether `v` is computed inside the loop (and therefore varies per
    /// iteration). Constants, arguments, and globals are invariant.
    pub fn varies(&self, f: &Function, v: &Value) -> bool {
        match v {
            Value::Inst(id) => self.body.iter().any(|&b| f.block(b).insts.contains(id)),
            _ => false,
        }
    }

    /// Whether `b` is a loop block in which the induction variable is
    /// known to be in `[0, bound)` — every block of the body except the
    /// header itself (header instructions also run on the final,
    /// bound-failing iteration).
    pub fn iv_bounded_in(&self, b: BlockId) -> bool {
        b != self.header && self.body.contains(&b)
    }
}

/// Recognize every counted loop in `f`.
///
/// Conservative by construction: a natural loop that deviates from the
/// canonical shape in any way (multiple back edges, a conditional
/// preheader, a non-`ult` bound, a loop-varying bound, a stride other
/// than 1, side entries into the body) is simply not reported.
pub fn find_counted_loops(f: &Function, dom: &DomTree) -> Vec<CountedLoop> {
    let loops = natural_loops(f, dom);
    let preds = f.predecessors();
    let mut found = Vec::new();

    for l in &loops {
        // A unique back edge: no other natural loop shares this header.
        if loops.iter().filter(|o| o.header == l.header).count() != 1 {
            continue;
        }
        // Header predecessors: exactly the latch plus one outside block.
        let hp = &preds[l.header.0 as usize];
        if hp.len() != 2 {
            continue;
        }
        let Some(&preheader) = hp.iter().find(|&&p| p != l.latch) else {
            continue;
        };
        if l.body.contains(&preheader) || !dom.is_reachable(preheader) {
            continue;
        }
        // The preheader must fall through unconditionally: code appended
        // there runs iff the loop is about to be entered.
        if !matches!(f.block(preheader).term, Some(Terminator::Br(b)) if b == l.header) {
            continue;
        }
        // No side entries: every non-header loop block is fed only from
        // inside the loop, so the header's bound check guards all of them.
        let side_entry = l
            .body
            .iter()
            .any(|&b| b != l.header && preds[b.0 as usize].iter().any(|p| !l.body.contains(p)));
        if side_entry {
            continue;
        }

        // Find the induction phi in the header.
        let header_insts = &f.block(l.header).insts;
        let Some((iv, iv_next)) = header_insts.iter().find_map(|&iid| {
            if let Inst::Phi {
                ty: Type::I64,
                incomings,
            } = f.inst(iid)
            {
                if incomings.len() == 2 {
                    let from_pre = incomings.iter().find(|(b, _)| *b == preheader);
                    let from_latch = incomings.iter().find(|(b, _)| *b == l.latch);
                    if let (Some((_, Value::ConstInt(_, 0))), Some((_, Value::Inst(next)))) =
                        (from_pre, from_latch)
                    {
                        return Some((iid, *next));
                    }
                }
            }
            None
        }) else {
            continue;
        };
        // The increment must be `add i64 iv, 1` somewhere in the loop.
        let incr_ok = matches!(
            f.inst(iv_next),
            Inst::Bin { op: BinOp::Add, ty: Type::I64, lhs: Value::Inst(p), rhs: Value::ConstInt(_, 1) } if *p == iv
        ) && l.body.iter().any(|&b| f.block(b).insts.contains(&iv_next));
        if !incr_ok {
            continue;
        }
        // The bound check `icmp ult i64 iv, bound` in the header, with a
        // loop-invariant bound, feeding the header's conditional branch.
        let Some(Terminator::CondBr {
            cond: Value::Inst(cond),
            then_blk,
            else_blk,
        }) = f.block(l.header).term.clone()
        else {
            continue;
        };
        if !header_insts.contains(&cond) {
            continue;
        }
        let Inst::Icmp {
            pred: IcmpPred::Ult,
            ty: Type::I64,
            lhs: Value::Inst(lhs),
            rhs: bound,
        } = f.inst(cond).clone()
        else {
            continue;
        };
        if lhs != iv {
            continue;
        }
        // True edge enters the loop, false edge leaves it.
        if !l.body.contains(&then_blk) || l.body.contains(&else_blk) {
            continue;
        }
        let invariant = match &bound {
            Value::Inst(id) => !l.body.iter().any(|&b| f.block(b).insts.contains(id)),
            _ => true,
        };
        if !invariant {
            continue;
        }

        found.push(CountedLoop {
            header: l.header,
            preheader,
            latch: l.latch,
            body: l.body.clone(),
            iv,
            iv_next,
            cond,
            bound,
            exit: else_blk,
        });
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_module;

    const CANONICAL: &str = r#"
module "canon"
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;

    #[test]
    fn recognizes_canonical_counted_loop() {
        let m = parse_module(CANONICAL).unwrap();
        let f = m.function("sum").unwrap();
        let dom = DomTree::compute(f);
        let loops = find_counted_loops(f, &dom);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert_eq!(l.header, f.block_by_name("head").unwrap());
        assert_eq!(l.preheader, f.block_by_name("entry").unwrap());
        assert_eq!(l.latch, f.block_by_name("body").unwrap());
        assert_eq!(l.exit, f.block_by_name("exit").unwrap());
        assert_eq!(l.bound, Value::Arg(1));
        assert_eq!(f.inst_name(l.iv), "i");
        assert!(l.iv_bounded_in(f.block_by_name("body").unwrap()));
        assert!(!l.iv_bounded_in(l.header));
        assert!(!l.varies(f, &Value::Arg(0)));
        assert!(l.varies(f, &Value::Inst(l.iv_next)));
    }

    #[test]
    fn rejects_non_unit_stride() {
        let src = CANONICAL.replace("add i64 %i, 1", "add i64 %i, 2");
        let m = parse_module(&src).unwrap();
        let f = m.function("sum").unwrap();
        let dom = DomTree::compute(f);
        assert!(find_counted_loops(f, &dom).is_empty());
    }

    #[test]
    fn rejects_non_ult_bound() {
        let src = CANONICAL.replace("icmp ult", "icmp ne");
        let m = parse_module(&src).unwrap();
        let f = m.function("sum").unwrap();
        let dom = DomTree::compute(f);
        assert!(find_counted_loops(f, &dom).is_empty());
    }

    #[test]
    fn rejects_nonzero_start() {
        let src = CANONICAL.replace("phi i64 [ 0, %entry ]", "phi i64 [ 4, %entry ]");
        let m = parse_module(&src).unwrap();
        let f = m.function("sum").unwrap();
        let dom = DomTree::compute(f);
        assert!(find_counted_loops(f, &dom).is_empty());
    }

    #[test]
    fn rejects_loop_varying_bound() {
        let src = r#"
module "vary"
define i64 @f(ptr %buf) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %n = load i64, ptr %buf
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        assert!(find_counted_loops(f, &dom).is_empty());
    }

    #[test]
    fn rejects_conditional_preheader() {
        let src = r#"
module "condpre"
define i64 @f(i64 %n, i1 %go) {
entry:
  condbr i1 %go, %head, %exit
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let dom = DomTree::compute(f);
        assert!(find_counted_loops(f, &dom).is_empty());
    }
}
