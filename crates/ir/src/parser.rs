//! Textual KIR parser.
//!
//! Accepts the canonical form emitted by [`crate::printer`], plus arbitrary
//! whitespace and `;` line comments. Parsing is two-phase per function:
//! the body is first parsed into a raw form with named operands, then names
//! are resolved to SSA ids (this allows forward references, e.g. a `phi`
//! naming a value defined later in a loop).

use std::collections::HashMap;
use std::fmt;

use crate::function::{BlockId, Function};
use crate::inst::{BinOp, CastOp, IcmpPred, Inst, Terminator, Value};
use crate::module::{ExternDecl, Global, GlobalInit, Module};
use crate::types::Type;

/// A parse failure with line information.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

type PResult<T> = Result<T, ParseError>;

// ---------------------------------------------------------------- lexer --

#[derive(Clone, Debug, PartialEq, Eq)]
enum Tok {
    Ident(String),     // bare word: define, i64, add, zero, ...
    Local(String),     // %name
    GlobalSym(String), // @name
    Int(u64),          // integer literal (two's-complement for negatives)
    Str(String),       // "..."
    Punct(char),       // , : = ( ) { } [ ]
    Eof,
}

#[derive(Clone)]
struct Lexer {
    toks: Vec<(Tok, usize)>, // token + line
    pos: usize,
}

impl Lexer {
    fn new(src: &str) -> PResult<Lexer> {
        let mut toks = Vec::new();
        let mut line = 1usize;
        let bytes: Vec<char> = src.chars().collect();
        let mut i = 0usize;
        while i < bytes.len() {
            let c = bytes[i];
            match c {
                '\n' => {
                    line += 1;
                    i += 1;
                }
                ' ' | '\t' | '\r' => i += 1,
                ';' => {
                    while i < bytes.len() && bytes[i] != '\n' {
                        i += 1;
                    }
                }
                ',' | ':' | '=' | '(' | ')' | '{' | '}' | '[' | ']' => {
                    toks.push((Tok::Punct(c), line));
                    i += 1;
                }
                '%' | '@' => {
                    let start = i + 1;
                    let mut j = start;
                    while j < bytes.len() && is_name_char(bytes[j]) {
                        j += 1;
                    }
                    if j == start {
                        return Err(ParseError {
                            line,
                            message: format!("empty name after '{c}'"),
                        });
                    }
                    let name: String = bytes[start..j].iter().collect();
                    toks.push((
                        if c == '%' {
                            Tok::Local(name)
                        } else {
                            Tok::GlobalSym(name)
                        },
                        line,
                    ));
                    i = j;
                }
                '"' => {
                    let mut s = String::new();
                    let mut j = i + 1;
                    loop {
                        if j >= bytes.len() {
                            return Err(ParseError {
                                line,
                                message: "unterminated string".into(),
                            });
                        }
                        match bytes[j] {
                            '"' => break,
                            '\\' => {
                                j += 1;
                                if j >= bytes.len() {
                                    return Err(ParseError {
                                        line,
                                        message: "unterminated escape".into(),
                                    });
                                }
                                s.push(bytes[j]);
                                j += 1;
                            }
                            other => {
                                if other == '\n' {
                                    line += 1;
                                }
                                s.push(other);
                                j += 1;
                            }
                        }
                    }
                    toks.push((Tok::Str(s), line));
                    i = j + 1;
                }
                '-' | '0'..='9' => {
                    let neg = c == '-';
                    let mut j = if neg { i + 1 } else { i };
                    let start = j;
                    let mut radix = 10;
                    if j + 1 < bytes.len() && bytes[j] == '0' && bytes[j + 1] == 'x' {
                        radix = 16;
                        j += 2;
                    }
                    let digits_start = if radix == 16 { j } else { start };
                    while j < bytes.len() && bytes[j].is_ascii_alphanumeric() {
                        j += 1;
                    }
                    let digits: String = bytes[digits_start..j].iter().collect();
                    let mag = u64::from_str_radix(&digits, radix).map_err(|_| ParseError {
                        line,
                        message: format!("bad integer literal '{digits}'"),
                    })?;
                    let val = if neg {
                        (mag as i64).wrapping_neg() as u64
                    } else {
                        mag
                    };
                    toks.push((Tok::Int(val), line));
                    i = j;
                }
                c if is_name_start(c) => {
                    let start = i;
                    let mut j = i;
                    while j < bytes.len() && is_name_char(bytes[j]) {
                        j += 1;
                    }
                    let word: String = bytes[start..j].iter().collect();
                    toks.push((Tok::Ident(word), line));
                    i = j;
                }
                other => {
                    return Err(ParseError {
                        line,
                        message: format!("unexpected character '{other}'"),
                    })
                }
            }
        }
        toks.push((Tok::Eof, line));
        Ok(Lexer { toks, pos: 0 })
    }

    fn peek(&self) -> &Tok {
        &self.toks[self.pos].0
    }

    fn line(&self) -> usize {
        self.toks[self.pos].1
    }

    fn next(&mut self) -> Tok {
        let t = self.toks[self.pos].0.clone();
        if self.pos + 1 < self.toks.len() {
            self.pos += 1;
        }
        t
    }

    fn err<T>(&self, message: impl Into<String>) -> PResult<T> {
        Err(ParseError {
            line: self.line(),
            message: message.into(),
        })
    }

    fn expect_punct(&mut self, c: char) -> PResult<()> {
        if self.peek() == &Tok::Punct(c) {
            self.next();
            Ok(())
        } else {
            self.err(format!("expected '{c}', found {:?}", self.peek()))
        }
    }

    fn expect_ident(&mut self, word: &str) -> PResult<()> {
        if let Tok::Ident(w) = self.peek() {
            if w == word {
                self.next();
                return Ok(());
            }
        }
        self.err(format!("expected '{word}', found {:?}", self.peek()))
    }

    fn take_ident(&mut self) -> PResult<String> {
        if let Tok::Ident(w) = self.peek() {
            let w = w.clone();
            self.next();
            Ok(w)
        } else {
            self.err(format!("expected identifier, found {:?}", self.peek()))
        }
    }

    fn take_int(&mut self) -> PResult<u64> {
        if let Tok::Int(v) = self.peek() {
            let v = *v;
            self.next();
            Ok(v)
        } else {
            self.err(format!("expected integer, found {:?}", self.peek()))
        }
    }

    fn eat_punct(&mut self, c: char) -> bool {
        if self.peek() == &Tok::Punct(c) {
            self.next();
            true
        } else {
            false
        }
    }
}

fn is_name_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_' || c == '.'
}

fn is_name_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '-'
}

// ------------------------------------------------------------- raw form --

#[derive(Clone, Debug)]
enum RawValue {
    Int(u64),
    Null,
    Sym(String),   // @name — global or function address, resolved later
    Local(String), // %name — arg or instruction result
}

#[derive(Clone, Debug)]
enum RawInst {
    Alloca(Type, u64),
    Load(Type, RawValue),
    Store(Type, RawValue, RawValue),
    Gep(Type, RawValue, Vec<(Type, RawValue)>),
    Bin(BinOp, Type, RawValue, RawValue),
    Icmp(IcmpPred, Type, RawValue, RawValue),
    Cast(CastOp, Type, Type, RawValue),
    Select(Type, RawValue, RawValue, RawValue),
    Call(String, Type, Vec<(Type, RawValue)>),
    Phi(Type, Vec<(String, RawValue)>),
    Asm(String),
}

#[derive(Clone, Debug)]
enum RawTerm {
    Br(String),
    CondBr(RawValue, String, String),
    Switch(Type, RawValue, String, Vec<(u64, String)>),
    RetVoid,
    Ret(Type, RawValue),
    Unreachable,
}

#[derive(Clone, Debug)]
struct RawBlock {
    name: String,
    insts: Vec<(Option<String>, RawInst)>,
    term: RawTerm,
    term_line: usize,
}

// --------------------------------------------------------------- parser --

/// Parse a module from its textual form.
///
/// ```
/// let m = kop_ir::parse_module(r#"
/// module "demo"
/// define i64 @inc(i64 %x) {
/// entry:
///   %y = add i64 %x, 1
///   ret i64 %y
/// }
/// "#).unwrap();
/// assert_eq!(m.functions.len(), 1);
/// assert!(kop_ir::verify_module(&m).is_ok());
/// ```
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut lx = Lexer::new(src)?;
    lx.expect_ident("module")?;
    let name = match lx.next() {
        Tok::Str(s) => s,
        other => {
            return Err(ParseError {
                line: lx.line(),
                message: format!("expected module name string, found {other:?}"),
            })
        }
    };
    let mut module = Module::new(name);

    loop {
        match lx.peek().clone() {
            Tok::Eof => break,
            Tok::Ident(w) if w == "declare" => {
                lx.next();
                let ret_ty = parse_type(&mut lx)?;
                let fname = take_global(&mut lx)?;
                lx.expect_punct('(')?;
                let mut params = Vec::new();
                if !lx.eat_punct(')') {
                    loop {
                        params.push(parse_type(&mut lx)?);
                        if lx.eat_punct(')') {
                            break;
                        }
                        lx.expect_punct(',')?;
                    }
                }
                module.externs.push(ExternDecl {
                    name: fname,
                    params,
                    ret_ty,
                });
            }
            Tok::Ident(w) if w == "global" => {
                lx.next();
                let gname = take_global(&mut lx)?;
                lx.expect_punct(':')?;
                let ty = parse_type(&mut lx)?;
                lx.expect_punct('=')?;
                let init = match lx.peek().clone() {
                    Tok::Ident(w) if w == "zero" => {
                        lx.next();
                        GlobalInit::Zero
                    }
                    Tok::Ident(w) if w == "bytes" => {
                        lx.next();
                        lx.expect_punct('[')?;
                        let mut bytes = Vec::new();
                        while !lx.eat_punct(']') {
                            // Bytes are `0x`-prefixed literals as the
                            // printer emits them (plain decimal accepted).
                            let line = lx.line();
                            let v = lx.take_int()?;
                            let b = u8::try_from(v).map_err(|_| ParseError {
                                line,
                                message: format!("byte literal {v} out of range"),
                            })?;
                            bytes.push(b);
                        }
                        GlobalInit::Bytes(bytes)
                    }
                    Tok::Int(_) => GlobalInit::Int(lx.take_int()?),
                    other => {
                        return Err(ParseError {
                            line: lx.line(),
                            message: format!("bad global initializer {other:?}"),
                        })
                    }
                };
                module.globals.push(Global {
                    name: gname,
                    ty,
                    init,
                });
            }
            Tok::Ident(w) if w == "define" => {
                let mut func = parse_function(&mut lx)?;
                func.seal_layout();
                module.functions.push(func);
            }
            other => {
                return Err(ParseError {
                    line: lx.line(),
                    message: format!("expected top-level item, found {other:?}"),
                })
            }
        }
    }

    // Fixup: `@name` operands that refer to functions become FuncAddr.
    let func_names: Vec<String> = module
        .functions
        .iter()
        .map(|f| f.name.clone())
        .chain(module.externs.iter().map(|e| e.name.clone()))
        .collect();
    for f in &mut module.functions {
        let n = f.inst_count();
        for i in 0..n {
            let id = crate::function::InstId(i as u32);
            fixup_inst_syms(f.inst_mut(id), &func_names);
        }
        for b in &mut f.blocks {
            if let Some(t) = &mut b.term {
                fixup_term_syms(t, &func_names);
            }
        }
    }
    Ok(module)
}

fn fixup_value_syms(v: &mut Value, funcs: &[String]) {
    if let Value::Global(name) = v {
        if funcs.iter().any(|f| f == name) {
            *v = Value::FuncAddr(name.clone());
        }
    }
}

fn fixup_inst_syms(inst: &mut Inst, funcs: &[String]) {
    match inst {
        Inst::Load { ptr, .. } => fixup_value_syms(ptr, funcs),
        Inst::Store { val, ptr, .. } => {
            fixup_value_syms(val, funcs);
            fixup_value_syms(ptr, funcs);
        }
        Inst::Gep { ptr, indices, .. } => {
            fixup_value_syms(ptr, funcs);
            for i in indices {
                fixup_value_syms(i, funcs);
            }
        }
        Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
            fixup_value_syms(lhs, funcs);
            fixup_value_syms(rhs, funcs);
        }
        Inst::Cast { val, .. } => fixup_value_syms(val, funcs),
        Inst::Select {
            cond,
            then_val,
            else_val,
            ..
        } => {
            fixup_value_syms(cond, funcs);
            fixup_value_syms(then_val, funcs);
            fixup_value_syms(else_val, funcs);
        }
        Inst::Call { args, .. } => {
            for a in args {
                fixup_value_syms(a, funcs);
            }
        }
        Inst::Phi { incomings, .. } => {
            for (_, v) in incomings {
                fixup_value_syms(v, funcs);
            }
        }
        Inst::Alloca { .. } | Inst::Asm { .. } => {}
    }
}

fn fixup_term_syms(t: &mut Terminator, funcs: &[String]) {
    match t {
        Terminator::CondBr { cond, .. } => fixup_value_syms(cond, funcs),
        Terminator::Switch { val, .. } => fixup_value_syms(val, funcs),
        Terminator::Ret(Some(v)) => fixup_value_syms(v, funcs),
        _ => {}
    }
}

fn take_global(lx: &mut Lexer) -> PResult<String> {
    match lx.next() {
        Tok::GlobalSym(n) => Ok(n),
        other => Err(ParseError {
            line: lx.line(),
            message: format!("expected @name, found {other:?}"),
        }),
    }
}

fn take_local(lx: &mut Lexer) -> PResult<String> {
    match lx.next() {
        Tok::Local(n) => Ok(n),
        other => Err(ParseError {
            line: lx.line(),
            message: format!("expected %name, found {other:?}"),
        }),
    }
}

fn parse_type(lx: &mut Lexer) -> PResult<Type> {
    match lx.peek().clone() {
        Tok::Ident(w) => {
            let t = match w.as_str() {
                "void" => Type::Void,
                "i1" => Type::I1,
                "i8" => Type::I8,
                "i16" => Type::I16,
                "i32" => Type::I32,
                "i64" => Type::I64,
                "ptr" => Type::Ptr,
                other => return lx.err(format!("unknown type '{other}'")),
            };
            lx.next();
            Ok(t)
        }
        Tok::Punct('[') => {
            lx.next();
            let n = lx.take_int()?;
            lx.expect_ident("x")?;
            let elem = parse_type(lx)?;
            lx.expect_punct(']')?;
            Ok(Type::Array(Box::new(elem), n))
        }
        Tok::Punct('{') => {
            lx.next();
            let mut fields = Vec::new();
            if !lx.eat_punct('}') {
                loop {
                    fields.push(parse_type(lx)?);
                    if lx.eat_punct('}') {
                        break;
                    }
                    lx.expect_punct(',')?;
                }
            }
            Ok(Type::Struct(fields))
        }
        other => lx.err(format!("expected type, found {other:?}")),
    }
}

fn parse_raw_value(lx: &mut Lexer) -> PResult<RawValue> {
    match lx.next() {
        Tok::Int(v) => Ok(RawValue::Int(v)),
        Tok::Ident(w) if w == "null" => Ok(RawValue::Null),
        Tok::Ident(w) if w == "true" => Ok(RawValue::Int(1)),
        Tok::Ident(w) if w == "false" => Ok(RawValue::Int(0)),
        Tok::GlobalSym(n) => Ok(RawValue::Sym(n)),
        Tok::Local(n) => Ok(RawValue::Local(n)),
        other => Err(ParseError {
            line: lx.line(),
            message: format!("expected value, found {other:?}"),
        }),
    }
}

fn parse_function(lx: &mut Lexer) -> PResult<Function> {
    lx.expect_ident("define")?;
    let ret_ty = parse_type(lx)?;
    let fname = take_global(lx)?;
    lx.expect_punct('(')?;
    let mut params = Vec::new();
    let mut param_names = Vec::new();
    if !lx.eat_punct(')') {
        loop {
            let ty = parse_type(lx)?;
            let pname = take_local(lx)?;
            params.push(ty);
            param_names.push(pname);
            if lx.eat_punct(')') {
                break;
            }
            lx.expect_punct(',')?;
        }
    }
    lx.expect_punct('{')?;

    // Parse raw blocks.
    let mut raw_blocks: Vec<RawBlock> = Vec::new();
    loop {
        if lx.eat_punct('}') {
            break;
        }
        // Block label.
        let label = lx.take_ident()?;
        lx.expect_punct(':')?;
        let mut insts: Vec<(Option<String>, RawInst)> = Vec::new();
        let (term, term_line) = loop {
            let line = lx.line();
            match lx.peek().clone() {
                Tok::Local(res) => {
                    lx.next();
                    lx.expect_punct('=')?;
                    let inst = parse_raw_inst(lx)?;
                    insts.push((Some(res), inst));
                }
                Tok::Ident(w) => {
                    match w.as_str() {
                        // Void instructions.
                        "store" | "call" | "asm" => {
                            let inst = parse_raw_inst(lx)?;
                            insts.push((None, inst));
                        }
                        // Terminators.
                        "br" => {
                            lx.next();
                            let target = take_local(lx)?;
                            break (RawTerm::Br(target), line);
                        }
                        "condbr" => {
                            lx.next();
                            lx.expect_ident("i1")?;
                            let c = parse_raw_value(lx)?;
                            lx.expect_punct(',')?;
                            let t = take_local(lx)?;
                            lx.expect_punct(',')?;
                            let e = take_local(lx)?;
                            break (RawTerm::CondBr(c, t, e), line);
                        }
                        "switch" => {
                            lx.next();
                            let ty = parse_type(lx)?;
                            let v = parse_raw_value(lx)?;
                            lx.expect_punct(',')?;
                            let default = take_local(lx)?;
                            lx.expect_punct('[')?;
                            let mut arms = Vec::new();
                            while !lx.eat_punct(']') {
                                let c = lx.take_int()?;
                                lx.expect_punct(':')?;
                                let b = take_local(lx)?;
                                arms.push((c, b));
                                lx.eat_punct(',');
                            }
                            break (RawTerm::Switch(ty, v, default, arms), line);
                        }
                        "ret" => {
                            lx.next();
                            if let Tok::Ident(w) = lx.peek() {
                                if w == "void" {
                                    lx.next();
                                    break (RawTerm::RetVoid, line);
                                }
                            }
                            let ty = parse_type(lx)?;
                            let v = parse_raw_value(lx)?;
                            break (RawTerm::Ret(ty, v), line);
                        }
                        "unreachable" => {
                            lx.next();
                            break (RawTerm::Unreachable, line);
                        }
                        other => {
                            return lx.err(format!("unexpected instruction '{other}'"));
                        }
                    }
                }
                other => return lx.err(format!("unexpected token in block: {other:?}")),
            }
        };
        raw_blocks.push(RawBlock {
            name: label,
            insts,
            term,
            term_line,
        });
    }

    // Resolve names.
    let mut func = Function::new(fname, params, ret_ty);
    func.param_names = param_names.clone();

    let mut block_ids: HashMap<String, BlockId> = HashMap::new();
    for rb in &raw_blocks {
        if block_ids.contains_key(&rb.name) {
            return Err(ParseError {
                line: rb.term_line,
                message: format!("duplicate block label '{}'", rb.name),
            });
        }
        let id = func.add_block(rb.name.clone());
        block_ids.insert(rb.name.clone(), id);
    }

    // Pre-allocate result ids so forward references resolve.
    let mut local_ids: HashMap<String, Value> = HashMap::new();
    for (i, pname) in param_names.iter().enumerate() {
        local_ids.insert(pname.clone(), Value::Arg(i as u32));
    }
    let mut planned: Vec<Vec<crate::function::InstId>> = Vec::new();
    for rb in &raw_blocks {
        let mut ids = Vec::new();
        for (res, raw) in &rb.insts {
            // Allocate placeholder; will overwrite the body below.
            let id = func.alloc_inst(Inst::Asm {
                text: "__placeholder".into(),
            });
            if let Some(name) = res {
                if local_ids.contains_key(name) {
                    return Err(ParseError {
                        line: rb.term_line,
                        message: format!("duplicate value name '%{name}'"),
                    });
                }
                func.set_inst_name(id, name.clone());
                local_ids.insert(name.clone(), Value::Inst(id));
            } else {
                // Unnamed results keep generated __tN names; the raw form
                // only omits names for void instructions so nothing can
                // reference them.
                let _ = raw;
            }
            ids.push(id);
        }
        planned.push(ids);
    }

    let resolve = |rv: &RawValue, ty: &Type, line: usize| -> PResult<Value> {
        match rv {
            RawValue::Int(v) => {
                if ty == &Type::Ptr {
                    // An integer literal in pointer position: only 0 (null).
                    if *v == 0 {
                        Ok(Value::NullPtr)
                    } else {
                        Err(ParseError {
                            line,
                            message: "non-zero integer literal used as ptr".into(),
                        })
                    }
                } else {
                    Ok(Value::ConstInt(ty.clone(), *v))
                }
            }
            RawValue::Null => Ok(Value::NullPtr),
            RawValue::Sym(n) => Ok(Value::Global(n.clone())),
            RawValue::Local(n) => local_ids.get(n).cloned().ok_or_else(|| ParseError {
                line,
                message: format!("undefined value '%{n}'"),
            }),
        }
    };
    let resolve_block = |n: &str, line: usize| -> PResult<BlockId> {
        block_ids.get(n).copied().ok_or_else(|| ParseError {
            line,
            message: format!("undefined block label '%{n}'"),
        })
    };

    for (bi, rb) in raw_blocks.iter().enumerate() {
        let bid = BlockId(bi as u32);
        for ((_, raw), &iid) in rb.insts.iter().zip(planned[bi].iter()) {
            let line = rb.term_line;
            let inst = match raw {
                RawInst::Alloca(ty, count) => Inst::Alloca {
                    ty: ty.clone(),
                    count: *count,
                },
                RawInst::Load(ty, ptr) => Inst::Load {
                    ty: ty.clone(),
                    ptr: resolve(ptr, &Type::Ptr, line)?,
                },
                RawInst::Store(ty, val, ptr) => Inst::Store {
                    ty: ty.clone(),
                    val: resolve(val, ty, line)?,
                    ptr: resolve(ptr, &Type::Ptr, line)?,
                },
                RawInst::Gep(base_ty, ptr, idxs) => Inst::Gep {
                    base_ty: base_ty.clone(),
                    ptr: resolve(ptr, &Type::Ptr, line)?,
                    indices: idxs
                        .iter()
                        .map(|(t, v)| resolve(v, t, line))
                        .collect::<PResult<Vec<_>>>()?,
                },
                RawInst::Bin(op, ty, l, r) => Inst::Bin {
                    op: *op,
                    ty: ty.clone(),
                    lhs: resolve(l, ty, line)?,
                    rhs: resolve(r, ty, line)?,
                },
                RawInst::Icmp(pred, ty, l, r) => Inst::Icmp {
                    pred: *pred,
                    ty: ty.clone(),
                    lhs: resolve(l, ty, line)?,
                    rhs: resolve(r, ty, line)?,
                },
                RawInst::Cast(op, from_ty, to_ty, v) => Inst::Cast {
                    op: *op,
                    from_ty: from_ty.clone(),
                    to_ty: to_ty.clone(),
                    val: resolve(v, from_ty, line)?,
                },
                RawInst::Select(ty, c, t, e) => Inst::Select {
                    ty: ty.clone(),
                    cond: resolve(c, &Type::I1, line)?,
                    then_val: resolve(t, ty, line)?,
                    else_val: resolve(e, ty, line)?,
                },
                RawInst::Call(callee, ret_ty, args) => Inst::Call {
                    callee: callee.clone(),
                    ret_ty: ret_ty.clone(),
                    args: args
                        .iter()
                        .map(|(t, v)| resolve(v, t, line))
                        .collect::<PResult<Vec<_>>>()?,
                },
                RawInst::Phi(ty, incomings) => Inst::Phi {
                    ty: ty.clone(),
                    incomings: incomings
                        .iter()
                        .map(|(b, v)| Ok((resolve_block(b, line)?, resolve(v, ty, line)?)))
                        .collect::<PResult<Vec<_>>>()?,
                },
                RawInst::Asm(text) => Inst::Asm { text: text.clone() },
            };
            *func.inst_mut(iid) = inst;
            func.push_inst(bid, iid);
        }
        let line = rb.term_line;
        let term = match &rb.term {
            RawTerm::Br(t) => Terminator::Br(resolve_block(t, line)?),
            RawTerm::CondBr(c, t, e) => Terminator::CondBr {
                cond: resolve(c, &Type::I1, line)?,
                then_blk: resolve_block(t, line)?,
                else_blk: resolve_block(e, line)?,
            },
            RawTerm::Switch(ty, v, d, arms) => Terminator::Switch {
                ty: ty.clone(),
                val: resolve(v, ty, line)?,
                default: resolve_block(d, line)?,
                arms: arms
                    .iter()
                    .map(|(c, b)| Ok((*c, resolve_block(b, line)?)))
                    .collect::<PResult<Vec<_>>>()?,
            },
            RawTerm::RetVoid => Terminator::Ret(None),
            RawTerm::Ret(ty, v) => Terminator::Ret(Some(resolve(v, ty, line)?)),
            RawTerm::Unreachable => Terminator::Unreachable,
        };
        func.block_mut(bid).term = Some(term);
    }

    Ok(func)
}

fn parse_raw_inst(lx: &mut Lexer) -> PResult<RawInst> {
    let word = lx.take_ident()?;
    match word.as_str() {
        "alloca" => {
            let ty = parse_type(lx)?;
            let count = if lx.eat_punct(',') { lx.take_int()? } else { 1 };
            Ok(RawInst::Alloca(ty, count))
        }
        "load" => {
            let ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            lx.expect_ident("ptr")?;
            let ptr = parse_raw_value(lx)?;
            Ok(RawInst::Load(ty, ptr))
        }
        "store" => {
            let ty = parse_type(lx)?;
            let val = parse_raw_value(lx)?;
            lx.expect_punct(',')?;
            lx.expect_ident("ptr")?;
            let ptr = parse_raw_value(lx)?;
            Ok(RawInst::Store(ty, val, ptr))
        }
        "gep" => {
            let base_ty = parse_type(lx)?;
            lx.expect_punct(',')?;
            lx.expect_ident("ptr")?;
            let ptr = parse_raw_value(lx)?;
            let mut idxs = Vec::new();
            while lx.eat_punct(',') {
                let ty = parse_type(lx)?;
                let v = parse_raw_value(lx)?;
                idxs.push((ty, v));
            }
            Ok(RawInst::Gep(base_ty, ptr, idxs))
        }
        "icmp" => {
            let predw = lx.take_ident()?;
            let pred = IcmpPred::from_mnemonic(&predw).ok_or_else(|| ParseError {
                line: lx.line(),
                message: format!("unknown icmp predicate '{predw}'"),
            })?;
            let ty = parse_type(lx)?;
            let l = parse_raw_value(lx)?;
            lx.expect_punct(',')?;
            let r = parse_raw_value(lx)?;
            Ok(RawInst::Icmp(pred, ty, l, r))
        }
        "select" => {
            lx.expect_ident("i1")?;
            let c = parse_raw_value(lx)?;
            lx.expect_punct(',')?;
            let ty = parse_type(lx)?;
            let t = parse_raw_value(lx)?;
            lx.expect_punct(',')?;
            let ty2 = parse_type(lx)?;
            if ty2 != ty {
                return lx.err("select arm types differ");
            }
            let e = parse_raw_value(lx)?;
            Ok(RawInst::Select(ty, c, t, e))
        }
        "call" => {
            let ret_ty = parse_type(lx)?;
            let callee = take_global(lx)?;
            lx.expect_punct('(')?;
            let mut args = Vec::new();
            if !lx.eat_punct(')') {
                loop {
                    let ty = parse_type(lx)?;
                    let v = parse_raw_value(lx)?;
                    args.push((ty, v));
                    if lx.eat_punct(')') {
                        break;
                    }
                    lx.expect_punct(',')?;
                }
            }
            Ok(RawInst::Call(callee, ret_ty, args))
        }
        "phi" => {
            let ty = parse_type(lx)?;
            let mut arms = Vec::new();
            loop {
                lx.expect_punct('[')?;
                let v = parse_raw_value(lx)?;
                lx.expect_punct(',')?;
                let b = take_local(lx)?;
                lx.expect_punct(']')?;
                arms.push((b, v));
                if !lx.eat_punct(',') {
                    break;
                }
            }
            Ok(RawInst::Phi(ty, arms))
        }
        "asm" => match lx.next() {
            Tok::Str(s) => Ok(RawInst::Asm(s)),
            other => Err(ParseError {
                line: lx.line(),
                message: format!("expected asm string, found {other:?}"),
            }),
        },
        other => {
            if let Some(op) = BinOp::from_mnemonic(other) {
                let ty = parse_type(lx)?;
                let l = parse_raw_value(lx)?;
                lx.expect_punct(',')?;
                let r = parse_raw_value(lx)?;
                return Ok(RawInst::Bin(op, ty, l, r));
            }
            if let Some(op) = CastOp::from_mnemonic(other) {
                let from_ty = parse_type(lx)?;
                let v = parse_raw_value(lx)?;
                lx.expect_ident("to")?;
                let to_ty = parse_type(lx)?;
                return Ok(RawInst::Cast(op, from_ty, to_ty, v));
            }
            lx.err(format!("unknown instruction '{other}'"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    const SUM_SRC: &str = r#"
module "sum"

declare void @carat_guard(ptr, i64, i32)

global @total : i64 = 0

define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %acc.next = add i64 %acc, %v
  %i.next = add i64 %i, 1
  br %head
exit:
  store i64 %acc, ptr @total
  ret i64 %acc
}
"#;

    #[test]
    fn parse_sum() {
        let m = parse_module(SUM_SRC).expect("parses");
        assert_eq!(m.name, "sum");
        assert_eq!(m.externs.len(), 1);
        assert_eq!(m.globals.len(), 1);
        let f = m.function("sum").unwrap();
        assert_eq!(f.blocks.len(), 4);
        assert_eq!(f.memory_access_count(), 2); // one load, one store
    }

    #[test]
    fn roundtrip_sum() {
        let m = parse_module(SUM_SRC).unwrap();
        let printed = print_module(&m);
        let m2 = parse_module(&printed).expect("reparses");
        let printed2 = print_module(&m2);
        assert_eq!(printed, printed2, "print→parse→print must be a fixpoint");
    }

    #[test]
    fn forward_reference_in_phi() {
        // %x.next referenced in a phi before its definition.
        let m = parse_module(SUM_SRC).unwrap();
        let f = m.function("sum").unwrap();
        // The phi in head must resolve %i.next to the inst in body.
        let head = f.block_by_name("head").unwrap();
        let phi_id = f.block(head).insts[0];
        match f.inst(phi_id) {
            Inst::Phi { incomings, .. } => {
                assert_eq!(incomings.len(), 2);
                assert!(matches!(incomings[1].1, Value::Inst(_)));
            }
            other => panic!("expected phi, got {other:?}"),
        }
    }

    #[test]
    fn error_on_undefined_value() {
        let src = r#"
module "bad"
define void @f() {
entry:
  %x = add i64 %nope, 1
  ret void
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn error_on_undefined_block() {
        let src = r#"
module "bad"
define void @f() {
entry:
  br %nowhere
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("undefined block"), "{err}");
    }

    #[test]
    fn error_on_duplicate_name() {
        let src = r#"
module "bad"
define void @f() {
entry:
  %x = add i64 1, 1
  %x = add i64 2, 2
  ret void
}
"#;
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("duplicate value name"), "{err}");
    }

    #[test]
    fn parses_switch_and_select() {
        let src = r#"
module "sw"
define i64 @f(i64 %x) {
entry:
  %c = icmp eq i64 %x, 0
  %v = select i1 %c, i64 10, i64 20
  switch i64 %x, %dflt [ 1: %one, 2: %two ]
one:
  ret i64 %v
two:
  ret i64 2
dflt:
  ret i64 0
}
"#;
        let m = parse_module(src).expect("parses");
        let f = m.function("f").unwrap();
        assert_eq!(f.blocks.len(), 4);
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn parses_asm_and_funcaddr() {
        let src = r#"
module "a"
declare void @ext()
define void @f() {
entry:
  asm "wrmsr"
  %p = gep i8, ptr @ext, i64 0
  ret void
}
"#;
        let m = parse_module(src).expect("parses");
        let f = m.function("f").unwrap();
        // @ext should be fixed up to a FuncAddr since it names a function.
        let gep_id = f.block(BlockId(0)).insts[1];
        match f.inst(gep_id) {
            Inst::Gep { ptr, .. } => assert!(matches!(ptr, Value::FuncAddr(n) if n == "ext")),
            other => panic!("expected gep, got {other:?}"),
        }
    }

    #[test]
    fn negative_and_hex_literals() {
        let src = r#"
module "n"
define i64 @f() {
entry:
  %a = add i64 -1, 0x10
  ret i64 %a
}
"#;
        let m = parse_module(src).expect("parses");
        let f = m.function("f").unwrap();
        match f.inst(f.block(BlockId(0)).insts[0]) {
            Inst::Bin { lhs, rhs, .. } => {
                assert_eq!(lhs, &Value::ConstInt(Type::I64, u64::MAX));
                assert_eq!(rhs, &Value::ConstInt(Type::I64, 16));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn bytes_global_roundtrip() {
        let src = r#"
module "b"
global @blob : [4 x i8] = bytes [0xde 0x07 0xbe 0x42]
"#;
        let m = parse_module(src).expect("parses");
        assert_eq!(
            m.global("blob").unwrap().init,
            GlobalInit::Bytes(vec![0xde, 0x07, 0xbe, 0x42])
        );
        let printed = print_module(&m);
        let m2 = parse_module(&printed).unwrap();
        assert_eq!(print_module(&m2), printed);
    }

    #[test]
    fn comments_and_whitespace_ignored() {
        let src = "module \"c\"  ; trailing comment\n; full line\n\n\ndefine void @f() {\nentry:  ; comment\n  ret void\n}\n";
        assert!(parse_module(src).is_ok());
    }
}
