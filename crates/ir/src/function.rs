//! Functions, blocks, and the instruction arena.
//!
//! Instructions live in a per-function arena and blocks hold ordered lists
//! of [`InstId`]s, so passes can insert instructions (e.g. guards) without
//! invalidating references — exactly the mutation pattern the guard
//! injection pass needs.

use core::fmt;

use crate::inst::{Inst, Terminator, Value};
use crate::types::Type;

/// Identifier of an instruction within its function's arena.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct InstId(pub u32);

/// Identifier of a basic block within its function.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BlockId(pub u32);

/// A basic block: a label, an ordered instruction list, and a terminator.
#[derive(Clone, Debug)]
pub struct Block {
    /// Label (unique within the function).
    pub name: String,
    /// Ordered non-terminator instructions.
    pub insts: Vec<InstId>,
    /// The terminator. Parsed/built functions always have one; during
    /// construction it may temporarily be `None`.
    pub term: Option<Terminator>,
}

/// A function definition.
#[derive(Clone, Debug)]
pub struct Function {
    /// Symbol name (without the `@`).
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Parameter names (parallel to `params`; used by printer).
    pub param_names: Vec<String>,
    /// Return type.
    pub ret_ty: Type,
    /// Basic blocks in layout order; `blocks[0]` is the entry.
    pub blocks: Vec<Block>,
    /// Instruction arena.
    insts: Vec<Inst>,
    /// Result-value names for instructions (empty string = unnamed).
    inst_names: Vec<String>,
    /// Cached leading-phi count per block, filled by
    /// [`Function::seal_layout`]. Empty (or stale-length) means unsealed;
    /// readers fall back to scanning. Any structural mutation through the
    /// arena/block methods clears it.
    phi_counts: Vec<u32>,
}

impl Function {
    /// Create an empty function (no blocks yet).
    pub fn new(name: impl Into<String>, params: Vec<Type>, ret_ty: Type) -> Function {
        let params_len = params.len();
        Function {
            name: name.into(),
            param_names: (0..params_len).map(|i| format!("arg{i}")).collect(),
            params,
            ret_ty,
            blocks: Vec::new(),
            insts: Vec::new(),
            inst_names: Vec::new(),
            phi_counts: Vec::new(),
        }
    }

    /// Precompute the per-block leading-phi counts. Called by the builder,
    /// the parser, the compiler driver (after its passes), and the loader
    /// at insmod, so executors never pay the per-block-entry re-scan. The
    /// verifier guarantees phis are leading, which is what makes a single
    /// count per block a faithful summary.
    pub fn seal_layout(&mut self) {
        let counts = self
            .blocks
            .iter()
            .map(|b| {
                b.insts
                    .iter()
                    .take_while(|&&iid| matches!(self.insts[iid.0 as usize], Inst::Phi { .. }))
                    .count() as u32
            })
            .collect();
        self.phi_counts = counts;
    }

    /// Number of leading phi instructions in `block` — O(1) on sealed
    /// functions, a scan otherwise.
    pub fn leading_phi_count(&self, block: BlockId) -> usize {
        if self.phi_counts.len() == self.blocks.len() {
            return self.phi_counts[block.0 as usize] as usize;
        }
        self.block(block)
            .insts
            .iter()
            .take_while(|&&iid| matches!(self.inst(iid), Inst::Phi { .. }))
            .count()
    }

    /// The entry block, if any blocks exist.
    pub fn entry(&self) -> Option<BlockId> {
        if self.blocks.is_empty() {
            None
        } else {
            Some(BlockId(0))
        }
    }

    /// Append a new empty block and return its id.
    pub fn add_block(&mut self, name: impl Into<String>) -> BlockId {
        self.phi_counts.clear();
        let id = BlockId(u32::try_from(self.blocks.len()).expect("block count fits u32"));
        self.blocks.push(Block {
            name: name.into(),
            insts: Vec::new(),
            term: None,
        });
        id
    }

    /// Allocate an instruction in the arena (does not place it in a block).
    pub fn alloc_inst(&mut self, inst: Inst) -> InstId {
        let id = InstId(u32::try_from(self.insts.len()).expect("inst count fits u32"));
        self.insts.push(inst);
        self.inst_names.push(String::new());
        id
    }

    /// Allocate an instruction with a result name.
    pub fn alloc_named_inst(&mut self, inst: Inst, name: impl Into<String>) -> InstId {
        let id = self.alloc_inst(inst);
        self.inst_names[id.0 as usize] = name.into();
        id
    }

    /// Append an already-allocated instruction to a block.
    pub fn push_inst(&mut self, block: BlockId, inst: InstId) {
        self.phi_counts.clear();
        self.blocks[block.0 as usize].insts.push(inst);
    }

    /// Insert an already-allocated instruction into a block at `pos`.
    pub fn insert_inst(&mut self, block: BlockId, pos: usize, inst: InstId) {
        self.phi_counts.clear();
        self.blocks[block.0 as usize].insts.insert(pos, inst);
    }

    /// Instruction lookup.
    pub fn inst(&self, id: InstId) -> &Inst {
        &self.insts[id.0 as usize]
    }

    /// Mutable instruction lookup.
    pub fn inst_mut(&mut self, id: InstId) -> &mut Inst {
        self.phi_counts.clear();
        &mut self.insts[id.0 as usize]
    }

    /// The result name of an instruction (may be empty).
    pub fn inst_name(&self, id: InstId) -> &str {
        &self.inst_names[id.0 as usize]
    }

    /// Set the result name of an instruction.
    pub fn set_inst_name(&mut self, id: InstId, name: impl Into<String>) {
        self.inst_names[id.0 as usize] = name.into();
    }

    /// Number of instructions in the arena (including unplaced ones).
    pub fn inst_count(&self) -> usize {
        self.insts.len()
    }

    /// Block lookup.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.0 as usize]
    }

    /// Mutable block lookup.
    pub fn block_mut(&mut self, id: BlockId) -> &mut Block {
        self.phi_counts.clear();
        &mut self.blocks[id.0 as usize]
    }

    /// Find a block by label.
    pub fn block_by_name(&self, name: &str) -> Option<BlockId> {
        self.blocks
            .iter()
            .position(|b| b.name == name)
            .map(|i| BlockId(i as u32))
    }

    /// Iterate over block ids in layout order.
    pub fn block_ids(&self) -> impl Iterator<Item = BlockId> + '_ {
        (0..self.blocks.len()).map(|i| BlockId(i as u32))
    }

    /// Iterate over `(BlockId, InstId)` pairs for all placed instructions in
    /// layout order.
    pub fn placed_insts(&self) -> Vec<(BlockId, InstId)> {
        let mut out = Vec::new();
        for bid in self.block_ids() {
            for &iid in &self.block(bid).insts {
                out.push((bid, iid));
            }
        }
        out
    }

    /// Count the loads and stores in the function — the accesses CARAT KOP
    /// will guard.
    pub fn memory_access_count(&self) -> usize {
        self.placed_insts()
            .iter()
            .filter(|(_, iid)| self.inst(*iid).is_memory_access())
            .count()
    }

    /// Count calls to a given callee (e.g. `carat_guard`).
    pub fn call_count(&self, callee: &str) -> usize {
        self.placed_insts()
            .iter()
            .filter(
                |(_, iid)| matches!(self.inst(*iid), Inst::Call { callee: c, .. } if c == callee),
            )
            .count()
    }

    /// Predecessor map: for each block, the blocks that branch to it.
    pub fn predecessors(&self) -> Vec<Vec<BlockId>> {
        let mut preds = vec![Vec::new(); self.blocks.len()];
        for bid in self.block_ids() {
            if let Some(term) = &self.block(bid).term {
                for succ in term.successors() {
                    preds[succ.0 as usize].push(bid);
                }
            }
        }
        preds
    }

    /// The type of a value in the context of this function.
    ///
    /// Returns `None` for out-of-range args or unallocated instruction ids.
    pub fn value_type(&self, v: &Value) -> Option<Type> {
        match v {
            Value::ConstInt(ty, _) => Some(ty.clone()),
            Value::NullPtr | Value::Global(_) | Value::FuncAddr(_) => Some(Type::Ptr),
            Value::Arg(i) => self.params.get(*i as usize).cloned(),
            Value::Inst(id) => self.insts.get(id.0 as usize).map(|i| i.result_type()),
        }
    }
}

impl fmt::Display for Function {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::printer::print_function(self))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{BinOp, IcmpPred};

    fn sample_function() -> Function {
        // define i64 @f(i64 %a) { entry: %x = add i64 %a, 1; ret i64 %x }
        let mut func = Function::new("f", vec![Type::I64], Type::I64);
        let entry = func.add_block("entry");
        let x = func.alloc_named_inst(
            Inst::Bin {
                op: BinOp::Add,
                ty: Type::I64,
                lhs: Value::Arg(0),
                rhs: Value::i64(1),
            },
            "x",
        );
        func.push_inst(entry, x);
        func.block_mut(entry).term = Some(Terminator::Ret(Some(Value::Inst(x))));
        func
    }

    #[test]
    fn build_and_query() {
        let f = sample_function();
        assert_eq!(f.entry(), Some(BlockId(0)));
        assert_eq!(f.inst_count(), 1);
        assert_eq!(f.inst_name(InstId(0)), "x");
        assert_eq!(f.block_by_name("entry"), Some(BlockId(0)));
        assert_eq!(f.block_by_name("nope"), None);
        assert_eq!(f.memory_access_count(), 0);
    }

    #[test]
    fn value_types() {
        let f = sample_function();
        assert_eq!(f.value_type(&Value::Arg(0)), Some(Type::I64));
        assert_eq!(f.value_type(&Value::Arg(1)), None);
        assert_eq!(f.value_type(&Value::Inst(InstId(0))), Some(Type::I64));
        assert_eq!(f.value_type(&Value::NullPtr), Some(Type::Ptr));
        assert_eq!(f.value_type(&Value::Global("g".into())), Some(Type::Ptr));
    }

    #[test]
    fn predecessors() {
        let mut f = Function::new("g", vec![], Type::Void);
        let entry = f.add_block("entry");
        let a = f.add_block("a");
        let b = f.add_block("b");
        let join = f.add_block("join");
        let cond = f.alloc_inst(Inst::Icmp {
            pred: IcmpPred::Eq,
            ty: Type::I64,
            lhs: Value::i64(0),
            rhs: Value::i64(0),
        });
        f.push_inst(entry, cond);
        f.block_mut(entry).term = Some(Terminator::CondBr {
            cond: Value::Inst(cond),
            then_blk: a,
            else_blk: b,
        });
        f.block_mut(a).term = Some(Terminator::Br(join));
        f.block_mut(b).term = Some(Terminator::Br(join));
        f.block_mut(join).term = Some(Terminator::Ret(None));

        let preds = f.predecessors();
        assert_eq!(preds[join.0 as usize], vec![a, b]);
        assert_eq!(preds[entry.0 as usize], Vec::<BlockId>::new());
        assert_eq!(preds[a.0 as usize], vec![entry]);
    }

    #[test]
    fn insert_inst_position() {
        let mut f = sample_function();
        let entry = BlockId(0);
        let guard = f.alloc_inst(Inst::Call {
            callee: "carat_guard".into(),
            ret_ty: Type::Void,
            args: vec![],
        });
        f.insert_inst(entry, 0, guard);
        assert_eq!(f.block(entry).insts[0], guard);
        assert_eq!(f.call_count("carat_guard"), 1);
        assert_eq!(f.call_count("other"), 0);
    }

    #[test]
    fn sealed_phi_counts_match_scan_and_invalidate_on_mutation() {
        let mut f = Function::new("p", vec![Type::I64], Type::I64);
        let entry = f.add_block("entry");
        let head = f.add_block("head");
        let phi = f.alloc_inst(Inst::Phi {
            ty: Type::I64,
            incomings: vec![(entry, Value::i64(0))],
        });
        f.push_inst(head, phi);
        let add = f.alloc_inst(Inst::Bin {
            op: BinOp::Add,
            ty: Type::I64,
            lhs: Value::Inst(phi),
            rhs: Value::i64(1),
        });
        f.push_inst(head, add);
        f.block_mut(entry).term = Some(Terminator::Br(head));
        f.block_mut(head).term = Some(Terminator::Ret(Some(Value::Inst(add))));

        // Unsealed: falls back to scanning.
        assert_eq!(f.leading_phi_count(entry), 0);
        assert_eq!(f.leading_phi_count(head), 1);
        f.seal_layout();
        assert_eq!(f.leading_phi_count(head), 1);

        // A structural mutation drops the cache; the scan still answers.
        let phi2 = f.alloc_inst(Inst::Phi {
            ty: Type::I64,
            incomings: vec![(entry, Value::i64(7))],
        });
        f.insert_inst(head, 0, phi2);
        assert_eq!(f.leading_phi_count(head), 2);
        f.seal_layout();
        assert_eq!(f.leading_phi_count(head), 2);
    }

    #[test]
    fn memory_access_count_counts_loads_and_stores() {
        let mut f = Function::new("m", vec![Type::Ptr], Type::Void);
        let entry = f.add_block("entry");
        let ld = f.alloc_inst(Inst::Load {
            ty: Type::I64,
            ptr: Value::Arg(0),
        });
        let st = f.alloc_inst(Inst::Store {
            ty: Type::I64,
            val: Value::Inst(ld),
            ptr: Value::Arg(0),
        });
        f.push_inst(entry, ld);
        f.push_inst(entry, st);
        f.block_mut(entry).term = Some(Terminator::Ret(None));
        assert_eq!(f.memory_access_count(), 2);
    }
}
