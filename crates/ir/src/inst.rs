//! KIR instructions, values, and terminators.

use core::fmt;

use crate::function::{BlockId, InstId};
use crate::types::Type;

/// An SSA operand.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// Integer constant of the given type (stored sign-agnostic as u64,
    /// truncated to the type's width).
    ConstInt(Type, u64),
    /// The null pointer.
    NullPtr,
    /// Address of a global variable.
    Global(String),
    /// The address of a function (internal or external) — used for taking
    /// function pointers.
    FuncAddr(String),
    /// The `idx`-th formal parameter of the enclosing function.
    Arg(u32),
    /// The result of another instruction.
    Inst(InstId),
}

impl Value {
    /// Convenience: an `i64` constant.
    pub fn i64(v: u64) -> Value {
        Value::ConstInt(Type::I64, v)
    }

    /// Convenience: an `i32` constant.
    pub fn i32(v: u32) -> Value {
        Value::ConstInt(Type::I32, v as u64)
    }

    /// Convenience: an `i1` constant.
    pub fn i1(v: bool) -> Value {
        Value::ConstInt(Type::I1, v as u64)
    }
}

/// Binary integer operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum BinOp {
    Add,
    Sub,
    Mul,
    UDiv,
    SDiv,
    URem,
    SRem,
    And,
    Or,
    Xor,
    Shl,
    LShr,
    AShr,
}

impl BinOp {
    /// Mnemonic used in the textual syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            BinOp::Add => "add",
            BinOp::Sub => "sub",
            BinOp::Mul => "mul",
            BinOp::UDiv => "udiv",
            BinOp::SDiv => "sdiv",
            BinOp::URem => "urem",
            BinOp::SRem => "srem",
            BinOp::And => "and",
            BinOp::Or => "or",
            BinOp::Xor => "xor",
            BinOp::Shl => "shl",
            BinOp::LShr => "lshr",
            BinOp::AShr => "ashr",
        }
    }

    /// Parse a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<BinOp> {
        Some(match s {
            "add" => BinOp::Add,
            "sub" => BinOp::Sub,
            "mul" => BinOp::Mul,
            "udiv" => BinOp::UDiv,
            "sdiv" => BinOp::SDiv,
            "urem" => BinOp::URem,
            "srem" => BinOp::SRem,
            "and" => BinOp::And,
            "or" => BinOp::Or,
            "xor" => BinOp::Xor,
            "shl" => BinOp::Shl,
            "lshr" => BinOp::LShr,
            "ashr" => BinOp::AShr,
            _ => return None,
        })
    }
}

/// Integer comparison predicates.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum IcmpPred {
    Eq,
    Ne,
    Ult,
    Ule,
    Ugt,
    Uge,
    Slt,
    Sle,
    Sgt,
    Sge,
}

impl IcmpPred {
    /// Mnemonic used in the textual syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            IcmpPred::Eq => "eq",
            IcmpPred::Ne => "ne",
            IcmpPred::Ult => "ult",
            IcmpPred::Ule => "ule",
            IcmpPred::Ugt => "ugt",
            IcmpPred::Uge => "uge",
            IcmpPred::Slt => "slt",
            IcmpPred::Sle => "sle",
            IcmpPred::Sgt => "sgt",
            IcmpPred::Sge => "sge",
        }
    }

    /// Parse a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<IcmpPred> {
        Some(match s {
            "eq" => IcmpPred::Eq,
            "ne" => IcmpPred::Ne,
            "ult" => IcmpPred::Ult,
            "ule" => IcmpPred::Ule,
            "ugt" => IcmpPred::Ugt,
            "uge" => IcmpPred::Uge,
            "slt" => IcmpPred::Slt,
            "sle" => IcmpPred::Sle,
            "sgt" => IcmpPred::Sgt,
            "sge" => IcmpPred::Sge,
            _ => return None,
        })
    }
}

/// Cast operations.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CastOp {
    Zext,
    Sext,
    Trunc,
    PtrToInt,
    IntToPtr,
}

impl CastOp {
    /// Mnemonic used in the textual syntax.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::PtrToInt => "ptrtoint",
            CastOp::IntToPtr => "inttoptr",
        }
    }

    /// Parse a mnemonic.
    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        Some(match s {
            "zext" => CastOp::Zext,
            "sext" => CastOp::Sext,
            "trunc" => CastOp::Trunc,
            "ptrtoint" => CastOp::PtrToInt,
            "inttoptr" => CastOp::IntToPtr,
            _ => return None,
        })
    }
}

/// A non-terminator instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Inst {
    /// Stack allocation of `count` items of `ty`; yields `ptr`.
    Alloca {
        /// Element type.
        ty: Type,
        /// Number of elements.
        count: u64,
    },
    /// Load a scalar of `ty` from `ptr`.
    Load {
        /// Loaded type (must be a memory scalar).
        ty: Type,
        /// Address operand.
        ptr: Value,
    },
    /// Store scalar `val` of `ty` to `ptr`.
    Store {
        /// Stored type (must be a memory scalar).
        ty: Type,
        /// Value operand.
        val: Value,
        /// Address operand.
        ptr: Value,
    },
    /// Address arithmetic: `gep base_ty, ptr, idx0 [, idx1, ...]`.
    ///
    /// As in LLVM, `idx0` scales by `size_of(base_ty)`; subsequent indices
    /// step into arrays/structs. Struct indices must be constants.
    Gep {
        /// The pointee type the pointer is treated as.
        base_ty: Type,
        /// Base address.
        ptr: Value,
        /// Indices.
        indices: Vec<Value>,
    },
    /// Integer binary operation.
    Bin {
        /// Operation.
        op: BinOp,
        /// Operand type.
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Integer or pointer comparison; yields `i1`.
    Icmp {
        /// Predicate.
        pred: IcmpPred,
        /// Operand type (`iN` or `ptr`).
        ty: Type,
        /// Left operand.
        lhs: Value,
        /// Right operand.
        rhs: Value,
    },
    /// Cast `val` to `to_ty`.
    Cast {
        /// Kind of cast.
        op: CastOp,
        /// Source operand type.
        from_ty: Type,
        /// Destination type.
        to_ty: Type,
        /// Operand.
        val: Value,
    },
    /// Ternary select; yields `ty`.
    Select {
        /// Result/operand type.
        ty: Type,
        /// Condition (`i1`).
        cond: Value,
        /// Value if true.
        then_val: Value,
        /// Value if false.
        else_val: Value,
    },
    /// Direct call by symbol name.
    Call {
        /// Callee symbol (internal function or external declaration).
        callee: String,
        /// Declared return type.
        ret_ty: Type,
        /// Actual arguments.
        args: Vec<Value>,
    },
    /// SSA phi node.
    Phi {
        /// Result type.
        ty: Type,
        /// `(predecessor block, incoming value)` pairs.
        incomings: Vec<(BlockId, Value)>,
    },
    /// Inline assembly marker. Exists so the attestation step has something
    /// to reject — CARAT KOP refuses to sign modules containing inline asm
    /// (paper §2, §5).
    Asm {
        /// The assembly text (opaque).
        text: String,
    },
}

impl Inst {
    /// The type of the value this instruction produces (`Void` for stores,
    /// asm, and void calls).
    pub fn result_type(&self) -> Type {
        match self {
            Inst::Alloca { .. } => Type::Ptr,
            Inst::Load { ty, .. } => ty.clone(),
            Inst::Store { .. } => Type::Void,
            Inst::Gep { .. } => Type::Ptr,
            Inst::Bin { ty, .. } => ty.clone(),
            Inst::Icmp { .. } => Type::I1,
            Inst::Cast { to_ty, .. } => to_ty.clone(),
            Inst::Select { ty, .. } => ty.clone(),
            Inst::Call { ret_ty, .. } => ret_ty.clone(),
            Inst::Phi { ty, .. } => ty.clone(),
            Inst::Asm { .. } => Type::Void,
        }
    }

    /// Whether this instruction accesses memory as a CPU load/store (the
    /// instructions CARAT KOP guards).
    pub fn is_memory_access(&self) -> bool {
        matches!(self, Inst::Load { .. } | Inst::Store { .. })
    }

    /// Visit every operand.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Inst::Alloca { .. } | Inst::Asm { .. } => {}
            Inst::Load { ptr, .. } => f(ptr),
            Inst::Store { val, ptr, .. } => {
                f(val);
                f(ptr);
            }
            Inst::Gep { ptr, indices, .. } => {
                f(ptr);
                for i in indices {
                    f(i);
                }
            }
            Inst::Bin { lhs, rhs, .. } | Inst::Icmp { lhs, rhs, .. } => {
                f(lhs);
                f(rhs);
            }
            Inst::Cast { val, .. } => f(val),
            Inst::Select {
                cond,
                then_val,
                else_val,
                ..
            } => {
                f(cond);
                f(then_val);
                f(else_val);
            }
            Inst::Call { args, .. } => {
                for a in args {
                    f(a);
                }
            }
            Inst::Phi { incomings, .. } => {
                for (_, v) in incomings {
                    f(v);
                }
            }
        }
    }
}

/// A block terminator.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Terminator {
    /// Unconditional branch.
    Br(BlockId),
    /// Conditional branch on an `i1` value.
    CondBr {
        /// Condition.
        cond: Value,
        /// Target if true.
        then_blk: BlockId,
        /// Target if false.
        else_blk: BlockId,
    },
    /// Multi-way switch on an integer value.
    Switch {
        /// Scrutinee type.
        ty: Type,
        /// Scrutinee.
        val: Value,
        /// Default target.
        default: BlockId,
        /// `(case constant, target)` arms.
        arms: Vec<(u64, BlockId)>,
    },
    /// Return, optionally with a value.
    Ret(Option<Value>),
    /// Unreachable (e.g. after a guaranteed panic).
    Unreachable,
}

impl Terminator {
    /// Successor blocks in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Br(b) => vec![*b],
            Terminator::CondBr {
                then_blk, else_blk, ..
            } => vec![*then_blk, *else_blk],
            Terminator::Switch { default, arms, .. } => {
                let mut v = vec![*default];
                v.extend(arms.iter().map(|(_, b)| *b));
                v
            }
            Terminator::Ret(_) | Terminator::Unreachable => vec![],
        }
    }

    /// Visit every value operand of the terminator.
    pub fn for_each_operand(&self, mut f: impl FnMut(&Value)) {
        match self {
            Terminator::CondBr { cond, .. } => f(cond),
            Terminator::Switch { val, .. } => f(val),
            Terminator::Ret(Some(v)) => f(v),
            _ => {}
        }
    }
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for IcmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

impl fmt::Display for CastOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn result_types() {
        assert_eq!(
            Inst::Alloca {
                ty: Type::I64,
                count: 1
            }
            .result_type(),
            Type::Ptr
        );
        assert_eq!(
            Inst::Load {
                ty: Type::I32,
                ptr: Value::NullPtr
            }
            .result_type(),
            Type::I32
        );
        assert_eq!(
            Inst::Store {
                ty: Type::I32,
                val: Value::i32(0),
                ptr: Value::NullPtr
            }
            .result_type(),
            Type::Void
        );
        assert_eq!(
            Inst::Icmp {
                pred: IcmpPred::Eq,
                ty: Type::I64,
                lhs: Value::i64(0),
                rhs: Value::i64(0)
            }
            .result_type(),
            Type::I1
        );
    }

    #[test]
    fn memory_access_classification() {
        assert!(Inst::Load {
            ty: Type::I8,
            ptr: Value::NullPtr
        }
        .is_memory_access());
        assert!(Inst::Store {
            ty: Type::I8,
            val: Value::i64(0),
            ptr: Value::NullPtr
        }
        .is_memory_access());
        assert!(!Inst::Alloca {
            ty: Type::I8,
            count: 1
        }
        .is_memory_access());
        // Guard calls themselves are calls, not memory accesses.
        assert!(!Inst::Call {
            callee: "carat_guard".into(),
            ret_ty: Type::Void,
            args: vec![]
        }
        .is_memory_access());
    }

    #[test]
    fn mnemonic_roundtrip() {
        for op in [
            BinOp::Add,
            BinOp::Sub,
            BinOp::Mul,
            BinOp::UDiv,
            BinOp::SDiv,
            BinOp::URem,
            BinOp::SRem,
            BinOp::And,
            BinOp::Or,
            BinOp::Xor,
            BinOp::Shl,
            BinOp::LShr,
            BinOp::AShr,
        ] {
            assert_eq!(BinOp::from_mnemonic(op.mnemonic()), Some(op));
        }
        for p in [
            IcmpPred::Eq,
            IcmpPred::Ne,
            IcmpPred::Ult,
            IcmpPred::Ule,
            IcmpPred::Ugt,
            IcmpPred::Uge,
            IcmpPred::Slt,
            IcmpPred::Sle,
            IcmpPred::Sgt,
            IcmpPred::Sge,
        ] {
            assert_eq!(IcmpPred::from_mnemonic(p.mnemonic()), Some(p));
        }
        for c in [
            CastOp::Zext,
            CastOp::Sext,
            CastOp::Trunc,
            CastOp::PtrToInt,
            CastOp::IntToPtr,
        ] {
            assert_eq!(CastOp::from_mnemonic(c.mnemonic()), Some(c));
        }
        assert_eq!(BinOp::from_mnemonic("frobnicate"), None);
    }

    #[test]
    fn successors() {
        let b0 = BlockId(0);
        let b1 = BlockId(1);
        let b2 = BlockId(2);
        assert_eq!(Terminator::Br(b0).successors(), vec![b0]);
        assert_eq!(
            Terminator::CondBr {
                cond: Value::i1(true),
                then_blk: b1,
                else_blk: b2
            }
            .successors(),
            vec![b1, b2]
        );
        assert_eq!(Terminator::Ret(None).successors(), vec![]);
        let sw = Terminator::Switch {
            ty: Type::I32,
            val: Value::i32(1),
            default: b0,
            arms: vec![(1, b1), (2, b2)],
        };
        assert_eq!(sw.successors(), vec![b0, b1, b2]);
    }

    #[test]
    fn operand_visiting() {
        let inst = Inst::Select {
            ty: Type::I64,
            cond: Value::i1(true),
            then_val: Value::Arg(0),
            else_val: Value::Inst(InstId(3)),
        };
        let mut n = 0;
        inst.for_each_operand(|_| n += 1);
        assert_eq!(n, 3);
    }
}
