//! KIR modules: functions, globals, and external declarations.
//!
//! A module is the unit the CARAT KOP compiler transforms, the signer signs,
//! and the kernel loads. External declarations are the module's imports —
//! after guard injection every module imports `carat_guard`, which the
//! loader links against the policy module's private export (paper §3.2).

use crate::function::Function;
use crate::types::Type;

/// Identifier of a global within a module.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct GlobalId(pub u32);

/// Initializer for a global variable.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GlobalInit {
    /// All-zero bytes.
    Zero,
    /// An integer value (for integer-typed globals).
    Int(u64),
    /// Raw bytes (must match the type's size).
    Bytes(Vec<u8>),
}

/// A module-level global variable.
#[derive(Clone, Debug)]
pub struct Global {
    /// Symbol name (without the `@`).
    pub name: String,
    /// Value type.
    pub ty: Type,
    /// Initializer.
    pub init: GlobalInit,
}

/// An external function declaration (an import).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ExternDecl {
    /// Symbol name.
    pub name: String,
    /// Parameter types.
    pub params: Vec<Type>,
    /// Return type.
    pub ret_ty: Type,
}

/// A KIR module.
#[derive(Clone, Debug, Default)]
pub struct Module {
    /// Module name (e.g. `"e1000e"`).
    pub name: String,
    /// External declarations (imports), in declaration order.
    pub externs: Vec<ExternDecl>,
    /// Global variables, in declaration order.
    pub globals: Vec<Global>,
    /// Function definitions, in declaration order.
    pub functions: Vec<Function>,
}

impl Module {
    /// Create an empty module.
    pub fn new(name: impl Into<String>) -> Module {
        Module {
            name: name.into(),
            ..Module::default()
        }
    }

    /// Seal the layout caches of every function (see
    /// [`Function::seal_layout`]). Cheap and idempotent; run after any
    /// pass pipeline that restructured blocks.
    pub fn seal_layout(&mut self) {
        for f in &mut self.functions {
            f.seal_layout();
        }
    }

    /// Find a function definition by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Find a function definition by name, mutably.
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Find an external declaration by name.
    pub fn extern_decl(&self, name: &str) -> Option<&ExternDecl> {
        self.externs.iter().find(|e| e.name == name)
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Add an external declaration if not already present. Returns whether
    /// it was added (false = an identical declaration already existed).
    ///
    /// Panics if a *conflicting* declaration (same name, different
    /// signature) exists — passes must not silently re-type imports.
    pub fn declare_extern(&mut self, decl: ExternDecl) -> bool {
        if let Some(existing) = self.extern_decl(&decl.name) {
            assert_eq!(
                existing, &decl,
                "conflicting extern declaration for {}",
                decl.name
            );
            return false;
        }
        self.externs.push(decl);
        true
    }

    /// All symbol names this module defines (functions + globals).
    pub fn defined_symbols(&self) -> Vec<&str> {
        self.functions
            .iter()
            .map(|f| f.name.as_str())
            .chain(self.globals.iter().map(|g| g.name.as_str()))
            .collect()
    }

    /// All symbol names this module imports.
    pub fn imported_symbols(&self) -> Vec<&str> {
        self.externs.iter().map(|e| e.name.as_str()).collect()
    }

    /// The signature (params, ret) of a callee visible from this module —
    /// either a definition or an extern.
    pub fn callee_signature(&self, name: &str) -> Option<(Vec<Type>, Type)> {
        if let Some(f) = self.function(name) {
            return Some((f.params.clone(), f.ret_ty.clone()));
        }
        self.extern_decl(name)
            .map(|e| (e.params.clone(), e.ret_ty.clone()))
    }

    /// Total loads + stores across all functions.
    pub fn memory_access_count(&self) -> usize {
        self.functions.iter().map(|f| f.memory_access_count()).sum()
    }

    /// Total calls to `callee` across all functions.
    pub fn call_count(&self, callee: &str) -> usize {
        self.functions.iter().map(|f| f.call_count(callee)).sum()
    }

    /// Total lines of textual IR — a rough "lines of code" metric used when
    /// reporting engineering-effort numbers like the paper's "~19,000 lines".
    pub fn text_lines(&self) -> usize {
        crate::printer::print_module(self).lines().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inst::{Inst, Terminator, Value};

    fn module_with_load() -> Module {
        let mut m = Module::new("test");
        m.globals.push(Global {
            name: "counter".into(),
            ty: Type::I64,
            init: GlobalInit::Int(0),
        });
        let mut f = Function::new("touch", vec![Type::Ptr], Type::I64);
        let entry = f.add_block("entry");
        let ld = f.alloc_named_inst(
            Inst::Load {
                ty: Type::I64,
                ptr: Value::Arg(0),
            },
            "v",
        );
        f.push_inst(entry, ld);
        f.block_mut(entry).term = Some(Terminator::Ret(Some(Value::Inst(ld))));
        m.functions.push(f);
        m
    }

    #[test]
    fn lookups() {
        let m = module_with_load();
        assert!(m.function("touch").is_some());
        assert!(m.function("missing").is_none());
        assert!(m.global("counter").is_some());
        assert_eq!(m.memory_access_count(), 1);
    }

    #[test]
    fn symbols() {
        let mut m = module_with_load();
        m.declare_extern(ExternDecl {
            name: "carat_guard".into(),
            params: vec![Type::Ptr, Type::I64, Type::I32],
            ret_ty: Type::Void,
        });
        assert_eq!(m.defined_symbols(), vec!["touch", "counter"]);
        assert_eq!(m.imported_symbols(), vec!["carat_guard"]);
    }

    #[test]
    fn declare_extern_idempotent() {
        let mut m = Module::new("x");
        let d = ExternDecl {
            name: "f".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
        };
        assert!(m.declare_extern(d.clone()));
        assert!(!m.declare_extern(d));
        assert_eq!(m.externs.len(), 1);
    }

    #[test]
    #[should_panic(expected = "conflicting extern")]
    fn declare_extern_conflict_panics() {
        let mut m = Module::new("x");
        m.declare_extern(ExternDecl {
            name: "f".into(),
            params: vec![Type::I64],
            ret_ty: Type::Void,
        });
        m.declare_extern(ExternDecl {
            name: "f".into(),
            params: vec![Type::I32],
            ret_ty: Type::Void,
        });
    }

    #[test]
    fn callee_signature_prefers_definition() {
        let m = module_with_load();
        let (params, ret) = m.callee_signature("touch").unwrap();
        assert_eq!(params, vec![Type::Ptr]);
        assert_eq!(ret, Type::I64);
        assert!(m.callee_signature("nope").is_none());
    }
}
