//! Access intent flags and region protections.
//!
//! The paper's guard signature is
//! `void carat_guard(void* addr, size_t size, int access_flags)` where
//! `access_flags` is "a bitmap of flags that indicate the intent of the
//! access (read/write)". [`AccessFlags`] is that bitmap; [`Protection`] is
//! the per-region permission set it is checked against.

use core::fmt;
use core::ops::{BitAnd, BitOr, BitOrAssign};

/// Bitmap describing the intent of a single memory access.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AccessFlags(u32);

impl AccessFlags {
    /// No intent bits set (invalid for a real guard call).
    pub const NONE: AccessFlags = AccessFlags(0);
    /// The access reads memory.
    pub const READ: AccessFlags = AccessFlags(1 << 0);
    /// The access writes memory.
    pub const WRITE: AccessFlags = AccessFlags(1 << 1);
    /// The access fetches instructions. CARAT KOP itself does not guard
    /// instruction fetches (the paper relies on paging to keep module code
    /// read-only) but the bit exists so policies can express it.
    pub const EXEC: AccessFlags = AccessFlags(1 << 2);
    /// A read-modify-write access (e.g. an atomic op): both bits.
    pub const RW: AccessFlags = AccessFlags((1 << 0) | (1 << 1));

    /// Construct from the raw `int access_flags` ABI value.
    #[inline]
    pub const fn from_raw(v: u32) -> Self {
        AccessFlags(v)
    }

    /// Raw ABI value.
    #[inline]
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// Whether every bit in `other` is also set in `self`.
    #[inline]
    pub const fn contains(self, other: AccessFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether any bit overlaps with `other`.
    #[inline]
    pub const fn intersects(self, other: AccessFlags) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether no bits are set.
    #[inline]
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the READ bit is set.
    #[inline]
    pub const fn is_read(self) -> bool {
        self.0 & Self::READ.0 != 0
    }

    /// Whether the WRITE bit is set.
    #[inline]
    pub const fn is_write(self) -> bool {
        self.0 & Self::WRITE.0 != 0
    }

    /// Whether the EXEC bit is set.
    #[inline]
    pub const fn is_exec(self) -> bool {
        self.0 & Self::EXEC.0 != 0
    }
}

impl BitOr for AccessFlags {
    type Output = AccessFlags;
    #[inline]
    fn bitor(self, rhs: Self) -> Self {
        AccessFlags(self.0 | rhs.0)
    }
}

impl BitOrAssign for AccessFlags {
    #[inline]
    fn bitor_assign(&mut self, rhs: Self) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for AccessFlags {
    type Output = AccessFlags;
    #[inline]
    fn bitand(self, rhs: Self) -> Self {
        AccessFlags(self.0 & rhs.0)
    }
}

impl fmt::Debug for AccessFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AccessFlags({self})")
    }
}

impl fmt::Display for AccessFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = if self.is_read() { "r" } else { "-" };
        let w = if self.is_write() { "w" } else { "-" };
        let x = if self.is_exec() { "x" } else { "-" };
        write!(f, "{r}{w}{x}")
    }
}

/// Permission set granted by a policy region: which access intents the
/// region allows.
///
/// A guard for access `a` against a region with protection `p` succeeds iff
/// `p.allows(a)` — i.e. every requested intent bit is granted.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Protection(AccessFlags);

impl Protection {
    /// Grants nothing: the region exists purely to *deny*.
    pub const NONE: Protection = Protection(AccessFlags::NONE);
    /// Read-only region.
    pub const READ_ONLY: Protection = Protection(AccessFlags::READ);
    /// Write-only region (rare; e.g. a doorbell-only MMIO page).
    pub const WRITE_ONLY: Protection = Protection(AccessFlags::WRITE);
    /// Read-write region.
    pub const READ_WRITE: Protection = Protection(AccessFlags::RW);
    /// Read-execute region (code).
    pub const READ_EXEC: Protection =
        Protection(AccessFlags(AccessFlags::READ.0 | AccessFlags::EXEC.0));
    /// All intents granted.
    pub const ALL: Protection = Protection(AccessFlags(
        AccessFlags::READ.0 | AccessFlags::WRITE.0 | AccessFlags::EXEC.0,
    ));

    /// Construct from granted flags.
    #[inline]
    pub const fn new(granted: AccessFlags) -> Self {
        Protection(granted)
    }

    /// The granted flags.
    #[inline]
    pub const fn granted(self) -> AccessFlags {
        self.0
    }

    /// Whether an access with intent `flags` is permitted.
    #[inline]
    pub const fn allows(self, flags: AccessFlags) -> bool {
        self.0.contains(flags)
    }
}

impl fmt::Debug for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Protection({})", self.0)
    }
}

impl fmt::Display for Protection {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_bits_distinct() {
        assert_eq!(AccessFlags::READ.raw() & AccessFlags::WRITE.raw(), 0);
        assert_eq!(AccessFlags::READ.raw() & AccessFlags::EXEC.raw(), 0);
        assert_eq!(AccessFlags::WRITE.raw() & AccessFlags::EXEC.raw(), 0);
    }

    #[test]
    fn rw_is_union() {
        assert_eq!(AccessFlags::RW, AccessFlags::READ | AccessFlags::WRITE);
        assert!(AccessFlags::RW.is_read());
        assert!(AccessFlags::RW.is_write());
        assert!(!AccessFlags::RW.is_exec());
    }

    #[test]
    fn contains_semantics() {
        assert!(AccessFlags::RW.contains(AccessFlags::READ));
        assert!(!AccessFlags::READ.contains(AccessFlags::RW));
        assert!(AccessFlags::READ.contains(AccessFlags::NONE));
    }

    #[test]
    fn protection_allows() {
        assert!(Protection::READ_ONLY.allows(AccessFlags::READ));
        assert!(!Protection::READ_ONLY.allows(AccessFlags::WRITE));
        assert!(!Protection::READ_ONLY.allows(AccessFlags::RW));
        assert!(Protection::READ_WRITE.allows(AccessFlags::RW));
        assert!(Protection::ALL.allows(AccessFlags::EXEC));
        assert!(!Protection::NONE.allows(AccessFlags::READ));
        // Vacuously, every protection allows the empty intent.
        assert!(Protection::NONE.allows(AccessFlags::NONE));
    }

    #[test]
    fn display_rwx() {
        assert_eq!(AccessFlags::READ.to_string(), "r--");
        assert_eq!(AccessFlags::RW.to_string(), "rw-");
        assert_eq!(Protection::ALL.to_string(), "rwx");
        assert_eq!(AccessFlags::NONE.to_string(), "---");
    }

    #[test]
    fn raw_roundtrip() {
        for raw in 0..8u32 {
            assert_eq!(AccessFlags::from_raw(raw).raw(), raw);
        }
    }
}
