//! Address and size newtypes.
//!
//! The simulated kernel uses 64-bit virtual addresses laid out like x86-64
//! Linux (see [`crate::layout`]). Wrapping arithmetic is used everywhere a
//! real kernel would silently wrap, but range-checked helpers are provided
//! so higher layers can reject overflowing accesses instead of wrapping.

use core::fmt;
use core::ops::{Add, AddAssign, Sub};

/// A 64-bit virtual address in the simulated kernel's address space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VAddr(pub u64);

/// A 64-bit physical address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PAddr(pub u64);

/// A byte count. Guards receive the access size alongside the address.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Size(pub u64);

impl VAddr {
    /// The null address.
    pub const NULL: VAddr = VAddr(0);

    /// Construct from a raw 64-bit value.
    #[inline]
    pub const fn new(v: u64) -> Self {
        VAddr(v)
    }

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Whether this address is null.
    #[inline]
    pub const fn is_null(self) -> bool {
        self.0 == 0
    }

    /// Offset by `off` bytes, wrapping on overflow (kernel pointer math).
    #[inline]
    pub const fn wrapping_add(self, off: u64) -> VAddr {
        VAddr(self.0.wrapping_add(off))
    }

    /// Offset by `off` bytes; `None` on overflow.
    #[inline]
    pub fn checked_add(self, off: u64) -> Option<VAddr> {
        self.0.checked_add(off).map(VAddr)
    }

    /// The distance in bytes from `base` to `self`; `None` if `self < base`.
    #[inline]
    pub fn offset_from(self, base: VAddr) -> Option<u64> {
        self.0.checked_sub(base.0)
    }

    /// Align down to `align` (must be a power of two).
    #[inline]
    pub fn align_down(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0 & !(align - 1))
    }

    /// Align up to `align` (must be a power of two), wrapping at the top of
    /// the address space.
    #[inline]
    pub fn align_up(self, align: u64) -> VAddr {
        debug_assert!(align.is_power_of_two());
        VAddr(self.0.wrapping_add(align - 1) & !(align - 1))
    }

    /// Whether the address is aligned to `align` (power of two).
    #[inline]
    pub fn is_aligned(self, align: u64) -> bool {
        debug_assert!(align.is_power_of_two());
        self.0 & (align - 1) == 0
    }

    /// Whether this address lives in the canonical "high half" (kernel
    /// addresses on x86-64 Linux).
    #[inline]
    pub const fn is_kernel_half(self) -> bool {
        self.0 >= crate::layout::KERNEL_HALF_BASE
    }

    /// Whether this address lives in the "low half" (user addresses).
    #[inline]
    pub const fn is_user_half(self) -> bool {
        !self.is_kernel_half()
    }
}

impl PAddr {
    /// Construct from a raw 64-bit value.
    #[inline]
    pub const fn new(v: u64) -> Self {
        PAddr(v)
    }

    /// Raw value.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Translate through the kernel direct map: `PAGE_OFFSET + paddr`.
    ///
    /// On Linux the entire physical address space is remapped at a known
    /// offset in the kernel half; the paper's two-region example policy
    /// allows exactly that direct map while denying the user half.
    #[inline]
    pub const fn to_direct_map(self) -> VAddr {
        VAddr(crate::layout::DIRECT_MAP_BASE + self.0)
    }
}

impl Size {
    /// Zero bytes.
    pub const ZERO: Size = Size(0);

    /// Construct from a raw byte count.
    #[inline]
    pub const fn new(v: u64) -> Self {
        Size(v)
    }

    /// Raw byte count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Byte count as `usize` (panics if it does not fit — simulation is
    /// always 64-bit so this is infallible in practice).
    #[inline]
    pub fn as_usize(self) -> usize {
        usize::try_from(self.0).expect("size fits in usize on 64-bit hosts")
    }
}

impl Add<u64> for VAddr {
    type Output = VAddr;
    #[inline]
    fn add(self, rhs: u64) -> VAddr {
        VAddr(self.0.wrapping_add(rhs))
    }
}

impl AddAssign<u64> for VAddr {
    #[inline]
    fn add_assign(&mut self, rhs: u64) {
        self.0 = self.0.wrapping_add(rhs);
    }
}

impl Sub<VAddr> for VAddr {
    type Output = u64;
    #[inline]
    fn sub(self, rhs: VAddr) -> u64 {
        self.0.wrapping_sub(rhs.0)
    }
}

impl Add for Size {
    type Output = Size;
    #[inline]
    fn add(self, rhs: Size) -> Size {
        Size(self.0 + rhs.0)
    }
}

impl From<u64> for VAddr {
    #[inline]
    fn from(v: u64) -> Self {
        VAddr(v)
    }
}

impl From<u64> for Size {
    #[inline]
    fn from(v: u64) -> Self {
        Size(v)
    }
}

impl From<usize> for Size {
    #[inline]
    fn from(v: usize) -> Self {
        Size(v as u64)
    }
}

impl fmt::Debug for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "VAddr({:#018x})", self.0)
    }
}

impl fmt::Display for VAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#018x}", self.0)
    }
}

impl fmt::Debug for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PAddr({:#x})", self.0)
    }
}

impl fmt::Display for PAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::Display for Size {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} B", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_down_up() {
        let a = VAddr(0x1234);
        assert_eq!(a.align_down(0x1000), VAddr(0x1000));
        assert_eq!(a.align_up(0x1000), VAddr(0x2000));
        assert_eq!(VAddr(0x2000).align_up(0x1000), VAddr(0x2000));
        assert_eq!(VAddr(0x2000).align_down(0x1000), VAddr(0x2000));
    }

    #[test]
    fn aligned_checks() {
        assert!(VAddr(0x1000).is_aligned(0x1000));
        assert!(!VAddr(0x1001).is_aligned(0x1000));
        assert!(VAddr(0).is_aligned(8));
    }

    #[test]
    fn halves() {
        assert!(VAddr(0xffff_8000_0000_0000).is_kernel_half());
        assert!(VAddr(0x0000_7fff_ffff_ffff).is_user_half());
        assert!(VAddr::NULL.is_user_half());
    }

    #[test]
    fn checked_add_overflow() {
        assert_eq!(VAddr(u64::MAX).checked_add(1), None);
        assert_eq!(VAddr(10).checked_add(5), Some(VAddr(15)));
    }

    #[test]
    fn offset_from() {
        assert_eq!(VAddr(100).offset_from(VAddr(40)), Some(60));
        assert_eq!(VAddr(40).offset_from(VAddr(100)), None);
    }

    #[test]
    fn direct_map_translation() {
        let p = PAddr::new(0x1000);
        let v = p.to_direct_map();
        assert!(v.is_kernel_half());
        assert_eq!(v.raw() - crate::layout::DIRECT_MAP_BASE, 0x1000);
    }

    #[test]
    fn pointer_subtraction_wraps() {
        assert_eq!(VAddr(0) - VAddr(1), u64::MAX);
        assert_eq!(VAddr(10) - VAddr(4), 6);
    }

    #[test]
    fn size_conversions() {
        let s: Size = 128usize.into();
        assert_eq!(s.raw(), 128);
        assert_eq!(s.as_usize(), 128);
        assert_eq!((s + Size::new(2)).raw(), 130);
    }
}
