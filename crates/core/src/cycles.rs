//! Cycle accounting.
//!
//! The paper measures packet-launch latency "in cycles using the cycle
//! counter" (§4.2, Figure 7). The simulation keeps a deterministic virtual
//! TSC; [`Cycles`] is its unit.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Mul, Sub};

/// A count of CPU cycles on the simulated machine.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Debug)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Construct from a raw count.
    #[inline]
    pub const fn new(v: u64) -> Self {
        Cycles(v)
    }

    /// Raw count.
    #[inline]
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Convert to seconds at a given clock frequency.
    #[inline]
    pub fn as_secs_at(self, hz: f64) -> f64 {
        self.0 as f64 / hz
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    #[inline]
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    #[inline]
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    #[inline]
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    #[inline]
    fn mul(self, rhs: u64) -> Cycles {
        Cycles(self.0 * rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        Cycles(iter.map(|c| c.0).sum())
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cycles", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles(100);
        let b = Cycles(40);
        assert_eq!(a + b, Cycles(140));
        assert_eq!(a - b, Cycles(60));
        assert_eq!(b * 3, Cycles(120));
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
    }

    #[test]
    fn sum() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
    }

    #[test]
    fn secs_at_frequency() {
        let c = Cycles(2_800_000_000);
        let s = c.as_secs_at(2.8e9);
        assert!((s - 1.0).abs() < 1e-9);
    }
}
