//! Memory regions and their algebra.
//!
//! A policy is a set of [`Region`]s — "firewall rules" in the paper's
//! terminology. Each entry stores a lower bound, a length, and protection
//! flags (§3.1). The algebra here (containment, overlap, splitting) is the
//! foundation shared by every policy data structure in `kop-policy`.

use core::fmt;

use crate::access::{AccessFlags, Protection};
use crate::addr::{Size, VAddr};

/// A contiguous address range with a protection.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct Region {
    /// Lower bound (inclusive).
    pub base: VAddr,
    /// Length in bytes. A zero-length region matches nothing.
    pub len: Size,
    /// Permissions granted inside the region.
    pub prot: Protection,
}

impl Region {
    /// Construct a region. Returns `None` if `base + len` overflows the
    /// address space (the policy module rejects such rules at insert time).
    pub fn new(base: VAddr, len: Size, prot: Protection) -> Option<Region> {
        // `base + len` may equal 2^64 exactly (a region ending at the very
        // top); we allow that by checking `len - 1`.
        if len.raw() == 0 {
            return Some(Region { base, len, prot });
        }
        base.checked_add(len.raw() - 1)?;
        Some(Region { base, len, prot })
    }

    /// Construct from inclusive-exclusive bounds `[start, end)`.
    pub fn from_range(start: VAddr, end: VAddr, prot: Protection) -> Option<Region> {
        let len = end.offset_from(start)?;
        Region::new(start, Size::new(len), prot)
    }

    /// Whether the region is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len.raw() == 0
    }

    /// The last address contained in the region. `None` for empty regions.
    #[inline]
    pub fn last(&self) -> Option<VAddr> {
        if self.is_empty() {
            None
        } else {
            Some(self.base.wrapping_add(self.len.raw() - 1))
        }
    }

    /// One past the last contained address, if representable.
    #[inline]
    pub fn end(&self) -> Option<VAddr> {
        self.base.checked_add(self.len.raw())
    }

    /// Whether `addr` lies inside the region.
    #[inline]
    pub fn contains_addr(&self, addr: VAddr) -> bool {
        match addr.offset_from(self.base) {
            Some(off) => off < self.len.raw(),
            None => false,
        }
    }

    /// Whether the whole access `[addr, addr+size)` lies inside the region.
    ///
    /// This is the check the guard performs: an access is covered by a rule
    /// only if *every* byte it touches is covered — an access straddling the
    /// region boundary is not covered.
    #[inline]
    pub fn covers(&self, addr: VAddr, size: Size) -> bool {
        if size.raw() == 0 {
            // Zero-sized accesses are vacuously covered if the address is in
            // range; the guard layer rejects them before lookup anyway.
            return self.contains_addr(addr);
        }
        let Some(off) = addr.offset_from(self.base) else {
            return false;
        };
        // off + size <= len, avoiding overflow.
        match off.checked_add(size.raw()) {
            Some(end) => end <= self.len.raw(),
            None => false,
        }
    }

    /// Whether the access is covered *and* the region grants the intent.
    #[inline]
    pub fn permits(&self, addr: VAddr, size: Size, flags: AccessFlags) -> bool {
        self.covers(addr, size) && self.prot.allows(flags)
    }

    /// Whether two regions overlap in at least one byte.
    pub fn overlaps(&self, other: &Region) -> bool {
        if self.is_empty() || other.is_empty() {
            return false;
        }
        let a_last = self.last().expect("non-empty");
        let b_last = other.last().expect("non-empty");
        self.base <= b_last && other.base <= a_last
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_region(&self, other: &Region) -> bool {
        if other.is_empty() {
            return true;
        }
        if self.is_empty() {
            return false;
        }
        other.base >= self.base
            && other.last().expect("non-empty") <= self.last().expect("non-empty")
    }

    /// Intersection of two regions (protection taken from `self`).
    pub fn intersection(&self, other: &Region) -> Option<Region> {
        if !self.overlaps(other) {
            return None;
        }
        let start = self.base.max(other.base);
        let last = self.last()?.min(other.last()?);
        let len = (last - start) + 1;
        Some(Region {
            base: start,
            len: Size::new(len),
            prot: self.prot,
        })
    }

    /// Subtract `hole` from `self`, yielding up to two remaining pieces
    /// (protection preserved). Used when a policy removes a sub-range of an
    /// existing rule.
    pub fn subtract(&self, hole: &Region) -> Vec<Region> {
        let Some(cut) = hole.intersection(self) else {
            return vec![*self];
        };
        let mut out = Vec::with_capacity(2);
        if cut.base > self.base {
            let left_len = cut.base - self.base;
            out.push(Region {
                base: self.base,
                len: Size::new(left_len),
                prot: self.prot,
            });
        }
        let cut_last = cut.last().expect("non-empty cut");
        let self_last = self.last().expect("non-empty self");
        if cut_last < self_last {
            let right_base = cut_last.wrapping_add(1);
            let right_len = (self_last - right_base) + 1;
            out.push(Region {
                base: right_base,
                len: Size::new(right_len),
                prot: self.prot,
            });
        }
        out
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Region[{:#x}..{:#x} {} ({} B)]",
            self.base.raw(),
            self.base.raw().wrapping_add(self.len.raw()),
            self.prot,
            self.len.raw()
        )
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:#018x} +{:#x} {}",
            self.base.raw(),
            self.len.raw(),
            self.prot
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(base: u64, len: u64) -> Region {
        Region::new(VAddr(base), Size(len), Protection::READ_WRITE).unwrap()
    }

    #[test]
    fn new_rejects_overflow() {
        assert!(Region::new(VAddr(u64::MAX), Size(2), Protection::ALL).is_none());
        // A region ending exactly at the top of the address space is fine.
        assert!(Region::new(VAddr(u64::MAX), Size(1), Protection::ALL).is_some());
        assert!(Region::new(VAddr(u64::MAX - 9), Size(10), Protection::ALL).is_some());
    }

    #[test]
    fn from_range() {
        let reg = Region::from_range(VAddr(0x1000), VAddr(0x2000), Protection::READ_ONLY).unwrap();
        assert_eq!(reg.base, VAddr(0x1000));
        assert_eq!(reg.len, Size(0x1000));
        assert!(Region::from_range(VAddr(0x2000), VAddr(0x1000), Protection::READ_ONLY).is_none());
    }

    #[test]
    fn contains_and_covers() {
        let reg = r(100, 50);
        assert!(reg.contains_addr(VAddr(100)));
        assert!(reg.contains_addr(VAddr(149)));
        assert!(!reg.contains_addr(VAddr(150)));
        assert!(!reg.contains_addr(VAddr(99)));

        assert!(reg.covers(VAddr(100), Size(50)));
        assert!(reg.covers(VAddr(140), Size(10)));
        assert!(!reg.covers(VAddr(140), Size(11))); // straddles the end
        assert!(!reg.covers(VAddr(99), Size(2))); // straddles the start
    }

    #[test]
    fn covers_top_of_address_space() {
        let reg = Region::new(VAddr(u64::MAX - 7), Size(8), Protection::ALL).unwrap();
        assert!(reg.covers(VAddr(u64::MAX - 7), Size(8)));
        assert!(reg.covers(VAddr(u64::MAX), Size(1)));
        assert!(!reg.covers(VAddr(u64::MAX), Size(2))); // would wrap
    }

    #[test]
    fn permits_checks_protection() {
        let ro = Region::new(VAddr(0x1000), Size(0x100), Protection::READ_ONLY).unwrap();
        assert!(ro.permits(VAddr(0x1000), Size(8), AccessFlags::READ));
        assert!(!ro.permits(VAddr(0x1000), Size(8), AccessFlags::WRITE));
        assert!(!ro.permits(VAddr(0x1000), Size(8), AccessFlags::RW));
    }

    #[test]
    fn overlap_cases() {
        assert!(r(0, 10).overlaps(&r(9, 10)));
        assert!(!r(0, 10).overlaps(&r(10, 10)));
        assert!(r(5, 1).overlaps(&r(0, 10)));
        assert!(!r(0, 0).overlaps(&r(0, 10)));
        assert!(!r(0, 10).overlaps(&r(5, 0)));
    }

    #[test]
    fn containment() {
        assert!(r(0, 100).contains_region(&r(10, 20)));
        assert!(r(0, 100).contains_region(&r(0, 100)));
        assert!(!r(0, 100).contains_region(&r(90, 20)));
        assert!(r(0, 100).contains_region(&r(50, 0))); // empty contained
    }

    #[test]
    fn intersection() {
        let i = r(0, 100).intersection(&r(50, 100)).unwrap();
        assert_eq!(i.base, VAddr(50));
        assert_eq!(i.len, Size(50));
        assert!(r(0, 10).intersection(&r(20, 10)).is_none());
    }

    #[test]
    fn subtract_middle_splits() {
        let pieces = r(0, 100).subtract(&r(40, 20));
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0].base, VAddr(0));
        assert_eq!(pieces[0].len, Size(40));
        assert_eq!(pieces[1].base, VAddr(60));
        assert_eq!(pieces[1].len, Size(40));
    }

    #[test]
    fn subtract_edges() {
        // Hole at the start.
        let pieces = r(0, 100).subtract(&r(0, 30));
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].base, VAddr(30));
        // Hole at the end.
        let pieces = r(0, 100).subtract(&r(70, 30));
        assert_eq!(pieces.len(), 1);
        assert_eq!(pieces[0].len, Size(70));
        // Hole covering everything.
        assert!(r(0, 100).subtract(&r(0, 100)).is_empty());
        // Disjoint hole: unchanged.
        let pieces = r(0, 100).subtract(&r(200, 10));
        assert_eq!(pieces, vec![r(0, 100)]);
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use proptest::prelude::*;

    fn arb_region() -> impl Strategy<Value = Region> {
        (0u64..10_000, 0u64..1_000)
            .prop_map(|(b, l)| Region::new(VAddr(b), Size(l), Protection::READ_WRITE).unwrap())
    }

    proptest! {
        #[test]
        fn overlap_is_symmetric(a in arb_region(), b in arb_region()) {
            prop_assert_eq!(a.overlaps(&b), b.overlaps(&a));
        }

        #[test]
        fn intersection_contained_in_both(a in arb_region(), b in arb_region()) {
            if let Some(i) = a.intersection(&b) {
                prop_assert!(a.contains_region(&i));
                prop_assert!(b.contains_region(&i));
                prop_assert!(!i.is_empty());
            }
        }

        #[test]
        fn subtract_pieces_disjoint_from_hole(a in arb_region(), hole in arb_region()) {
            for piece in a.subtract(&hole) {
                prop_assert!(!piece.overlaps(&hole));
                prop_assert!(a.contains_region(&piece));
            }
        }

        #[test]
        fn subtract_preserves_non_hole_bytes(a in arb_region(), hole in arb_region()) {
            // Every address in `a` but not in `hole` must be in exactly one piece.
            let pieces = a.subtract(&hole);
            if a.len.raw() > 0 {
                for addr in (a.base.raw()..a.base.raw() + a.len.raw()).step_by(7) {
                    let va = VAddr(addr);
                    let in_hole = hole.contains_addr(va);
                    let n = pieces.iter().filter(|p| p.contains_addr(va)).count();
                    prop_assert_eq!(n, usize::from(!in_hole));
                }
            }
        }

        #[test]
        fn covers_implies_contains_every_byte(a in arb_region(), off in 0u64..1200, sz in 1u64..64) {
            let addr = VAddr(a.base.raw().wrapping_add(off));
            if a.covers(addr, Size(sz)) {
                for i in 0..sz {
                    prop_assert!(a.contains_addr(addr.wrapping_add(i)));
                }
            }
        }
    }
}
