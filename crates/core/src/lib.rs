//! # kop-core
//!
//! Shared primitives for the CARAT KOP reproduction: virtual/physical
//! addresses, access flags, memory regions and their algebra, cycle
//! accounting types, and the error/violation vocabulary used across every
//! other crate in the workspace.
//!
//! These types intentionally mirror the vocabulary of the paper: a *guard*
//! receives `(addr, size, access_flags)` and the policy module compares that
//! triple against a table of [`Region`]s.

#![warn(missing_docs)]

pub mod access;
pub mod addr;
pub mod cycles;
pub mod error;
pub mod layout;
pub mod region;

pub use access::{AccessFlags, Protection};
pub use addr::{PAddr, Size, VAddr};
pub use cycles::Cycles;
pub use error::{KernelError, KernelResult, Violation};
pub use region::Region;
