//! Error and violation vocabulary.
//!
//! A [`Violation`] is what `carat_guard` produces when an access is not
//! permitted by the policy: the faulting triple plus why it was rejected.
//! [`KernelError`] covers everything else the simulated kernel can report
//! (load failures, bad ioctls, faults).

use core::fmt;

use crate::access::AccessFlags;
use crate::addr::{Size, VAddr};

/// Why a guarded access was rejected.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ViolationKind {
    /// No policy region covered the access and the default action is deny.
    NoMatchingRegion,
    /// A region covered the access but did not grant the requested intent.
    InsufficientPermissions,
    /// The access had no intent bits set, or a zero size — malformed guard
    /// call (should be impossible for compiler-injected guards).
    MalformedAccess,
    /// The access wrapped around the top of the address space.
    AddressOverflow,
    /// A privileged intrinsic was invoked that the intrinsic policy does
    /// not grant (the §5 extension; the "address" carries the intrinsic
    /// id).
    ForbiddenIntrinsic,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::NoMatchingRegion => "no matching policy region",
            ViolationKind::InsufficientPermissions => "insufficient permissions",
            ViolationKind::MalformedAccess => "malformed access",
            ViolationKind::AddressOverflow => "address overflow",
            ViolationKind::ForbiddenIntrinsic => "forbidden privileged intrinsic",
        };
        f.write_str(s)
    }
}

/// A rejected guarded access: the faulting triple plus diagnosis.
///
/// In the paper, a violation logs and causes a kernel panic (§3.1); in this
/// simulation the panic is modelled as a value so tests can assert on it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Faulting address.
    pub addr: VAddr,
    /// Access size in bytes.
    pub size: Size,
    /// Requested intent.
    pub flags: AccessFlags,
    /// Why the policy rejected it.
    pub kind: ViolationKind,
}

impl Violation {
    /// Construct a violation record.
    pub fn new(addr: VAddr, size: Size, flags: AccessFlags, kind: ViolationKind) -> Self {
        Violation {
            addr,
            size,
            flags,
            kind,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CARAT KOP violation: {} access of {} at {} — {}",
            self.flags, self.size, self.addr, self.kind
        )
    }
}

impl std::error::Error for Violation {}

/// Errors reported by the simulated kernel substrate.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum KernelError {
    /// A guarded access was rejected and the violation action was Panic:
    /// the simulated kernel has panicked.
    Panic {
        /// Human-readable panic message (what the console would print).
        message: String,
        /// The violation that triggered the panic, if any.
        violation: Option<Violation>,
    },
    /// A module failed signature validation at insertion time.
    BadSignature(String),
    /// A module referenced a symbol the kernel does not export.
    UnresolvedSymbol(String),
    /// A module with the same name is already loaded.
    ModuleAlreadyLoaded(String),
    /// No such module.
    NoSuchModule(String),
    /// A module exhausted its guard-violation budget and was forcibly
    /// unloaded (quarantined) by the kernel; the kernel itself keeps
    /// running. The payload names the module; the violation is the one
    /// that tipped the budget.
    ModuleQuarantined {
        /// Name of the quarantined module.
        module: String,
        /// The violation that exhausted the budget.
        violation: Violation,
    },
    /// The module attestation was rejected (e.g. contains inline assembly).
    AttestationRejected(String),
    /// Static guard-coverage verification of the module IR failed (the
    /// loader could not *prove* the module is guarded).
    StaticVerification(String),
    /// Out of module mapping space or other allocation failure.
    NoMemory(String),
    /// An access faulted against unmapped simulated memory.
    Fault {
        /// Faulting address.
        addr: VAddr,
        /// What the access was trying to do.
        what: String,
    },
    /// Bad ioctl command or argument.
    BadIoctl(String),
    /// No such device node.
    NoSuchDevice(String),
    /// Catch-all invalid argument.
    InvalidArgument(String),
}

impl fmt::Display for KernelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelError::Panic { message, violation } => {
                write!(f, "KERNEL PANIC: {message}")?;
                if let Some(v) = violation {
                    write!(f, " ({v})")?;
                }
                Ok(())
            }
            KernelError::BadSignature(s) => write!(f, "bad module signature: {s}"),
            KernelError::UnresolvedSymbol(s) => write!(f, "unresolved symbol: {s}"),
            KernelError::ModuleAlreadyLoaded(s) => write!(f, "module already loaded: {s}"),
            KernelError::NoSuchModule(s) => write!(f, "no such module: {s}"),
            KernelError::ModuleQuarantined { module, violation } => {
                write!(f, "module quarantined: {module} ({violation})")
            }
            KernelError::AttestationRejected(s) => write!(f, "attestation rejected: {s}"),
            KernelError::StaticVerification(s) => {
                write!(f, "static verification failed: {s}")
            }
            KernelError::NoMemory(s) => write!(f, "out of memory: {s}"),
            KernelError::Fault { addr, what } => write!(f, "fault at {addr}: {what}"),
            KernelError::BadIoctl(s) => write!(f, "bad ioctl: {s}"),
            KernelError::NoSuchDevice(s) => write!(f, "no such device: {s}"),
            KernelError::InvalidArgument(s) => write!(f, "invalid argument: {s}"),
        }
    }
}

impl std::error::Error for KernelError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            KernelError::Panic {
                violation: Some(v), ..
            } => Some(v),
            KernelError::ModuleQuarantined { violation, .. } => Some(violation),
            _ => None,
        }
    }
}

impl From<Violation> for KernelError {
    fn from(v: Violation) -> Self {
        KernelError::Panic {
            message: "guard check failed".into(),
            violation: Some(v),
        }
    }
}

/// Result alias for kernel-substrate operations.
pub type KernelResult<T> = Result<T, KernelError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_display_mentions_everything() {
        let v = Violation::new(
            VAddr(0x1000),
            Size(8),
            AccessFlags::WRITE,
            ViolationKind::NoMatchingRegion,
        );
        let s = v.to_string();
        assert!(s.contains("0x0000000000001000"));
        assert!(s.contains("8 B"));
        assert!(s.contains("-w-"));
        assert!(s.contains("no matching policy region"));
    }

    #[test]
    fn violation_converts_to_panic() {
        let v = Violation::new(
            VAddr(0x10),
            Size(4),
            AccessFlags::READ,
            ViolationKind::InsufficientPermissions,
        );
        let e: KernelError = v.into();
        match e {
            KernelError::Panic { violation, .. } => assert_eq!(violation, Some(v)),
            other => panic!("expected Panic, got {other:?}"),
        }
    }

    #[test]
    fn kernel_error_source_chains_violation() {
        use std::error::Error;
        let v = Violation::new(
            VAddr(0x10),
            Size(4),
            AccessFlags::READ,
            ViolationKind::InsufficientPermissions,
        );
        let e: KernelError = v.into();
        let src = e.source().expect("panic chains its violation");
        assert_eq!(src.to_string(), v.to_string());
        let q = KernelError::ModuleQuarantined {
            module: "credscan".into(),
            violation: v,
        };
        assert!(q.source().is_some());
        assert!(q.to_string().contains("module quarantined: credscan"));
        assert!(KernelError::NoSuchModule("x".into()).source().is_none());
    }

    #[test]
    fn kernel_error_display() {
        let e = KernelError::UnresolvedSymbol("carat_guard".into());
        assert_eq!(e.to_string(), "unresolved symbol: carat_guard");
        let e = KernelError::Fault {
            addr: VAddr(0x42),
            what: "read".into(),
        };
        assert!(e.to_string().contains("fault at"));
    }
}
