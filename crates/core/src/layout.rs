//! Canonical address-space layout of the simulated kernel.
//!
//! The constants mirror the x86-64 Linux virtual memory map (4-level paging,
//! `Documentation/x86/x86_64/mm.rst` for kernel 5.17): a 47-bit user half, a
//! guard hole, the direct map of all physical memory at `PAGE_OFFSET`, the
//! vmalloc area, and the module mapping space. CARAT KOP policies are
//! expressed over this layout — e.g. the paper's two-region policy is
//! "allow the kernel half, deny the user half".

/// Base of the canonical kernel ("high") half.
pub const KERNEL_HALF_BASE: u64 = 0xffff_8000_0000_0000;

/// End of the canonical user ("low") half (exclusive).
pub const USER_HALF_END: u64 = 0x0000_8000_0000_0000;

/// `PAGE_OFFSET`: base of the direct mapping of all physical memory.
pub const DIRECT_MAP_BASE: u64 = 0xffff_8880_0000_0000;

/// Size of the direct map window (64 TiB, as on 4-level x86-64).
pub const DIRECT_MAP_SIZE: u64 = 64 << 40;

/// Base of the vmalloc/ioremap space.
pub const VMALLOC_BASE: u64 = 0xffff_c900_0000_0000;

/// Size of the vmalloc/ioremap space (32 TiB).
pub const VMALLOC_SIZE: u64 = 32 << 40;

/// Base of the kernel text mapping.
pub const KERNEL_TEXT_BASE: u64 = 0xffff_ffff_8000_0000;

/// Size of the kernel text mapping (512 MiB).
pub const KERNEL_TEXT_SIZE: u64 = 512 << 20;

/// Base of the module mapping space (modules are loaded here).
pub const MODULE_SPACE_BASE: u64 = 0xffff_ffff_a000_0000;

/// Size of the module mapping space (1 GiB to leave room for many modules;
/// real kernels use ~1.5 GiB minus the text mapping).
pub const MODULE_SPACE_SIZE: u64 = 1 << 30;

/// Base of the simulated MMIO window inside the vmalloc/ioremap area.
/// Device BARs (e.g. the e1000e register block) are ioremapped here.
pub const MMIO_WINDOW_BASE: u64 = 0xffff_c9ff_0000_0000;

/// Size of the simulated MMIO window (4 GiB).
pub const MMIO_WINDOW_SIZE: u64 = 4 << 30;

/// Simulated page size.
pub const PAGE_SIZE: u64 = 4096;

/// Page shift corresponding to [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // deliberate: documents layout invariants
    fn layout_is_ordered_and_disjoint() {
        // user half < kernel half
        assert!(USER_HALF_END <= KERNEL_HALF_BASE);
        // direct map inside kernel half and below vmalloc
        assert!(DIRECT_MAP_BASE >= KERNEL_HALF_BASE);
        assert!(DIRECT_MAP_BASE + DIRECT_MAP_SIZE <= VMALLOC_BASE);
        // vmalloc below kernel text
        assert!(VMALLOC_BASE + VMALLOC_SIZE <= KERNEL_TEXT_BASE);
        // kernel text below module space
        assert!(KERNEL_TEXT_BASE + KERNEL_TEXT_SIZE <= MODULE_SPACE_BASE);
        // module space fits before the end of the address space
        assert!(MODULE_SPACE_BASE.checked_add(MODULE_SPACE_SIZE).is_some());
        // MMIO window inside the vmalloc/ioremap area
        assert!(MMIO_WINDOW_BASE >= VMALLOC_BASE);
        assert!(MMIO_WINDOW_BASE + MMIO_WINDOW_SIZE <= VMALLOC_BASE + VMALLOC_SIZE);
    }

    #[test]
    fn page_constants_consistent() {
        assert_eq!(1u64 << PAGE_SHIFT, PAGE_SIZE);
        assert!(PAGE_SIZE.is_power_of_two());
    }
}
