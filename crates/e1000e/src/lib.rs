//! # kop-e1000e — simulated Intel e1000e-family NIC and driver
//!
//! The paper's evaluation vehicle (§4) is the in-tree `e1000e` driver for
//! Intel 1 Gbit/s NICs (their test card is an Intel CT with an 82574L
//! chipset), built out-of-tree both with and without the CARAT KOP
//! transformation. This crate reproduces that vehicle:
//!
//! * [`regs`] — the 8254x/82574 register map subset the driver touches,
//! * [`desc`] — legacy transmit/receive descriptor layouts,
//! * [`device`] — the NIC device model: register file, TX/RX rings walked
//!   by a DMA engine, interrupt cause/mask, statistics registers. DMA
//!   reads descriptors and payloads straight from "physical" memory —
//!   *not* through guards, exactly as the paper notes ("the overwhelming
//!   amount of data transfer occurs due to the DMA engine on the NIC,
//!   which is not checked (and thus not slowed) by CARAT KOP"),
//! * [`memspace`] — the driver's memory-access abstraction: [`memspace::DirectMem`]
//!   performs raw accesses (the *baseline* build) while
//!   [`memspace::GuardedMem`] invokes `carat_guard` before every access
//!   (the *transformed* build). Monomorphization makes this the native
//!   analogue of compile-time guard injection: the baseline build contains
//!   no trace of the guard code,
//! * [`driver`] — the driver itself: reset/bring-up, ring programming,
//!   transmit, cleanup, and receive, written once and instantiated over
//!   either memory space ("No code was modified in the driver"),
//! * [`mq`] — multi-queue TX: N worker threads, each with its own driver
//!   and ring, sharing only the policy module — the workload behind the
//!   `reproduce smp` figure.

#![warn(missing_docs)]

pub mod desc;
pub mod device;
pub mod driver;
pub mod memspace;
pub mod mq;
pub mod regs;

pub use device::{E1000Device, FrameSink, VecSink};
pub use driver::{DriverError, DriverStats, E1000Driver};
pub use memspace::{driver_site_map, AccessCounts, DirectMem, GuardedMem, MemSpace};
pub use mq::{run_mq_tx, run_mq_tx_with, MqReport, QueueReport};
