//! The NIC device model: register file, DMA engine, interrupts.
//!
//! The device is *hardware*: its DMA engine reads descriptors and packet
//! payloads directly from physical memory, bypassing CARAT KOP guards
//! entirely (§4: DMA "is not checked (and thus not slowed)"; footnote 3:
//! controlling DMA belongs to IOMMU/SR-IOV, out of scope).

use crate::desc::{rxsts, txcmd, txsts, RxDesc, TxDesc, DESC_SIZE};
use crate::regs::{self, ctrl, eerd, intr, rctl, status, tctl};

/// Bytes one RX descriptor's buffer can hold (RCTL.BSIZE default on the
/// 8254x family: 2048). Frames longer than this span several descriptors,
/// with EOP set only on the last.
pub const RX_BUF_CAP: usize = 2048;

/// Physical memory as seen by the DMA engine.
pub trait DmaMem {
    /// DMA read from physical memory.
    fn dma_read(&mut self, addr: u64, buf: &mut [u8]);
    /// DMA write to physical memory.
    fn dma_write(&mut self, addr: u64, buf: &[u8]);
}

impl DmaMem for Vec<u8> {
    fn dma_read(&mut self, addr: u64, buf: &mut [u8]) {
        let a = addr as usize;
        buf.copy_from_slice(&self[a..a + buf.len()]);
    }
    fn dma_write(&mut self, addr: u64, buf: &[u8]) {
        let a = addr as usize;
        self[a..a + buf.len()].copy_from_slice(buf);
    }
}

/// Where transmitted frames go (the "packet sink" attached to the test
/// NIC in §4.2).
pub trait FrameSink {
    /// Deliver one complete frame.
    fn deliver(&mut self, frame: &[u8]);
}

/// A sink that stores frames (testing, and the measurement sink).
#[derive(Clone, Debug, Default)]
pub struct VecSink {
    /// Delivered frames.
    pub frames: Vec<Vec<u8>>,
}

impl FrameSink for VecSink {
    fn deliver(&mut self, frame: &[u8]) {
        self.frames.push(frame.to_vec());
    }
}

/// A sink that only counts (for long benchmark runs).
#[derive(Clone, Copy, Debug, Default)]
pub struct CountSink {
    /// Number of frames delivered.
    pub frames: u64,
    /// Total payload bytes delivered.
    pub bytes: u64,
}

impl FrameSink for CountSink {
    fn deliver(&mut self, frame: &[u8]) {
        self.frames += 1;
        self.bytes += frame.len() as u64;
    }
}

/// Statistics the device model tracks beyond the architected counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DeviceStats {
    /// Total DMA bytes read (descriptors + payloads).
    pub dma_read_bytes: u64,
    /// Total DMA bytes written (descriptor writebacks).
    pub dma_write_bytes: u64,
    /// Register reads observed.
    pub reg_reads: u64,
    /// Register writes observed.
    pub reg_writes: u64,
    /// Frames the wire offered that the receiver dropped (disabled, ring
    /// exhausted, or not enough free descriptors for the whole frame).
    pub rx_dropped: u64,
    /// RXT0 causes actually latched by the receive engine.
    pub rx_irqs_raised: u64,
    /// Frame arrivals the interrupt-coalescing throttle (RDTR) absorbed
    /// without latching a cause.
    pub rx_irqs_coalesced: u64,
}

/// The simulated 82574L-style NIC.
pub struct E1000Device {
    // Architected registers.
    ctrl: u64,
    status: u64,
    icr: u64,
    ims: u64,
    rctl: u64,
    tctl: u64,
    tdbal: u64,
    tdbah: u64,
    tdlen: u64,
    tdh: u64,
    tdt: u64,
    rdbal: u64,
    rdbah: u64,
    rdlen: u64,
    rdh: u64,
    rdt: u64,
    rdtr: u64,
    ral0: u64,
    rah0: u64,
    eerd: u64,
    gptc: u64,
    gotc: u64,
    gprc: u64,
    /// EEPROM contents (word-addressed); words 0..3 hold the MAC.
    eeprom: [u16; 64],
    /// Partial multi-descriptor frame being assembled by the TX engine.
    tx_partial: Vec<u8>,
    /// Frames accumulated toward the next RXT0 under the RDTR throttle.
    rx_coalesce: u64,
    /// Model statistics.
    pub stats: DeviceStats,
}

impl Default for E1000Device {
    fn default() -> Self {
        Self::new([0x02, 0x00, 0x4b, 0x4f, 0x50, 0x01])
    }
}

impl E1000Device {
    /// Create a device with the given MAC address burned into its EEPROM.
    pub fn new(mac: [u8; 6]) -> E1000Device {
        let mut eeprom = [0u16; 64];
        eeprom[0] = u16::from_le_bytes([mac[0], mac[1]]);
        eeprom[1] = u16::from_le_bytes([mac[2], mac[3]]);
        eeprom[2] = u16::from_le_bytes([mac[4], mac[5]]);
        E1000Device {
            ctrl: 0,
            status: 0,
            icr: 0,
            ims: 0,
            rctl: 0,
            tctl: 0,
            tdbal: 0,
            tdbah: 0,
            tdlen: 0,
            tdh: 0,
            tdt: 0,
            rdbal: 0,
            rdbah: 0,
            rdlen: 0,
            rdh: 0,
            rdt: 0,
            rdtr: 0,
            ral0: 0,
            rah0: 0,
            eerd: 0,
            gptc: 0,
            gotc: 0,
            gprc: 0,
            eeprom,
            tx_partial: Vec::new(),
            rx_coalesce: 0,
            stats: DeviceStats::default(),
        }
    }

    fn reset(&mut self) {
        let eeprom = self.eeprom;
        let stats = self.stats;
        *self = E1000Device::new([0; 6]);
        self.eeprom = eeprom;
        self.stats = stats;
    }

    /// Register read at `offset` within the BAR.
    pub fn reg_read(&mut self, offset: u64) -> u64 {
        self.stats.reg_reads += 1;
        match offset {
            regs::CTRL => self.ctrl,
            regs::STATUS => self.status,
            regs::EERD => self.eerd,
            regs::ICR => {
                // Read-to-clear, as architected.
                let v = self.icr;
                self.icr = 0;
                v
            }
            regs::IMS => self.ims,
            regs::RCTL => self.rctl,
            regs::TCTL => self.tctl,
            regs::TDBAL => self.tdbal,
            regs::TDBAH => self.tdbah,
            regs::TDLEN => self.tdlen,
            regs::TDH => self.tdh,
            regs::TDT => self.tdt,
            regs::RDBAL => self.rdbal,
            regs::RDBAH => self.rdbah,
            regs::RDLEN => self.rdlen,
            regs::RDH => self.rdh,
            regs::RDT => self.rdt,
            regs::RDTR => self.rdtr,
            regs::RAL0 => self.ral0,
            regs::RAH0 => self.rah0,
            regs::GPTC => self.gptc,
            regs::GOTCL => self.gotc & 0xffff_ffff,
            regs::GOTCH => self.gotc >> 32,
            regs::GPRC => self.gprc,
            _ => 0,
        }
    }

    /// Register write at `offset` within the BAR.
    pub fn reg_write(&mut self, offset: u64, value: u64) {
        self.stats.reg_writes += 1;
        match offset {
            regs::CTRL => {
                if value & ctrl::RST != 0 {
                    self.reset();
                    // RST self-clears; link comes up full duplex.
                    self.status = status::LU | status::FD;
                    return;
                }
                self.ctrl = value;
                if value & ctrl::SLU != 0 {
                    self.status |= status::LU | status::FD;
                    self.icr |= intr::LSC;
                }
            }
            regs::EERD if value & eerd::START != 0 => {
                let addr = ((value >> eerd::ADDR_SHIFT) & 0xff) as usize;
                let word = self.eeprom.get(addr).copied().unwrap_or(0);
                self.eerd =
                    eerd::DONE | ((word as u64) << eerd::DATA_SHIFT) | (value & !eerd::START);
            }
            regs::IMS => self.ims |= value,
            regs::IMC => self.ims &= !value,
            regs::RCTL => self.rctl = value,
            regs::TCTL => self.tctl = value,
            regs::TDBAL => self.tdbal = value & 0xffff_fff0,
            regs::TDBAH => self.tdbah = value,
            regs::TDLEN => self.tdlen = value & 0xf_ff80,
            regs::TDH => self.tdh = value & 0xffff,
            regs::TDT => self.tdt = value & 0xffff,
            regs::RDBAL => self.rdbal = value & 0xffff_fff0,
            regs::RDBAH => self.rdbah = value,
            regs::RDLEN => self.rdlen = value & 0xf_ff80,
            regs::RDH => self.rdh = value & 0xffff,
            regs::RDT => self.rdt = value & 0xffff,
            regs::RDTR => self.rdtr = value & 0xffff,
            regs::RAL0 => self.ral0 = value,
            regs::RAH0 => self.rah0 = value,
            _ => {}
        }
    }

    /// The MAC address from the EEPROM.
    pub fn eeprom_mac(&self) -> [u8; 6] {
        let w0 = self.eeprom[0].to_le_bytes();
        let w1 = self.eeprom[1].to_le_bytes();
        let w2 = self.eeprom[2].to_le_bytes();
        [w0[0], w0[1], w1[0], w1[1], w2[0], w2[1]]
    }

    /// Whether the link is up.
    pub fn link_up(&self) -> bool {
        self.status & status::LU != 0
    }

    /// Whether an interrupt is pending (ICR ∩ IMS non-empty).
    pub fn irq_pending(&self) -> bool {
        self.icr & self.ims != 0
    }

    fn tx_ring_entries(&self) -> u64 {
        self.tdlen / DESC_SIZE
    }

    fn rx_ring_entries(&self) -> u64 {
        self.rdlen / DESC_SIZE
    }

    fn tx_base(&self) -> u64 {
        (self.tdbah << 32) | self.tdbal
    }

    fn rx_base(&self) -> u64 {
        (self.rdbah << 32) | self.rdbal
    }

    /// Run the transmit DMA engine: consume descriptors from TDH to TDT,
    /// deliver completed frames to `sink`, write back DD status.
    /// Returns the number of frames transmitted.
    pub fn tx_tick(&mut self, mem: &mut dyn DmaMem, sink: &mut dyn FrameSink) -> u64 {
        if self.tctl & tctl::EN == 0 || self.tx_ring_entries() == 0 {
            return 0;
        }
        let mut sent = 0u64;
        while self.tdh != self.tdt {
            let daddr = self.tx_base() + self.tdh * DESC_SIZE;
            let mut dbytes = [0u8; 16];
            mem.dma_read(daddr, &mut dbytes);
            self.stats.dma_read_bytes += DESC_SIZE;
            let mut desc = TxDesc::from_bytes(&dbytes);

            // DMA the payload.
            let mut payload = vec![0u8; desc.length as usize];
            mem.dma_read(desc.buffer, &mut payload);
            self.stats.dma_read_bytes += desc.length as u64;
            self.tx_partial.extend_from_slice(&payload);

            if desc.cmd & txcmd::EOP != 0 {
                let frame = std::mem::take(&mut self.tx_partial);
                self.gptc += 1;
                self.gotc += frame.len() as u64;
                sink.deliver(&frame);
                sent += 1;
            }

            // Status writeback when requested.
            if desc.cmd & txcmd::RS != 0 {
                desc.status |= txsts::DD;
                let out = desc.to_bytes();
                mem.dma_write(daddr, &out);
                self.stats.dma_write_bytes += DESC_SIZE;
            }
            self.tdh = (self.tdh + 1) % self.tx_ring_entries();
        }
        if sent > 0 {
            self.icr |= intr::TXDW;
        }
        sent
    }

    /// RX descriptors the device currently owns (programmed by the driver
    /// via RDT, consumed by the receive engine via RDH).
    fn rx_free_descs(&self) -> u64 {
        let entries = self.rx_ring_entries();
        if entries == 0 {
            return 0;
        }
        // Ring empty for the device when RDH == RDT (driver owns none).
        (self.rdt + entries - self.rdh) % entries
    }

    /// Inject a received frame (the wire side). Returns `true` if the
    /// device had enough free RX descriptors and DMA'd the frame into
    /// their buffers — frames longer than [`RX_BUF_CAP`] span several
    /// descriptors, with [`rxsts::EOP`] set only on the last. A frame
    /// that does not fit is dropped whole (counted in
    /// [`DeviceStats::rx_dropped`], RXO latched); partial delivery never
    /// happens. RXT0 is latched per the RDTR coalescing throttle.
    pub fn rx_inject(&mut self, mem: &mut dyn DmaMem, frame: &[u8]) -> bool {
        if self.rctl & rctl::EN == 0 || self.rx_ring_entries() == 0 {
            self.stats.rx_dropped += 1;
            return false;
        }
        let needed = frame.len().div_ceil(RX_BUF_CAP).max(1) as u64;
        if self.rx_free_descs() < needed {
            self.stats.rx_dropped += 1;
            self.icr |= intr::RXO;
            return false;
        }

        let entries = self.rx_ring_entries();
        for (i, chunk) in frame
            .chunks(RX_BUF_CAP)
            .chain(frame.is_empty().then_some(frame))
            .enumerate()
        {
            let daddr = self.rx_base() + self.rdh * DESC_SIZE;
            let mut dbytes = [0u8; 16];
            mem.dma_read(daddr, &mut dbytes);
            self.stats.dma_read_bytes += DESC_SIZE;
            let mut desc = RxDesc::from_bytes(&dbytes);

            mem.dma_write(desc.buffer, chunk);
            self.stats.dma_write_bytes += chunk.len() as u64;
            desc.length = chunk.len() as u16;
            desc.status |= rxsts::DD;
            if i as u64 + 1 == needed {
                desc.status |= rxsts::EOP;
            }
            let out = desc.to_bytes();
            mem.dma_write(daddr, &out);
            self.stats.dma_write_bytes += DESC_SIZE;
            self.rdh = (self.rdh + 1) % entries;
        }

        self.gprc += 1;
        // Descriptor low-water mark: tell the driver the ring is running
        // dry (the driver only sees it if it unmasks RXDMT0).
        if self.rx_free_descs() <= entries / 8 {
            self.icr |= intr::RXDMT0;
        }
        // Interrupt-coalescing throttle: RDTR frames per RXT0.
        self.rx_coalesce += 1;
        if self.rx_coalesce >= self.rdtr.max(1) {
            self.rx_coalesce = 0;
            self.icr |= intr::RXT0;
            self.stats.rx_irqs_raised += 1;
        } else {
            self.stats.rx_irqs_coalesced += 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reset_device() -> E1000Device {
        let mut d = E1000Device::new([0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]);
        d.reg_write(regs::CTRL, ctrl::RST);
        d
    }

    #[test]
    fn reset_brings_link_up_and_clears_state() {
        let mut d = E1000Device::default();
        d.reg_write(regs::TDT, 5);
        d.reg_write(regs::CTRL, ctrl::RST);
        assert!(d.link_up());
        assert_eq!(d.reg_read(regs::TDT), 0);
        assert_eq!(d.reg_read(regs::STATUS) & status::LU, status::LU);
    }

    #[test]
    fn eeprom_mac_read_protocol() {
        let mut d = reset_device();
        let mut mac = [0u8; 6];
        for w in 0..3 {
            d.reg_write(regs::EERD, eerd::START | (w as u64) << eerd::ADDR_SHIFT);
            let v = d.reg_read(regs::EERD);
            assert!(v & eerd::DONE != 0);
            let word = ((v >> eerd::DATA_SHIFT) & 0xffff) as u16;
            mac[w * 2..w * 2 + 2].copy_from_slice(&word.to_le_bytes());
        }
        assert_eq!(mac, [0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff]);
        assert_eq!(d.eeprom_mac(), mac);
    }

    #[test]
    fn icr_read_to_clear_and_masking() {
        let mut d = reset_device();
        d.reg_write(regs::CTRL, ctrl::SLU);
        assert!(!d.irq_pending(), "masked: no pending irq");
        d.reg_write(regs::IMS, intr::LSC);
        assert!(d.irq_pending());
        let icr = d.reg_read(regs::ICR);
        assert!(icr & intr::LSC != 0);
        assert!(!d.irq_pending(), "read cleared ICR");
        // IMC clears mask bits.
        d.reg_write(regs::IMS, intr::TXDW | intr::RXT0);
        d.reg_write(regs::IMC, intr::TXDW | intr::LSC);
        assert_eq!(d.reg_read(regs::IMS), intr::RXT0);
    }

    /// Build a ring + one packet in a Vec-backed "physical memory".
    fn setup_tx(d: &mut E1000Device, mem: &mut [u8], payloads: &[&[u8]]) {
        let ring_base = 0x1000u64;
        let entries = 64u64;
        d.reg_write(regs::TDBAL, ring_base);
        d.reg_write(regs::TDBAH, 0);
        d.reg_write(regs::TDLEN, entries * DESC_SIZE);
        d.reg_write(regs::TDH, 0);
        d.reg_write(regs::TDT, 0);
        d.reg_write(regs::TCTL, tctl::EN | tctl::PSP);
        let mut buf_base = 0x10_000u64;
        for (i, p) in payloads.iter().enumerate() {
            mem[buf_base as usize..buf_base as usize + p.len()].copy_from_slice(p);
            let desc = TxDesc {
                buffer: buf_base,
                length: p.len() as u16,
                cmd: txcmd::EOP | txcmd::RS | txcmd::IFCS,
                ..TxDesc::default()
            };
            let daddr = (ring_base + (i as u64) * DESC_SIZE) as usize;
            mem[daddr..daddr + 16].copy_from_slice(&desc.to_bytes());
            buf_base += 2048;
        }
        d.reg_write(regs::TDT, payloads.len() as u64);
    }

    #[test]
    fn tx_engine_transmits_and_writes_back() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        let mut sink = VecSink::default();
        setup_tx(&mut d, &mut mem, &[b"hello", b"world!"]);
        let sent = d.tx_tick(&mut mem, &mut sink);
        assert_eq!(sent, 2);
        assert_eq!(sink.frames, vec![b"hello".to_vec(), b"world!".to_vec()]);
        assert_eq!(d.reg_read(regs::TDH), 2);
        assert_eq!(d.reg_read(regs::GPTC), 2);
        assert_eq!(d.reg_read(regs::GOTCL), 11);
        // DD written back into both descriptors.
        for i in 0..2usize {
            let daddr = 0x1000 + i * 16;
            let desc = TxDesc::from_bytes(&mem[daddr..daddr + 16].try_into().expect("16 bytes"));
            assert!(desc.status & txsts::DD != 0);
        }
        // TXDW interrupt latched.
        d.reg_write(regs::IMS, intr::TXDW);
        assert!(d.irq_pending());
    }

    #[test]
    fn tx_engine_idle_cases() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 16];
        let mut sink = VecSink::default();
        // TX not enabled.
        assert_eq!(d.tx_tick(&mut mem, &mut sink), 0);
        // Enabled but empty ring (TDH == TDT).
        d.reg_write(regs::TCTL, tctl::EN);
        d.reg_write(regs::TDLEN, 64 * DESC_SIZE);
        assert_eq!(d.tx_tick(&mut mem, &mut sink), 0);
        assert!(sink.frames.is_empty());
    }

    #[test]
    fn multi_descriptor_frame_assembled() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        let mut sink = VecSink::default();
        // Two descriptors, EOP only on the second.
        d.reg_write(regs::TDBAL, 0x1000);
        d.reg_write(regs::TDLEN, 64 * DESC_SIZE);
        d.reg_write(regs::TCTL, tctl::EN);
        mem[0x10_000..0x10_003].copy_from_slice(b"foo");
        mem[0x12_000..0x12_003].copy_from_slice(b"bar");
        let d0 = TxDesc {
            buffer: 0x10_000,
            length: 3,
            cmd: txcmd::RS, // no EOP
            ..TxDesc::default()
        };
        let d1 = TxDesc {
            buffer: 0x12_000,
            length: 3,
            cmd: txcmd::EOP | txcmd::RS,
            ..TxDesc::default()
        };
        mem[0x1000..0x1010].copy_from_slice(&d0.to_bytes());
        mem[0x1010..0x1020].copy_from_slice(&d1.to_bytes());
        d.reg_write(regs::TDT, 2);
        let sent = d.tx_tick(&mut mem, &mut sink);
        assert_eq!(sent, 1);
        assert_eq!(sink.frames, vec![b"foobar".to_vec()]);
    }

    #[test]
    fn tx_ring_wraps() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        let mut sink = CountSink::default();
        setup_tx(&mut d, &mut mem, &[b"x", b"x", b"x", b"x"]);
        d.tx_tick(&mut mem, &mut sink);
        assert_eq!(sink.frames, 4);
        // Reuse ring: fill 64-entry ring repeatedly via wrapping TDT.
        for round in 0..5u64 {
            let head = d.reg_read(regs::TDH);
            // Write one descriptor at the current tail and bump it.
            let tail = d.reg_read(regs::TDT);
            let desc = TxDesc {
                buffer: 0x10_000,
                length: 1,
                cmd: txcmd::EOP | txcmd::RS,
                ..TxDesc::default()
            };
            let daddr = (0x1000 + tail * DESC_SIZE) as usize;
            mem[daddr..daddr + 16].copy_from_slice(&desc.to_bytes());
            d.reg_write(regs::TDT, (tail + 1) % 64);
            d.tx_tick(&mut mem, &mut sink);
            assert_eq!(d.reg_read(regs::TDH), (head + 1) % 64, "round {round}");
        }
        assert_eq!(sink.frames, 9);
    }

    #[test]
    fn rx_inject_delivers_to_buffer() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        // Program RX ring with 8 descriptors pointing at buffers.
        d.reg_write(regs::RDBAL, 0x2000);
        d.reg_write(regs::RDLEN, 8 * DESC_SIZE);
        d.reg_write(regs::RCTL, rctl::EN | rctl::BAM);
        for i in 0..8u64 {
            let desc = RxDesc {
                buffer: 0x20_000 + i * 2048,
                ..RxDesc::default()
            };
            let daddr = (0x2000 + i * DESC_SIZE) as usize;
            mem[daddr..daddr + 16].copy_from_slice(&desc.to_bytes());
        }
        d.reg_write(regs::RDH, 0);
        d.reg_write(regs::RDT, 7); // 7 descriptors available to the device
        assert!(d.rx_inject(&mut mem, b"ping"));
        assert_eq!(&mem[0x20_000..0x20_004], b"ping");
        let desc = RxDesc::from_bytes(&mem[0x2000..0x2010].try_into().expect("16 bytes"));
        assert!(desc.status & txsts::DD != 0);
        assert_eq!(desc.length, 4);
        assert_eq!(d.reg_read(regs::RDH), 1);
        assert_eq!(d.reg_read(regs::GPRC), 1);
        d.reg_write(regs::IMS, intr::RXT0);
        assert!(d.irq_pending());
    }

    #[test]
    fn rx_inject_drops_when_ring_exhausted() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 16];
        d.reg_write(regs::RDBAL, 0x2000);
        d.reg_write(regs::RDLEN, 8 * DESC_SIZE);
        d.reg_write(regs::RCTL, rctl::EN);
        d.reg_write(regs::RDH, 3);
        d.reg_write(regs::RDT, 3); // empty for the device
        assert!(!d.rx_inject(&mut mem, b"drop me"));
        assert_eq!(d.reg_read(regs::GPRC), 0);
    }

    #[test]
    fn rx_disabled_drops() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 16];
        assert!(!d.rx_inject(&mut mem, b"x"));
        assert_eq!(d.stats.rx_dropped, 1);
    }

    /// Program an RX ring with `entries` descriptors and buffers, RDT at
    /// `entries - 1` (all but one descriptor owned by the device).
    fn setup_rx(d: &mut E1000Device, mem: &mut [u8], entries: u64) {
        d.reg_write(regs::RDBAL, 0x2000);
        d.reg_write(regs::RDLEN, entries * DESC_SIZE);
        d.reg_write(regs::RCTL, rctl::EN | rctl::BAM);
        for i in 0..entries {
            let desc = RxDesc {
                buffer: 0x20_000 + i * 2048,
                ..RxDesc::default()
            };
            let daddr = (0x2000 + i * DESC_SIZE) as usize;
            mem[daddr..daddr + 16].copy_from_slice(&desc.to_bytes());
        }
        d.reg_write(regs::RDH, 0);
        d.reg_write(regs::RDT, entries - 1);
    }

    fn rx_desc_at(mem: &[u8], i: usize) -> RxDesc {
        let daddr = 0x2000 + i * 16;
        RxDesc::from_bytes(&mem[daddr..daddr + 16].try_into().expect("16 bytes"))
    }

    #[test]
    fn rx_long_frame_spans_descriptors_with_eop_on_last() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        setup_rx(&mut d, &mut mem, 8);
        // 2048 + 2048 + 1 bytes → three descriptors.
        let frame: Vec<u8> = (0..2 * RX_BUF_CAP + 1).map(|i| i as u8).collect();
        assert!(d.rx_inject(&mut mem, &frame));
        let d0 = rx_desc_at(&mem, 0);
        let d1 = rx_desc_at(&mem, 1);
        let d2 = rx_desc_at(&mem, 2);
        for (i, desc) in [d0, d1, d2].iter().enumerate() {
            assert!(desc.status & rxsts::DD != 0, "desc {i} done");
        }
        assert_eq!(d0.status & rxsts::EOP, 0, "first chunk is not EOP");
        assert_eq!(d1.status & rxsts::EOP, 0, "middle chunk is not EOP");
        assert!(d2.status & rxsts::EOP != 0, "last chunk carries EOP");
        assert_eq!((d0.length, d1.length, d2.length), (2048, 2048, 1));
        // Buffers hold the right slices.
        assert_eq!(&mem[0x20_000..0x20_000 + 2048], &frame[..2048]);
        assert_eq!(mem[0x21_000], frame[4096]);
        assert_eq!(d.reg_read(regs::RDH), 3);
        assert_eq!(d.reg_read(regs::GPRC), 1, "one frame, not three");
    }

    #[test]
    fn rx_overrun_drops_whole_frame_and_latches_rxo() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        setup_rx(&mut d, &mut mem, 8);
        d.reg_write(regs::RDT, 3);
        // 3 descriptors free; a 3-buffer frame fits, the next one doesn't.
        let big: Vec<u8> = vec![0xab; 2 * RX_BUF_CAP + 1];
        assert!(d.rx_inject(&mut mem, &big));
        assert!(!d.rx_inject(&mut mem, b"no room"));
        assert_eq!(d.stats.rx_dropped, 1);
        assert_eq!(d.reg_read(regs::GPRC), 1);
        // Nothing was DMA'd for the dropped frame and RDH did not move.
        assert_eq!(d.reg_read(regs::RDH), 3);
        let icr = d.reg_read(regs::ICR);
        assert!(icr & intr::RXO != 0, "overrun cause latched");
    }

    #[test]
    fn rdtr_throttle_coalesces_rx_interrupts() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        setup_rx(&mut d, &mut mem, 32);
        d.reg_write(regs::RDTR, 4); // one RXT0 per 4 frames
        d.reg_write(regs::IMS, intr::RXT0);
        for i in 0..3 {
            assert!(d.rx_inject(&mut mem, b"burst"));
            assert!(!d.irq_pending(), "frame {i} absorbed by the throttle");
        }
        assert!(d.rx_inject(&mut mem, b"burst"));
        assert!(d.irq_pending(), "4th frame latches RXT0");
        assert_eq!(d.stats.rx_irqs_raised, 1);
        assert_eq!(d.stats.rx_irqs_coalesced, 3);
        // Throttle restarts after firing.
        let _ = d.reg_read(regs::ICR);
        assert!(d.rx_inject(&mut mem, b"burst"));
        assert!(!d.irq_pending());
    }

    #[test]
    fn rx_low_water_mark_latches_rxdmt0() {
        let mut d = reset_device();
        let mut mem = vec![0u8; 1 << 20];
        setup_rx(&mut d, &mut mem, 16);
        // 15 free; low-water mark is entries/8 == 2.
        for _ in 0..12 {
            assert!(d.rx_inject(&mut mem, b"fill"));
        }
        assert_eq!(d.reg_read(regs::ICR) & intr::RXDMT0, 0);
        assert!(d.rx_inject(&mut mem, b"fill")); // 2 free now
        assert!(d.reg_read(regs::ICR) & intr::RXDMT0 != 0);
    }
}
