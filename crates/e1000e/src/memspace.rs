//! The driver's memory-access abstraction — where guard injection lands.
//!
//! The paper builds the e1000e driver twice with the same compiler and
//! flags: once unmodified (*baseline*) and once with the CARAT KOP
//! transformation (*carat*). The Rust analogue is a driver generic over
//! [`MemSpace`]:
//!
//! * [`DirectMem`] performs each access directly — compiling the driver
//!   over it produces machine code with no trace of guards (baseline);
//! * [`GuardedMem`] invokes [`kop_policy::PolicyCheck::carat_guard`]
//!   before *every* access, exactly mirroring the injected
//!   `call @carat_guard(ptr, size, flags)` (carat).
//!
//! Both spaces route addresses in the device BAR window to the device
//! model's registers (ioremap'd MMIO) — and MMIO accesses are guarded
//! too, because they are ordinary loads/stores in the driver's code.
//! Bulk payload movement uses the separate *unguarded* [`MemSpace::bulk_write`]
//! path: in the real driver, packet payload reaches the NIC by DMA from
//! the sk_buff, never through guarded CPU code.

use std::sync::Arc;

use kop_core::{AccessFlags, Size, VAddr, Violation};
use kop_policy::{GuardTlb, HotPolicy, HotSite, PolicyCheck, PolicyModule, SiteMap, TlbPolicy};
use kop_trace::{GuardDecision, Producer, SiteId, TraceEvent, Tracer};

use crate::device::{DmaMem, E1000Device, FrameSink};
use crate::driver::{RX_BUFS_OFF, RX_RING_OFF, STATS_OFF, TX_BUFS_OFF, TX_RING_OFF};
use crate::regs::BAR_SIZE;

/// Access counters — the measured "driver work" that feeds the machine
/// model ([`kop_sim::PacketWork`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// CPU loads from RAM.
    pub ram_reads: u64,
    /// CPU stores to RAM.
    pub ram_writes: u64,
    /// MMIO register reads.
    pub mmio_reads: u64,
    /// MMIO register writes.
    pub mmio_writes: u64,
    /// Guard invocations (0 for [`DirectMem`]).
    pub guard_calls: u64,
    /// Bytes moved through the unguarded bulk/DMA path.
    pub bulk_bytes: u64,
}

impl AccessCounts {
    /// Difference since `earlier`.
    pub fn since(&self, earlier: &AccessCounts) -> AccessCounts {
        AccessCounts {
            ram_reads: self.ram_reads - earlier.ram_reads,
            ram_writes: self.ram_writes - earlier.ram_writes,
            mmio_reads: self.mmio_reads - earlier.mmio_reads,
            mmio_writes: self.mmio_writes - earlier.mmio_writes,
            guard_calls: self.guard_calls - earlier.guard_calls,
            bulk_bytes: self.bulk_bytes - earlier.bulk_bytes,
        }
    }
}

/// The driver's view of memory: typed loads/stores (guardable), bulk
/// DMA-side transfers (never guarded), and access to the NIC below.
pub trait MemSpace {
    /// Load `size` ∈ {1,2,4,8} bytes at `addr` (little endian).
    fn read(&mut self, addr: u64, size: u64) -> Result<u64, Violation>;

    /// Store `size` ∈ {1,2,4,8} bytes at `addr` (little endian).
    fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), Violation>;

    /// Unguarded bulk copy into memory (sk_buff fill / DMA side).
    fn bulk_write(&mut self, addr: u64, bytes: &[u8]);

    /// Unguarded bulk copy out of memory (passing an RX buffer upward).
    fn bulk_read(&mut self, addr: u64, len: usize) -> Vec<u8>;

    /// Run the NIC's TX DMA engine (hardware side, unguarded).
    fn tx_tick(&mut self, sink: &mut dyn FrameSink) -> u64;

    /// Inject a frame on the wire side (hardware side, unguarded).
    fn rx_inject(&mut self, frame: &[u8]) -> bool;

    /// Direct access to the device model (tests/telemetry; not the
    /// driver's data path).
    fn device(&mut self) -> &mut E1000Device;

    /// Access counters so far.
    fn counts(&self) -> AccessCounts;

    /// The base address of the RAM arena available to the driver.
    fn arena_base(&self) -> u64;

    /// The size of the RAM arena.
    fn arena_len(&self) -> u64;

    /// The base of the device's MMIO window.
    fn mmio_base(&self) -> u64;

    /// The tracer this space reports guard checks and driver events to
    /// (None for untraced spaces — the default, and always for the
    /// baseline build, which has no guards to trace).
    fn tracer(&self) -> Option<&Arc<Tracer>> {
        None
    }
}

/// RAM arena addressed at a configurable base (the driver's slice of the
/// direct map), with the NIC's BAR mapped alongside.
pub struct DirectMem {
    arena_base: u64,
    ram: Vec<u8>,
    mmio_base: u64,
    dev: E1000Device,
    counts: AccessCounts,
}

/// Arena wrapper giving the DMA engine physical access with bounds checks
/// (a real bus would machine-check on out-of-range DMA).
struct ArenaDma<'a> {
    base: u64,
    ram: &'a mut [u8],
}

impl DmaMem for ArenaDma<'_> {
    fn dma_read(&mut self, addr: u64, buf: &mut [u8]) {
        let off = addr.checked_sub(self.base).expect("DMA below arena") as usize;
        buf.copy_from_slice(&self.ram[off..off + buf.len()]);
    }
    fn dma_write(&mut self, addr: u64, buf: &[u8]) {
        let off = addr.checked_sub(self.base).expect("DMA below arena") as usize;
        self.ram[off..off + buf.len()].copy_from_slice(buf);
    }
}

impl DirectMem {
    /// Create an arena of `len` bytes at `arena_base` with the device's
    /// BAR at `mmio_base`.
    pub fn new(arena_base: u64, len: u64, mmio_base: u64, dev: E1000Device) -> DirectMem {
        assert!(
            mmio_base >= arena_base + len || mmio_base + BAR_SIZE <= arena_base,
            "MMIO window must not overlap the RAM arena"
        );
        DirectMem {
            arena_base,
            ram: vec![0u8; len as usize],
            mmio_base,
            dev,
            counts: AccessCounts::default(),
        }
    }

    /// Default layout: 16 MiB of "direct map" RAM plus the BAR in the
    /// ioremap window, using the kernel layout constants.
    pub fn with_defaults(dev: E1000Device) -> DirectMem {
        DirectMem::new(
            kop_core::layout::DIRECT_MAP_BASE,
            16 << 20,
            kop_core::layout::MMIO_WINDOW_BASE,
            dev,
        )
    }

    fn is_mmio(&self, addr: u64, size: u64) -> bool {
        addr >= self.mmio_base && addr + size <= self.mmio_base + BAR_SIZE
    }

    fn ram_off(&self, addr: u64, size: u64) -> usize {
        let off = addr
            .checked_sub(self.arena_base)
            .unwrap_or_else(|| panic!("access at {addr:#x} below arena"));
        assert!(
            off + size <= self.ram.len() as u64,
            "access at {addr:#x}+{size} beyond arena"
        );
        off as usize
    }

    fn do_read(&mut self, addr: u64, size: u64) -> u64 {
        if self.is_mmio(addr, size) {
            self.counts.mmio_reads += 1;
            return self.dev.reg_read(addr - self.mmio_base);
        }
        self.counts.ram_reads += 1;
        let off = self.ram_off(addr, size);
        let mut b = [0u8; 8];
        b[..size as usize].copy_from_slice(&self.ram[off..off + size as usize]);
        u64::from_le_bytes(b)
    }

    fn do_write(&mut self, addr: u64, size: u64, value: u64) {
        if self.is_mmio(addr, size) {
            self.counts.mmio_writes += 1;
            self.dev.reg_write(addr - self.mmio_base, value);
            return;
        }
        self.counts.ram_writes += 1;
        let off = self.ram_off(addr, size);
        self.ram[off..off + size as usize].copy_from_slice(&value.to_le_bytes()[..size as usize]);
    }
}

impl MemSpace for DirectMem {
    #[inline]
    fn read(&mut self, addr: u64, size: u64) -> Result<u64, Violation> {
        Ok(self.do_read(addr, size))
    }

    #[inline]
    fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), Violation> {
        self.do_write(addr, size, value);
        Ok(())
    }

    fn bulk_write(&mut self, addr: u64, bytes: &[u8]) {
        self.counts.bulk_bytes += bytes.len() as u64;
        let off = self.ram_off(addr, bytes.len() as u64);
        self.ram[off..off + bytes.len()].copy_from_slice(bytes);
    }

    fn bulk_read(&mut self, addr: u64, len: usize) -> Vec<u8> {
        self.counts.bulk_bytes += len as u64;
        let off = self.ram_off(addr, len as u64);
        self.ram[off..off + len].to_vec()
    }

    fn tx_tick(&mut self, sink: &mut dyn FrameSink) -> u64 {
        let mut dma = ArenaDma {
            base: self.arena_base,
            ram: &mut self.ram,
        };
        self.dev.tx_tick(&mut dma, sink)
    }

    fn rx_inject(&mut self, frame: &[u8]) -> bool {
        let mut dma = ArenaDma {
            base: self.arena_base,
            ram: &mut self.ram,
        };
        self.dev.rx_inject(&mut dma, frame)
    }

    fn device(&mut self) -> &mut E1000Device {
        &mut self.dev
    }

    fn counts(&self) -> AccessCounts {
        self.counts
    }

    fn arena_base(&self) -> u64 {
        self.arena_base
    }

    fn arena_len(&self) -> u64 {
        self.ram.len() as u64
    }

    fn mmio_base(&self) -> u64 {
        self.mmio_base
    }
}

/// Synthetic guard-site identities for the hand-guarded driver build.
///
/// The interpreted path gets per-instruction site IDs from the compiler
/// pass; the native `GuardedMem` build has no IR, so it classifies each
/// guarded address into one of a fixed set of sites by arena region —
/// the same granularity the paper's per-path breakdown uses (descriptor
/// ring vs stats block vs doorbell ...).
struct GuardTrace {
    tracer: Arc<Tracer>,
    /// Sites indexed by [`GuardTrace::classify`]'s return value.
    sites: [SiteId; 7],
}

/// Labels for the synthetic driver sites, in `GuardTrace::sites` order.
const DRIVER_SITE_LABELS: [&str; 7] = [
    "mmio_doorbell",
    "tx_desc_ring",
    "rx_desc_ring",
    "stats_block",
    "tx_bufs",
    "rx_bufs",
    "other",
];

impl GuardTrace {
    fn new(tracer: Arc<Tracer>) -> GuardTrace {
        let sites = DRIVER_SITE_LABELS.map(|l| tracer.register_site("e1000e", l));
        GuardTrace { tracer, sites }
    }

    /// Classify a guarded address into a site index.
    fn classify(arena_base: u64, mmio_base: u64, addr: u64) -> usize {
        if addr >= mmio_base && addr < mmio_base + BAR_SIZE {
            return 0;
        }
        let Some(off) = addr.checked_sub(arena_base) else {
            return 6;
        };
        match off {
            o if (TX_RING_OFF..RX_RING_OFF).contains(&o) => 1,
            o if (RX_RING_OFF..STATS_OFF).contains(&o) => 2,
            o if (STATS_OFF..TX_BUFS_OFF).contains(&o) => 3,
            o if (TX_BUFS_OFF..RX_BUFS_OFF).contains(&o) => 4,
            o if o >= RX_BUFS_OFF => 5,
            _ => 6,
        }
    }

    fn site_for(&self, arena_base: u64, mmio_base: u64, addr: u64) -> SiteId {
        self.sites[Self::classify(arena_base, mmio_base, addr)]
    }
}

/// The driver's guard-site map as a [`SiteMap`] — the same classification
/// [`GuardTrace::classify`] performs, expressed as address ranges so the
/// guard TLB can key its entries by site. Site indices follow
/// [`DRIVER_SITE_LABELS`] order; unmatched addresses classify as site 6
/// ("other").
pub fn driver_site_map(arena_base: u64, mmio_base: u64) -> SiteMap {
    SiteMap::new(6)
        .range(mmio_base, mmio_base + BAR_SIZE, 0)
        .range(arena_base + TX_RING_OFF, arena_base + RX_RING_OFF, 1)
        .range(arena_base + RX_RING_OFF, arena_base + STATS_OFF, 2)
        .range(arena_base + STATS_OFF, arena_base + TX_BUFS_OFF, 3)
        .range(arena_base + TX_BUFS_OFF, arena_base + RX_BUFS_OFF, 4)
        .range(arena_base + RX_BUFS_OFF, u64::MAX, 5)
}

/// The transformed build: every load/store is preceded by a guard check.
pub struct GuardedMem<P: PolicyCheck> {
    inner: DirectMem,
    policy: P,
    trace: Option<GuardTrace>,
}

impl<P: PolicyCheck> GuardedMem<P> {
    /// Wrap a memory space with a policy.
    pub fn new(inner: DirectMem, policy: P) -> GuardedMem<P> {
        GuardedMem {
            inner,
            policy,
            trace: None,
        }
    }

    /// Wrap a memory space with a policy and report every guard check to
    /// `tracer` under synthetic per-region sites (see [`GuardTrace`]).
    /// Costs one relaxed atomic load per guard while tracing is off.
    pub fn with_tracer(inner: DirectMem, policy: P, tracer: Arc<Tracer>) -> GuardedMem<P> {
        let trace = Some(GuardTrace::new(tracer));
        GuardedMem {
            inner,
            policy,
            trace,
        }
    }

    /// The policy in use.
    pub fn policy(&self) -> &P {
        &self.policy
    }

    /// Run a guard check from a shared reference — the SMP check entry
    /// point. Requires `P: Sync` so any number of threads can consult the
    /// policy concurrently (with [`kop_policy::PolicyModule`] this is the
    /// lock-free snapshot path). Checks only; it does not perform the
    /// access and does not bump this space's `guard_calls` counter.
    pub fn check_concurrent(
        &self,
        addr: u64,
        size: u64,
        flags: AccessFlags,
    ) -> Result<(), Violation>
    where
        P: Sync,
    {
        self.policy.carat_guard(VAddr(addr), Size(size), flags)
    }
}

impl GuardedMem<TlbPolicy> {
    /// The SMP fast-path build: wrap a memory space with a shared policy
    /// module fronted by a private per-thread guard TLB keyed by the
    /// driver's site map. Steady-state guards cost one atomic generation
    /// load plus a cached-region revalidation; any policy write
    /// invalidates the TLB via generation bump.
    pub fn with_tlb(inner: DirectMem, policy: Arc<PolicyModule>) -> GuardedMem<TlbPolicy> {
        Self::with_tlb_prefixed(inner, policy, "policy.tlb")
    }

    /// Like [`GuardedMem::with_tlb`] but with a custom counter prefix for
    /// the TLB's hit/miss cells — give each queue/worker its own prefix
    /// (e.g. `policy.tlb.q3`) so all TLBs can register into one counter
    /// registry without aliasing.
    pub fn with_tlb_prefixed(
        inner: DirectMem,
        policy: Arc<PolicyModule>,
        prefix: &str,
    ) -> GuardedMem<TlbPolicy> {
        let map = driver_site_map(inner.arena_base, inner.mmio_base);
        let tlb = GuardTlb::with_prefix(prefix);
        GuardedMem::new(inner, TlbPolicy::new(policy, map, tlb))
    }

    /// [`GuardedMem::with_tlb`] plus per-site guard tracing (see
    /// [`GuardedMem::with_tracer`]); the TLB's hit/miss counters are also
    /// registered into the tracer's counter registry.
    pub fn with_tlb_and_tracer(
        inner: DirectMem,
        policy: Arc<PolicyModule>,
        tracer: Arc<Tracer>,
    ) -> GuardedMem<TlbPolicy> {
        let map = driver_site_map(inner.arena_base, inner.mmio_base);
        let tlb = GuardTlb::new();
        tlb.register_into(tracer.counters());
        let trace = Some(GuardTrace::new(tracer));
        GuardedMem {
            inner,
            policy: TlbPolicy::new(policy, map, tlb),
            trace,
        }
    }
}

impl GuardedMem<TlbPolicy> {
    /// Like [`GuardedMem::with_tlb_prefixed`], but the TLB starts warm:
    /// each `(site, addr, size, flags)` seed is pre-resolved against the
    /// current policy snapshot before the first guard runs, so a
    /// restarted (or freshly promoted) worker pays no cold-miss burst.
    /// Preseeding bumps only the `<prefix>.preseeded` counter — never
    /// hits, misses, or policy checks — so reconciliation still sees
    /// exactly one policy check per cold guard.
    pub fn with_tlb_warmed(
        inner: DirectMem,
        policy: Arc<PolicyModule>,
        prefix: &str,
        seeds: &[(u32, u64, u64, AccessFlags)],
    ) -> GuardedMem<TlbPolicy> {
        let map = driver_site_map(inner.arena_base, inner.mmio_base);
        let tlb = GuardTlb::with_prefix(prefix);
        GuardedMem::new(inner, TlbPolicy::warmed(policy, map, tlb, seeds))
    }
}

impl GuardedMem<HotPolicy> {
    /// The inline-bounds build: wrap a memory space with a shared policy
    /// fronted by a per-thread [`HotPolicy`] that admits promoted sites
    /// with three baked compares (bounds + generation) and deopts to the
    /// full policy path on any miss. Counters land under `"jit."`.
    pub fn with_hot(
        inner: DirectMem,
        policy: Arc<PolicyModule>,
        sites: Vec<HotSite>,
    ) -> GuardedMem<HotPolicy> {
        let map = driver_site_map(inner.arena_base, inner.mmio_base);
        GuardedMem::new(inner, HotPolicy::promote(policy, map, sites))
    }

    /// Like [`GuardedMem::with_hot`] with a custom counter prefix (one
    /// per queue/worker, e.g. `jit.q3`).
    pub fn with_hot_prefixed(
        inner: DirectMem,
        policy: Arc<PolicyModule>,
        sites: Vec<HotSite>,
        prefix: &str,
    ) -> GuardedMem<HotPolicy> {
        let map = driver_site_map(inner.arena_base, inner.mmio_base);
        GuardedMem::new(
            inner,
            HotPolicy::promote_prefixed(prefix, policy, map, sites),
        )
    }
}

impl<P: PolicyCheck> GuardedMem<P> {
    #[inline(always)]
    fn guard(&mut self, addr: u64, size: u64, flags: AccessFlags) -> Result<(), Violation> {
        self.inner.counts.guard_calls += 1;
        if let Some(t) = self.trace.as_ref().filter(|t| t.tracer.enabled()) {
            let site = t.site_for(self.inner.arena_base, self.inner.mmio_base, addr);
            t.tracer
                .record(Producer::Driver, TraceEvent::GuardEnter { site });
            let t0 = std::time::Instant::now();
            let r = self.policy.carat_guard(VAddr(addr), Size(size), flags);
            let ns = (t0.elapsed().as_nanos() as u64).max(1);
            let decision = if r.is_ok() {
                GuardDecision::Allowed
            } else {
                GuardDecision::Denied
            };
            t.tracer.record(
                Producer::Driver,
                TraceEvent::GuardExit { site, decision, ns },
            );
            // Envelope-aware: feeds the per-site address range the
            // promotion pass maps onto a policy region.
            t.tracer.record_check_at(site, ns, r.is_err(), addr, size);
            return r;
        }
        self.policy.carat_guard(VAddr(addr), Size(size), flags)
    }
}

impl<P: PolicyCheck> MemSpace for GuardedMem<P> {
    #[inline]
    fn read(&mut self, addr: u64, size: u64) -> Result<u64, Violation> {
        self.guard(addr, size, AccessFlags::READ)?;
        Ok(self.inner.do_read(addr, size))
    }

    #[inline]
    fn write(&mut self, addr: u64, size: u64, value: u64) -> Result<(), Violation> {
        self.guard(addr, size, AccessFlags::WRITE)?;
        self.inner.do_write(addr, size, value);
        Ok(())
    }

    // The bulk/DMA paths and hardware side are NOT guarded — they are not
    // module loads/stores (paper §4).
    fn bulk_write(&mut self, addr: u64, bytes: &[u8]) {
        self.inner.bulk_write(addr, bytes)
    }

    fn bulk_read(&mut self, addr: u64, len: usize) -> Vec<u8> {
        self.inner.bulk_read(addr, len)
    }

    fn tx_tick(&mut self, sink: &mut dyn FrameSink) -> u64 {
        self.inner.tx_tick(sink)
    }

    fn rx_inject(&mut self, frame: &[u8]) -> bool {
        self.inner.rx_inject(frame)
    }

    fn device(&mut self) -> &mut E1000Device {
        self.inner.device()
    }

    fn counts(&self) -> AccessCounts {
        self.inner.counts()
    }

    fn arena_base(&self) -> u64 {
        self.inner.arena_base()
    }

    fn arena_len(&self) -> u64 {
        self.inner.arena_len()
    }

    fn mmio_base(&self) -> u64 {
        self.inner.mmio_base()
    }

    fn tracer(&self) -> Option<&Arc<Tracer>> {
        self.trace.as_ref().map(|t| &t.tracer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;
    use kop_policy::{NoopPolicy, PolicyModule};

    fn direct() -> DirectMem {
        DirectMem::with_defaults(E1000Device::default())
    }

    #[test]
    fn ram_read_write() {
        let mut m = direct();
        let base = m.arena_base();
        m.write(base + 0x100, 8, 0xdead_beef_cafe_f00d).unwrap();
        assert_eq!(m.read(base + 0x100, 8).unwrap(), 0xdead_beef_cafe_f00d);
        assert_eq!(m.read(base + 0x100, 2).unwrap(), 0xf00d);
        let c = m.counts();
        assert_eq!(c.ram_writes, 1);
        assert_eq!(c.ram_reads, 2);
        assert_eq!(c.guard_calls, 0);
    }

    #[test]
    fn mmio_routes_to_device() {
        let mut m = direct();
        let bar = m.mmio_base();
        m.write(bar + crate::regs::CTRL, 4, crate::regs::ctrl::RST)
            .unwrap();
        let st = m.read(bar + crate::regs::STATUS, 4).unwrap();
        assert!(st & crate::regs::status::LU != 0);
        let c = m.counts();
        assert_eq!(c.mmio_writes, 1);
        assert_eq!(c.mmio_reads, 1);
        assert_eq!(c.ram_reads, 0);
    }

    #[test]
    fn guarded_mem_counts_and_permits() {
        let pm = PolicyModule::new();
        pm.set_default_action(kop_policy::DefaultAction::Allow);
        let mut m = GuardedMem::new(direct(), &pm);
        let base = m.arena_base();
        m.write(base, 8, 1).unwrap();
        m.read(base, 8).unwrap();
        assert_eq!(m.counts().guard_calls, 2);
        assert_eq!(pm.stats().checks, 2);
    }

    #[test]
    fn guarded_mem_blocks_forbidden() {
        let pm = PolicyModule::new(); // default deny
        let arena = kop_core::layout::DIRECT_MAP_BASE;
        pm.add_region(
            kop_core::Region::new(VAddr(arena), Size(0x1000), Protection::READ_WRITE).unwrap(),
        )
        .unwrap();
        let mut m = GuardedMem::new(direct(), &pm);
        assert!(m.write(arena + 0x10, 8, 1).is_ok());
        let v = m.write(arena + 0x2000, 8, 1).unwrap_err();
        assert_eq!(v.addr, VAddr(arena + 0x2000));
        // Denied access did not land (GuardedMem returns before touching
        // RAM).
        let mut probe = m;
        // bulk path is unguarded, read it back raw:
        assert_eq!(probe.bulk_read(arena + 0x2000, 8), vec![0u8; 8]);
    }

    #[test]
    fn bulk_paths_are_unguarded() {
        let pm = PolicyModule::new(); // default deny: guards would reject
        let mut m = GuardedMem::new(direct(), &pm);
        let base = m.arena_base();
        m.bulk_write(base + 0x500, b"payload");
        assert_eq!(m.bulk_read(base + 0x500, 7), b"payload");
        assert_eq!(m.counts().guard_calls, 0);
        assert_eq!(m.counts().bulk_bytes, 14);
        assert_eq!(pm.stats().checks, 0);
    }

    #[test]
    fn noop_policy_has_zero_policy_work() {
        let mut m = GuardedMem::new(direct(), NoopPolicy);
        let base = m.arena_base();
        for i in 0..100 {
            m.write(base + i * 8, 8, i).unwrap();
        }
        assert_eq!(m.counts().guard_calls, 100);
    }

    #[test]
    fn counts_since_delta() {
        let mut m = direct();
        let base = m.arena_base();
        m.write(base, 8, 1).unwrap();
        let snap = m.counts();
        m.write(base, 8, 2).unwrap();
        m.read(base, 8).unwrap();
        let d = m.counts().since(&snap);
        assert_eq!(d.ram_writes, 1);
        assert_eq!(d.ram_reads, 1);
    }

    #[test]
    #[should_panic(expected = "below arena")]
    fn out_of_arena_access_panics() {
        let mut m = direct();
        let _ = m.read(0x1000, 8);
    }

    #[test]
    fn traced_guards_classify_by_region() {
        let pm = PolicyModule::new();
        pm.set_default_action(kop_policy::DefaultAction::Allow);
        let tracer = Tracer::new();
        tracer.set_enabled(true);
        let mut m = GuardedMem::with_tracer(direct(), &pm, Arc::clone(&tracer));
        let base = m.arena_base();
        let bar = m.mmio_base();
        m.write(base + crate::driver::TX_RING_OFF, 8, 1).unwrap();
        m.write(base + crate::driver::STATS_OFF, 8, 1).unwrap();
        m.read(bar + crate::regs::STATUS, 4).unwrap();
        assert_eq!(tracer.total_checks(), 3);
        let labels: Vec<String> = tracer
            .profile_snapshot()
            .into_iter()
            .map(|(meta, p)| {
                assert_eq!(p.hits, 1);
                assert_eq!(meta.module, "e1000e");
                meta.label
            })
            .collect();
        assert!(labels.contains(&"tx_desc_ring".to_string()), "{labels:?}");
        assert!(labels.contains(&"stats_block".to_string()));
        assert!(labels.contains(&"mmio_doorbell".to_string()));
        // GuardEnter + GuardExit per check, all from the Driver producer.
        let snap = tracer.snapshot();
        assert_eq!(snap.records.len(), 6);
        assert!(snap.records.iter().all(|r| r.producer == Producer::Driver));
    }

    #[test]
    fn site_map_agrees_with_guard_trace_classification() {
        let arena = kop_core::layout::DIRECT_MAP_BASE;
        let bar = kop_core::layout::MMIO_WINDOW_BASE;
        let map = driver_site_map(arena, bar);
        let probes = [
            bar,
            bar + 0x100,
            arena + crate::driver::TX_RING_OFF,
            arena + crate::driver::RX_RING_OFF,
            arena + crate::driver::STATS_OFF,
            arena + crate::driver::TX_BUFS_OFF,
            arena + crate::driver::RX_BUFS_OFF,
            arena + crate::driver::RX_BUFS_OFF + (64 << 20),
            0x1000, // below the arena
        ];
        for addr in probes {
            assert_eq!(
                map.classify(addr) as usize,
                GuardTrace::classify(arena, bar, addr),
                "site map diverged at {addr:#x}"
            );
        }
    }

    #[test]
    fn tlb_front_caches_driver_guards() {
        let pm = std::sync::Arc::new(PolicyModule::two_region_paper_policy());
        let mut m = GuardedMem::with_tlb(direct(), std::sync::Arc::clone(&pm));
        let base = m.arena_base();
        let before = pm.stats().checks;
        for _ in 0..100 {
            m.write(base + crate::driver::TX_RING_OFF, 8, 1).unwrap();
        }
        // One miss filled the TLB; the other 99 guards never reached the
        // policy module.
        assert_eq!(pm.stats().checks - before, 1);
        assert_eq!(m.counts().guard_calls, 100);
        let tlb = m.policy().tlb();
        assert_eq!(tlb.hits() + tlb.misses(), 100);
        // A policy write invalidates every cached grant at once.
        pm.clear_regions();
        assert!(m.write(base + crate::driver::TX_RING_OFF, 8, 1).is_err());
    }

    #[test]
    fn concurrent_checks_from_shared_reference() {
        let pm = std::sync::Arc::new(PolicyModule::two_region_paper_policy());
        let m = GuardedMem::new(direct(), std::sync::Arc::clone(&pm));
        let base = m.arena_base();
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = &m;
                s.spawn(move || {
                    for i in 0..1000u64 {
                        m.check_concurrent(base + (i % 256) * 8, 8, AccessFlags::RW)
                            .unwrap();
                        assert!(m.check_concurrent(0x4000, 8, AccessFlags::READ).is_err());
                    }
                });
            }
        });
        assert_eq!(pm.stats().checks, 8000);
    }

    #[test]
    fn disabled_tracer_records_nothing_from_guards() {
        let pm = PolicyModule::new();
        pm.set_default_action(kop_policy::DefaultAction::Allow);
        let tracer = Tracer::new(); // disabled by default
        let mut m = GuardedMem::with_tracer(direct(), &pm, Arc::clone(&tracer));
        let base = m.arena_base();
        m.write(base, 8, 1).unwrap();
        assert_eq!(m.counts().guard_calls, 1, "guard itself still runs");
        assert_eq!(tracer.total_checks(), 0);
        assert!(tracer.snapshot().records.is_empty());
    }
}
