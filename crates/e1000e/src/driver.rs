//! The e1000e-style driver, written once and instantiated over either
//! memory space (baseline vs guarded) — "No code was modified in the
//! driver. If we were applying CARAT KOP to a specialized HPC module ...
//! CARAT KOP could be applied with a simple recompilation" (§4.1).
//!
//! The transmit path mirrors the real driver's CPU work: clean completed
//! descriptors, construct the Ethernet header, queue a transfer
//! descriptor, ring the tail doorbell — every one of those loads/stores
//! is guarded in the `GuardedMem` instantiation. Payload bytes travel the
//! DMA path and are never touched by guarded code.

use kop_core::Violation;
use kop_sim::PacketWork;
use kop_trace::{Counter, CounterRegistry, Producer, TraceEvent};

use crate::desc::{rxsts, txcmd, txsts, DESC_SIZE};
use crate::device::FrameSink;
use crate::memspace::{AccessCounts, MemSpace};
use crate::regs::{self, ctrl, eerd, intr, rctl, status, tctl};

/// Driver errors.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DriverError {
    /// A guard rejected one of the driver's memory accesses.
    Guard(Violation),
    /// The transmit ring is full (the caller should back off — the paper's
    /// latency outliers are exactly this case).
    RingFull,
    /// The link is down.
    NoLink,
    /// Hardware did not behave as expected.
    Hw(String),
    /// Frame too large for a buffer slot.
    FrameTooBig(usize),
}

impl From<Violation> for DriverError {
    fn from(v: Violation) -> Self {
        DriverError::Guard(v)
    }
}

impl core::fmt::Display for DriverError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DriverError::Guard(v) => write!(f, "guard rejected driver access: {v}"),
            DriverError::RingFull => f.write_str("transmit ring full"),
            DriverError::NoLink => f.write_str("link down"),
            DriverError::Hw(s) => write!(f, "hardware error: {s}"),
            DriverError::FrameTooBig(n) => write!(f, "frame of {n} bytes exceeds buffer"),
        }
    }
}

impl std::error::Error for DriverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DriverError::Guard(v) => Some(v),
            _ => None,
        }
    }
}

/// Driver statistics (mirrors the guarded in-arena stats block).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DriverStats {
    /// Frames queued for transmit.
    pub tx_packets: u64,
    /// Payload+header bytes queued.
    pub tx_bytes: u64,
    /// Frames received.
    pub rx_packets: u64,
    /// Bytes received.
    pub rx_bytes: u64,
    /// Transmit attempts rejected because the ring was full.
    pub ring_full_events: u64,
    /// Descriptors cleaned.
    pub cleaned: u64,
    /// Watchdog invocations that detected a TX hang (stuck TDH with
    /// pending descriptors) and triggered an adapter reset.
    pub watchdog_fires: u64,
    /// Full adapter resets performed (watchdog or explicit).
    pub resets: u64,
    /// Transmit attempts re-tried after a transient error.
    pub retries: u64,
    /// Frames that were queued but still in flight when a reset dropped
    /// the ring (lost work the retry layer may resubmit).
    pub tx_dropped: u64,
    /// Receiver-overrun events observed at ISR entry (the wire offered
    /// frames the device had no free descriptors for and dropped).
    pub rx_dropped: u64,
    /// Poll passes that found no completed RX descriptor at all.
    pub rx_no_desc: u64,
    /// Interrupt-handler entries with a non-zero cause.
    pub irq_fired: u64,
    /// Frames harvested beyond the first within a single poll pass —
    /// frames serviced without a dedicated interrupt (the payoff of
    /// NAPI batching plus the device's RDTR throttle).
    pub irq_coalesced: u64,
    /// NAPI-style poll passes executed.
    pub poll_passes: u64,
}

/// The driver's live counter cells. [`DriverStats`] is the *snapshot*
/// type callers read; these are the [`kop_trace::Counter`]s behind it,
/// so a figure (or `/dev/trace counters`) can watch the same cells the
/// driver increments instead of polling ad-hoc struct copies.
#[derive(Debug)]
struct DriverCounters {
    tx_packets: Counter,
    tx_bytes: Counter,
    rx_packets: Counter,
    rx_bytes: Counter,
    ring_full_events: Counter,
    cleaned: Counter,
    watchdog_fires: Counter,
    resets: Counter,
    retries: Counter,
    tx_dropped: Counter,
    rx_dropped: Counter,
    rx_no_desc: Counter,
    irq_fired: Counter,
    irq_coalesced: Counter,
    poll_passes: Counter,
}

impl Default for DriverCounters {
    fn default() -> DriverCounters {
        DriverCounters {
            tx_packets: Counter::new("e1000e.tx_packets"),
            tx_bytes: Counter::new("e1000e.tx_bytes"),
            rx_packets: Counter::new("e1000e.rx_packets"),
            rx_bytes: Counter::new("e1000e.rx_bytes"),
            ring_full_events: Counter::new("e1000e.ring_full_events"),
            cleaned: Counter::new("e1000e.cleaned"),
            watchdog_fires: Counter::new("e1000e.watchdog_fires"),
            resets: Counter::new("e1000e.resets"),
            retries: Counter::new("e1000e.retries"),
            tx_dropped: Counter::new("e1000e.tx_dropped"),
            rx_dropped: Counter::new("e1000e.rx_dropped"),
            rx_no_desc: Counter::new("e1000e.rx_no_desc"),
            irq_fired: Counter::new("e1000e.irq_fired"),
            irq_coalesced: Counter::new("e1000e.irq_coalesced"),
            poll_passes: Counter::new("e1000e.poll_passes"),
        }
    }
}

impl DriverCounters {
    fn all(&self) -> [&Counter; 15] {
        [
            &self.tx_packets,
            &self.tx_bytes,
            &self.rx_packets,
            &self.rx_bytes,
            &self.ring_full_events,
            &self.cleaned,
            &self.watchdog_fires,
            &self.resets,
            &self.retries,
            &self.tx_dropped,
            &self.rx_dropped,
            &self.rx_no_desc,
            &self.irq_fired,
            &self.irq_coalesced,
            &self.poll_passes,
        ]
    }

    fn snapshot(&self) -> DriverStats {
        DriverStats {
            tx_packets: self.tx_packets.get(),
            tx_bytes: self.tx_bytes.get(),
            rx_packets: self.rx_packets.get(),
            rx_bytes: self.rx_bytes.get(),
            ring_full_events: self.ring_full_events.get(),
            cleaned: self.cleaned.get(),
            watchdog_fires: self.watchdog_fires.get(),
            resets: self.resets.get(),
            retries: self.retries.get(),
            tx_dropped: self.tx_dropped.get(),
            rx_dropped: self.rx_dropped.get(),
            rx_no_desc: self.rx_no_desc.get(),
            irq_fired: self.irq_fired.get(),
            irq_coalesced: self.irq_coalesced.get(),
            poll_passes: self.poll_passes.get(),
        }
    }
}

// Arena layout (offsets from arena base). pub(crate) so the memory
// space can classify guarded addresses into trace sites.
pub(crate) const TX_RING_OFF: u64 = 0x1000;
pub(crate) const RX_RING_OFF: u64 = 0x3000;
pub(crate) const STATS_OFF: u64 = 0x5000;
pub(crate) const TX_BUFS_OFF: u64 = 0x10_000;
pub(crate) const RX_BUFS_OFF: u64 = 0x90_000;

/// TX ring entries (a typical e1000e default).
pub const TX_ENTRIES: u64 = 256;
/// RX ring entries.
pub const RX_ENTRIES: u64 = 128;
/// Per-packet buffer slot size.
pub const BUF_SIZE: u64 = 2048;
/// Ethernet header length.
pub const ETH_HLEN: usize = 14;
/// Minimum frame length the driver pads to (ETH_ZLEN, no FCS).
pub const ETH_ZLEN: usize = 60;
/// Maximum frame length (1500 MTU + header).
pub const ETH_FRAME_LEN: usize = 1514;

/// The driver.
pub struct E1000Driver<M: MemSpace> {
    mem: M,
    bar: u64,
    arena: u64,
    mac: [u8; 6],
    next_to_use: u64,
    next_to_clean: u64,
    rx_next: u64,
    /// Chunks of a multi-descriptor RX frame awaiting its EOP descriptor.
    rx_partial: Vec<u8>,
    /// Buffer address of the current partial frame's first chunk (where
    /// the Ethernet header lives — the guarded header-parse target).
    rx_head_buf: u64,
    stats: DriverCounters,
    up: bool,
    /// TDH observed by the previous watchdog pass (hang detection).
    wd_tdh: u64,
    /// Whether the previous watchdog pass saw pending descriptors.
    wd_armed: bool,
}

impl<M: MemSpace> E1000Driver<M> {
    /// Probe the device: reset, read the MAC from EEPROM, bring the link
    /// up. Mirrors `e1000_probe`.
    pub fn probe(mut mem: M) -> Result<E1000Driver<M>, DriverError> {
        let bar = mem.mmio_base();
        let arena = mem.arena_base();

        // Software reset, then set link up.
        mem.write(bar + regs::CTRL, 4, ctrl::RST)?;
        mem.write(bar + regs::CTRL, 4, ctrl::SLU)?;
        let st = mem.read(bar + regs::STATUS, 4)?;
        if st & status::LU == 0 {
            return Err(DriverError::NoLink);
        }

        // MAC address from EEPROM words 0..3.
        let mut mac = [0u8; 6];
        for w in 0..3u64 {
            mem.write(bar + regs::EERD, 4, eerd::START | (w << eerd::ADDR_SHIFT))?;
            let mut v = mem.read(bar + regs::EERD, 4)?;
            let mut spins = 0;
            while v & eerd::DONE == 0 {
                v = mem.read(bar + regs::EERD, 4)?;
                spins += 1;
                if spins > 1000 {
                    return Err(DriverError::Hw("EEPROM read timeout".into()));
                }
            }
            let word = ((v >> eerd::DATA_SHIFT) & 0xffff) as u16;
            mac[(w * 2) as usize..(w * 2 + 2) as usize].copy_from_slice(&word.to_le_bytes());
        }

        Ok(E1000Driver {
            mem,
            bar,
            arena,
            mac,
            next_to_use: 0,
            next_to_clean: 0,
            rx_next: 0,
            rx_partial: Vec::new(),
            rx_head_buf: 0,
            stats: DriverCounters::default(),
            up: false,
            wd_tdh: 0,
            wd_armed: false,
        })
    }

    /// Bring the interface up: program rings, receive address, enable
    /// TX/RX, unmask interrupts. Mirrors `e1000_open`.
    pub fn up(&mut self) -> Result<(), DriverError> {
        let bar = self.bar;
        let arena = self.arena;

        // Program the receive address from the EEPROM MAC.
        let ral = u32::from_le_bytes(self.mac[0..4].try_into().expect("4 bytes")) as u64;
        let rah =
            u16::from_le_bytes(self.mac[4..6].try_into().expect("2 bytes")) as u64 | (1 << 31);
        self.mem.write(bar + regs::RAL0, 4, ral)?;
        self.mem.write(bar + regs::RAH0, 4, rah)?;

        // TX ring.
        self.mem
            .write(bar + regs::TDBAL, 4, (arena + TX_RING_OFF) & 0xffff_ffff)?;
        self.mem
            .write(bar + regs::TDBAH, 4, (arena + TX_RING_OFF) >> 32)?;
        self.mem
            .write(bar + regs::TDLEN, 4, TX_ENTRIES * DESC_SIZE)?;
        self.mem.write(bar + regs::TDH, 4, 0)?;
        self.mem.write(bar + regs::TDT, 4, 0)?;
        self.mem.write(bar + regs::TCTL, 4, tctl::EN | tctl::PSP)?;

        // RX ring: descriptors point at the RX buffer slots.
        self.mem
            .write(bar + regs::RDBAL, 4, (arena + RX_RING_OFF) & 0xffff_ffff)?;
        self.mem
            .write(bar + regs::RDBAH, 4, (arena + RX_RING_OFF) >> 32)?;
        self.mem
            .write(bar + regs::RDLEN, 4, RX_ENTRIES * DESC_SIZE)?;
        for i in 0..RX_ENTRIES {
            let daddr = arena + RX_RING_OFF + i * DESC_SIZE;
            let buf = arena + RX_BUFS_OFF + i * BUF_SIZE;
            self.mem.write(daddr, 8, buf)?; // buffer address
            self.mem.write(daddr + 8, 8, 0)?; // clear status word
        }
        self.mem.write(bar + regs::RDH, 4, 0)?;
        // Leave one slot unowned so the device can distinguish full/empty.
        self.mem.write(bar + regs::RDT, 4, RX_ENTRIES - 1)?;
        self.mem.write(bar + regs::RCTL, 4, rctl::EN | rctl::BAM)?;

        // Unmask the interrupts the driver handles.
        self.mem
            .write(bar + regs::IMS, 4, intr::TXDW | intr::RXT0 | intr::LSC)?;

        self.up = true;
        Ok(())
    }

    /// The MAC address read at probe time.
    pub fn mac(&self) -> [u8; 6] {
        self.mac
    }

    /// Whether `up()` has completed.
    pub fn is_up(&self) -> bool {
        self.up
    }

    /// Driver statistics (a point-in-time snapshot of the live counter
    /// cells).
    pub fn stats(&self) -> DriverStats {
        self.stats.snapshot()
    }

    /// Register the driver's live counter cells into `registry` (e.g. a
    /// tracer's registry, so `/dev/trace counters` and figures read the
    /// same cells the driver increments).
    pub fn register_counters(&self, registry: &CounterRegistry) {
        for c in self.stats.all() {
            registry.register(c);
        }
    }

    /// Emit a driver trace event if the memory space carries a tracer.
    fn trace_event(&self, ev: TraceEvent) {
        if let Some(t) = self.mem.tracer() {
            t.record(Producer::Driver, ev);
        }
    }

    /// The exact memory geometry this driver's datapath touches, for
    /// building a least-privilege policy
    /// ([`kop_policy::PolicyModule::datapath_policy`]): descriptor rings
    /// and stats scratch as control windows, TX buffers read-write, RX
    /// buffers (device-DMA-filled) read-only, plus the MMIO BAR.
    pub fn datapath_geometry(&self) -> kop_policy::DatapathGeometry {
        kop_policy::DatapathGeometry {
            control: vec![
                (self.arena + TX_RING_OFF, TX_ENTRIES * DESC_SIZE),
                (self.arena + RX_RING_OFF, RX_ENTRIES * DESC_SIZE),
                (self.arena + STATS_OFF, 64),
            ],
            tx_buffers: (self.arena + TX_BUFS_OFF, TX_ENTRIES * BUF_SIZE),
            rx_buffers: (self.arena + RX_BUFS_OFF, RX_ENTRIES * BUF_SIZE),
            mmio: (self.bar, crate::regs::BAR_SIZE),
        }
    }

    /// Access the memory space (harness: ticking the device, counts).
    pub fn mem(&mut self) -> &mut M {
        &mut self.mem
    }

    /// Shared access to the memory space (harness: reading fault or
    /// access statistics without a mutable borrow).
    pub fn mem_ref(&self) -> &M {
        &self.mem
    }

    /// Access counters snapshot.
    pub fn counts(&self) -> AccessCounts {
        self.mem.counts()
    }

    /// Convert an access-count delta into the machine model's per-packet
    /// work description.
    pub fn work_from(delta: &AccessCounts) -> PacketWork {
        PacketWork {
            reads: delta.ram_reads + delta.mmio_reads,
            writes: delta.ram_writes,
            mmio: delta.mmio_reads + delta.mmio_writes,
            dma_bytes: delta.bulk_bytes,
        }
    }

    /// Reclaim completed transmit descriptors (mirrors
    /// `e1000_clean_tx_irq`). Returns how many were cleaned.
    pub fn clean_tx(&mut self) -> Result<u64, DriverError> {
        let mut cleaned = 0;
        while self.next_to_clean != self.next_to_use {
            let daddr = self.arena + TX_RING_OFF + self.next_to_clean * DESC_SIZE;
            let sts = self.mem.read(daddr + 12, 1)?;
            if sts & txsts::DD as u64 == 0 {
                break;
            }
            // Clear the status byte so the slot can be reused.
            self.mem.write(daddr + 12, 1, 0)?;
            self.next_to_clean = (self.next_to_clean + 1) % TX_ENTRIES;
            cleaned += 1;
        }
        self.stats.cleaned.add(cleaned);
        Ok(cleaned)
    }

    fn ring_full(&self) -> bool {
        (self.next_to_use + 1) % TX_ENTRIES == self.next_to_clean
    }

    /// Queue one frame for transmission (mirrors `e1000_xmit_frame`).
    ///
    /// The *payload* reaches the buffer through the unguarded bulk path
    /// (it is sk_buff data, moved by DMA); the *header*, the *descriptor*,
    /// the *stats update*, and the *doorbell* are CPU work and guarded.
    pub fn xmit(
        &mut self,
        dst: [u8; 6],
        ethertype: u16,
        payload: &[u8],
    ) -> Result<(), DriverError> {
        if !self.up {
            return Err(DriverError::Hw("interface is down".into()));
        }
        let frame_len = (ETH_HLEN + payload.len()).max(ETH_ZLEN);
        if frame_len > ETH_FRAME_LEN || (frame_len as u64) > BUF_SIZE {
            return Err(DriverError::FrameTooBig(frame_len));
        }

        // Reclaim finished slots first.
        self.clean_tx()?;
        if self.ring_full() {
            self.stats.ring_full_events.inc();
            return Err(DriverError::RingFull);
        }

        let slot = self.next_to_use;
        let buf = self.arena + TX_BUFS_OFF + slot * BUF_SIZE;

        // Construct the Ethernet header — CPU stores, guarded.
        // [dst(6) | src(6) | ethertype(2)] packed as 8 + 4 + 2 bytes.
        let src = self.mac;
        let w0 = u64::from_le_bytes([
            dst[0], dst[1], dst[2], dst[3], dst[4], dst[5], src[0], src[1],
        ]);
        let w1 = u32::from_le_bytes([src[2], src[3], src[4], src[5]]) as u64;
        let w2 = ethertype.to_be() as u64;
        self.mem.write(buf, 8, w0)?;
        self.mem.write(buf + 8, 4, w1)?;
        self.mem.write(buf + 12, 2, w2)?;

        // Attach the payload (sk_buff data — unguarded DMA-side copy),
        // padding short frames to the Ethernet minimum.
        let mut body = payload.to_vec();
        body.resize(frame_len - ETH_HLEN, 0);
        self.mem.bulk_write(buf + ETH_HLEN as u64, &body);

        self.queue_descriptor(slot, buf, frame_len)
    }

    /// The common tail of the transmit path: write the transfer
    /// descriptor, update the in-arena stats block, ring the doorbell —
    /// all guarded, identical access sequence for [`Self::xmit`] and
    /// [`Self::xmit_raw`].
    fn queue_descriptor(
        &mut self,
        slot: u64,
        buf: u64,
        frame_len: usize,
    ) -> Result<(), DriverError> {
        // Write the transfer descriptor — two guarded 8-byte stores.
        let daddr = self.arena + TX_RING_OFF + slot * DESC_SIZE;
        self.mem.write(daddr, 8, buf)?;
        let meta = (frame_len as u64) | ((txcmd::EOP | txcmd::IFCS | txcmd::RS) as u64) << 24;
        self.mem.write(daddr + 8, 8, meta)?;

        // Update the driver's stats block (in-arena, guarded) — the real
        // driver updates netdev stats on this path too.
        let stats_base = self.arena + STATS_OFF;
        let pk = self.mem.read(stats_base, 8)?;
        self.mem.write(stats_base, 8, pk + 1)?;
        let by = self.mem.read(stats_base + 8, 8)?;
        self.mem.write(stats_base + 8, 8, by + frame_len as u64)?;

        // Advance and ring the doorbell — guarded MMIO store.
        self.next_to_use = (slot + 1) % TX_ENTRIES;
        self.mem.write(self.bar + regs::TDT, 4, self.next_to_use)?;

        self.stats.tx_packets.inc();
        self.stats.tx_bytes.add(frame_len as u64);
        self.trace_event(TraceEvent::Xmit {
            bytes: frame_len as u64,
        });
        Ok(())
    }

    /// Queue a pre-built Ethernet frame (header included) — how migrated
    /// in-flight frames from a draining driver are resubmitted on its
    /// successor during a live upgrade. Same guarded access sequence as
    /// [`Self::xmit`].
    pub fn xmit_raw(&mut self, frame: &[u8]) -> Result<(), DriverError> {
        if !self.up {
            return Err(DriverError::Hw("interface is down".into()));
        }
        if frame.len() < ETH_HLEN {
            return Err(DriverError::Hw("raw frame shorter than header".into()));
        }
        let frame_len = frame.len().max(ETH_ZLEN);
        if frame_len > ETH_FRAME_LEN || (frame_len as u64) > BUF_SIZE {
            return Err(DriverError::FrameTooBig(frame_len));
        }

        self.clean_tx()?;
        if self.ring_full() {
            self.stats.ring_full_events.inc();
            return Err(DriverError::RingFull);
        }

        let slot = self.next_to_use;
        let buf = self.arena + TX_BUFS_OFF + slot * BUF_SIZE;

        // Header — CPU stores, guarded, byte-for-byte the source frame.
        let w0 = u64::from_le_bytes(frame[0..8].try_into().expect("8 bytes"));
        let w1 = u32::from_le_bytes(frame[8..12].try_into().expect("4 bytes")) as u64;
        let w2 = u16::from_le_bytes(frame[12..14].try_into().expect("2 bytes")) as u64;
        self.mem.write(buf, 8, w0)?;
        self.mem.write(buf + 8, 4, w1)?;
        self.mem.write(buf + 12, 2, w2)?;

        // Payload via the bulk (DMA) path, padded to the minimum.
        let mut body = frame[ETH_HLEN..].to_vec();
        body.resize(frame_len - ETH_HLEN, 0);
        self.mem.bulk_write(buf + ETH_HLEN as u64, &body);

        self.queue_descriptor(slot, buf, frame_len)
    }

    /// Frames queued but not yet reclaimed (ring occupancy).
    pub fn tx_pending(&self) -> u64 {
        (self.next_to_use + TX_ENTRIES - self.next_to_clean) % TX_ENTRIES
    }

    /// Bounded drain: give the DMA engine up to `max_ticks` rounds to
    /// deliver every queued frame, reclaiming descriptors as they
    /// complete. Returns frames delivered to `sink`; the caller checks
    /// [`Self::tx_pending`] afterwards — a hung device can leave work
    /// behind, which the upgrade path then force-migrates.
    pub fn drain(&mut self, sink: &mut dyn FrameSink, max_ticks: u64) -> Result<u64, DriverError> {
        let mut delivered = 0u64;
        for _ in 0..max_ticks {
            if self.tx_pending() == 0 {
                break;
            }
            delivered += self.mem.tx_tick(sink);
            self.clean_tx()?;
        }
        Ok(delivered)
    }

    /// Pull every not-yet-delivered frame out of the TX ring and reset
    /// the queue to empty — the forced-migration half of a live upgrade's
    /// drain. Completed-but-uncleaned descriptors are reclaimed first
    /// (those frames are already on the wire and must **not** be
    /// migrated, or the successor would duplicate them); only the slots
    /// the device never processed come back, in submission order,
    /// ready for [`Self::xmit_raw`] on the successor driver.
    pub fn take_pending_frames(&mut self) -> Result<Vec<Vec<u8>>, DriverError> {
        self.clean_tx()?;
        let mut frames = Vec::new();
        let mut slot = self.next_to_clean;
        while slot != self.next_to_use {
            let daddr = self.arena + TX_RING_OFF + slot * DESC_SIZE;
            let buf = self.mem.read(daddr, 8)?;
            let meta = self.mem.read(daddr + 8, 8)?;
            let len = (meta & 0xffff) as usize;
            frames.push(self.mem.bulk_read(buf, len));
            // Neutralize the descriptor so the slot is inert.
            self.mem.write(daddr + 8, 8, 0)?;
            slot = (slot + 1) % TX_ENTRIES;
        }
        // Rewind the tail to the head: the device sees an empty ring.
        self.next_to_use = self.next_to_clean;
        self.mem.write(self.bar + regs::TDT, 4, self.next_to_use)?;
        Ok(frames)
    }

    /// Periodic TX-hang watchdog (mirrors `e1000_watchdog` +
    /// `e1000_tx_timeout`): the hardware head pointer (TDH) must make
    /// progress whenever descriptors are pending. Two consecutive passes
    /// that see the same TDH with work outstanding declare a hang and
    /// perform a full adapter [`Self::reset`]. Returns whether a reset
    /// was performed.
    ///
    /// This is deliberately **not** on the per-packet transmit path — the
    /// paper's per-packet access counts (and the machine-model
    /// calibration) stay untouched; a real driver runs this off a timer.
    pub fn watchdog(&mut self) -> Result<bool, DriverError> {
        let pending = self.tx_pending() > 0;
        let tdh = self.mem.read(self.bar + regs::TDH, 4)?;
        let hung = pending && self.wd_armed && tdh == self.wd_tdh;
        self.trace_event(TraceEvent::Watchdog { fired: hung });
        if hung {
            self.stats.watchdog_fires.inc();
            self.wd_armed = false;
            self.reset()?;
            return Ok(true);
        }
        self.wd_tdh = tdh;
        self.wd_armed = pending;
        Ok(false)
    }

    /// Full adapter reset + ring re-init (mirrors `e1000_reinit_locked`):
    /// software reset, link bring-up, and a fresh `up()` re-programming
    /// both rings. Driver statistics survive; frames still in flight in
    /// the TX ring are dropped (counted in `tx_dropped`).
    pub fn reset(&mut self) -> Result<(), DriverError> {
        self.stats.resets.inc();
        self.stats.tx_dropped.add(self.tx_pending());
        self.trace_event(TraceEvent::Reset);
        self.mem.write(self.bar + regs::CTRL, 4, ctrl::RST)?;
        self.mem.write(self.bar + regs::CTRL, 4, ctrl::SLU)?;
        let st = self.mem.read(self.bar + regs::STATUS, 4)?;
        if st & status::LU == 0 {
            return Err(DriverError::NoLink);
        }
        self.next_to_use = 0;
        self.next_to_clean = 0;
        self.rx_next = 0;
        self.rx_partial.clear();
        self.rx_head_buf = 0;
        self.wd_tdh = 0;
        self.wd_armed = false;
        self.up = false;
        self.up()
    }

    /// Transmit with bounded retry and exponential backoff (the recovery
    /// wrapper fault-tolerant callers use): on `RingFull` or a transient
    /// hardware error the driver gives the DMA engine progressively more
    /// tick rounds to drain, reclaims descriptors, lets the watchdog
    /// reset a hung adapter, and re-attempts up to `max_attempts` times.
    /// Returns the number of frames the device delivered to `sink` across
    /// the call.
    pub fn xmit_with_retry(
        &mut self,
        dst: [u8; 6],
        ethertype: u16,
        payload: &[u8],
        sink: &mut dyn FrameSink,
        max_attempts: u32,
    ) -> Result<u64, DriverError> {
        let mut delivered = 0u64;
        let mut backoff = 1u64;
        for attempt in 0.. {
            match self.xmit(dst, ethertype, payload) {
                Ok(()) => {
                    delivered += self.mem.tx_tick(sink);
                    return Ok(delivered);
                }
                Err(e @ (DriverError::RingFull | DriverError::Hw(_)))
                    if attempt + 1 < max_attempts =>
                {
                    self.stats.retries.inc();
                    // A down interface only comes back through a reset.
                    if matches!(e, DriverError::Hw(_)) && !self.up {
                        self.reset()?;
                    }
                    // Exponential backoff: 1, 2, 4, ... tick rounds for
                    // the device to make progress before re-attempting.
                    for _ in 0..backoff {
                        delivered += self.mem.tx_tick(sink);
                    }
                    backoff = backoff.saturating_mul(2);
                    self.clean_tx()?;
                    self.watchdog()?;
                }
                Err(e) => return Err(e),
            }
        }
        unreachable!("loop returns on success or bounded error")
    }

    /// Transmit and synchronously run the DMA engine (harness
    /// convenience; a real NIC does this concurrently).
    pub fn xmit_and_flush(
        &mut self,
        dst: [u8; 6],
        ethertype: u16,
        payload: &[u8],
        sink: &mut dyn FrameSink,
    ) -> Result<u64, DriverError> {
        self.xmit(dst, ethertype, payload)?;
        Ok(self.mem.tx_tick(sink))
    }

    /// NAPI-style poll pass (mirrors `e1000_clean_rx_irq` under a NAPI
    /// budget): harvest up to `budget` completed RX descriptors, assemble
    /// EOP-spanning frames, touch each frame's Ethernet header with
    /// guarded CPU reads (the `eth_type_trans` work), and return the
    /// consumed slots to the device with **one** batched tail write.
    ///
    /// Returns the completed frames plus `drained`: whether the ring has
    /// no more completed work. Only on `drained == true` does the driver
    /// re-enable RX interrupts (`napi_complete`); otherwise the caller
    /// should poll again — interrupts stay masked and arrivals are
    /// serviced for free.
    pub fn poll(&mut self, budget: u64) -> Result<(Vec<Vec<u8>>, bool), DriverError> {
        self.stats.poll_passes.inc();
        let mut frames = Vec::new();
        let mut harvested = 0u64;
        let mut last_slot = None;
        while harvested < budget {
            let daddr = self.arena + RX_RING_OFF + self.rx_next * DESC_SIZE;
            let sts = self.mem.read(daddr + 12, 1)?;
            if sts & rxsts::DD as u64 == 0 {
                break;
            }
            let len = self.mem.read(daddr + 8, 2)? as usize;
            let buf = self.mem.read(daddr, 8)?;
            if self.rx_partial.is_empty() {
                self.rx_head_buf = buf;
            }
            // Payload bytes ride the bulk (sk_buff/DMA) path, unguarded.
            let chunk = self.mem.bulk_read(buf, len);
            self.rx_partial.extend_from_slice(&chunk);
            // Reset the descriptor for reuse.
            self.mem.write(daddr + 12, 1, 0)?;
            last_slot = Some(self.rx_next);
            self.rx_next = (self.rx_next + 1) % RX_ENTRIES;
            harvested += 1;

            if sts & rxsts::EOP as u64 != 0 {
                let frame = std::mem::take(&mut self.rx_partial);
                if frame.len() >= ETH_HLEN {
                    // Parse the Ethernet header — CPU loads, guarded,
                    // mirroring the 8+4+2 store pattern of the TX side.
                    let _dst_src = self.mem.read(self.rx_head_buf, 8)?;
                    let _src_rest = self.mem.read(self.rx_head_buf + 8, 4)?;
                    let _ethertype = self.mem.read(self.rx_head_buf + 12, 2)?;
                }
                self.stats.rx_packets.inc();
                self.stats.rx_bytes.add(frame.len() as u64);
                self.trace_event(TraceEvent::RxFrame {
                    bytes: frame.len() as u64,
                });
                frames.push(frame);
            }
        }

        if let Some(slot) = last_slot {
            // One guarded MMIO doorbell per pass, not per descriptor.
            self.mem.write(self.bar + regs::RDT, 4, slot)?;
        } else {
            self.stats.rx_no_desc.inc();
        }
        self.stats
            .irq_coalesced
            .add((frames.len() as u64).saturating_sub(1));

        // Drained when the next descriptor is not yet done.
        let daddr = self.arena + RX_RING_OFF + self.rx_next * DESC_SIZE;
        let drained = self.mem.read(daddr + 12, 1)? & rxsts::DD as u64 == 0;
        if drained {
            // napi_complete: unmask RX causes again.
            self.mem
                .write(self.bar + regs::IMS, 4, intr::RXT0 | intr::RXDMT0)?;
        }
        self.trace_event(TraceEvent::PollPass { harvested, drained });
        Ok((frames, drained))
    }

    /// Poll the receive ring to exhaustion (the pre-NAPI compatibility
    /// surface): repeated [`Self::poll`] passes until the ring drains.
    pub fn rx_poll(&mut self) -> Result<Vec<Vec<u8>>, DriverError> {
        let mut frames = Vec::new();
        loop {
            let (mut batch, drained) = self.poll(RX_ENTRIES)?;
            frames.append(&mut batch);
            if drained {
                return Ok(frames);
            }
        }
    }

    /// ISR entry under NAPI: read-and-clear the cause, count it, and —
    /// when it includes RX work — mask RX causes so the device stays
    /// quiet while poll passes run (interrupt mitigation). Returns the
    /// cause bits.
    pub fn irq_enter(&mut self) -> Result<u64, DriverError> {
        let cause = self.mem.read(self.bar + regs::ICR, 4)?;
        if cause != 0 {
            self.stats.irq_fired.inc();
            self.trace_event(TraceEvent::Irq { cause });
        }
        if cause & intr::RXO != 0 {
            // The device dropped wire frames for lack of descriptors.
            self.stats.rx_dropped.inc();
        }
        if cause & (intr::RXT0 | intr::RXDMT0 | intr::RXO) != 0 {
            self.mem
                .write(self.bar + regs::IMC, 4, intr::RXT0 | intr::RXDMT0)?;
        }
        Ok(cause)
    }

    /// Read and clear the interrupt cause register (ISR entry).
    pub fn irq_cause(&mut self) -> Result<u64, DriverError> {
        Ok(self.mem.read(self.bar + regs::ICR, 4)?)
    }

    /// Read the device's good-packets-transmitted counter.
    pub fn hw_tx_count(&mut self) -> Result<u64, DriverError> {
        Ok(self.mem.read(self.bar + regs::GPTC, 4)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::{E1000Device, VecSink};
    use crate::memspace::{DirectMem, GuardedMem};
    use kop_core::{Protection, Region, Size, VAddr};
    use kop_policy::{DefaultAction, NoopPolicy, PolicyModule};

    const MAC: [u8; 6] = [0x02, 0x11, 0x22, 0x33, 0x44, 0x55];
    const DST: [u8; 6] = [0xff; 6];

    fn direct_driver() -> E1000Driver<DirectMem> {
        let mem = DirectMem::with_defaults(E1000Device::new(MAC));
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        drv
    }

    #[test]
    fn probe_reads_mac_and_link() {
        let drv = direct_driver();
        assert_eq!(drv.mac(), MAC);
        assert!(drv.is_up());
    }

    #[test]
    fn xmit_delivers_frame_with_header() {
        let mut drv = direct_driver();
        let mut sink = VecSink::default();
        let sent = drv
            .xmit_and_flush(DST, 0x0800, b"hello, wire", &mut sink)
            .unwrap();
        assert_eq!(sent, 1);
        assert_eq!(sink.frames.len(), 1);
        let frame = &sink.frames[0];
        assert_eq!(frame.len(), ETH_ZLEN); // padded to minimum
        assert_eq!(&frame[0..6], &DST);
        assert_eq!(&frame[6..12], &MAC);
        assert_eq!(&frame[12..14], &0x0800u16.to_be_bytes());
        assert_eq!(&frame[14..25], b"hello, wire");
        assert_eq!(drv.stats().tx_packets, 1);
        assert_eq!(drv.hw_tx_count().unwrap(), 1);
    }

    #[test]
    fn xmit_many_wraps_ring_and_cleans() {
        let mut drv = direct_driver();
        let mut sink = VecSink::default();
        for i in 0..1000u32 {
            let payload = i.to_le_bytes();
            drv.xmit_and_flush(DST, 0x88b5, &payload, &mut sink)
                .unwrap_or_else(|e| panic!("xmit {i}: {e}"));
        }
        assert_eq!(sink.frames.len(), 1000);
        assert_eq!(drv.stats().tx_packets, 1000);
        assert!(drv.stats().cleaned >= 1000 - TX_ENTRIES);
        assert_eq!(drv.stats().ring_full_events, 0);
    }

    #[test]
    fn ring_fills_without_device_tick() {
        let mut drv = direct_driver();
        // Never tick the device: descriptors never complete.
        let mut sent = 0u64;
        loop {
            match drv.xmit(DST, 0x0800, b"x") {
                Ok(()) => sent += 1,
                Err(DriverError::RingFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        assert_eq!(sent, TX_ENTRIES - 1);
        assert_eq!(drv.stats().ring_full_events, 1);
        // Tick the device, clean, and transmit again.
        let mut sink = VecSink::default();
        drv.mem().tx_tick(&mut sink);
        assert_eq!(sink.frames.len() as u64, TX_ENTRIES - 1);
        drv.clean_tx().unwrap();
        drv.xmit(DST, 0x0800, b"y").unwrap();
    }

    #[test]
    fn watchdog_detects_tx_hang_and_resets() {
        let mut drv = direct_driver();
        // Queue frames but never tick the device: TDH stays stuck.
        for _ in 0..4 {
            drv.xmit(DST, 0x0800, b"x").unwrap();
        }
        assert_eq!(drv.tx_pending(), 4);
        // First pass arms the watchdog, second sees no TDH progress.
        assert!(!drv.watchdog().unwrap());
        assert!(drv.watchdog().unwrap());
        let s = drv.stats();
        assert_eq!(s.watchdog_fires, 1);
        assert_eq!(s.resets, 1);
        assert_eq!(s.tx_dropped, 4);
        assert_eq!(drv.tx_pending(), 0);
        assert!(drv.is_up());
        // The adapter works again, and driver stats survived the reset.
        let mut sink = VecSink::default();
        drv.xmit_and_flush(DST, 0x0800, b"y", &mut sink).unwrap();
        assert_eq!(sink.frames.len(), 1);
        assert_eq!(drv.stats().tx_packets, 5);
    }

    #[test]
    fn watchdog_quiet_while_device_progresses() {
        let mut drv = direct_driver();
        let mut sink = VecSink::default();
        for _ in 0..3 {
            drv.xmit_and_flush(DST, 0x0800, b"x", &mut sink).unwrap();
            assert!(!drv.watchdog().unwrap());
        }
        assert_eq!(drv.stats().watchdog_fires, 0);
        assert_eq!(drv.stats().resets, 0);
    }

    #[test]
    fn retry_backoff_recovers_from_ring_full() {
        let mut drv = direct_driver();
        // Fill the ring without ticking the device.
        loop {
            match drv.xmit(DST, 0x0800, b"x") {
                Ok(()) => {}
                Err(DriverError::RingFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        // The retry wrapper ticks, cleans, and lands the frame.
        let mut sink = VecSink::default();
        let delivered = drv
            .xmit_with_retry(DST, 0x0800, b"y", &mut sink, 5)
            .unwrap();
        assert_eq!(delivered, TX_ENTRIES); // backlog + the new frame
        assert!(drv.stats().retries >= 1);
        assert_eq!(drv.stats().resets, 0, "no reset needed for a full ring");
    }

    #[test]
    fn retry_gives_up_after_bounded_attempts() {
        let mut drv = direct_driver();
        loop {
            match drv.xmit(DST, 0x0800, b"x") {
                Ok(()) => {}
                Err(DriverError::RingFull) => break,
                Err(e) => panic!("{e}"),
            }
        }
        // A sink is required but a single attempt means no ticks happen.
        struct NullSink;
        impl FrameSink for NullSink {
            fn deliver(&mut self, _frame: &[u8]) {}
        }
        let err = drv
            .xmit_with_retry(DST, 0x0800, b"y", &mut NullSink, 1)
            .unwrap_err();
        assert_eq!(err, DriverError::RingFull);
    }

    #[test]
    fn drain_delivers_backlog_within_budget() {
        let mut drv = direct_driver();
        for _ in 0..8 {
            drv.xmit(DST, 0x0800, b"backlog").unwrap();
        }
        assert_eq!(drv.tx_pending(), 8);
        let mut sink = VecSink::default();
        let delivered = drv.drain(&mut sink, 64).unwrap();
        assert_eq!(delivered, 8);
        assert_eq!(drv.tx_pending(), 0);
        assert_eq!(sink.frames.len(), 8);
    }

    #[test]
    fn take_pending_migrates_only_undelivered_frames() {
        let mut drv = direct_driver();
        let mut sink = VecSink::default();
        // Two frames delivered on the wire, three still queued.
        drv.xmit_and_flush(DST, 0x0800, b"wire-0", &mut sink)
            .unwrap();
        drv.xmit_and_flush(DST, 0x0800, b"wire-1", &mut sink)
            .unwrap();
        for i in 0..3u8 {
            drv.xmit(DST, 0x0800, &[b'q', i]).unwrap();
        }
        let migrated = drv.take_pending_frames().unwrap();
        // Delivered frames are not migrated (no duplication)...
        assert_eq!(migrated.len(), 3);
        for (i, f) in migrated.iter().enumerate() {
            assert_eq!(f.len(), ETH_ZLEN);
            assert_eq!(&f[14..16], &[b'q', i as u8]);
        }
        // ...and the ring is empty afterwards; the device stays quiet.
        assert_eq!(drv.tx_pending(), 0);
        assert_eq!(drv.mem().tx_tick(&mut sink), 0);
        assert_eq!(sink.frames.len(), 2);
        // Resubmitting a migrated frame via xmit_raw reproduces it
        // byte-identically on the wire.
        drv.xmit_raw(&migrated[0]).unwrap();
        drv.mem().tx_tick(&mut sink);
        assert_eq!(sink.frames.len(), 3);
        assert_eq!(sink.frames[2], migrated[0]);
    }

    #[test]
    fn xmit_raw_matches_xmit_on_the_wire() {
        let mut a = direct_driver();
        let mut sink_a = VecSink::default();
        a.xmit_and_flush(DST, 0x88b5, b"payload bytes", &mut sink_a)
            .unwrap();
        let mut b = direct_driver();
        let mut sink_b = VecSink::default();
        b.xmit_raw(&sink_a.frames[0]).unwrap();
        b.mem().tx_tick(&mut sink_b);
        assert_eq!(sink_a.frames, sink_b.frames);
        // Malformed raw frames are refused.
        assert!(matches!(
            b.xmit_raw(&[0u8; 5]).unwrap_err(),
            DriverError::Hw(_)
        ));
    }

    #[test]
    fn frame_too_big_rejected() {
        let mut drv = direct_driver();
        let huge = vec![0u8; 1501];
        assert_eq!(
            drv.xmit(DST, 0x0800, &huge).unwrap_err(),
            DriverError::FrameTooBig(1515)
        );
    }

    #[test]
    fn rx_path_roundtrip() {
        let mut drv = direct_driver();
        assert!(drv.mem().rx_inject(b"incoming packet data"));
        let frames = drv.rx_poll().unwrap();
        assert_eq!(frames, vec![b"incoming packet data".to_vec()]);
        assert_eq!(drv.stats().rx_packets, 1);
        // ICR has RXT0 latched.
        let icr = drv.irq_cause().unwrap();
        assert!(icr & intr::RXT0 != 0);
        // Ring slot returned: device can deliver many more.
        for i in 0..500u32 {
            assert!(drv.mem().rx_inject(&i.to_le_bytes()), "inject {i}");
            let f = drv.rx_poll().unwrap();
            assert_eq!(f.len(), 1);
        }
    }

    #[test]
    fn napi_poll_respects_budget_and_reenables_on_drain() {
        let mut drv = direct_driver();
        for i in 0..10u32 {
            assert!(drv
                .mem()
                .rx_inject(&[b'f', i as u8, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0]));
        }
        // ISR entry: cause observed, RX interrupts masked.
        let cause = drv.irq_enter().unwrap();
        assert!(cause & intr::RXT0 != 0);
        assert_eq!(drv.stats().irq_fired, 1);
        // Budget of 4: two partial passes, then the rest.
        let (f1, drained1) = drv.poll(4).unwrap();
        assert_eq!(f1.len(), 4);
        assert!(!drained1, "6 frames still pending");
        let (f2, drained2) = drv.poll(4).unwrap();
        assert_eq!(f2.len(), 4);
        assert!(!drained2);
        let (f3, drained3) = drv.poll(4).unwrap();
        assert_eq!(f3.len(), 2);
        assert!(drained3, "ring exhausted; interrupts re-enabled");
        let s = drv.stats();
        assert_eq!(s.rx_packets, 10);
        assert_eq!(s.poll_passes, 3);
        // 3 frames per non-empty pass beyond the first.
        assert_eq!(s.irq_coalesced, 3 + 3 + 1);
        // After drain, a new arrival raises an interrupt again (IMS was
        // re-armed by napi_complete).
        assert!(drv.mem().rx_inject(b"wakeup wakeup!"));
        let cause = drv.irq_enter().unwrap();
        assert!(cause & intr::RXT0 != 0, "IMS re-armed after drain");
    }

    #[test]
    fn napi_empty_poll_counts_rx_no_desc() {
        let mut drv = direct_driver();
        let (frames, drained) = drv.poll(16).unwrap();
        assert!(frames.is_empty());
        assert!(drained);
        assert_eq!(drv.stats().rx_no_desc, 1);
        assert_eq!(drv.stats().poll_passes, 1);
    }

    #[test]
    fn napi_assembles_multi_descriptor_frames() {
        let mut drv = direct_driver();
        // 2048*2 + 100 bytes → three descriptors, one frame.
        let big: Vec<u8> = (0..2 * BUF_SIZE as usize + 100)
            .map(|i| (i % 251) as u8)
            .collect();
        assert!(drv.mem().rx_inject(&big));
        // Budget counts descriptors: a budget of 2 cannot finish the
        // frame — no EOP yet, nothing returned.
        let (f1, drained1) = drv.poll(2).unwrap();
        assert!(f1.is_empty());
        assert!(!drained1);
        let (f2, drained2) = drv.poll(2).unwrap();
        assert_eq!(f2.len(), 1);
        assert!(drained2);
        assert_eq!(f2[0], big, "reassembled byte-identically");
        assert_eq!(drv.stats().rx_packets, 1, "one frame, three descriptors");
        assert_eq!(drv.stats().rx_bytes, big.len() as u64);
    }

    #[test]
    fn guarded_rx_poll_guards_header_reads() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), &pm);
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        let frame = [0xffu8; 64];
        assert!(drv.mem().rx_inject(&frame));
        let snap = drv.counts();
        let (frames, drained) = drv.poll(64).unwrap();
        assert_eq!(frames.len(), 1);
        assert!(drained);
        let d = drv.counts().since(&snap);
        // Every CPU access on the poll path is guarded.
        assert_eq!(
            d.guard_calls,
            d.ram_reads + d.ram_writes + d.mmio_reads + d.mmio_writes
        );
        // The header parse contributes guarded RAM reads beyond the
        // descriptor fields: sts+len+buf (+ drain re-check) + 3 header
        // words; payload bytes ride the unguarded bulk path.
        assert!(d.ram_reads >= 7, "ram_reads={}", d.ram_reads);
        assert_eq!(d.bulk_bytes, 64, "payload via DMA path");
        assert_eq!(d.mmio_writes, 2, "one RDT batch write + one IMS re-arm");
    }

    #[test]
    fn guarded_driver_works_under_allowing_policy() {
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), &pm);
        let mut drv = E1000Driver::probe(mem).expect("probe");
        drv.up().expect("up");
        let mut sink = VecSink::default();
        drv.xmit_and_flush(DST, 0x0800, &[0u8; 128], &mut sink)
            .unwrap();
        assert_eq!(sink.frames.len(), 1);
        assert!(pm.stats().checks > 0, "guards actually ran");
        assert_eq!(pm.stats().denied_no_match, 0);
    }

    #[test]
    fn guarded_driver_blocked_by_denying_policy() {
        // Policy covers the MMIO BAR but not the arena: the first RAM
        // store in the TX path is rejected.
        let pm = PolicyModule::new();
        pm.add_region(
            Region::new(
                VAddr(kop_core::layout::MMIO_WINDOW_BASE),
                Size(crate::regs::BAR_SIZE),
                Protection::READ_WRITE,
            )
            .unwrap(),
        )
        .unwrap();
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), &pm);
        let mut drv = E1000Driver::probe(mem).expect("probe (MMIO allowed)");
        // up() programs RX descriptors in RAM → guard violation.
        let err = drv.up().unwrap_err();
        assert!(matches!(err, DriverError::Guard(_)));
    }

    #[test]
    fn per_packet_work_is_constant_and_small() {
        // The event counts that feed the machine model: constant per
        // packet (independent of payload size except DMA bytes).
        let mut drv = direct_driver();
        let mut sink = VecSink::default();
        // Warm up (first packet has no cleanup work).
        drv.xmit_and_flush(DST, 0x0800, &[0u8; 128], &mut sink)
            .unwrap();
        let snap = drv.counts();
        drv.xmit_and_flush(DST, 0x0800, &[0u8; 128], &mut sink)
            .unwrap();
        let w128 = E1000Driver::<DirectMem>::work_from(&drv.counts().since(&snap));
        let snap = drv.counts();
        drv.xmit_and_flush(DST, 0x0800, &[0u8; 1024], &mut sink)
            .unwrap();
        let w1024 = E1000Driver::<DirectMem>::work_from(&drv.counts().since(&snap));
        assert_eq!(w128.reads, w1024.reads, "CPU reads independent of size");
        assert_eq!(w128.writes, w1024.writes, "CPU writes independent of size");
        assert_eq!(w128.mmio, w1024.mmio);
        assert!(
            w1024.dma_bytes > w128.dma_bytes,
            "DMA bytes scale with size"
        );
        // Document the canonical counts the sim profiles are calibrated
        // against (update kop-sim's `typical_work` if this changes).
        assert_eq!(w128.mmio, 1, "one doorbell per packet");
        assert!(w128.reads >= 3 && w128.reads <= 6, "reads={}", w128.reads);
        assert!(
            w128.writes >= 7 && w128.writes <= 10,
            "writes={}",
            w128.writes
        );
    }

    #[test]
    fn guard_count_equals_cpu_accesses() {
        // Every CPU load/store in the guarded build produces exactly one
        // guard call — the "guards injected before every load and store"
        // invariant, observed dynamically.
        let mut drv = {
            let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), NoopPolicy);
            let mut d = E1000Driver::probe(mem).expect("probe");
            d.up().expect("up");
            d
        };
        let mut sink = VecSink::default();
        let snap = drv.counts();
        for _ in 0..10 {
            drv.xmit_and_flush(DST, 0x0800, &[0u8; 256], &mut sink)
                .unwrap();
        }
        let d = drv.counts().since(&snap);
        assert_eq!(
            d.guard_calls,
            d.ram_reads + d.ram_writes + d.mmio_reads + d.mmio_writes
        );
        assert!(d.guard_calls > 0);
    }
}
