//! Legacy transmit and receive descriptor layouts (16 bytes each), as on
//! the 8254x family. The driver writes these into ring memory; the
//! device's DMA engine reads them back and writes status.

/// Legacy TX descriptor command bits.
pub mod txcmd {
    /// End of packet.
    pub const EOP: u8 = 1 << 0;
    /// Insert FCS (ignored by the model; frames carry no FCS).
    pub const IFCS: u8 = 1 << 1;
    /// Report status (device sets DD when done).
    pub const RS: u8 = 1 << 3;
}

/// TX/RX descriptor status bits.
pub mod txsts {
    /// Descriptor done.
    pub const DD: u8 = 1 << 0;
}

/// RX descriptor status bits (written back by the receive DMA engine).
pub mod rxsts {
    /// Descriptor done: the device filled this descriptor's buffer.
    pub const DD: u8 = 1 << 0;
    /// End of packet: this descriptor holds the frame's final bytes.
    /// Frames longer than one buffer span several descriptors; only the
    /// last carries EOP, and the driver assembles across them.
    pub const EOP: u8 = 1 << 1;
}

/// A legacy transmit descriptor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TxDesc {
    /// Physical address of the packet buffer.
    pub buffer: u64,
    /// Length of the data in the buffer.
    pub length: u16,
    /// Checksum offset (unused by the model).
    pub cso: u8,
    /// Command bits.
    pub cmd: u8,
    /// Status bits (written back by the device).
    pub status: u8,
    /// Checksum start (unused by the model).
    pub css: u8,
    /// VLAN tag (unused by the model).
    pub special: u16,
}

/// Size of a descriptor in ring memory.
pub const DESC_SIZE: u64 = 16;

impl TxDesc {
    /// Serialize to ring-memory layout (little endian).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.buffer.to_le_bytes());
        b[8..10].copy_from_slice(&self.length.to_le_bytes());
        b[10] = self.cso;
        b[11] = self.cmd;
        b[12] = self.status;
        b[13] = self.css;
        b[14..16].copy_from_slice(&self.special.to_le_bytes());
        b
    }

    /// Deserialize from ring-memory layout.
    pub fn from_bytes(b: &[u8; 16]) -> TxDesc {
        TxDesc {
            buffer: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            length: u16::from_le_bytes(b[8..10].try_into().expect("2 bytes")),
            cso: b[10],
            cmd: b[11],
            status: b[12],
            css: b[13],
            special: u16::from_le_bytes(b[14..16].try_into().expect("2 bytes")),
        }
    }
}

/// A legacy receive descriptor.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RxDesc {
    /// Physical address of the receive buffer.
    pub buffer: u64,
    /// Length of the received data (written back by the device).
    pub length: u16,
    /// Packet checksum (unused by the model).
    pub checksum: u16,
    /// Status bits (DD set by the device on writeback).
    pub status: u8,
    /// Error bits.
    pub errors: u8,
    /// VLAN tag.
    pub special: u16,
}

impl RxDesc {
    /// Serialize to ring-memory layout (little endian).
    pub fn to_bytes(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.buffer.to_le_bytes());
        b[8..10].copy_from_slice(&self.length.to_le_bytes());
        b[10..12].copy_from_slice(&self.checksum.to_le_bytes());
        b[12] = self.status;
        b[13] = self.errors;
        b[14..16].copy_from_slice(&self.special.to_le_bytes());
        b
    }

    /// Deserialize from ring-memory layout.
    pub fn from_bytes(b: &[u8; 16]) -> RxDesc {
        RxDesc {
            buffer: u64::from_le_bytes(b[0..8].try_into().expect("8 bytes")),
            length: u16::from_le_bytes(b[8..10].try_into().expect("2 bytes")),
            checksum: u16::from_le_bytes(b[10..12].try_into().expect("2 bytes")),
            status: b[12],
            errors: b[13],
            special: u16::from_le_bytes(b[14..16].try_into().expect("2 bytes")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tx_roundtrip() {
        let d = TxDesc {
            buffer: 0x1234_5678_9abc_def0,
            length: 1500,
            cso: 1,
            cmd: txcmd::EOP | txcmd::RS,
            status: txsts::DD,
            css: 3,
            special: 0xbeef,
        };
        assert_eq!(TxDesc::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn rx_roundtrip() {
        let d = RxDesc {
            buffer: 0xdead_beef_0000_1000,
            length: 64,
            checksum: 0xabcd,
            status: txsts::DD,
            errors: 0,
            special: 7,
        };
        assert_eq!(RxDesc::from_bytes(&d.to_bytes()), d);
    }

    #[test]
    fn layout_matches_datasheet_offsets() {
        let d = TxDesc {
            buffer: 0x0102_0304_0506_0708,
            length: 0x1122,
            cso: 0x33,
            cmd: 0x44,
            status: 0x55,
            css: 0x66,
            special: 0x7788,
        };
        let b = d.to_bytes();
        assert_eq!(b[0], 0x08); // little-endian buffer
        assert_eq!(b[8], 0x22); // length low byte at offset 8
        assert_eq!(b[11], 0x44); // cmd at offset 11
        assert_eq!(b[12], 0x55); // status at offset 12
    }
}
