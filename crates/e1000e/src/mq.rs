//! Multi-queue transmit: N worker threads driving N queues concurrently
//! against one shared policy module.
//!
//! Modern e1000e-class hardware exposes multiple TX queues so each CPU
//! can transmit without cross-CPU serialization. This module models that
//! shape at the granularity the guard path cares about: each queue is a
//! full driver instance over its **own** descriptor ring and buffer arena
//! (identical layout, so guard sites classify the same on every queue),
//! and the **only** shared object between workers is the policy — which
//! is exactly the contention point the `reproduce smp` figure measures.
//! With the mutex check path every guard on every queue serializes on one
//! lock; with the snapshot path (plus per-queue guard TLBs) queues scale
//! independently.

use std::time::{Duration, Instant};

use kop_policy::PolicyCheck;

use crate::device::{CountSink, E1000Device};
use crate::driver::{DriverError, E1000Driver};
use crate::memspace::{DirectMem, GuardedMem, MemSpace};

/// What one queue worker did.
#[derive(Clone, Debug)]
pub struct QueueReport {
    /// Queue index.
    pub queue: usize,
    /// Frames the device delivered on this queue.
    pub delivered: u64,
    /// Guard invocations this queue's driver performed over its whole
    /// lifetime (probe, bring-up, and the measured transmit loop).
    pub guard_calls: u64,
}

/// Result of a multi-queue TX run.
#[derive(Clone, Debug)]
pub struct MqReport {
    /// Per-queue breakdown.
    pub queues: Vec<QueueReport>,
    /// Wall-clock for the whole parallel phase (all queues).
    pub elapsed: Duration,
}

impl MqReport {
    /// Total frames delivered across all queues.
    pub fn delivered(&self) -> u64 {
        self.queues.iter().map(|q| q.delivered).sum()
    }

    /// Total guard calls across all queues.
    pub fn guard_calls(&self) -> u64 {
        self.queues.iter().map(|q| q.guard_calls).sum()
    }

    /// Aggregate throughput in frames per second.
    pub fn frames_per_sec(&self) -> f64 {
        self.delivered() as f64 / self.elapsed.as_secs_f64().max(1e-9)
    }
}

/// Run `queues` TX workers concurrently, each transmitting
/// `frames_per_queue` frames of `payload_len` payload bytes through its
/// own driver + ring.
///
/// `make_policy(queue)` builds each worker's [`PolicyCheck`] front; pass
/// a closure cloning one shared `Arc<PolicyModule>` (optionally wrapped
/// in a per-queue [`kop_policy::TlbPolicy`] — see
/// [`GuardedMem::with_tlb_prefixed`]) so every guard on every queue
/// consults the same policy. Workers start together behind a barrier so
/// `elapsed` measures genuinely concurrent transmit.
pub fn run_mq_tx<P, F>(
    queues: usize,
    frames_per_queue: u64,
    payload_len: usize,
    make_policy: F,
) -> Result<MqReport, DriverError>
where
    P: PolicyCheck + Send,
    F: Fn(usize) -> P + Sync,
{
    assert!(queues >= 1, "need at least one queue");
    let barrier = std::sync::Barrier::new(queues);
    let dst = [0xffu8; 6];
    let payload = vec![0u8; payload_len];

    let worker = |queue: usize| -> Result<(QueueReport, Duration), DriverError> {
        let mem = GuardedMem::new(
            DirectMem::with_defaults(E1000Device::default()),
            make_policy(queue),
        );
        let mut drv = E1000Driver::probe(mem)?;
        drv.up()?;
        let mut sink = CountSink::default();
        barrier.wait();
        let start = Instant::now();
        let mut delivered = 0u64;
        for _ in 0..frames_per_queue {
            delivered += drv.xmit_and_flush(dst, 0x88b5, &payload, &mut sink)?;
        }
        let elapsed = start.elapsed();
        // Whole-lifetime guard count (probe + up + the measured loop) so
        // it reconciles exactly with the shared policy's check counter.
        let guard_calls = drv.counts().guard_calls;
        Ok((
            QueueReport {
                queue,
                delivered,
                guard_calls,
            },
            elapsed,
        ))
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..queues).map(|q| s.spawn(move || worker(q))).collect();
        let mut reports = Vec::with_capacity(queues);
        let mut elapsed = Duration::ZERO;
        for h in handles {
            let (report, queue_elapsed) = h.join().expect("queue worker panicked")?;
            elapsed = elapsed.max(queue_elapsed);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.queue);
        Ok(MqReport {
            queues: reports,
            elapsed,
        })
    })
}

/// Like [`run_mq_tx`] but the worker's memory space is built by
/// `make_mem(queue)` — for callers that want per-queue guard TLBs or
/// tracers wired in.
pub fn run_mq_tx_with<M, F>(
    queues: usize,
    frames_per_queue: u64,
    payload_len: usize,
    make_mem: F,
) -> Result<MqReport, DriverError>
where
    M: MemSpace + Send,
    F: Fn(usize) -> M + Sync,
{
    assert!(queues >= 1, "need at least one queue");
    let barrier = std::sync::Barrier::new(queues);
    let dst = [0xffu8; 6];
    let payload = vec![0u8; payload_len];

    let worker = |queue: usize| -> Result<(QueueReport, Duration), DriverError> {
        let mut drv = E1000Driver::probe(make_mem(queue))?;
        drv.up()?;
        let mut sink = CountSink::default();
        barrier.wait();
        let start = Instant::now();
        let mut delivered = 0u64;
        for _ in 0..frames_per_queue {
            delivered += drv.xmit_and_flush(dst, 0x88b5, &payload, &mut sink)?;
        }
        let elapsed = start.elapsed();
        // Whole-lifetime guard count (probe + up + the measured loop) so
        // it reconciles exactly with the shared policy's check counter.
        let guard_calls = drv.counts().guard_calls;
        Ok((
            QueueReport {
                queue,
                delivered,
                guard_calls,
            },
            elapsed,
        ))
    };

    std::thread::scope(|s| {
        let handles: Vec<_> = (0..queues).map(|q| s.spawn(move || worker(q))).collect();
        let mut reports = Vec::with_capacity(queues);
        let mut elapsed = Duration::ZERO;
        for h in handles {
            let (report, queue_elapsed) = h.join().expect("queue worker panicked")?;
            elapsed = elapsed.max(queue_elapsed);
            reports.push(report);
        }
        reports.sort_by_key(|r| r.queue);
        Ok(MqReport {
            queues: reports,
            elapsed,
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_policy::PolicyModule;
    use std::sync::Arc;

    fn permissive_policy() -> Arc<PolicyModule> {
        // Kernel half allowed, user half denied — covers the arena and
        // the MMIO window alike.
        Arc::new(PolicyModule::two_region_paper_policy())
    }

    #[test]
    fn queues_share_one_policy_and_all_deliver() {
        let pm = permissive_policy();
        let frames = 50u64;
        let queues = 3usize;
        let before = pm.stats().checks;
        let report = run_mq_tx(queues, frames, 64, |_q| Arc::clone(&pm)).unwrap();
        assert_eq!(report.queues.len(), queues);
        for q in &report.queues {
            assert_eq!(q.delivered, frames, "queue {} dropped frames", q.queue);
            assert!(q.guard_calls > 0);
        }
        // Every guard call on every queue reached the shared policy.
        assert_eq!(pm.stats().checks - before, report.guard_calls());
    }

    #[test]
    fn per_queue_tlbs_reconcile_with_guard_calls() {
        let pm = permissive_policy();
        let frames = 50u64;
        let queues = 2usize;
        let before = pm.stats().checks;
        let report = run_mq_tx_with(queues, frames, 64, |q| {
            GuardedMem::with_tlb_prefixed(
                DirectMem::with_defaults(E1000Device::default()),
                Arc::clone(&pm),
                &format!("policy.tlb.q{q}"),
            )
        })
        .unwrap();
        assert_eq!(report.delivered(), frames * queues as u64);
        // The shared policy only saw the TLB misses; the driver's guard
        // counter saw every guard. With warm per-site TLBs the full
        // checks must be a small fraction of the guards.
        let full_checks = pm.stats().checks - before;
        assert!(
            full_checks < report.guard_calls() / 2,
            "TLB hits must have short-circuited most checks ({} vs {})",
            full_checks,
            report.guard_calls()
        );
    }
}
