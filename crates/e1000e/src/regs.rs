//! Register map of the simulated 8254x/82574-family NIC (the subset the
//! driver uses), with bit definitions. Offsets follow the Intel PCIe GbE
//! controller datasheets.

/// Device control register.
pub const CTRL: u64 = 0x0000;
/// Device status register (read-only).
pub const STATUS: u64 = 0x0008;
/// EEPROM read register.
pub const EERD: u64 = 0x0014;
/// Interrupt cause read (read-to-clear).
pub const ICR: u64 = 0x00C0;
/// Interrupt mask set/read.
pub const IMS: u64 = 0x00D0;
/// Interrupt mask clear.
pub const IMC: u64 = 0x00D8;
/// Receive control.
pub const RCTL: u64 = 0x0100;
/// Transmit control.
pub const TCTL: u64 = 0x0400;
/// Transmit descriptor base address low.
pub const TDBAL: u64 = 0x3800;
/// Transmit descriptor base address high.
pub const TDBAH: u64 = 0x3804;
/// Transmit descriptor ring length (bytes).
pub const TDLEN: u64 = 0x3808;
/// Transmit descriptor head (device-owned).
pub const TDH: u64 = 0x3810;
/// Transmit descriptor tail (driver doorbell).
pub const TDT: u64 = 0x3818;
/// Receive descriptor base address low.
pub const RDBAL: u64 = 0x2800;
/// Receive descriptor base address high.
pub const RDBAH: u64 = 0x2804;
/// Receive descriptor ring length (bytes).
pub const RDLEN: u64 = 0x2808;
/// Receive descriptor head (device-owned).
pub const RDH: u64 = 0x2810;
/// Receive descriptor tail (driver doorbell).
pub const RDT: u64 = 0x2818;
/// Receive interrupt delay timer — the interrupt-coalescing throttle.
/// The model interprets the programmed value as "frames to accumulate
/// before latching RXT0" (0 or 1 ⇒ an interrupt per frame); arrivals
/// absorbed by the throttle are counted in the device's
/// `rx_irqs_coalesced` statistic instead of raising a cause bit.
pub const RDTR: u64 = 0x2820;
/// Receive address low (MAC address bytes 0-3).
pub const RAL0: u64 = 0x5400;
/// Receive address high (MAC bytes 4-5 + valid bit).
pub const RAH0: u64 = 0x5404;
/// Good packets transmitted count (statistics, read-to-clear on real HW;
/// we keep it accumulating).
pub const GPTC: u64 = 0x4080;
/// Good octets transmitted count (low 32 bits).
pub const GOTCL: u64 = 0x4088;
/// Good octets transmitted count (high 32 bits).
pub const GOTCH: u64 = 0x408C;
/// Good packets received count.
pub const GPRC: u64 = 0x4074;

/// Size of the MMIO register window (128 KiB, as on real parts).
pub const BAR_SIZE: u64 = 0x20000;

/// CTRL bits.
pub mod ctrl {
    /// Software reset. Self-clearing.
    pub const RST: u64 = 1 << 26;
    /// Set link up.
    pub const SLU: u64 = 1 << 6;
}

/// STATUS bits.
pub mod status {
    /// Link up.
    pub const LU: u64 = 1 << 1;
    /// Full duplex.
    pub const FD: u64 = 1 << 0;
}

/// TCTL bits.
pub mod tctl {
    /// Transmit enable.
    pub const EN: u64 = 1 << 1;
    /// Pad short packets.
    pub const PSP: u64 = 1 << 3;
}

/// RCTL bits.
pub mod rctl {
    /// Receive enable.
    pub const EN: u64 = 1 << 1;
    /// Broadcast accept mode.
    pub const BAM: u64 = 1 << 15;
}

/// Interrupt cause bits (ICR/IMS/IMC).
pub mod intr {
    /// Transmit descriptor written back.
    pub const TXDW: u64 = 1 << 0;
    /// Link status change.
    pub const LSC: u64 = 1 << 2;
    /// Receive descriptor minimum threshold hit (ring nearly exhausted).
    pub const RXDMT0: u64 = 1 << 4;
    /// Receiver overrun: a frame arrived with no free descriptor.
    pub const RXO: u64 = 1 << 6;
    /// Receiver timer interrupt (packet received).
    pub const RXT0: u64 = 1 << 7;
}

/// EERD bits/fields.
pub mod eerd {
    /// Start read.
    pub const START: u64 = 1 << 0;
    /// Read done.
    pub const DONE: u64 = 1 << 4;
    /// Address shift.
    pub const ADDR_SHIFT: u32 = 8;
    /// Data shift.
    pub const DATA_SHIFT: u32 = 16;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn offsets_are_distinct_and_in_bar() {
        let regs = [
            CTRL, STATUS, EERD, ICR, IMS, IMC, RCTL, TCTL, TDBAL, TDBAH, TDLEN, TDH, TDT, RDBAL,
            RDBAH, RDLEN, RDH, RDT, RDTR, RAL0, RAH0, GPTC, GOTCL, GOTCH, GPRC,
        ];
        let set: std::collections::BTreeSet<u64> = regs.iter().copied().collect();
        assert_eq!(set.len(), regs.len());
        for r in regs {
            assert!(r < BAR_SIZE);
            assert_eq!(r % 4, 0, "registers are dword-aligned");
        }
    }
}
