//! Property tests on the driver↔device contract: arbitrary transmit
//! sequences must arrive at the sink in order, byte-identical, correctly
//! padded — under both the baseline and the guarded build.

use proptest::prelude::*;

use kop_e1000e::{DirectMem, E1000Device, E1000Driver, GuardedMem, VecSink};
use kop_policy::{DefaultAction, NoopPolicy, PolicyModule};

const MAC: [u8; 6] = [0x02, 0x4b, 0x4f, 0x50, 0x00, 0x99];
const DST: [u8; 6] = [0x02, 0xff, 0xff, 0xff, 0xff, 0x01];

fn arb_payloads() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..1500), 1..40)
}

/// An interleaving of RX-side operations: `kind < 2` is a budgeted poll
/// pass, anything else offers a frame of `len` bytes to the wire (up to
/// several descriptor spans, so multi-descriptor assembly and ring
/// wraparound both get exercised).
fn arb_rx_ops() -> impl Strategy<Value = Vec<(u8, usize)>> {
    proptest::collection::vec((0..6u8, 60..5000usize), 20..300)
}

fn check_frames(payloads: &[Vec<u8>], frames: &[Vec<u8>]) {
    assert_eq!(frames.len(), payloads.len());
    for (payload, frame) in payloads.iter().zip(frames) {
        let expect_len = (14 + payload.len()).max(60);
        assert_eq!(frame.len(), expect_len, "padding to ETH_ZLEN");
        assert_eq!(&frame[0..6], &DST);
        assert_eq!(&frame[6..12], &MAC);
        assert_eq!(&frame[14..14 + payload.len()], payload.as_slice());
        // Padding bytes are zero.
        assert!(frame[14 + payload.len()..].iter().all(|&b| b == 0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn baseline_driver_delivers_arbitrary_sequences(payloads in arb_payloads()) {
        let mem = DirectMem::with_defaults(E1000Device::new(MAC));
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        let mut sink = VecSink::default();
        for p in &payloads {
            drv.xmit_and_flush(DST, 0x88b5, p, &mut sink).unwrap();
        }
        check_frames(&payloads, &sink.frames);
        prop_assert_eq!(drv.stats().tx_packets, payloads.len() as u64);
    }

    #[test]
    fn guarded_driver_is_behaviorally_identical(payloads in arb_payloads()) {
        // Baseline run.
        let mem = DirectMem::with_defaults(E1000Device::new(MAC));
        let mut base = E1000Driver::probe(mem).unwrap();
        base.up().unwrap();
        let mut base_sink = VecSink::default();
        for p in &payloads {
            base.xmit_and_flush(DST, 0x88b5, p, &mut base_sink).unwrap();
        }
        // Guarded run under an allowing policy.
        let pm = PolicyModule::new();
        pm.set_default_action(DefaultAction::Allow);
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), &pm);
        let mut carat = E1000Driver::probe(mem).unwrap();
        carat.up().unwrap();
        let mut carat_sink = VecSink::default();
        for p in &payloads {
            carat.xmit_and_flush(DST, 0x88b5, p, &mut carat_sink).unwrap();
        }
        // Identical wire output.
        prop_assert_eq!(&base_sink.frames, &carat_sink.frames);
        check_frames(&payloads, &carat_sink.frames);
        // And the guard count equals the CPU access count.
        let c = carat.counts();
        prop_assert_eq!(
            c.guard_calls,
            c.ram_reads + c.ram_writes + c.mmio_reads + c.mmio_writes
        );
    }

    #[test]
    fn rx_roundtrip_arbitrary_frames(payloads in arb_payloads()) {
        let mem = GuardedMem::new(DirectMem::with_defaults(E1000Device::new(MAC)), NoopPolicy);
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();
        use kop_e1000e::MemSpace;
        for p in &payloads {
            // Frames on the wire are at least 60 bytes; model that.
            let mut frame = vec![0u8; 14];
            frame.extend_from_slice(p);
            if frame.len() < 60 {
                frame.resize(60, 0);
            }
            if frame.len() > 1514 {
                frame.truncate(1514);
            }
            prop_assert!(drv.mem().rx_inject(&frame));
            let got = drv.rx_poll().unwrap();
            prop_assert_eq!(got.len(), 1);
            prop_assert_eq!(&got[0], &frame);
        }
    }

    #[test]
    fn rx_ring_wraparound_never_loses_or_duplicates(ops in arb_rx_ops()) {
        use kop_e1000e::MemSpace;
        use std::collections::VecDeque;
        let mem = DirectMem::with_defaults(E1000Device::new(MAC));
        let mut drv = E1000Driver::probe(mem).unwrap();
        drv.up().unwrap();

        // Every accepted frame, oldest first; each is tagged with a
        // unique sequence so loss, duplication, and reordering are all
        // visible as a byte mismatch.
        let mut expected: VecDeque<Vec<u8>> = VecDeque::new();
        let mut tag = 0u64;
        let (mut accepted, mut dropped) = (0u64, 0u64);

        for (kind, len) in ops {
            if kind < 2 {
                let budget = 1 + kind as u64 * 7;
                let (got, _drained) = drv.poll(budget).unwrap();
                for f in got {
                    let want = expected.pop_front().expect("harvested a frame nobody offered");
                    assert_eq!(f, want, "frames come out in arrival order, intact");
                }
            } else {
                let mut frame = vec![(tag % 251) as u8; len];
                frame[..8].copy_from_slice(&tag.to_le_bytes());
                tag += 1;
                if drv.mem().rx_inject(&frame) {
                    accepted += 1;
                    expected.push_back(frame);
                } else {
                    // Full-ring backpressure: the frame is dropped whole
                    // on the wire side, never partially delivered.
                    dropped += 1;
                }
            }
        }

        // Drain: everything accepted but not yet harvested comes out now,
        // still in order, still intact — across however many times RDH
        // and RDT wrapped the 128-entry ring.
        for f in drv.rx_poll().unwrap() {
            let want = expected.pop_front().expect("drain produced an unoffered frame");
            prop_assert_eq!(f, want);
        }
        prop_assert!(expected.is_empty(), "no accepted frame went missing");
        prop_assert_eq!(drv.stats().rx_packets, accepted);
        prop_assert_eq!(drv.mem().device().stats.rx_dropped, dropped);
    }
}
