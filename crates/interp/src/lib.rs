//! # kop-interp — executing KIR modules inside the simulated kernel
//!
//! This is the runtime half of the end-to-end CARAT KOP story: a loaded
//! module's functions execute against the kernel's simulated memory, and
//! the compiler-injected `carat_guard` calls dispatch into the policy
//! module. A failing guard behaves per the configured
//! [`kop_policy::ViolationAction`]:
//!
//! * `Panic` — the paper's behaviour: the violation is logged and the
//!   (simulated) kernel panics; execution aborts.
//! * `LogAndDeny` — the following memory access is *squashed* ("something
//!   similar to a page fault", §2): a squashed load yields 0, a squashed
//!   store is dropped.
//! * `LogAndAllow` — audit mode; the access proceeds.
//! * `Quarantine` — the access is squashed *and* the violation is charged
//!   against the module's budget ([`kop_kernel::KernelConfig`]'s
//!   `violation_budget`); when the budget is exhausted the kernel unloads
//!   only the offending module and the call unwinds with
//!   `KernelError::ModuleQuarantined` — the kernel itself keeps running.
//!
//! The interpreter also hosts the tiny kernel ABI modules may import:
//! `printk(i64)`, `kmalloc(i64) -> ptr`, `kfree(ptr)`, `panic(i64)`.

#![warn(missing_docs)]

use std::sync::Arc;

use kop_core::{AccessFlags, KernelError, KernelResult, Size, VAddr};
use kop_ir::{BinOp, BlockId, CastOp, IcmpPred, Inst, Terminator, Type, Value};
use kop_kernel::{Kernel, ModuleImage};
use kop_policy::module::GuardOutcome;
use kop_trace::{GuardDecision, Producer, SiteId, TraceEvent, Tracer};
use kop_vm::HostFn;

mod vm;

/// Which executor [`Interp::call`] runs module code on.
///
/// Both engines implement identical observable semantics — return
/// values, [`ExecStats`] (including fuel accounting), guard outcomes,
/// squash behaviour, trace events, error messages — which the root
/// crate's differential property tests enforce. `Tree` re-walks the IR
/// per instruction; `Bytecode` dispatches the flat program `kop-vm`
/// compiled at insmod.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// The reference tree-walking interpreter.
    #[default]
    Tree,
    /// The flat register-bytecode VM (compiled once at insmod).
    Bytecode,
    /// The bytecode VM with the promoted tier enabled: functions whose
    /// hot guard sites were re-lowered with inlined bounds dispatch
    /// through the promoted code; everything else (and every run with
    /// tracing on, which needs per-check events) falls back to the
    /// general bytecode. Observable semantics are still identical —
    /// a promoted guard that cannot fast-admit deopts into the exact
    /// general policy path.
    Promoted,
}

impl Engine {
    /// The engine selected by the `KOP_ENGINE` environment variable:
    /// `bytecode` (or `vm`) picks the bytecode engine, `promoted` (or
    /// `jit`) the promoted tier, anything else — including unset — picks
    /// the tree engine. Lets CI run every end-to-end test once per
    /// engine without touching the tests.
    pub fn from_env() -> Engine {
        match std::env::var("KOP_ENGINE").as_deref() {
            Ok("bytecode") | Ok("vm") => Engine::Bytecode,
            Ok("promoted") | Ok("jit") => Engine::Promoted,
            _ => Engine::Tree,
        }
    }
}

/// Execution statistics accumulated across `call`s.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Instructions executed (including terminators).
    pub insts: u64,
    /// Dynamic guard calls executed.
    pub guards: u64,
    /// Dynamic loads + stores executed (including squashed ones).
    pub mem_accesses: u64,
    /// Accesses squashed by a denying guard.
    pub squashed: u64,
}

/// The interpreter. Borrows the kernel mutably for the duration of a run —
/// module code *is* kernel code in a monolithic kernel.
pub struct Interp<'k> {
    kernel: &'k mut Kernel,
    fuel: u64,
    stack_base: VAddr,
    stack_size: u64,
    stack_cursor: u64,
    stats: ExecStats,
    squash_next: bool,
    squash_intrinsic: bool,
    cur_args: Vec<u64>,
    depth: u32,
    engine: Engine,
    /// Reusable staging buffer for conflicting phi-edge moves (bytecode
    /// engine only; used transiently within one edge).
    vm_scratch: Vec<u64>,
    /// Retired register frames, reused across bytecode calls so the hot
    /// path never allocates.
    vm_frames: Vec<Vec<u64>>,
    /// Retired argument vectors, same purpose.
    vm_args_pool: Vec<Vec<u64>>,
    /// Guards admitted by an inlined bound (promoted engine only).
    /// Kept off [`ExecStats`] so stats stay engine-identical for the
    /// differential tests.
    vm_inline_admits: u64,
    /// Promoted guards that fell back to the general policy path
    /// (generation bump, out-of-bounds, or permission miss).
    vm_inline_deopts: u64,
    /// The policy governing the currently-executing *promoted* frame,
    /// resolved once at frame entry instead of per guard. Sound for the
    /// frame's duration: remapping a module's policy needs `&mut Kernel`,
    /// which this interpreter holds exclusively, and the one in-run
    /// mutation path (quarantine) aborts the run before another guard
    /// executes. Bound staleness is still caught per-op by the
    /// generation tag.
    vm_policy: Option<Arc<kop_policy::PolicyModule>>,
    /// Fast admits not yet accounted against `vm_policy`'s striped
    /// `checks`/`permitted` counters. The inline admit bumps this plain
    /// field; frame entry/exit flushes it with one counted add
    /// (`record_fast_permits`), so the per-guard cost carries no
    /// thread-local counter round-trips and every post-run observer
    /// still sees `policy.checks == stats.guards`. Non-zero only while
    /// `vm_policy` is `Some`.
    vm_pending_fast_permits: u64,
    /// Revocation epoch the currently-executing promoted frame's tier
    /// was baked under; the inline admit compares it against the live
    /// epoch so a fleet-wide revoke (which bumps no generation) deopts
    /// promoted guards promptly. 0 while no promoted frame runs.
    vm_promoted_epoch: u64,
}

const DEFAULT_FUEL: u64 = 50_000_000;
const STACK_SIZE: u64 = 1 << 20;
/// Maximum module call depth — kernel stacks are small (two 4 KiB pages
/// on Linux); unbounded module recursion is a bug this models as a stack
/// overflow rather than letting it take down the host.
const MAX_CALL_DEPTH: u32 = 200;

fn mask(ty: &Type, v: u64) -> u64 {
    match ty.int_bits() {
        Some(64) | None => v,
        Some(bits) => v & ((1u64 << bits) - 1),
    }
}

fn sign_extend(v: u64, bits: u32) -> i64 {
    if bits == 64 {
        return v as i64;
    }
    let shift = 64 - bits;
    ((v << shift) as i64) >> shift
}

/// Per-call module context: the loader's shared [`ModuleImage`] (IR +
/// layout addresses + guard-site table). Entering module code clones one
/// `Arc`, nothing else.
type ModuleCtx = ModuleImage;

impl<'k> Interp<'k> {
    /// Create an interpreter with default fuel. Allocates the module stack
    /// from the kernel heap.
    pub fn new(kernel: &'k mut Kernel) -> KernelResult<Interp<'k>> {
        let stack_base = kernel.kmalloc(STACK_SIZE)?;
        Ok(Interp {
            kernel,
            fuel: DEFAULT_FUEL,
            stack_base,
            stack_size: STACK_SIZE,
            stack_cursor: 0,
            stats: ExecStats::default(),
            squash_next: false,
            squash_intrinsic: false,
            cur_args: Vec::new(),
            depth: 0,
            engine: Engine::from_env(),
            vm_scratch: Vec::new(),
            vm_frames: Vec::new(),
            vm_args_pool: Vec::new(),
            vm_inline_admits: 0,
            vm_inline_deopts: 0,
            vm_policy: None,
            vm_pending_fast_permits: 0,
            vm_promoted_epoch: 0,
        })
    }

    /// Create an interpreter on a caller-owned module stack of
    /// [`Interp::stack_size`] bytes. The kernel heap is a bump allocator,
    /// so long-lived harnesses that construct many short-lived
    /// interpreters (one per supervision round, say) must allocate the
    /// stack once — via one [`Interp::new`] and [`Interp::stack_base`] —
    /// and thread it through here instead of kmallocing per round.
    pub fn with_stack(kernel: &'k mut Kernel, stack_base: VAddr) -> Interp<'k> {
        Interp {
            kernel,
            fuel: DEFAULT_FUEL,
            stack_base,
            stack_size: STACK_SIZE,
            stack_cursor: 0,
            stats: ExecStats::default(),
            squash_next: false,
            squash_intrinsic: false,
            cur_args: Vec::new(),
            depth: 0,
            engine: Engine::from_env(),
            vm_scratch: Vec::new(),
            vm_frames: Vec::new(),
            vm_args_pool: Vec::new(),
            vm_inline_admits: 0,
            vm_inline_deopts: 0,
            vm_policy: None,
            vm_pending_fast_permits: 0,
            vm_promoted_epoch: 0,
        }
    }

    /// Base of this interpreter's module stack (pass to
    /// [`Interp::with_stack`] to reuse the allocation).
    pub fn stack_base(&self) -> VAddr {
        self.stack_base
    }

    /// Size in bytes of the module stack backing an interpreter.
    pub fn stack_size(&self) -> u64 {
        self.stack_size
    }

    /// Limit the number of executed instructions (tests / runaway modules).
    pub fn set_fuel(&mut self, fuel: u64) {
        self.fuel = fuel;
    }

    /// Select the execution engine (defaults to [`Engine::from_env`]).
    pub fn set_engine(&mut self, engine: Engine) {
        self.engine = engine;
    }

    /// The engine [`Interp::call`] currently dispatches to.
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Statistics from calls so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Guards admitted by an inlined bound since construction (promoted
    /// engine only; 0 on the other engines).
    pub fn inline_admits(&self) -> u64 {
        self.vm_inline_admits
    }

    /// Promoted guards that deopted to the general policy path since
    /// construction (generation bump, bounds, or permission miss).
    pub fn inline_deopts(&self) -> u64 {
        self.vm_inline_deopts
    }

    /// The kernel being driven.
    pub fn kernel(&mut self) -> &mut Kernel {
        self.kernel
    }

    /// Call `func` in loaded module `module_name` with integer/pointer
    /// arguments. Returns the function's return value, if any.
    pub fn call(
        &mut self,
        module_name: &str,
        func: &str,
        args: &[u64],
    ) -> KernelResult<Option<u64>> {
        self.kernel.check_alive()?;
        let loaded = self
            .kernel
            .module(module_name)
            .ok_or_else(|| KernelError::NoSuchModule(module_name.to_string()))?;
        // One refcount bump detaches the module context from the kernel
        // borrow — no per-call deep clone of the IR or layout maps.
        let image = Arc::clone(loaded.image());
        match self.engine {
            Engine::Tree => self.call_in(&image, func, args),
            // The promoted engine is the bytecode engine with promoted
            // dispatch enabled at function entry (see `vm_call_idx`).
            Engine::Bytecode | Engine::Promoted => self.vm_call(&image, func, args),
        }
    }

    fn burn(&mut self, n: u64) -> KernelResult<()> {
        self.stats.insts += n;
        if self.fuel < n {
            return Err(KernelError::Fault {
                addr: VAddr::NULL,
                what: "interpreter fuel exhausted".into(),
            });
        }
        self.fuel -= n;
        Ok(())
    }

    /// Execute one function frame (recursion happens through
    /// [`Self::dispatch_call`]).
    fn call_in(&mut self, ctx: &ModuleCtx, func: &str, args: &[u64]) -> KernelResult<Option<u64>> {
        let f = ctx.ir.function(func).ok_or_else(|| {
            KernelError::InvalidArgument(format!("no function @{func} in module {}", ctx.ir.name))
        })?;
        if f.params.len() != args.len() {
            return Err(KernelError::InvalidArgument(format!(
                "@{func} takes {} args, got {}",
                f.params.len(),
                args.len()
            )));
        }
        let entry = f
            .entry()
            .ok_or_else(|| KernelError::InvalidArgument(format!("@{func} has no blocks")))?;

        if self.depth >= MAX_CALL_DEPTH {
            return Err(KernelError::NoMemory(format!(
                "kernel stack overflow: module call depth exceeds {MAX_CALL_DEPTH}"
            )));
        }
        self.depth += 1;
        let saved_args = std::mem::replace(&mut self.cur_args, args.to_vec());
        let saved_stack = self.stack_cursor;
        let result = self.run_frame(ctx, f, entry);
        self.stack_cursor = saved_stack;
        self.cur_args = saved_args;
        self.depth -= 1;
        result
    }

    fn run_frame(
        &mut self,
        ctx: &ModuleCtx,
        f: &kop_ir::Function,
        entry: BlockId,
    ) -> KernelResult<Option<u64>> {
        let mut regs: Vec<u64> = vec![0; f.inst_count()];
        let mut cur = entry;
        let mut prev: Option<BlockId> = None;

        loop {
            let blk = f.block(cur);

            // Phi nodes first, evaluated in parallel against `prev`. The
            // count comes from the sealed layout cache (O(1)).
            let phi_count = f.leading_phi_count(cur);
            if phi_count > 0 {
                let pb = prev.expect("phi in entry block impossible (verified)");
                let mut staged = Vec::with_capacity(phi_count);
                for &iid in &blk.insts[..phi_count] {
                    let Inst::Phi { ty, incomings } = f.inst(iid) else {
                        unreachable!()
                    };
                    let (_, v) = incomings
                        .iter()
                        .find(|(b, _)| *b == pb)
                        .expect("verified phi covers predecessor");
                    staged.push((iid, mask(ty, self.eval(ctx, &regs, v))));
                }
                for (iid, v) in staged {
                    regs[iid.0 as usize] = v;
                }
                self.burn(phi_count as u64)?;
            }

            for &iid in &blk.insts[phi_count..] {
                self.burn(1)?;
                let inst = f.inst(iid).clone();
                match inst {
                    Inst::Phi { .. } => unreachable!("phis are leading (verified)"),
                    Inst::Alloca { ty, count } => {
                        let size = ty.size_of().max(1) * count;
                        let align = ty.align_of().max(1);
                        self.stack_cursor = self.stack_cursor.div_ceil(align) * align;
                        if self.stack_cursor + size > self.stack_size {
                            return Err(KernelError::NoMemory("module stack overflow".into()));
                        }
                        let addr = self.stack_base.raw() + self.stack_cursor;
                        self.stack_cursor += size;
                        regs[iid.0 as usize] = addr;
                    }
                    Inst::Load { ty, ptr } => {
                        self.stats.mem_accesses += 1;
                        let addr = VAddr(self.eval(ctx, &regs, &ptr));
                        if std::mem::take(&mut self.squash_next) {
                            self.stats.squashed += 1;
                            regs[iid.0 as usize] = 0;
                        } else {
                            let v = self.kernel.mem.read_uint(addr, Size(ty.size_of()))?;
                            regs[iid.0 as usize] = mask(&ty, v);
                        }
                    }
                    Inst::Store { ty, val, ptr } => {
                        self.stats.mem_accesses += 1;
                        let addr = VAddr(self.eval(ctx, &regs, &ptr));
                        let v = mask(&ty, self.eval(ctx, &regs, &val));
                        if std::mem::take(&mut self.squash_next) {
                            self.stats.squashed += 1;
                        } else {
                            self.kernel.mem.write_uint(addr, Size(ty.size_of()), v)?;
                        }
                    }
                    Inst::Gep {
                        base_ty,
                        ptr,
                        indices,
                    } => {
                        let mut addr = self.eval(ctx, &regs, &ptr);
                        let first = self.eval(ctx, &regs, &indices[0]);
                        addr = addr.wrapping_add(base_ty.size_of().wrapping_mul(first));
                        let mut cur_ty = base_ty;
                        for idx in &indices[1..] {
                            match cur_ty {
                                Type::Array(elem, _) => {
                                    let i = self.eval(ctx, &regs, idx);
                                    addr = addr.wrapping_add(elem.size_of().wrapping_mul(i));
                                    cur_ty = *elem;
                                }
                                Type::Struct(_) => {
                                    let Value::ConstInt(_, c) = idx else {
                                        unreachable!("verified const struct index")
                                    };
                                    let off = cur_ty
                                        .struct_field_offset(*c as usize)
                                        .expect("verified index");
                                    addr = addr.wrapping_add(off);
                                    cur_ty =
                                        cur_ty.indexed_type(*c).expect("verified index").clone();
                                }
                                _ => unreachable!("verified gep walk"),
                            }
                        }
                        regs[iid.0 as usize] = addr;
                    }
                    Inst::Bin { op, ty, lhs, rhs } => {
                        let a = mask(&ty, self.eval(ctx, &regs, &lhs));
                        let b = mask(&ty, self.eval(ctx, &regs, &rhs));
                        let bits = ty.int_bits().unwrap_or(64);
                        let r = match op {
                            BinOp::Add => a.wrapping_add(b),
                            BinOp::Sub => a.wrapping_sub(b),
                            BinOp::Mul => a.wrapping_mul(b),
                            BinOp::UDiv | BinOp::URem | BinOp::SDiv | BinOp::SRem if b == 0 => {
                                return Err(KernelError::Fault {
                                    addr: VAddr::NULL,
                                    what: format!("division by zero in @{}", f.name),
                                });
                            }
                            BinOp::UDiv => a / b,
                            BinOp::URem => a % b,
                            BinOp::SDiv => {
                                sign_extend(a, bits).wrapping_div(sign_extend(b, bits)) as u64
                            }
                            BinOp::SRem => {
                                sign_extend(a, bits).wrapping_rem(sign_extend(b, bits)) as u64
                            }
                            BinOp::And => a & b,
                            BinOp::Or => a | b,
                            BinOp::Xor => a ^ b,
                            BinOp::Shl => a.wrapping_shl((b % bits as u64) as u32),
                            BinOp::LShr => a.wrapping_shr((b % bits as u64) as u32),
                            BinOp::AShr => (sign_extend(a, bits) >> (b % bits as u64)) as u64,
                        };
                        regs[iid.0 as usize] = mask(&ty, r);
                    }
                    Inst::Icmp { pred, ty, lhs, rhs } => {
                        let a = mask(&ty, self.eval(ctx, &regs, &lhs));
                        let b = mask(&ty, self.eval(ctx, &regs, &rhs));
                        let bits = ty.int_bits().unwrap_or(64);
                        let (sa, sb) = (sign_extend(a, bits), sign_extend(b, bits));
                        let r = match pred {
                            IcmpPred::Eq => a == b,
                            IcmpPred::Ne => a != b,
                            IcmpPred::Ult => a < b,
                            IcmpPred::Ule => a <= b,
                            IcmpPred::Ugt => a > b,
                            IcmpPred::Uge => a >= b,
                            IcmpPred::Slt => sa < sb,
                            IcmpPred::Sle => sa <= sb,
                            IcmpPred::Sgt => sa > sb,
                            IcmpPred::Sge => sa >= sb,
                        };
                        regs[iid.0 as usize] = r as u64;
                    }
                    Inst::Cast {
                        op,
                        from_ty,
                        to_ty,
                        val,
                    } => {
                        let v = mask(&from_ty, self.eval(ctx, &regs, &val));
                        let r = match op {
                            CastOp::Zext | CastOp::PtrToInt | CastOp::IntToPtr => v,
                            CastOp::Trunc => mask(&to_ty, v),
                            CastOp::Sext => {
                                let bits = from_ty.int_bits().expect("verified");
                                mask(&to_ty, sign_extend(v, bits) as u64)
                            }
                        };
                        regs[iid.0 as usize] = r;
                    }
                    Inst::Select {
                        ty,
                        cond,
                        then_val,
                        else_val,
                    } => {
                        let c = self.eval(ctx, &regs, &cond) & 1;
                        let v = if c == 1 {
                            self.eval(ctx, &regs, &then_val)
                        } else {
                            self.eval(ctx, &regs, &else_val)
                        };
                        regs[iid.0 as usize] = mask(&ty, v);
                    }
                    Inst::Call { callee, args, .. } => {
                        let argv: Vec<u64> =
                            args.iter().map(|a| self.eval(ctx, &regs, a)).collect();
                        // Site attribution only matters (and only costs a
                        // map probe) while tracing is enabled.
                        let site = if self.kernel.tracer().enabled() {
                            ctx.sites.as_ref().and_then(|s| s.lookup(&f.name, iid.0))
                        } else {
                            None
                        };
                        if let Some(v) = self.dispatch_call(ctx, &callee, &argv, site)? {
                            regs[iid.0 as usize] = v;
                        }
                    }
                    Inst::Asm { .. } => {
                        // Attestation prevents signed modules from containing
                        // asm; executing one (unsafe-mode kernels) is a fault.
                        return Err(KernelError::Fault {
                            addr: VAddr::NULL,
                            what: format!("inline assembly executed in @{}", f.name),
                        });
                    }
                }
            }

            self.burn(1)?;
            let term = blk.term.as_ref().expect("verified terminator");
            match term {
                Terminator::Br(b) => {
                    prev = Some(cur);
                    cur = *b;
                }
                Terminator::CondBr {
                    cond,
                    then_blk,
                    else_blk,
                } => {
                    let c = self.eval(ctx, &regs, cond) & 1;
                    prev = Some(cur);
                    cur = if c == 1 { *then_blk } else { *else_blk };
                }
                Terminator::Switch {
                    ty,
                    val,
                    default,
                    arms,
                } => {
                    let v = mask(ty, self.eval(ctx, &regs, val));
                    prev = Some(cur);
                    cur = arms
                        .iter()
                        .find(|(c, _)| mask(ty, *c) == v)
                        .map(|(_, b)| *b)
                        .unwrap_or(*default);
                }
                Terminator::Ret(None) => return Ok(None),
                Terminator::Ret(Some(v)) => return Ok(Some(self.eval(ctx, &regs, v))),
                Terminator::Unreachable => {
                    return Err(KernelError::Fault {
                        addr: VAddr::NULL,
                        what: format!("unreachable executed in @{}", f.name),
                    })
                }
            }
        }
    }

    fn eval(&self, ctx: &ModuleCtx, regs: &[u64], v: &Value) -> u64 {
        match v {
            Value::ConstInt(ty, val) => mask(ty, *val),
            Value::NullPtr => 0,
            Value::Global(name) => ctx
                .globals
                .get(name)
                .map(|a| a.raw())
                .unwrap_or_else(|| panic!("unknown global @{name} (verified module)")),
            Value::FuncAddr(name) => ctx
                .func_addrs
                .get(name)
                .map(|a| a.raw())
                .unwrap_or(0xffff_ffff_dead_0000),
            Value::Arg(i) => self.cur_args[*i as usize],
            Value::Inst(id) => regs[id.0 as usize],
        }
    }

    /// Map a policy outcome onto the trace-event decision tag.
    fn decision_of(outcome: &GuardOutcome) -> GuardDecision {
        match outcome {
            GuardOutcome::Allowed => GuardDecision::Allowed,
            GuardOutcome::Denied(_) => GuardDecision::Denied,
            GuardOutcome::Quarantined(_) => GuardDecision::Quarantined,
            GuardOutcome::Panicked(_) => GuardDecision::Panicked,
        }
    }

    /// Clone the kernel tracer iff tracing is on and the guard has a
    /// site identity; the owned Arc lets us emit events without holding
    /// a borrow across `note_violation`/`do_panic`.
    fn guard_tracer(&self, site: Option<SiteId>) -> Option<(Arc<Tracer>, SiteId)> {
        let site = site?;
        let tracer = self.kernel.tracer();
        if tracer.enabled() {
            Some((Arc::clone(tracer), site))
        } else {
            None
        }
    }

    /// Host/internal call dispatch.
    fn dispatch_call(
        &mut self,
        ctx: &ModuleCtx,
        callee: &str,
        args: &[u64],
        site: Option<SiteId>,
    ) -> KernelResult<Option<u64>> {
        if ctx.ir.function(callee).is_some() {
            return self.call_in(ctx, callee, args);
        }
        match callee {
            "carat_guard" => {
                let addr = VAddr(args[0]);
                let size = Size(args[1]);
                let flags = AccessFlags::from_raw(args[2] as u32);
                self.run_mem_guard(&ctx.ir.name, addr, size, flags, site)?;
                Ok(None)
            }
            "carat_intrinsic_guard" => {
                let id = args.first().copied().unwrap_or(u64::MAX) as u32;
                self.run_intrinsic_guard(&ctx.ir.name, id, site)?;
                Ok(None)
            }
            other => self.host_call(&HostFn::resolve(other), args),
        }
    }

    /// A `carat_guard` memory-access check. Shared by the tree and
    /// bytecode engines (the bytecode engine also enters here from fused
    /// guard-access superinstructions).
    fn run_mem_guard(
        &mut self,
        module: &str,
        addr: VAddr,
        size: Size,
        flags: AccessFlags,
        site: Option<SiteId>,
    ) -> KernelResult<()> {
        self.stats.guards += 1;
        // Per-module policy (§5): guards consult the policy governing
        // the module that executed them.
        let policy = self.kernel.policy_for(module);
        let tracing = self.guard_tracer(site);
        if let Some((tracer, site)) = &tracing {
            tracer.record(Producer::Interp, TraceEvent::GuardEnter { site: *site });
        }
        let t0 = tracing.as_ref().map(|_| std::time::Instant::now());
        let outcome = policy.enforce(addr, size, flags);
        if let Some((tracer, site)) = &tracing {
            let ns = t0.map_or(1, |t| i128::max(1, t.elapsed().as_nanos() as i128) as u64);
            let decision = Self::decision_of(&outcome);
            tracer.record(
                Producer::Interp,
                TraceEvent::GuardExit {
                    site: *site,
                    decision,
                    ns,
                },
            );
            // Envelope-aware recording: the profile keeps the [lo, hi)
            // address range each site actually touched, which the
            // promotion pass later checks against the baked bound.
            tracer.record_check_at(*site, ns, decision.is_denied(), addr.raw(), size.raw());
        }
        match outcome {
            GuardOutcome::Allowed => Ok(()),
            GuardOutcome::Denied(_) => {
                self.squash_next = true;
                Ok(())
            }
            GuardOutcome::Quarantined(v) => {
                // Squash the access and charge the module; the kernel
                // unloads it when the budget runs out — and stays alive
                // either way.
                self.kernel.note_violation(module, v)?;
                self.squash_next = true;
                Ok(())
            }
            GuardOutcome::Panicked(e) => Err(self.kernel.do_panic(e)),
        }
    }

    /// A `carat_intrinsic_guard` check preceding a privileged builtin.
    fn run_intrinsic_guard(
        &mut self,
        module: &str,
        id: u32,
        site: Option<SiteId>,
    ) -> KernelResult<()> {
        self.stats.guards += 1;
        let policy = self.kernel.policy_for(module);
        let tracing = self.guard_tracer(site);
        if let Some((tracer, site)) = &tracing {
            tracer.record(Producer::Interp, TraceEvent::GuardEnter { site: *site });
        }
        let t0 = tracing.as_ref().map(|_| std::time::Instant::now());
        let outcome = policy.enforce_intrinsic(id);
        if let Some((tracer, site)) = &tracing {
            let ns = t0.map_or(1, |t| i128::max(1, t.elapsed().as_nanos() as i128) as u64);
            let decision = Self::decision_of(&outcome);
            tracer.record(
                Producer::Interp,
                TraceEvent::GuardExit {
                    site: *site,
                    decision,
                    ns,
                },
            );
            tracer.record_check(*site, ns, decision.is_denied());
        }
        match outcome {
            GuardOutcome::Allowed => Ok(()),
            GuardOutcome::Denied(_) => {
                // Squash the intrinsic itself.
                self.squash_intrinsic = true;
                Ok(())
            }
            GuardOutcome::Quarantined(v) => {
                self.kernel.note_violation(module, v)?;
                self.squash_intrinsic = true;
                Ok(())
            }
            GuardOutcome::Panicked(e) => Err(self.kernel.do_panic(e)),
        }
    }

    /// The kernel ABI available to modules. Privileged builtins (§5
    /// extension) honour a preceding denied intrinsic guard by squashing
    /// themselves (reads return 0).
    fn host_call(&mut self, host: &HostFn, args: &[u64]) -> KernelResult<Option<u64>> {
        match host {
            HostFn::Wrmsr => {
                if !std::mem::take(&mut self.squash_intrinsic) {
                    self.kernel.wrmsr(
                        args.first().copied().unwrap_or(0),
                        args.get(1).copied().unwrap_or(0),
                    );
                }
                Ok(None)
            }
            HostFn::Rdmsr => {
                if std::mem::take(&mut self.squash_intrinsic) {
                    Ok(Some(0))
                } else {
                    Ok(Some(self.kernel.rdmsr(args.first().copied().unwrap_or(0))))
                }
            }
            HostFn::Cli => {
                if !std::mem::take(&mut self.squash_intrinsic) {
                    self.kernel.cli();
                }
                Ok(None)
            }
            HostFn::Sti => {
                if !std::mem::take(&mut self.squash_intrinsic) {
                    self.kernel.sti();
                }
                Ok(None)
            }
            HostFn::Invlpg => {
                // TLB shootdown: no architectural state in the model.
                let _ = std::mem::take(&mut self.squash_intrinsic);
                Ok(None)
            }
            HostFn::Hlt => {
                let _ = std::mem::take(&mut self.squash_intrinsic);
                Err(self.kernel.do_panic(KernelError::Panic {
                    message: "module executed __hlt".into(),
                    violation: None,
                }))
            }
            HostFn::Printk => {
                let msg = format!("module printk: {:#x}", args.first().copied().unwrap_or(0));
                self.kernel.printk(&msg);
                Ok(None)
            }
            HostFn::Kmalloc => {
                let addr = self.kernel.kmalloc(args.first().copied().unwrap_or(0))?;
                Ok(Some(addr.raw()))
            }
            HostFn::Kfree => {
                self.kernel.kfree(VAddr(args.first().copied().unwrap_or(0)));
                Ok(None)
            }
            HostFn::Panic => Err(self.kernel.do_panic(KernelError::Panic {
                message: format!(
                    "module called panic({:#x})",
                    args.first().copied().unwrap_or(0)
                ),
                violation: None,
            })),
            HostFn::Unresolved(other) => Err(KernelError::UnresolvedSymbol(other.to_string())),
        }
    }
}

#[cfg(test)]
mod tests;
