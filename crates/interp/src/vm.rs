//! Bytecode executor: the dispatch loop for `kop-vm`'s flat register
//! programs, compiled once at insmod and cached in the loaded-module
//! image.
//!
//! Everything observable — fuel accounting, squash ordering, masking,
//! error messages, stats, trace events — matches the tree interpreter in
//! `lib.rs` exactly; the root crate's differential property tests hold
//! the two engines to that. The win is purely dispatch cost: operands
//! are pre-resolved registers/immediates, branch targets are code
//! offsets, phi transfers are prebuilt move schedules, and adjacent
//! guard+access pairs run as one fused superinstruction that calls the
//! policy path directly.

use kop_core::{AccessFlags, KernelError, KernelResult, Size, VAddr};
use kop_ir::{BinOp, CastOp, IcmpPred};
use kop_vm::{CompiledFunc, CompiledModule, Op, Src};

use crate::{sign_extend, Interp, ModuleCtx, MAX_CALL_DEPTH};

impl<'k> Interp<'k> {
    /// Bytecode-engine entry point, mirroring the tree engine's
    /// `call_in` contract (same error precedence and messages).
    pub(crate) fn vm_call(
        &mut self,
        ctx: &ModuleCtx,
        func: &str,
        args: &[u64],
    ) -> KernelResult<Option<u64>> {
        let compiled = ctx.compiled.as_ref().ok_or_else(|| {
            KernelError::InvalidArgument(format!(
                "module {} has no compiled bytecode image",
                ctx.ir.name
            ))
        })?;
        let idx = compiled.func_index(func).ok_or_else(|| {
            KernelError::InvalidArgument(format!("no function @{func} in module {}", ctx.ir.name))
        })?;
        let mut argv = self.vm_args_pool.pop().unwrap_or_default();
        argv.clear();
        argv.extend_from_slice(args);
        self.vm_call_idx(ctx, compiled, idx, argv)
    }

    /// One function frame by prebuilt index (recursion happens through
    /// [`Op::CallInternal`], skipping the name lookup entirely).
    /// Takes `args` by value: callers hand over a pooled vector, which
    /// retires back into the pool on exit.
    fn vm_call_idx(
        &mut self,
        ctx: &ModuleCtx,
        compiled: &CompiledModule,
        idx: u32,
        args: Vec<u64>,
    ) -> KernelResult<Option<u64>> {
        // Promoted dispatch: on the promoted engine, a function the
        // promotion pass re-lowered runs its inline-bounds code instead.
        // Tracing runs always take the general tier — the fast admit
        // emits no per-check events, and reconciliation (trace hits ==
        // policy checks, exact per-site) must hold to the guard.
        let promoted =
            if self.engine() == crate::Engine::Promoted && !self.kernel.tracer().enabled() {
                // One tier load yields function + bake epoch together, so
                // the frame can't pair one tier's code with another's
                // epoch.
                compiled.promoted_entry(idx)
            } else {
                None
            };
        let cf = match &promoted {
            Some((p, _)) => p.as_ref(),
            None => compiled.func(idx),
        };
        if cf.n_params != args.len() {
            return Err(KernelError::InvalidArgument(format!(
                "@{} takes {} args, got {}",
                cf.name,
                cf.n_params,
                args.len()
            )));
        }
        if !cf.has_blocks {
            return Err(KernelError::InvalidArgument(format!(
                "@{} has no blocks",
                cf.name
            )));
        }
        if self.depth >= MAX_CALL_DEPTH {
            return Err(KernelError::NoMemory(format!(
                "kernel stack overflow: module call depth exceeds {MAX_CALL_DEPTH}"
            )));
        }
        self.depth += 1;
        let saved_args = std::mem::replace(&mut self.cur_args, args);
        let saved_stack = self.stack_cursor;
        // Promoted frames resolve their governing policy once — the
        // inline fast path then pays a field read per guard instead of a
        // per-module map lookup (see the `vm_policy` field docs for why
        // this is sound for the frame's duration).
        self.vm_flush_fast_permits();
        let saved_epoch = self.vm_promoted_epoch;
        let saved_policy = if let Some((_, epoch)) = &promoted {
            self.vm_promoted_epoch = *epoch;
            let p = self.kernel.policy_for(&ctx.ir.name);
            self.vm_policy.replace(p)
        } else {
            self.vm_promoted_epoch = 0;
            self.vm_policy.take()
        };
        let mut regs = self.vm_frames.pop().unwrap_or_default();
        regs.clear();
        regs.resize(cf.n_regs, 0);
        let result = self.vm_run(ctx, compiled, cf, &mut regs);
        self.vm_frames.push(regs);
        self.vm_flush_fast_permits();
        self.vm_policy = saved_policy;
        self.vm_promoted_epoch = saved_epoch;
        self.stack_cursor = saved_stack;
        let retired = std::mem::replace(&mut self.cur_args, saved_args);
        self.vm_args_pool.push(retired);
        self.depth -= 1;
        result
    }

    /// Pre-resolved operand read — the bytecode replacement for the
    /// tree's per-use `Value` pattern match.
    #[inline]
    fn vm_src(&self, regs: &[u64], s: Src) -> u64 {
        match s {
            Src::Reg(r) => regs[r as usize],
            Src::Arg(i) => self.cur_args[i as usize],
            Src::Imm(v) => v,
        }
    }

    /// Drain the fast admits accumulated this frame into the governing
    /// policy's `checks`/`permitted` counters with one counted add.
    /// Runs at every frame entry (before the policy slot changes hands)
    /// and exit, so the pending count always lands on the policy it was
    /// accumulated against.
    #[inline]
    fn vm_flush_fast_permits(&mut self) {
        if self.vm_pending_fast_permits > 0 {
            let n = self.vm_pending_fast_permits;
            self.vm_pending_fast_permits = 0;
            if let Some(p) = self.vm_policy.as_deref() {
                p.record_fast_permits(n);
            }
        }
    }

    /// The promoted guard check: admit with three compares against the
    /// baked bound when the snapshot generation still matches, else
    /// deopt into the exact general policy path with the original
    /// operands. The fast admit still counts as a guard and as a policy
    /// check (batched: `vm_pending_fast_permits`, flushed at frame
    /// boundaries), so every reconciliation invariant —
    /// `stats.guards == policy.checks` — survives promotion. A
    /// degenerate request (zero size, empty flags, wrapping range)
    /// always deopts; the general path owns the malformed-input
    /// verdicts.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn vm_inline_guard(
        &mut self,
        ctx: &ModuleCtx,
        lo: u64,
        hi: u64,
        perm: u32,
        gen: u64,
        addr: u64,
        size: u64,
        flags: u32,
        site: Option<kop_trace::SiteId>,
    ) -> KernelResult<()> {
        let fast = {
            let policy = self
                .vm_policy
                .as_deref()
                .expect("promoted frame resolved its policy at entry");
            size > 0
                && flags != 0
                && (flags & !perm) == 0
                && gen == policy.store_generation()
                && self.vm_promoted_epoch == policy.revocation_epoch()
                && matches!(addr.checked_add(size), Some(end) if lo <= addr && end <= hi)
        };
        if fast {
            self.stats.guards += 1;
            self.vm_pending_fast_permits += 1;
            self.vm_inline_admits += 1;
            return Ok(());
        }
        self.vm_inline_deopts += 1;
        self.run_mem_guard(
            &ctx.ir.name,
            VAddr(addr),
            Size(size),
            AccessFlags::from_raw(flags),
            site,
        )
    }

    /// Traverse a control-flow edge: execute its phi move schedule,
    /// charge the successor's phi fuel, return the target code offset.
    /// Conflict-free edges write registers directly; edges whose
    /// parallel moves interfere stage all reads first (same semantics
    /// as the tree's staged phi evaluation).
    fn vm_edge(&mut self, cf: &CompiledFunc, regs: &mut [u64], edge: u32) -> KernelResult<usize> {
        let e = &cf.edges[edge as usize];
        if e.staged {
            self.vm_scratch.clear();
            for m in e.moves.iter() {
                let v = m.mask & self.vm_src(regs, m.src);
                self.vm_scratch.push(v);
            }
            for (i, m) in e.moves.iter().enumerate() {
                regs[m.dst as usize] = self.vm_scratch[i];
            }
        } else {
            for m in e.moves.iter() {
                regs[m.dst as usize] = m.mask & self.vm_src(regs, m.src);
            }
        }
        if e.phi_burn > 0 {
            self.burn(e.phi_burn as u64)?;
        }
        Ok(e.target as usize)
    }

    /// The dispatch loop. `pc` indexes `cf.code`; every op charges one
    /// fuel unit up front (fused guard-access ops charge a second for
    /// the access, preserving the tree's per-IR-instruction fuel
    /// checkpoints).
    fn vm_run(
        &mut self,
        ctx: &ModuleCtx,
        compiled: &CompiledModule,
        cf: &CompiledFunc,
        regs: &mut [u64],
    ) -> KernelResult<Option<u64>> {
        let mut pc: usize = 0;

        loop {
            self.burn(1)?;
            let op = &cf.code[pc];
            pc += 1;
            match op {
                Op::Alloca { size, align, dst } => {
                    self.stack_cursor = self.stack_cursor.div_ceil(*align) * align;
                    if self.stack_cursor + size > self.stack_size {
                        return Err(KernelError::NoMemory("module stack overflow".into()));
                    }
                    let addr = self.stack_base.raw() + self.stack_cursor;
                    self.stack_cursor += size;
                    regs[*dst as usize] = addr;
                }
                Op::Load {
                    size,
                    mask,
                    ptr,
                    dst,
                } => {
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                        regs[*dst as usize] = 0;
                    } else {
                        let v = self.kernel.mem.read_uint(addr, Size(*size))?;
                        regs[*dst as usize] = mask & v;
                    }
                }
                Op::Store {
                    size,
                    mask,
                    val,
                    ptr,
                } => {
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    let v = mask & self.vm_src(regs, *val);
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                    } else {
                        self.kernel.mem.write_uint(addr, Size(*size), v)?;
                    }
                }
                Op::GuardLoad {
                    site,
                    gaddr,
                    gsize,
                    gflags,
                    size,
                    mask,
                    ptr,
                    dst,
                } => {
                    let ga = VAddr(self.vm_src(regs, *gaddr));
                    let gs = Size(self.vm_src(regs, *gsize));
                    let gf = AccessFlags::from_raw(self.vm_src(regs, *gflags) as u32);
                    self.run_mem_guard(&ctx.ir.name, ga, gs, gf, *site)?;
                    self.burn(1)?;
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                        regs[*dst as usize] = 0;
                    } else {
                        let v = self.kernel.mem.read_uint(addr, Size(*size))?;
                        regs[*dst as usize] = mask & v;
                    }
                }
                Op::GuardStore {
                    site,
                    gaddr,
                    gsize,
                    gflags,
                    size,
                    mask,
                    val,
                    ptr,
                } => {
                    let ga = VAddr(self.vm_src(regs, *gaddr));
                    let gs = Size(self.vm_src(regs, *gsize));
                    let gf = AccessFlags::from_raw(self.vm_src(regs, *gflags) as u32);
                    self.run_mem_guard(&ctx.ir.name, ga, gs, gf, *site)?;
                    self.burn(1)?;
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    let v = mask & self.vm_src(regs, *val);
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                    } else {
                        self.kernel.mem.write_uint(addr, Size(*size), v)?;
                    }
                }
                Op::Gep {
                    base,
                    offset,
                    terms,
                    dst,
                } => {
                    let mut addr = self.vm_src(regs, *base).wrapping_add(*offset);
                    for (scale, idx) in terms.iter() {
                        addr = addr.wrapping_add(scale.wrapping_mul(self.vm_src(regs, *idx)));
                    }
                    regs[*dst as usize] = addr;
                }
                Op::Bin {
                    op,
                    mask,
                    bits,
                    lhs,
                    rhs,
                    dst,
                } => {
                    let a = mask & self.vm_src(regs, *lhs);
                    let b = mask & self.vm_src(regs, *rhs);
                    let bits = *bits;
                    let r = match op {
                        BinOp::Add => a.wrapping_add(b),
                        BinOp::Sub => a.wrapping_sub(b),
                        BinOp::Mul => a.wrapping_mul(b),
                        BinOp::UDiv | BinOp::URem | BinOp::SDiv | BinOp::SRem if b == 0 => {
                            return Err(KernelError::Fault {
                                addr: VAddr::NULL,
                                what: format!("division by zero in @{}", cf.name),
                            });
                        }
                        BinOp::UDiv => a / b,
                        BinOp::URem => a % b,
                        BinOp::SDiv => {
                            sign_extend(a, bits).wrapping_div(sign_extend(b, bits)) as u64
                        }
                        BinOp::SRem => {
                            sign_extend(a, bits).wrapping_rem(sign_extend(b, bits)) as u64
                        }
                        BinOp::And => a & b,
                        BinOp::Or => a | b,
                        BinOp::Xor => a ^ b,
                        BinOp::Shl => a.wrapping_shl((b % bits as u64) as u32),
                        BinOp::LShr => a.wrapping_shr((b % bits as u64) as u32),
                        BinOp::AShr => (sign_extend(a, bits) >> (b % bits as u64)) as u64,
                    };
                    regs[*dst as usize] = mask & r;
                }
                Op::Icmp {
                    pred,
                    mask,
                    bits,
                    lhs,
                    rhs,
                    dst,
                } => {
                    let a = mask & self.vm_src(regs, *lhs);
                    let b = mask & self.vm_src(regs, *rhs);
                    let (sa, sb) = (sign_extend(a, *bits), sign_extend(b, *bits));
                    let r = match pred {
                        IcmpPred::Eq => a == b,
                        IcmpPred::Ne => a != b,
                        IcmpPred::Ult => a < b,
                        IcmpPred::Ule => a <= b,
                        IcmpPred::Ugt => a > b,
                        IcmpPred::Uge => a >= b,
                        IcmpPred::Slt => sa < sb,
                        IcmpPred::Sle => sa <= sb,
                        IcmpPred::Sgt => sa > sb,
                        IcmpPred::Sge => sa >= sb,
                    };
                    regs[*dst as usize] = r as u64;
                }
                Op::Cast {
                    op,
                    from_mask,
                    from_bits,
                    to_mask,
                    val,
                    dst,
                } => {
                    let v = from_mask & self.vm_src(regs, *val);
                    let r = match op {
                        CastOp::Zext | CastOp::PtrToInt | CastOp::IntToPtr => v,
                        CastOp::Trunc => to_mask & v,
                        CastOp::Sext => to_mask & (sign_extend(v, *from_bits) as u64),
                    };
                    regs[*dst as usize] = r;
                }
                Op::Select {
                    mask,
                    cond,
                    then_val,
                    else_val,
                    dst,
                } => {
                    let c = self.vm_src(regs, *cond) & 1;
                    let v = if c == 1 {
                        self.vm_src(regs, *then_val)
                    } else {
                        self.vm_src(regs, *else_val)
                    };
                    regs[*dst as usize] = mask & v;
                }
                Op::CallInternal { func, args, dst } => {
                    let mut argv = self.vm_args_pool.pop().unwrap_or_default();
                    argv.clear();
                    argv.extend(args.iter().map(|a| self.vm_src(regs, *a)));
                    if let Some(v) = self.vm_call_idx(ctx, compiled, *func, argv)? {
                        regs[*dst as usize] = v;
                    }
                }
                Op::CallHost { host, args, dst } => {
                    let mut argv = self.vm_args_pool.pop().unwrap_or_default();
                    argv.clear();
                    argv.extend(args.iter().map(|a| self.vm_src(regs, *a)));
                    let r = self.host_call(host, &argv);
                    self.vm_args_pool.push(argv);
                    if let Some(v) = r? {
                        regs[*dst as usize] = v;
                    }
                }
                Op::InlineGuardLoad {
                    site,
                    lo,
                    hi,
                    perm,
                    gen,
                    gaddr,
                    gsize,
                    gflags,
                    size,
                    mask,
                    ptr,
                    dst,
                } => {
                    let ga = self.vm_src(regs, *gaddr);
                    let gs = self.vm_src(regs, *gsize);
                    let gf = self.vm_src(regs, *gflags) as u32;
                    self.vm_inline_guard(ctx, *lo, *hi, *perm, *gen, ga, gs, gf, *site)?;
                    self.burn(1)?;
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                        regs[*dst as usize] = 0;
                    } else {
                        let v = self.kernel.mem.read_uint(addr, Size(*size))?;
                        regs[*dst as usize] = mask & v;
                    }
                }
                Op::InlineGuardStore {
                    site,
                    lo,
                    hi,
                    perm,
                    gen,
                    gaddr,
                    gsize,
                    gflags,
                    size,
                    mask,
                    val,
                    ptr,
                } => {
                    let ga = self.vm_src(regs, *gaddr);
                    let gs = self.vm_src(regs, *gsize);
                    let gf = self.vm_src(regs, *gflags) as u32;
                    self.vm_inline_guard(ctx, *lo, *hi, *perm, *gen, ga, gs, gf, *site)?;
                    self.burn(1)?;
                    self.stats.mem_accesses += 1;
                    let addr = VAddr(self.vm_src(regs, *ptr));
                    let v = mask & self.vm_src(regs, *val);
                    if std::mem::take(&mut self.squash_next) {
                        self.stats.squashed += 1;
                    } else {
                        self.kernel.mem.write_uint(addr, Size(*size), v)?;
                    }
                }
                Op::InlineGuard {
                    site,
                    lo,
                    hi,
                    perm,
                    gen,
                    addr,
                    size,
                    flags,
                } => {
                    let a = self.vm_src(regs, *addr);
                    let s = self.vm_src(regs, *size);
                    let f = self.vm_src(regs, *flags) as u32;
                    self.vm_inline_guard(ctx, *lo, *hi, *perm, *gen, a, s, f, *site)?;
                }
                Op::Guard {
                    site,
                    addr,
                    size,
                    flags,
                } => {
                    let a = VAddr(self.vm_src(regs, *addr));
                    let s = Size(self.vm_src(regs, *size));
                    let f = AccessFlags::from_raw(self.vm_src(regs, *flags) as u32);
                    self.run_mem_guard(&ctx.ir.name, a, s, f, *site)?;
                }
                Op::IntrinsicGuard { site, id } => {
                    let id = self.vm_src(regs, *id) as u32;
                    self.run_intrinsic_guard(&ctx.ir.name, id, *site)?;
                }
                Op::Asm => {
                    return Err(KernelError::Fault {
                        addr: VAddr::NULL,
                        what: format!("inline assembly executed in @{}", cf.name),
                    });
                }
                Op::Jump(edge) => {
                    pc = self.vm_edge(cf, regs, *edge)?;
                }
                Op::CondJump {
                    cond,
                    then_edge,
                    else_edge,
                } => {
                    let c = self.vm_src(regs, *cond) & 1;
                    let e = if c == 1 { *then_edge } else { *else_edge };
                    pc = self.vm_edge(cf, regs, e)?;
                }
                Op::SwitchJump {
                    mask,
                    val,
                    arms,
                    default_edge,
                } => {
                    let v = mask & self.vm_src(regs, *val);
                    let e = arms
                        .iter()
                        .find(|(c, _)| *c == v)
                        .map(|(_, e)| *e)
                        .unwrap_or(*default_edge);
                    pc = self.vm_edge(cf, regs, e)?;
                }
                Op::Ret(None) => return Ok(None),
                Op::Ret(Some(v)) => return Ok(Some(self.vm_src(regs, *v))),
                Op::Unreachable => {
                    return Err(KernelError::Fault {
                        addr: VAddr::NULL,
                        what: format!("unreachable executed in @{}", cf.name),
                    });
                }
            }
        }
    }
}
