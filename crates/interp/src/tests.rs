//! Interpreter tests: language semantics, the end-to-end guard path, and
//! violation behaviours.

use std::sync::Arc;

use kop_compiler::{compile_module, CompileOptions, CompilerKey};
use kop_core::error::ViolationKind;
use kop_core::{KernelError, Protection, Region, Size, VAddr};
use kop_kernel::{Kernel, KernelConfig};
use kop_policy::{DefaultAction, PolicyModule, ViolationAction};

use crate::Interp;

fn key() -> CompilerKey {
    CompilerKey::from_passphrase("operator-key", "carat-kop-dev")
}

/// Boot a kernel with a permissive policy and load `src` compiled with
/// `opts`.
fn boot_with(src: &str, opts: &CompileOptions, default: DefaultAction) -> Kernel {
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(default);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, opts, &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    kernel
}

#[test]
fn arithmetic_and_control_flow() {
    let src = r#"
module "math"
define i64 @fib(i64 %n) {
entry:
  %isbase = icmp ult i64 %n, 2
  condbr i1 %isbase, %base, %rec
base:
  ret i64 %n
rec:
  %n1 = sub i64 %n, 1
  %n2 = sub i64 %n, 2
  %f1 = call i64 @fib(i64 %n1)
  %f2 = call i64 @fib(i64 %n2)
  %s = add i64 %f1, %f2
  ret i64 %s
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::baseline(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(interp.call("math", "fib", &[10]).unwrap(), Some(55));
    assert_eq!(interp.call("math", "fib", &[1]).unwrap(), Some(1));
}

#[test]
fn loop_with_memory_and_guards() {
    let src = r#"
module "sum"
define i64 @fill_and_sum(ptr %buf, i64 %n) {
entry:
  br %fill
fill:
  %i = phi i64 [ 0, %entry ], [ %i.next, %fill.body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %fill.body, %sum.head
fill.body:
  %p = gep i64, ptr %buf, i64 %i
  store i64 %i, ptr %p
  %i.next = add i64 %i, 1
  br %fill
sum.head:
  br %sum
sum:
  %j = phi i64 [ 0, %sum.head ], [ %j.next, %sum.body ]
  %acc = phi i64 [ 0, %sum.head ], [ %acc.next, %sum.body ]
  %c2 = icmp ult i64 %j, %n
  condbr i1 %c2, %sum.body, %done
sum.body:
  %q = gep i64, ptr %buf, i64 %j
  %v = load i64, ptr %q
  %acc.next = add i64 %acc, %v
  %j.next = add i64 %j, 1
  br %sum
done:
  ret i64 %acc
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::carat_kop(), DefaultAction::Allow);
    let buf = kernel.kmalloc(64 * 8).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let r = interp
        .call("sum", "fill_and_sum", &[buf.raw(), 64])
        .unwrap();
    assert_eq!(r, Some((0..64).sum::<u64>()));
    let stats = interp.stats();
    // One guard per dynamic access: 64 stores + 64 loads.
    assert_eq!(stats.guards, 128);
    assert_eq!(stats.mem_accesses, 128);
    assert_eq!(stats.squashed, 0);
}

#[test]
fn guard_panic_on_forbidden_access() {
    // The module pokes an arbitrary address; the paper's two-region policy
    // forbids the user half, and the kernel panics.
    let src = r#"
module "rogue"
define void @poke(ptr %p) {
entry:
  store i64 1, ptr %p
  ret void
}
"#;
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();

    // Kernel-half poke: fine.
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let addr = kop_core::layout::DIRECT_MAP_BASE + 0x2000;
        interp.call("rogue", "poke", &[addr]).unwrap();
    }
    assert!(kernel.panicked().is_none());

    // User-half poke: guard fires, kernel panics.
    {
        let mut interp = Interp::new(&mut kernel).unwrap();
        let err = interp.call("rogue", "poke", &[0x40_0000]).unwrap_err();
        match err {
            KernelError::Panic { violation, .. } => {
                let v = violation.expect("violation recorded");
                assert_eq!(v.addr, VAddr(0x40_0000));
                assert_eq!(v.kind, ViolationKind::InsufficientPermissions);
                assert!(v.flags.is_write());
            }
            other => panic!("expected panic, got {other}"),
        }
    }
    assert!(kernel.panicked().is_some());
    assert!(kernel
        .dmesg()
        .iter()
        .any(|l| l.contains("CARAT KOP violation")));
    // The machine is down: further calls fail immediately.
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert!(interp.call("rogue", "poke", &[0]).is_err());
}

#[test]
fn quarantine_mode_unloads_offender_and_kernel_survives() {
    let src = r#"
module "rogue"
define void @poke(ptr %p) {
entry:
  store i64 1, ptr %p
  ret void
}
"#;
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    policy.set_violation_action(ViolationAction::Quarantine);
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();

    // Default budget 3: the first two forbidden pokes are squashed...
    for _ in 0..2 {
        let mut interp = Interp::new(&mut kernel).unwrap();
        interp.call("rogue", "poke", &[0x40_0000]).unwrap();
        assert_eq!(interp.stats().squashed, 1);
    }
    assert_eq!(kernel.violation_count("rogue"), 2);
    assert!(kernel.module("rogue").is_some());

    // ...the third exhausts the budget: module quarantined mid-call.
    let mut interp = Interp::new(&mut kernel).unwrap();
    let err = interp.call("rogue", "poke", &[0x40_0000]).unwrap_err();
    assert!(
        matches!(err, KernelError::ModuleQuarantined { ref module, .. } if module == "rogue"),
        "{err}"
    );

    // The kernel survives; the module is gone, symbols unlinked.
    assert!(kernel.panicked().is_none());
    assert!(kernel.check_alive().is_ok());
    assert!(kernel.module("rogue").is_none());
    assert!(kernel.is_quarantined("rogue"));
    assert_eq!(kernel.quarantine_records().len(), 1);
    assert!(kernel.dmesg().iter().any(|l| l.contains("Oops")));
    // The store never landed.
    assert_eq!(kernel.mem.read_uint(VAddr(0x40_0000), Size(8)).unwrap(), 0);
    // Calls to the quarantined module now fail cleanly.
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert!(matches!(
        interp.call("rogue", "poke", &[0]).unwrap_err(),
        KernelError::NoSuchModule(_)
    ));
}

#[test]
fn deny_mode_squashes_access() {
    let src = r#"
module "squash"
define i64 @readwrite(ptr %ok, ptr %bad) {
entry:
  store i64 77, ptr %ok
  store i64 88, ptr %bad
  %v = load i64, ptr %bad
  %w = load i64, ptr %ok
  %s = add i64 %v, %w
  ret i64 %s
}
"#;
    let policy = Arc::new(PolicyModule::new());
    policy.set_violation_action(ViolationAction::LogAndDeny);
    // Allow only one page.
    let ok_base = kop_core::layout::DIRECT_MAP_BASE + 0x10_0000;
    policy
        .add_region(Region::new(VAddr(ok_base), Size(0x1000), Protection::READ_WRITE).unwrap())
        .unwrap();
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();

    let bad = kop_core::layout::DIRECT_MAP_BASE + 0x20_0000;
    let mut interp = Interp::new(&mut kernel).unwrap();
    let r = interp.call("squash", "readwrite", &[ok_base, bad]).unwrap();
    // Squashed store dropped, squashed load reads 0: result is 0 + 77.
    assert_eq!(r, Some(77));
    let stats = interp.stats();
    assert_eq!(stats.squashed, 2);
    assert!(kernel.panicked().is_none());
    // The squashed store really did not land.
    assert_eq!(kernel.mem.read_uint(VAddr(bad), Size(8)).unwrap(), 0);
    // Violations were logged.
    assert_eq!(kernel.policy().violation_log().len(), 2);
}

#[test]
fn unguarded_module_bypasses_policy() {
    // The control case: without CARAT KOP transformation, a module
    // tramples forbidden memory and nothing stops it — the monolithic
    // kernel problem the paper opens with.
    let src = r#"
module "unguarded"
define void @poke(ptr %p) {
entry:
  store i64 666, ptr %p
  ret void
}
"#;
    let policy = Arc::new(PolicyModule::two_region_paper_policy());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, &CompileOptions::baseline(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    // Forbidden address (user half), yet the store lands.
    interp.call("unguarded", "poke", &[0x40_0000]).unwrap();
    assert!(kernel.panicked().is_none());
    assert_eq!(
        kernel.mem.read_uint(VAddr(0x40_0000), Size(8)).unwrap(),
        666
    );
    assert_eq!(kernel.policy().stats().checks, 0, "no guards ran");
}

#[test]
fn globals_and_struct_gep() {
    let src = r#"
module "structs"
global @stats : { i64, i32, i32 } = zero
define i64 @update() {
entry:
  %cnt.p = gep { i64, i32, i32 }, ptr @stats, i64 0, i32 0
  %cnt = load i64, ptr %cnt.p
  %cnt2 = add i64 %cnt, 5
  store i64 %cnt2, ptr %cnt.p
  %b.p = gep { i64, i32, i32 }, ptr @stats, i64 0, i32 2
  store i32 9, ptr %b.p
  %b = load i32, ptr %b.p
  %b64 = zext i32 %b to i64
  %r = add i64 %cnt2, %b64
  ret i64 %r
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::carat_kop(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(interp.call("structs", "update", &[]).unwrap(), Some(14));
    assert_eq!(interp.call("structs", "update", &[]).unwrap(), Some(19));
}

#[test]
fn alloca_select_switch_casts() {
    let src = r#"
module "misc"
define i64 @f(i64 %x) {
entry:
  %slot = alloca i64, 4
  %p1 = gep i64, ptr %slot, i64 1
  store i64 %x, ptr %p1
  %v = load i64, ptr %p1
  %small = trunc i64 %v to i8
  %back = sext i8 %small to i64
  %c = icmp sgt i64 %back, 0
  %sel = select i1 %c, i64 100, i64 200
  switch i64 %sel, %other [ 100: %hundred ]
hundred:
  ret i64 1
other:
  ret i64 2
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::carat_kop(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(interp.call("misc", "f", &[5]).unwrap(), Some(1));
    // 0x80 truncates to i8 -128 → sext negative → select 200 → default arm.
    assert_eq!(interp.call("misc", "f", &[0x80]).unwrap(), Some(2));
}

#[test]
fn division_by_zero_faults() {
    let src = r#"
module "div"
define i64 @f(i64 %a, i64 %b) {
entry:
  %q = udiv i64 %a, %b
  ret i64 %q
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::baseline(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(interp.call("div", "f", &[10, 3]).unwrap(), Some(3));
    assert!(matches!(
        interp.call("div", "f", &[10, 0]).unwrap_err(),
        KernelError::Fault { .. }
    ));
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let src = r#"
module "spin"
define void @forever() {
entry:
  br %spin
spin:
  br %spin
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::baseline(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.set_fuel(10_000);
    let err = interp.call("spin", "forever", &[]).unwrap_err();
    assert!(matches!(err, KernelError::Fault { what, .. } if what.contains("fuel")));
}

#[test]
fn kmalloc_printk_host_calls() {
    let src = r#"
module "host"
declare void @printk(i64)
declare ptr @kmalloc(i64)
define i64 @alloc_and_use() {
entry:
  %p = call ptr @kmalloc(i64 128)
  store i64 42, ptr %p
  %v = load i64, ptr %p
  call void @printk(i64 %v)
  ret i64 %v
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::carat_kop(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    assert_eq!(interp.call("host", "alloc_and_use", &[]).unwrap(), Some(42));
    assert!(kernel
        .dmesg()
        .iter()
        .any(|l| l.contains("module printk: 0x2a")));
}

#[test]
fn optimized_guards_same_result_fewer_checks() {
    // Same workload compiled unoptimized vs optimized: identical result,
    // strictly fewer dynamic guard checks — the ablation claim.
    let src = r#"
module "work"
global @acc : i64 = 0
define i64 @run(i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %v = load i64, ptr @acc
  %v2 = add i64 %v, %i
  store i64 %v2, ptr @acc
  %i.next = add i64 %i, 1
  br %head
exit:
  %r = load i64, ptr @acc
  ret i64 %r
}
"#;
    let run = |opts: &CompileOptions| -> (u64, u64) {
        let policy = Arc::new(PolicyModule::new());
        policy.set_default_action(DefaultAction::Allow);
        let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
        let m = kop_ir::parse_module(src).unwrap();
        let out = compile_module(m, opts, &key()).unwrap();
        kernel.insmod(&out.signed).unwrap();
        let mut interp = Interp::new(&mut kernel).unwrap();
        let r = interp.call("work", "run", &[100]).unwrap().unwrap();
        (r, interp.stats().guards)
    };
    let (r_plain, g_plain) = run(&CompileOptions::carat_kop());
    let (r_opt, g_opt) = run(&CompileOptions::optimized());
    assert_eq!(r_plain, r_opt);
    assert_eq!(r_plain, (0..100).sum::<u64>());
    assert!(
        g_opt < g_plain,
        "optimized guards {g_opt} must be fewer than {g_plain}"
    );
    // Unoptimized: 2 guards per iteration + 1 for the exit load.
    assert_eq!(g_plain, 201);
}

const MSR_SRC: &str = r#"
module "perfmon"
declare void @__wrmsr(i64, i64)
declare i64 @__rdmsr(i64)
define i64 @program_counters(i64 %msr, i64 %val) {
entry:
  call void @__wrmsr(i64 %msr, i64 %val)
  %back = call i64 @__rdmsr(i64 %msr)
  ret i64 %back
}
"#;

#[test]
fn wrapped_intrinsics_run_when_granted() {
    // §5 extension end to end: a perf-monitoring module granted MSR
    // access through the intrinsic policy table.
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    policy.allow_intrinsic(kop_compiler::intrinsic_id("__wrmsr").unwrap());
    policy.allow_intrinsic(kop_compiler::intrinsic_id("__rdmsr").unwrap());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(MSR_SRC).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop_privileged(), &key()).unwrap();
    assert_eq!(out.signed.attestation.privileged_calls, 2);
    assert!(out.signed.attestation.privileged_wrapped);
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let v = interp
        .call("perfmon", "program_counters", &[0xC000_0080, 0x500])
        .unwrap();
    assert_eq!(v, Some(0x500));
    assert_eq!(kernel.rdmsr(0xC000_0080), 0x500);
    // 2 intrinsic guards ran.
    assert_eq!(kernel.policy().stats().checks, 2);
}

#[test]
fn ungranted_intrinsic_panics_kernel() {
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    // No intrinsic grants at all.
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(MSR_SRC).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop_privileged(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let err = interp
        .call("perfmon", "program_counters", &[0xC000_0080, 0x500])
        .unwrap_err();
    match err {
        KernelError::Panic { violation, .. } => {
            let v = violation.unwrap();
            assert_eq!(v.kind, ViolationKind::ForbiddenIntrinsic);
        }
        other => panic!("expected panic, got {other}"),
    }
    assert!(kernel.panicked().is_some());
    // The MSR was never written.
    assert_eq!(kernel.rdmsr(0xC000_0080), 0);
}

#[test]
fn denied_intrinsic_squashed_in_deny_mode() {
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    policy.set_violation_action(ViolationAction::LogAndDeny);
    policy.allow_intrinsic(kop_compiler::intrinsic_id("__rdmsr").unwrap()); // rd ok, wr denied
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(MSR_SRC).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop_privileged(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    let v = interp
        .call("perfmon", "program_counters", &[0xC000_0080, 0x500])
        .unwrap();
    // The write was squashed, so the read-back sees the reset value.
    assert_eq!(v, Some(0));
    assert!(kernel.panicked().is_none());
    assert_eq!(kernel.policy().violation_log().len(), 1);
}

#[test]
fn raw_privileged_module_rejected_at_compile_time() {
    // Without wrap_privileged, the paper's base behaviour holds: refuse.
    let m = kop_ir::parse_module(MSR_SRC).unwrap();
    let err = compile_module(m, &CompileOptions::carat_kop(), &key()).unwrap_err();
    assert!(matches!(
        err,
        kop_compiler::CompileError::Attest(kop_compiler::AttestError::PrivilegedIntrinsic { .. })
    ));
}

#[test]
fn cli_sti_toggle_interrupt_state() {
    let src = r#"
module "irqctl"
declare void @__cli()
declare void @__sti()
define void @critical() {
entry:
  call void @__cli()
  call void @__sti()
  ret void
}
define void @lockup() {
entry:
  call void @__cli()
  ret void
}
"#;
    let policy = Arc::new(PolicyModule::new());
    policy.set_default_action(DefaultAction::Allow);
    policy.allow_intrinsic(kop_compiler::intrinsic_id("__cli").unwrap());
    policy.allow_intrinsic(kop_compiler::intrinsic_id("__sti").unwrap());
    let mut kernel = Kernel::boot(policy, vec![key()], KernelConfig::default());
    let m = kop_ir::parse_module(src).unwrap();
    let out = compile_module(m, &CompileOptions::carat_kop_privileged(), &key()).unwrap();
    kernel.insmod(&out.signed).unwrap();
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.call("irqctl", "critical", &[]).unwrap();
    assert!(kernel.interrupts_enabled());
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.call("irqctl", "lockup", &[]).unwrap();
    assert!(!kernel.interrupts_enabled(), "module left interrupts off");
}

#[test]
fn stats_track_instruction_counts() {
    let src = r#"
module "tiny"
define i64 @three() {
entry:
  %a = add i64 1, 2
  ret i64 %a
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::baseline(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    interp.call("tiny", "three", &[]).unwrap();
    assert_eq!(interp.stats().insts, 2); // add + ret
}

#[test]
fn unbounded_recursion_is_contained() {
    let src = r#"
module "recurse"
define i64 @f(i64 %n) {
entry:
  %n2 = add i64 %n, 1
  %r = call i64 @f(i64 %n2)
  ret i64 %r
}
"#;
    let mut kernel = boot_with(src, &CompileOptions::baseline(), DefaultAction::Allow);
    let mut interp = Interp::new(&mut kernel).unwrap();
    let err = interp.call("recurse", "f", &[0]).unwrap_err();
    assert!(
        matches!(err, KernelError::NoMemory(ref m) if m.contains("stack overflow")),
        "{err}"
    );
    // The interpreter (and kernel) survive; bounded recursion still works.
    let src2 = r#"
module "fib"
define i64 @fib(i64 %n) {
entry:
  %base = icmp ult i64 %n, 2
  condbr i1 %base, %ret_n, %rec
ret_n:
  ret i64 %n
rec:
  %a = sub i64 %n, 1
  %b = sub i64 %n, 2
  %fa = call i64 @fib(i64 %a)
  %fb = call i64 @fib(i64 %b)
  %s = add i64 %fa, %fb
  ret i64 %s
}
"#;
    let m = kop_ir::parse_module(src2).unwrap();
    let out = compile_module(m, &CompileOptions::baseline(), &key()).unwrap();
    interp.kernel().insmod(&out.signed).unwrap();
    assert_eq!(interp.call("fib", "fib", &[12]).unwrap(), Some(144));
}
