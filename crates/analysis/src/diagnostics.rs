//! Structured diagnostics with stable lint codes.
//!
//! Every analysis in this crate reports findings as [`Diagnostic`]s
//! carrying a stable [`LintCode`] plus a precise location
//! (function, block, instruction). The loader and the compiler driver
//! decide what to do from the [`Severity`], never from message text.

use core::fmt;

/// Stable lint codes. The numeric part never changes meaning across
/// releases; tools may match on it.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum LintCode {
    /// KA001: a load/store not covered by a dominating guard on all paths.
    UnguardedAccess,
    /// KA002: a guard exists for the pointer but its size or access flags
    /// do not cover the access.
    GuardMismatch,
    /// KA003: a memory access through an `inttoptr`-laundered pointer.
    LaunderedPointer,
    /// KA004: a guard that provably covers no reachable access.
    DeadGuard,
    /// KA005: a constant-address access that statically violates the
    /// supplied policy snapshot.
    PolicyViolation,
    /// KA006: an optimizer obligation references a guard or access that
    /// does not exist in the module (or no longer has the claimed shape).
    ObligationUnfounded,
    /// KA007: a range obligation whose hoisted guard cannot be re-derived
    /// from the loop's induction structure (wrong stride, trip count,
    /// base, or access shape).
    RangeUnproven,
    /// KA008: an obligation claims a dominating guard that does not in
    /// fact dominate the access it is said to cover.
    ObligationDominance,
    /// KA009: an inline obligation's baked `[lo, hi)` bound does not
    /// equal any grant the cited snapshot generation held — a forged
    /// immediate.
    InlineBoundForged,
    /// KA010: an inline obligation cites a snapshot generation the grant
    /// oracle no longer (or never did) retain — the bound cannot be
    /// independently recomputed, so it must not be trusted.
    InlineBoundStale,
    /// KA011: an inline obligation's baked bound belongs to a real grant,
    /// but not one covering the guard site it is attached to (bound for
    /// the wrong site).
    InlineBoundSiteMismatch,
}

impl LintCode {
    /// The stable textual code, e.g. `"KA001"`.
    pub fn code(self) -> &'static str {
        match self {
            LintCode::UnguardedAccess => "KA001",
            LintCode::GuardMismatch => "KA002",
            LintCode::LaunderedPointer => "KA003",
            LintCode::DeadGuard => "KA004",
            LintCode::PolicyViolation => "KA005",
            LintCode::ObligationUnfounded => "KA006",
            LintCode::RangeUnproven => "KA007",
            LintCode::ObligationDominance => "KA008",
            LintCode::InlineBoundForged => "KA009",
            LintCode::InlineBoundStale => "KA010",
            LintCode::InlineBoundSiteMismatch => "KA011",
        }
    }

    /// Default severity of this lint.
    pub fn severity(self) -> Severity {
        match self {
            LintCode::UnguardedAccess
            | LintCode::GuardMismatch
            | LintCode::PolicyViolation
            | LintCode::ObligationUnfounded
            | LintCode::RangeUnproven
            | LintCode::ObligationDominance
            | LintCode::InlineBoundForged
            | LintCode::InlineBoundStale
            | LintCode::InlineBoundSiteMismatch => Severity::Error,
            LintCode::LaunderedPointer | LintCode::DeadGuard => Severity::Warning,
        }
    }

    /// One-line description of the lint class.
    pub fn title(self) -> &'static str {
        match self {
            LintCode::UnguardedAccess => "unguarded memory access",
            LintCode::GuardMismatch => "guard does not cover access",
            LintCode::LaunderedPointer => "inttoptr-laundered pointer access",
            LintCode::DeadGuard => "guard covers no access",
            LintCode::PolicyViolation => "constant address violates policy",
            LintCode::ObligationUnfounded => "obligation references missing guard or access",
            LintCode::RangeUnproven => "range obligation not derivable from loop structure",
            LintCode::ObligationDominance => "claimed dominating guard does not dominate",
            LintCode::InlineBoundForged => "inlined guard bound does not match any cited grant",
            LintCode::InlineBoundStale => "inlined guard bound cites an unretained generation",
            LintCode::InlineBoundSiteMismatch => "inlined guard bound belongs to another site",
        }
    }
}

impl fmt::Display for LintCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.code())
    }
}

/// How bad a finding is. Errors make a module unsignable/unloadable in
/// static-verification mode; warnings are advisory.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Severity {
    /// Advisory; does not fail verification.
    Warning,
    /// Fails verification.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// A single analysis finding, anchored to an instruction.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Diagnostic {
    /// The lint that fired.
    pub code: LintCode,
    /// Enclosing function name (without `@`).
    pub function: String,
    /// Enclosing block label.
    pub block: String,
    /// Index of the instruction within the block's instruction list.
    pub inst_index: usize,
    /// SSA result name of the instruction (`%name`), or a rendered stub
    /// for unnamed instructions (e.g. `store #3`).
    pub inst: String,
    /// Human-readable detail.
    pub message: String,
}

impl Diagnostic {
    /// Severity, derived from the lint code.
    pub fn severity(&self) -> Severity {
        self.code.severity()
    }

    /// `@function/block#index` location string.
    pub fn location(&self) -> String {
        format!("@{}/{}#{}", self.function, self.block, self.inst_index)
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} [{}] {} ({}): {}",
            self.code,
            self.severity(),
            self.location(),
            self.inst,
            self.message
        )
    }
}

/// The merged result of running analyses over a module.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct AnalysisReport {
    /// All findings, in analysis order.
    pub diagnostics: Vec<Diagnostic>,
    /// Counters the analyses expose (accesses checked, facts proven, …).
    pub stats: std::collections::BTreeMap<&'static str, u64>,
}

impl AnalysisReport {
    /// An empty report.
    pub fn new() -> AnalysisReport {
        AnalysisReport::default()
    }

    /// Record a finding.
    pub fn push(&mut self, d: Diagnostic) {
        self.diagnostics.push(d);
    }

    /// Add `n` to a named counter.
    pub fn bump(&mut self, key: &'static str, n: u64) {
        *self.stats.entry(key).or_insert(0) += n;
    }

    /// Read a counter (0 when absent).
    pub fn stat(&self, key: &str) -> u64 {
        self.stats.get(key).copied().unwrap_or(0)
    }

    /// Error-severity findings.
    pub fn errors(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Error)
    }

    /// Warning-severity findings.
    pub fn warnings(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics
            .iter()
            .filter(|d| d.severity() == Severity::Warning)
    }

    /// True when no error-severity finding exists. Warnings (dead guards,
    /// laundered pointers) do not make a module unverifiable.
    pub fn is_clean(&self) -> bool {
        self.errors().next().is_none()
    }

    /// Findings with a given code.
    pub fn with_code(&self, code: LintCode) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.code == code)
    }

    /// Fold another report into this one (diagnostics append, counters add).
    pub fn merge(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
        for (k, v) in other.stats {
            *self.stats.entry(k).or_insert(0) += v;
        }
    }

    /// A compact multi-line rendering: one line per finding plus a verdict.
    pub fn summary(&self) -> String {
        use core::fmt::Write;
        let mut out = String::new();
        for d in &self.diagnostics {
            let _ = writeln!(out, "{d}");
        }
        let errors = self.errors().count();
        let warnings = self.warnings().count();
        let _ = write!(
            out,
            "verdict: {} ({errors} errors, {warnings} warnings)",
            if self.is_clean() { "clean" } else { "rejected" }
        );
        out
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.summary())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(code: LintCode) -> Diagnostic {
        Diagnostic {
            code,
            function: "tx".into(),
            block: "entry".into(),
            inst_index: 3,
            inst: "%count".into(),
            message: "test".into(),
        }
    }

    #[test]
    fn codes_are_stable() {
        assert_eq!(LintCode::UnguardedAccess.code(), "KA001");
        assert_eq!(LintCode::GuardMismatch.code(), "KA002");
        assert_eq!(LintCode::LaunderedPointer.code(), "KA003");
        assert_eq!(LintCode::DeadGuard.code(), "KA004");
        assert_eq!(LintCode::PolicyViolation.code(), "KA005");
        assert_eq!(LintCode::ObligationUnfounded.code(), "KA006");
        assert_eq!(LintCode::RangeUnproven.code(), "KA007");
        assert_eq!(LintCode::ObligationDominance.code(), "KA008");
        assert_eq!(LintCode::InlineBoundForged.code(), "KA009");
        assert_eq!(LintCode::InlineBoundStale.code(), "KA010");
        assert_eq!(LintCode::InlineBoundSiteMismatch.code(), "KA011");
    }

    #[test]
    fn severity_split() {
        assert_eq!(LintCode::UnguardedAccess.severity(), Severity::Error);
        assert_eq!(LintCode::GuardMismatch.severity(), Severity::Error);
        assert_eq!(LintCode::PolicyViolation.severity(), Severity::Error);
        assert_eq!(LintCode::ObligationUnfounded.severity(), Severity::Error);
        assert_eq!(LintCode::RangeUnproven.severity(), Severity::Error);
        assert_eq!(LintCode::ObligationDominance.severity(), Severity::Error);
        assert_eq!(LintCode::InlineBoundForged.severity(), Severity::Error);
        assert_eq!(LintCode::InlineBoundStale.severity(), Severity::Error);
        assert_eq!(
            LintCode::InlineBoundSiteMismatch.severity(),
            Severity::Error
        );
        assert_eq!(LintCode::LaunderedPointer.severity(), Severity::Warning);
        assert_eq!(LintCode::DeadGuard.severity(), Severity::Warning);
    }

    #[test]
    fn display_names_the_instruction() {
        let d = sample(LintCode::UnguardedAccess);
        let s = d.to_string();
        assert!(s.contains("KA001"), "{s}");
        assert!(s.contains("@tx/entry#3"), "{s}");
        assert!(s.contains("%count"), "{s}");
    }

    #[test]
    fn report_cleanliness_ignores_warnings() {
        let mut r = AnalysisReport::new();
        r.push(sample(LintCode::DeadGuard));
        assert!(r.is_clean());
        r.push(sample(LintCode::UnguardedAccess));
        assert!(!r.is_clean());
        assert_eq!(r.errors().count(), 1);
        assert_eq!(r.warnings().count(), 1);
        assert!(r.summary().contains("rejected"));
    }

    #[test]
    fn merge_adds_counters() {
        let mut a = AnalysisReport::new();
        a.bump("accesses_checked", 3);
        let mut b = AnalysisReport::new();
        b.bump("accesses_checked", 2);
        b.push(sample(LintCode::GuardMismatch));
        a.merge(b);
        assert_eq!(a.stat("accesses_checked"), 5);
        assert_eq!(a.diagnostics.len(), 1);
    }
}
