//! Value-range / loop-induction analysis for guard coalescing.
//!
//! SCEV-lite: inside a counted loop `for (iv = 0; iv <u n; iv++)`
//! (recognized by [`kop_ir::loops`]), a pointer of the shape
//! `gep elem_ty, base, iv` with a loop-invariant `base` evaluates to the
//! affine sequence `base + iv·stride` (`stride = size_of(elem_ty)`), and
//! the header's bound check confines `iv` to `[0, n)` in every
//! non-header loop block. Every per-iteration access through such a
//! pointer therefore stays inside the byte range
//! `[base, base + n·stride)` — one *range guard* over that interval
//! covers all of them.
//!
//! [`plan_ranges`] turns this into concrete coalescing plans for the
//! compiler's `RangeCoalescing` pass. The independent translation
//! validator does **not** use this module: it re-derives the same
//! interval from the loop structure with its own checking code when it
//! audits a range obligation.

use std::collections::BTreeMap;

use kop_ir::dom::DomTree;
use kop_ir::loops::{find_counted_loops, CountedLoop};
use kop_ir::{Function, Inst, InstId, Value};

use crate::coverage::guard_fact;

/// Classify `ptr` as a per-iteration element pointer of loop `l`:
/// `gep elem_ty, base, iv` with loop-invariant `base`. Returns
/// `(base, stride)` on success.
pub fn element_pattern(f: &Function, l: &CountedLoop, ptr: &Value) -> Option<(Value, u64)> {
    let Value::Inst(gep) = ptr else { return None };
    let Inst::Gep {
        base_ty,
        ptr: base,
        indices,
    } = f.inst(*gep)
    else {
        return None;
    };
    if indices.len() != 1 || indices[0] != Value::Inst(l.iv) {
        return None;
    }
    if l.varies(f, base) {
        return None;
    }
    let stride = base_ty.size_of();
    if stride == 0 {
        return None;
    }
    Some((base.clone(), stride))
}

/// One coalescing opportunity: all per-iteration element guards of a
/// counted loop that walk the same `base` array with the same stride.
#[derive(Clone, Debug)]
pub struct RangePlan {
    /// The loop whose iterations the range spans.
    pub loop_: CountedLoop,
    /// Loop-invariant base pointer of the walked array.
    pub base: Value,
    /// Bytes per iteration step.
    pub stride: u64,
    /// Union of the access-flag bits of the guards being replaced.
    pub flags: u64,
    /// The per-iteration guards a single range guard can replace, in
    /// layout order.
    pub guards: Vec<InstId>,
}

/// Find every range-coalescing opportunity in `f`.
///
/// A guard qualifies when it sits in a block where the induction
/// variable is provably in `[0, n)`, its pointer matches
/// [`element_pattern`], and its guarded byte count fits inside one
/// stride (so `base + iv·stride + size ≤ base + n·stride`).
pub fn plan_ranges(f: &Function) -> Vec<RangePlan> {
    let dom = DomTree::compute(f);
    let loops = find_counted_loops(f, &dom);
    let mut plans = Vec::new();
    for l in loops {
        // Group qualifying guards by (base, stride).
        let mut groups: BTreeMap<(String, u64), (Value, u64, Vec<InstId>)> = BTreeMap::new();
        for bid in f.block_ids() {
            if !l.iv_bounded_in(bid) {
                continue;
            }
            for &iid in &f.block(bid).insts {
                let Some(fact) = guard_fact(f, iid) else {
                    continue;
                };
                let Some((base, stride)) = element_pattern(f, &l, &fact.ptr) else {
                    continue;
                };
                if fact.size > stride {
                    continue;
                }
                let key = (format!("{base:?}"), stride);
                groups
                    .entry(key)
                    .or_insert_with(|| (base, stride, Vec::new()))
                    .2
                    .push(iid);
            }
        }
        for (_, (base, stride, guards)) in groups {
            let flags = guards
                .iter()
                .filter_map(|&g| guard_fact(f, g))
                .fold(0, |acc, fa| acc | fa.flags);
            plans.push(RangePlan {
                loop_: l.clone(),
                base,
                stride,
                flags,
                guards,
            });
        }
    }
    plans
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    const WALK: &str = r#"
module "walk"
declare void @carat_guard(ptr, i64, i32)
define i64 @sum(ptr %buf, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;

    #[test]
    fn plans_element_walk() {
        let m = parse_module(WALK).unwrap();
        let f = m.function("sum").unwrap();
        let plans = plan_ranges(f);
        assert_eq!(plans.len(), 1);
        let p = &plans[0];
        assert_eq!(p.base, Value::Arg(0));
        assert_eq!(p.stride, 8);
        assert_eq!(p.flags, 1);
        assert_eq!(p.guards.len(), 1);
        assert_eq!(p.loop_.bound, Value::Arg(1));
    }

    #[test]
    fn scaled_index_does_not_qualify() {
        // Index is `mul iv, 2` — not the raw induction variable, so the
        // per-element interval derivation does not apply.
        let src = WALK.replace(
            "%p = gep i64, ptr %buf, i64 %i",
            "%j = mul i64 %i, 2\n  %p = gep i64, ptr %buf, i64 %j",
        );
        let m = parse_module(&src).unwrap();
        let f = m.function("sum").unwrap();
        assert!(plan_ranges(f).is_empty());
    }

    #[test]
    fn oversized_access_does_not_qualify() {
        // A 16-byte guard strides past the next element: one range of
        // n·8 bytes would not cover iteration n-1.
        let src = WALK.replace("i64 8, i32 1", "i64 16, i32 1");
        let m = parse_module(&src).unwrap();
        let f = m.function("sum").unwrap();
        assert!(plan_ranges(f).is_empty());
    }

    #[test]
    fn loop_varying_base_does_not_qualify() {
        let src = r#"
module "varybase"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %pp, i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %buf = load ptr, ptr %pp
  %p = gep i64, ptr %buf, i64 %i
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let plans = plan_ranges(f);
        assert!(
            plans.is_empty(),
            "base reloaded per iteration must not coalesce"
        );
    }
}
