//! A reusable forward-dataflow framework over KIR CFGs.
//!
//! The framework is the classic worklist algorithm: block in-states are
//! the merge of predecessor out-states, out-states are computed by a
//! per-instruction transfer function, and blocks requeue until fixpoint.
//! `Option<D>` encodes ⊤ ("not yet reached"): unvisited predecessors are
//! skipped during merges, so states only ever flow along realizable
//! paths. Iteration order is reverse postorder, which converges in one
//! or two passes for the reducible CFGs the guard passes produce.

use kop_ir::{BlockId, Function, InstId};

/// A forward analysis over a function.
///
/// `Domain` is a join-semilattice element; [`ForwardAnalysis::merge`]
/// combines the out-states of all *reached* predecessors (a must-analysis
/// intersects, a may-analysis unions).
pub trait ForwardAnalysis {
    /// The abstract state attached to each program point.
    type Domain: Clone + PartialEq;

    /// State on entry to the function's entry block.
    fn entry_state(&self, f: &Function) -> Self::Domain;

    /// Combine the out-states of reached predecessors. Never called with
    /// an empty slice.
    fn merge(&self, states: &[&Self::Domain]) -> Self::Domain;

    /// Apply one instruction's effect to the state.
    fn transfer(&self, f: &Function, bid: BlockId, iid: InstId, state: &mut Self::Domain);

    /// Adjust the merged state on entry to `bid`, before any transfer in
    /// the block runs. The default is a no-op. Analyses whose facts
    /// mention SSA values use this to kill facts about values the block
    /// (re-)defines: when control re-enters a defining block along a back
    /// edge, the defining instructions re-execute and may bind new
    /// runtime values, so facts keyed on them are stale.
    fn on_block_entry(&self, _f: &Function, _bid: BlockId, _state: &mut Self::Domain) {}
}

/// Fixpoint result: per-block in-states. `None` = block never reached
/// from the entry (⊤).
#[derive(Clone, Debug)]
pub struct BlockStates<D> {
    /// State at each block's entry, indexed by `BlockId`.
    pub in_states: Vec<Option<D>>,
}

impl<D> BlockStates<D> {
    /// In-state of `b`, if the block is reachable.
    pub fn entry_of(&self, b: BlockId) -> Option<&D> {
        self.in_states.get(b.0 as usize).and_then(|s| s.as_ref())
    }
}

/// Reverse postorder over the reachable blocks of `f`.
pub fn reverse_postorder(f: &Function) -> Vec<BlockId> {
    let n = f.blocks.len();
    if n == 0 {
        return vec![];
    }
    let mut visited = vec![false; n];
    let mut postorder = Vec::with_capacity(n);
    let mut stack: Vec<(BlockId, usize)> = vec![(BlockId(0), 0)];
    visited[0] = true;
    while let Some((b, child)) = stack.last().copied() {
        let succs = f
            .block(b)
            .term
            .as_ref()
            .map(|t| t.successors())
            .unwrap_or_default();
        if child < succs.len() {
            stack.last_mut().expect("stack non-empty").1 += 1;
            let s = succs[child];
            if !visited[s.0 as usize] {
                visited[s.0 as usize] = true;
                stack.push((s, 0));
            }
        } else {
            postorder.push(b);
            stack.pop();
        }
    }
    postorder.reverse();
    postorder
}

/// Run `analysis` over `f` to fixpoint and return per-block in-states.
pub fn solve<A: ForwardAnalysis>(f: &Function, analysis: &A) -> BlockStates<A::Domain> {
    let n = f.blocks.len();
    let mut in_states: Vec<Option<A::Domain>> = vec![None; n];
    let mut out_states: Vec<Option<A::Domain>> = vec![None; n];
    if n == 0 {
        return BlockStates { in_states };
    }

    let rpo = reverse_postorder(f);
    let mut rpo_pos = vec![usize::MAX; n];
    for (i, b) in rpo.iter().enumerate() {
        rpo_pos[b.0 as usize] = i;
    }
    let preds = f.predecessors();

    in_states[0] = Some({
        let mut s = analysis.entry_state(f);
        analysis.on_block_entry(f, BlockId(0), &mut s);
        s
    });
    // Worklist of RPO positions, deduplicated via an in-queue flag.
    let mut queued = vec![false; rpo.len()];
    let mut work: std::collections::VecDeque<usize> = (0..rpo.len()).collect();
    for q in queued.iter_mut() {
        *q = true;
    }

    while let Some(pos) = work.pop_front() {
        queued[pos] = false;
        let b = rpo[pos];
        let bi = b.0 as usize;

        // Merge reached predecessors (entry keeps its boundary state).
        if b != BlockId(0) {
            let reached: Vec<&A::Domain> = preds[bi]
                .iter()
                .filter_map(|p| out_states[p.0 as usize].as_ref())
                .collect();
            if reached.is_empty() {
                continue; // not yet reachable
            }
            let mut merged = analysis.merge(&reached);
            analysis.on_block_entry(f, b, &mut merged);
            in_states[bi] = Some(merged);
        }

        // Transfer through the block.
        let mut state = in_states[bi].clone().expect("reached block has state");
        for &iid in &f.block(b).insts {
            analysis.transfer(f, b, iid, &mut state);
        }

        if out_states[bi].as_ref() != Some(&state) {
            out_states[bi] = Some(state);
            if let Some(term) = &f.block(b).term {
                for succ in term.successors() {
                    let spos = rpo_pos[succ.0 as usize];
                    if spos != usize::MAX && !queued[spos] {
                        queued[spos] = true;
                        work.push_back(spos);
                    }
                }
            }
        }
    }

    BlockStates { in_states }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::{parse_module, Inst};
    use std::collections::HashSet;

    /// A toy must-analysis: the set of callee names invoked on *every*
    /// path into a point.
    struct MustCalls;

    impl ForwardAnalysis for MustCalls {
        type Domain = HashSet<String>;

        fn entry_state(&self, _f: &Function) -> Self::Domain {
            HashSet::new()
        }

        fn merge(&self, states: &[&Self::Domain]) -> Self::Domain {
            let mut it = states.iter();
            let first = (*it.next().expect("non-empty")).clone();
            it.fold(first, |acc, s| acc.intersection(s).cloned().collect())
        }

        fn transfer(&self, f: &Function, _b: BlockId, iid: InstId, state: &mut Self::Domain) {
            if let Inst::Call { callee, .. } = f.inst(iid) {
                state.insert(callee.clone());
            }
        }
    }

    const DIAMOND: &str = r#"
module "d"
declare void @both()
declare void @left()
declare void @right()
define void @f(i1 %c) {
entry:
  call void @both()
  condbr i1 %c, %a, %b
a:
  call void @left()
  br %join
b:
  call void @right()
  br %join
join:
  ret void
dead:
  ret void
}
"#;

    #[test]
    fn must_analysis_intersects_at_joins() {
        let m = parse_module(DIAMOND).unwrap();
        let f = m.function("f").unwrap();
        let states = solve(f, &MustCalls);
        let join = f.block_by_name("join").unwrap();
        let at_join = states.entry_of(join).expect("join reachable");
        assert!(at_join.contains("both"));
        assert!(!at_join.contains("left"), "only on one path");
        assert!(!at_join.contains("right"), "only on one path");
    }

    #[test]
    fn unreachable_blocks_have_no_state() {
        let m = parse_module(DIAMOND).unwrap();
        let f = m.function("f").unwrap();
        let states = solve(f, &MustCalls);
        let dead = f.block_by_name("dead").unwrap();
        assert!(states.entry_of(dead).is_none());
    }

    #[test]
    fn loop_converges_to_fixpoint() {
        let src = r#"
module "l"
declare void @pre()
declare void @inloop()
define void @f(i64 %n) {
entry:
  call void @pre()
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  call void @inloop()
  %i2 = add i64 %i, 1
  br %head
exit:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let states = solve(f, &MustCalls);
        let head = f.block_by_name("head").unwrap();
        let exit = f.block_by_name("exit").unwrap();
        // @pre is on every path into the loop head and the exit.
        assert!(states.entry_of(head).unwrap().contains("pre"));
        assert!(states.entry_of(exit).unwrap().contains("pre"));
        // @inloop is only on the back edge, not on the zero-trip path.
        assert!(!states.entry_of(head).unwrap().contains("inloop"));
        assert!(!states.entry_of(exit).unwrap().contains("inloop"));
    }

    #[test]
    fn rpo_starts_at_entry_and_covers_reachable() {
        let m = parse_module(DIAMOND).unwrap();
        let f = m.function("f").unwrap();
        let rpo = reverse_postorder(f);
        assert_eq!(rpo[0], BlockId(0));
        assert_eq!(rpo.len(), 4, "dead block excluded");
    }
}
