//! `kop-analysis`: static analysis over KIR.
//!
//! This crate gives the CARAT KOP stack an *independent proof* that a
//! module is guarded, instead of trusting the compiler that signed it:
//!
//! * [`dataflow`] — a reusable forward-dataflow framework (join
//!   semilattice + worklist engine over the CFG).
//! * [`coverage`] — the GuardCoverage analysis: proves every load and
//!   store is covered on all paths by a dominating `carat_guard` call.
//! * [`available`] — AvailableGuards: like coverage, but tracks *which*
//!   guard instruction establishes each fact, so the optimizer can name
//!   (and the validator can audit) the dominating guard behind an
//!   elision.
//! * [`range`] — SCEV-lite value-range analysis over counted loops:
//!   plans the replacement of per-iteration element guards with one
//!   hoisted `[base, base + stride·n)` range guard.
//! * [`validator`] — the independent translation validator: re-derives
//!   every optimizer obligation (elisions, range coalescings) from the
//!   module text alone and re-proves coverage, sharing no code with the
//!   optimizer.
//! * [`provenance`] — pointer provenance classification used to justify
//!   guard elision and to flag laundered or constant-address pointers.
//! * [`diagnostics`] — stable lint codes (`KA001`…) with precise
//!   function/block/instruction locations.
//!
//! The top-level entry points are [`analyze_module`] (full report),
//! [`verify_guard_coverage`] (coverage only), and [`validate_module`]
//! (coverage plus obligation-ledger audit — what the signer and the
//! loader both run).

pub mod available;
pub mod coverage;
pub mod dataflow;
pub mod diagnostics;
pub mod provenance;
pub mod range;
pub mod validator;

pub use available::{available_guards, transfer_avail, AvailMap, AvailableGuards};
pub use coverage::{verify_guard_coverage, GuardCoverage};
pub use diagnostics::{AnalysisReport, Diagnostic, LintCode, Severity};
pub use provenance::{PointerProvenance, Provenance};
pub use range::{plan_ranges, RangePlan};
pub use validator::{
    validate_module, validate_module_with_grants, GrantOracle, InstRef, Obligation,
    ObligationLedger,
};

use kop_ir::Module;

/// Run every analysis on `module` and collect the merged report.
pub fn analyze_module(module: &Module) -> AnalysisReport {
    analyze_module_with_policy(module, &[])
}

/// Like [`analyze_module`], but also checks constant-address accesses
/// against a policy snapshot (regions the module may touch).
pub fn analyze_module_with_policy(module: &Module, allowed: &[kop_core::Region]) -> AnalysisReport {
    let mut report = coverage::verify_guard_coverage(module);
    report.merge(provenance::analyze_provenance(module, allowed));
    report
}
