//! `kop-analysis`: static analysis over KIR.
//!
//! This crate gives the CARAT KOP stack an *independent proof* that a
//! module is guarded, instead of trusting the compiler that signed it:
//!
//! * [`dataflow`] — a reusable forward-dataflow framework (join
//!   semilattice + worklist engine over the CFG).
//! * [`coverage`] — the GuardCoverage analysis: proves every load and
//!   store is covered on all paths by a dominating `carat_guard` call.
//! * [`provenance`] — pointer provenance classification used to justify
//!   guard elision and to flag laundered or constant-address pointers.
//! * [`diagnostics`] — stable lint codes (`KA001`…) with precise
//!   function/block/instruction locations.
//!
//! The top-level entry points are [`analyze_module`] (full report) and
//! [`verify_guard_coverage`] (coverage only).

pub mod coverage;
pub mod dataflow;
pub mod diagnostics;
pub mod provenance;

pub use coverage::{verify_guard_coverage, GuardCoverage};
pub use diagnostics::{AnalysisReport, Diagnostic, LintCode, Severity};
pub use provenance::{PointerProvenance, Provenance};

use kop_ir::Module;

/// Run every analysis on `module` and collect the merged report.
pub fn analyze_module(module: &Module) -> AnalysisReport {
    analyze_module_with_policy(module, &[])
}

/// Like [`analyze_module`], but also checks constant-address accesses
/// against a policy snapshot (regions the module may touch).
pub fn analyze_module_with_policy(module: &Module, allowed: &[kop_core::Region]) -> AnalysisReport {
    let mut report = coverage::verify_guard_coverage(module);
    report.merge(provenance::analyze_provenance(module, allowed));
    report
}
