//! AvailableGuards: which guard *instructions* are available where.
//!
//! [`crate::coverage::GuardCoverage`] answers "is some covering fact
//! established on every path" — enough to verify, but not to optimize:
//! eliding a guard additionally needs to know *which* earlier guard call
//! establishes the fact, so the elision can be justified (and audited)
//! as "guard D dominates this point with ⊇ coverage".
//!
//! This analysis therefore tracks `fact → establishing guard` pairs and
//! merges by intersection *keeping only entries whose source guard
//! agrees across all predecessors*. If the same guard instruction D is
//! the establisher on every path into a point P, then every entry-to-P
//! path passes through D — i.e. D dominates P — which is exactly the
//! obligation the independent validator re-checks with its own
//! dominator tree.
//!
//! Kill rules are strictly more conservative than the verifier's:
//!
//! * any non-guard call clobbers everything (the callee could change the
//!   policy, and the optimizer must not elide across that), and
//! * entering a block kills facts whose pointer the block defines
//!   (re-execution along a back edge re-binds the SSA name; a surviving
//!   fact would describe the previous iteration's address — the
//!   "post-phi alias-by-value" hazard).

use std::collections::HashMap;

use kop_ir::{BlockId, Function, Inst, InstId, Value};

use crate::coverage::{guard_fact, GuardFact, GUARD_SYMBOL};
use crate::dataflow::{solve, BlockStates, ForwardAnalysis};

/// Map from established fact to the guard instruction that established
/// it on every path.
pub type AvailMap = HashMap<GuardFact, InstId>;

/// The dataflow analysis. Use [`available_guards`] to run it.
#[derive(Clone, Copy, Debug, Default)]
pub struct AvailableGuards;

/// Apply one instruction's effect to an availability map — shared with
/// in-block replay in the optimizer, so the pass sees exactly the states
/// the fixpoint computed.
pub fn transfer_avail(f: &Function, iid: InstId, state: &mut AvailMap) {
    if let Some(fact) = guard_fact(f, iid) {
        state.insert(fact, iid);
        return;
    }
    if let Inst::Call { callee, .. } = f.inst(iid) {
        // Guard calls never clobber — including range guards, whose
        // dynamic size keeps them from parsing as a plain fact.
        if callee != GUARD_SYMBOL {
            state.clear();
        }
    }
}

/// Drop facts whose pointer is (re-)defined by `bid`.
pub fn kill_redefined_avail(f: &Function, bid: BlockId, state: &mut AvailMap) {
    state.retain(|fact, _| match fact.ptr {
        Value::Inst(d) => !f.block(bid).insts.contains(&d),
        _ => true,
    });
}

impl ForwardAnalysis for AvailableGuards {
    type Domain = AvailMap;

    fn entry_state(&self, _f: &Function) -> Self::Domain {
        HashMap::new()
    }

    fn merge(&self, states: &[&Self::Domain]) -> Self::Domain {
        let mut it = states.iter();
        let first = (*it.next().expect("merge of ≥1 state")).clone();
        it.fold(first, |acc, s| {
            acc.into_iter()
                .filter(|(fact, src)| s.get(fact) == Some(src))
                .collect()
        })
    }

    fn transfer(&self, f: &Function, _bid: BlockId, iid: InstId, state: &mut Self::Domain) {
        transfer_avail(f, iid, state);
    }

    fn on_block_entry(&self, f: &Function, bid: BlockId, state: &mut Self::Domain) {
        kill_redefined_avail(f, bid, state);
    }
}

/// Solve the analysis for `f`: per-block entry availability maps.
pub fn available_guards(f: &Function) -> BlockStates<AvailMap> {
    solve(f, &AvailableGuards)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    fn fact(ptr: Value, size: u64, flags: u64) -> GuardFact {
        GuardFact { ptr, size, flags }
    }

    #[test]
    fn same_source_survives_join() {
        // One guard in the entry dominates the join: available there.
        let src = r#"
module "j"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  condbr i1 %c, %a, %b
a:
  br %join
b:
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let states = available_guards(f);
        let join = f.block_by_name("join").unwrap();
        let at_join = states.entry_of(join).unwrap();
        assert!(at_join.contains_key(&fact(Value::Arg(0), 8, 1)));
    }

    #[test]
    fn different_sources_do_not_merge() {
        // Branch-local guards establish the same fact through *different*
        // instructions: neither dominates the join, so the availability
        // map (unlike plain coverage) must be empty there.
        let src = r#"
module "2src"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
b:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let states = available_guards(f);
        let join = f.block_by_name("join").unwrap();
        assert!(
            states.entry_of(join).unwrap().is_empty(),
            "no single guard dominates the join"
        );
    }

    #[test]
    fn non_guard_call_clobbers() {
        let src = r#"
module "clob"
declare void @carat_guard(ptr, i64, i32)
declare void @ext()
define void @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  call void @ext()
  br %next
next:
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let states = available_guards(f);
        let next = f.block_by_name("next").unwrap();
        assert!(states.entry_of(next).unwrap().is_empty());
    }

    #[test]
    fn redefined_pointer_killed_on_block_entry() {
        // SSA-invalid on purpose (guard precedes the definition): the
        // analysis must not let the stale fact flow around the back edge
        // into the block that re-defines %p.
        let src = r#"
module "redef"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %buf, i64 %n) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let states = available_guards(f);
        let body = f.block_by_name("body").unwrap();
        assert!(
            states.entry_of(body).unwrap().is_empty(),
            "fact about %p must die on entry to the block defining %p"
        );
    }
}
