//! The independent translation validator.
//!
//! The optimizer (in `kop-compiler`) may elide or coalesce guards, and
//! for every transform it records a machine-checkable [`Obligation`] in
//! a ledger that travels inside the attestation. This module is the
//! *other side* of that bargain: it re-derives each claim from nothing
//! but the module text and the ledger, using only the shared IR
//! infrastructure (`kop_ir::dom`, `kop_ir::loops`) — none of the
//! optimizer's analysis or transform code. A bug in the optimizer
//! therefore cannot vouch for itself: the validator refuses to sign (at
//! compile time) or load (at insmod, `Verification::Static`) a module
//! whose elisions it cannot independently justify.
//!
//! Checks, per obligation kind:
//!
//! * **elide** — the claimed dominating guard must exist, be a guard
//!   call whose fact covers the claimed `(size, flags)` on the access's
//!   pointer (KA006 otherwise), and must dominate the access per a
//!   freshly computed dominator tree (KA008 otherwise).
//! * **range** — the hoisted guard must sit in the preheader of a loop
//!   this module's own counted-loop recognizer accepts, its byte count
//!   must be literally `mul i64 trip_count, stride`, its base must be
//!   loop-invariant, and every access it claims to cover must be a
//!   `gep base, iv` element access of at most `stride` bytes inside the
//!   bounded region (KA007 on any deviation).
//!
//! After the per-obligation audit, the full guard-coverage replay of
//! [`crate::coverage`] runs with exactly the *validated* range accesses
//! exempted. With an empty ledger this degenerates to plain
//! [`crate::verify_guard_coverage`].

use core::fmt;
use std::collections::{HashMap, HashSet};

use kop_ir::dom::DomTree;
use kop_ir::loops::find_counted_loops;
use kop_ir::{BinOp, BlockId, Function, Inst, InstId, Module, Type, Value};

use crate::coverage::{
    access_key, diag, guard_fact, verify_function_with_exemptions, GUARD_SYMBOL,
};
use crate::diagnostics::{AnalysisReport, Diagnostic, LintCode};

/// A position-stable instruction reference: block label plus index into
/// that block's instruction list. Rendered as `block#index`.
///
/// Obligations address instructions this way (not by SSA name) so the
/// ledger survives printing and re-parsing the module, and so unnamed
/// instructions (stores, guard calls) are addressable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstRef {
    /// Block label (without `%`).
    pub block: String,
    /// Index into the block's instruction list.
    pub index: usize,
}

impl InstRef {
    /// Parse `block#index`.
    pub fn parse(s: &str) -> Option<InstRef> {
        let (block, idx) = s.rsplit_once('#')?;
        if block.is_empty() {
            return None;
        }
        Some(InstRef {
            block: block.to_string(),
            index: idx.parse().ok()?,
        })
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.block, self.index)
    }
}

/// One machine-checkable claim the optimizer made.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Obligation {
    /// "I removed a guard of `(size, flags)` before `access` because
    /// `guard` establishes a covering fact on every path to it."
    Elide {
        /// Enclosing function name.
        function: String,
        /// The surviving (dominating) guard call.
        guard: InstRef,
        /// The access the removed guard protected.
        access: InstRef,
        /// Byte count the removed guard granted.
        size: u64,
        /// Access-flag bits the removed guard granted.
        flags: u64,
    },
    /// "I replaced per-iteration element guards in the counted loop
    /// headed at `header` with `guard`, a single range guard of
    /// `trip_count · stride` bytes; it covers exactly `accesses`."
    Range {
        /// Enclosing function name.
        function: String,
        /// The inserted range guard call (in the loop preheader).
        guard: InstRef,
        /// Header block label of the counted loop.
        header: String,
        /// Bytes per iteration step.
        stride: u64,
        /// Access-flag bits the range guard grants.
        flags: u64,
        /// The per-iteration accesses the range covers.
        accesses: Vec<InstRef>,
    },
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obligation::Elide {
                function,
                guard,
                access,
                size,
                flags,
            } => write!(
                f,
                "elide fn={function} guard={guard} access={access} size={size} flags={flags}"
            ),
            Obligation::Range {
                function,
                guard,
                header,
                stride,
                flags,
                accesses,
            } => {
                let refs = accesses
                    .iter()
                    .map(InstRef::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                write!(
                    f,
                    "range fn={function} guard={guard} header={header} stride={stride} \
                     flags={flags} accesses={refs}"
                )
            }
        }
    }
}

/// The ordered list of obligations for one module, with a canonical
/// line-based text form (`obligations-v1`) that the attestation embeds.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObligationLedger {
    /// The obligations, in the order the optimizer emitted them.
    pub obligations: Vec<Obligation>,
}

impl ObligationLedger {
    /// First line of any non-empty ledger text.
    pub const HEADER: &'static str = "obligations-v1";

    /// A ledger with no obligations.
    pub fn empty() -> ObligationLedger {
        ObligationLedger::default()
    }

    /// Whether the ledger carries no obligations.
    pub fn is_empty(&self) -> bool {
        self.obligations.is_empty()
    }

    /// Number of obligations.
    pub fn len(&self) -> usize {
        self.obligations.len()
    }

    /// Canonical text form. The empty ledger renders as the empty
    /// string (attestations without optimizations stay byte-lean).
    pub fn to_text(&self) -> String {
        if self.obligations.is_empty() {
            return String::new();
        }
        let mut out = String::from(Self::HEADER);
        out.push('\n');
        for ob in &self.obligations {
            out.push_str(&ob.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the canonical text form. The empty string parses to the
    /// empty ledger; anything else must start with [`Self::HEADER`].
    pub fn parse(text: &str) -> Result<ObligationLedger, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let Some(header) = lines.next() else {
            return Ok(ObligationLedger::empty());
        };
        if header.trim() != Self::HEADER {
            return Err(format!("bad obligation ledger header {header:?}"));
        }
        let mut obligations = Vec::new();
        for line in lines {
            obligations.push(parse_line(line)?);
        }
        Ok(ObligationLedger { obligations })
    }
}

fn parse_line(line: &str) -> Result<Obligation, String> {
    let mut toks = line.split_whitespace();
    let kind = toks.next().expect("non-empty line");
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for tok in toks {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("malformed obligation token {tok:?}"))?;
        kv.insert(k, v);
    }
    let req = |key: &str| -> Result<&str, String> {
        kv.get(key)
            .copied()
            .ok_or_else(|| format!("obligation {kind:?} missing field {key:?}"))
    };
    let num = |key: &str| -> Result<u64, String> {
        req(key)?
            .parse()
            .map_err(|_| format!("obligation field {key:?} is not a number"))
    };
    let iref = |key: &str| -> Result<InstRef, String> {
        InstRef::parse(req(key)?)
            .ok_or_else(|| format!("obligation field {key:?} is not a block#index reference"))
    };
    match kind {
        "elide" => Ok(Obligation::Elide {
            function: req("fn")?.to_string(),
            guard: iref("guard")?,
            access: iref("access")?,
            size: num("size")?,
            flags: num("flags")?,
        }),
        "range" => {
            let accesses = req("accesses")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    InstRef::parse(s)
                        .ok_or_else(|| format!("bad access reference {s:?} in range obligation"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Obligation::Range {
                function: req("fn")?.to_string(),
                guard: iref("guard")?,
                header: req("header")?.to_string(),
                stride: num("stride")?,
                flags: num("flags")?,
                accesses,
            })
        }
        other => Err(format!("unknown obligation kind {other:?}")),
    }
}

/// Resolve an [`InstRef`] inside `f`.
fn resolve(f: &Function, r: &InstRef) -> Option<(BlockId, usize, InstId)> {
    let bid = f.block_by_name(&r.block)?;
    let iid = *f.block(bid).insts.get(r.index)?;
    Some((bid, r.index, iid))
}

/// A diagnostic for a claim whose reference does not even resolve —
/// anchored to the claimed location, since no instruction exists there.
fn unresolved(code: LintCode, function: &str, at: &InstRef, message: String) -> Diagnostic {
    Diagnostic {
        code,
        function: function.to_string(),
        block: at.block.clone(),
        inst_index: at.index,
        inst: "<obligation>".to_string(),
        message,
    }
}

/// Validate `ledger` against `module` and re-prove guard coverage.
///
/// Every error-severity finding (KA001/KA002 from the coverage replay,
/// KA006/KA007/KA008 from the obligation audit) makes the module
/// unsignable and unloadable in static-verification mode. With an empty
/// ledger this is equivalent to [`crate::verify_guard_coverage`].
pub fn validate_module(module: &Module, ledger: &ObligationLedger) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    // Accesses proven by a *validated* range obligation, per function.
    let mut exempt: HashMap<String, HashSet<InstId>> = HashMap::new();

    for ob in &ledger.obligations {
        report.bump("obligations_checked", 1);
        match ob {
            Obligation::Elide {
                function,
                guard,
                access,
                size,
                flags,
            } => {
                if check_elide(module, function, guard, access, *size, *flags, &mut report) {
                    report.bump("obligations_elide_ok", 1);
                }
            }
            Obligation::Range {
                function,
                guard,
                header,
                stride,
                flags,
                accesses,
            } => {
                if let Some(proven) = check_range(
                    module,
                    function,
                    guard,
                    header,
                    *stride,
                    *flags,
                    accesses,
                    &mut report,
                ) {
                    report.bump("obligations_range_ok", 1);
                    exempt.entry(function.clone()).or_default().extend(proven);
                }
            }
        }
    }

    for f in &module.functions {
        let ex = exempt.remove(&f.name).unwrap_or_default();
        verify_function_with_exemptions(f, &mut report, &ex);
    }
    report.bump("functions_analyzed", module.functions.len() as u64);
    report
}

/// Audit one elide obligation. Pushes KA006/KA008 and returns false on
/// any failure.
#[allow(clippy::too_many_arguments)]
fn check_elide(
    module: &Module,
    function: &str,
    guard: &InstRef,
    access: &InstRef,
    size: u64,
    flags: u64,
    report: &mut AnalysisReport,
) -> bool {
    let code = LintCode::ObligationUnfounded;
    let Some(f) = module.function(function) else {
        report.push(unresolved(
            code,
            function,
            guard,
            format!("elide obligation names unknown function @{function}"),
        ));
        return false;
    };
    let Some((gb, gidx, giid)) = resolve(f, guard) else {
        report.push(unresolved(
            code,
            function,
            guard,
            format!("claimed dominating guard {guard} does not exist"),
        ));
        return false;
    };
    let Some(gfact) = guard_fact(f, giid) else {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            code,
            format!("claimed dominating guard {guard} is not a constant guard call"),
        ));
        return false;
    };
    let Some((ab, aidx, aiid)) = resolve(f, access) else {
        report.push(unresolved(
            code,
            function,
            access,
            format!("elide obligation names missing access {access}"),
        ));
        return false;
    };
    let Some((aptr, asz, afl)) = access_key(f, aiid) else {
        report.push(diag(
            f,
            ab,
            aidx,
            aiid,
            code,
            format!("elide obligation target {access} is not a load or store"),
        ));
        return false;
    };
    // The removed guard's claim must cover the access it protected…
    if size < asz || (flags & afl) != afl {
        report.push(diag(
            f,
            ab,
            aidx,
            aiid,
            code,
            format!(
                "elided guard claim (size {size} flags {flags}) does not cover the \
                 access (size {asz} flags {afl})"
            ),
        ));
        return false;
    }
    // …and the surviving guard must cover the full claim on that pointer.
    if !gfact.covers(&aptr, size, flags) {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            code,
            format!(
                "surviving guard (size {} flags {}) does not cover the elided claim \
                 (size {size} flags {flags}) on this pointer",
                gfact.size, gfact.flags
            ),
        ));
        return false;
    }
    // Independent dominance check — the optimizer's source-agreement
    // argument is not trusted; recompute from the CFG.
    let dom = DomTree::compute(f);
    let dominates = if gb == ab {
        gidx < aidx
    } else {
        dom.is_reachable(gb) && dom.is_reachable(ab) && dom.dominates(gb, ab)
    };
    if !dominates {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            LintCode::ObligationDominance,
            format!("claimed dominating guard {guard} does not dominate access {access}"),
        ));
        return false;
    }
    true
}

/// Audit one range obligation. Pushes KA007 and returns `None` on any
/// failure; on success returns the access instructions the validated
/// range covers.
#[allow(clippy::too_many_arguments)]
fn check_range(
    module: &Module,
    function: &str,
    guard: &InstRef,
    header: &str,
    stride: u64,
    flags: u64,
    accesses: &[InstRef],
    report: &mut AnalysisReport,
) -> Option<Vec<InstId>> {
    let code = LintCode::RangeUnproven;
    let fail = |report: &mut AnalysisReport, msg: String| {
        report.push(unresolved(code, function, guard, msg));
    };
    let Some(f) = module.function(function) else {
        fail(
            report,
            format!("range obligation names unknown function @{function}"),
        );
        return None;
    };
    if stride == 0 {
        fail(report, "range obligation claims a zero stride".to_string());
        return None;
    }
    let Some((gb, gidx, giid)) = resolve(f, guard) else {
        fail(
            report,
            format!("claimed range guard {guard} does not exist"),
        );
        return None;
    };
    let Inst::Call { callee, args, .. } = f.inst(giid) else {
        fail(report, format!("claimed range guard {guard} is not a call"));
        return None;
    };
    if callee != GUARD_SYMBOL || args.len() != 3 {
        fail(
            report,
            format!("claimed range guard {guard} is not a guard call"),
        );
        return None;
    }
    let base = args[0].clone();
    let size_v = args[1].clone();
    let Value::ConstInt(_, gflags) = args[2] else {
        fail(report, "range guard flags are not a constant".to_string());
        return None;
    };
    if (gflags & flags) != flags {
        fail(
            report,
            format!("range guard grants flags {gflags}, obligation claims {flags}"),
        );
        return None;
    }

    // Re-derive the loop from scratch with the shared recognizer.
    let Some(hbid) = f.block_by_name(header) else {
        fail(
            report,
            format!("range obligation names unknown header block %{header}"),
        );
        return None;
    };
    let dom = DomTree::compute(f);
    let loops = find_counted_loops(f, &dom);
    let Some(l) = loops.into_iter().find(|l| l.header == hbid) else {
        fail(
            report,
            format!("block %{header} does not head a recognizable counted loop"),
        );
        return None;
    };
    if gb != l.preheader {
        fail(
            report,
            format!("range guard {guard} is not in the loop preheader"),
        );
        return None;
    }
    // The guarded byte count must be literally `trip_count · stride`,
    // computed in the preheader before the guard.
    let Value::Inst(len) = size_v else {
        fail(
            report,
            "range guard byte count is not a computed value".to_string(),
        );
        return None;
    };
    let len_ok = match f.inst(len) {
        Inst::Bin {
            op: BinOp::Mul,
            ty: Type::I64,
            lhs,
            rhs,
        } => {
            (*lhs == l.bound && *rhs == Value::ConstInt(Type::I64, stride))
                || (*rhs == l.bound && *lhs == Value::ConstInt(Type::I64, stride))
        }
        _ => false,
    } && f.block(gb).insts[..gidx].contains(&len);
    if !len_ok {
        fail(
            report,
            format!(
                "range guard byte count is not `mul i64 trip_count, {stride}` \
                 computed in the preheader"
            ),
        );
        return None;
    }
    if l.varies(f, &base) {
        fail(
            report,
            "range guard base pointer varies within the loop".to_string(),
        );
        return None;
    }

    // Every claimed access must be a bounded per-iteration element access.
    let mut proven = Vec::with_capacity(accesses.len());
    for aref in accesses {
        let Some((ab, aidx, aiid)) = resolve(f, aref) else {
            fail(
                report,
                format!("range obligation names missing access {aref}"),
            );
            return None;
        };
        let Some((aptr, asz, afl)) = access_key(f, aiid) else {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!("range obligation target {aref} is not a load or store"),
            ));
            return None;
        };
        if !l.iv_bounded_in(ab) {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!("access {aref} is outside the bound-checked loop body"),
            ));
            return None;
        }
        let elem_ok = match &aptr {
            Value::Inst(g) => match f.inst(*g) {
                Inst::Gep {
                    base_ty,
                    ptr: gbase,
                    indices,
                } => {
                    *gbase == base
                        && indices.len() == 1
                        && indices[0] == Value::Inst(l.iv)
                        && base_ty.size_of() == stride
                }
                _ => false,
            },
            _ => false,
        };
        if !elem_ok {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!(
                    "access {aref} is not a stride-{stride} element access off the \
                     range base"
                ),
            ));
            return None;
        }
        if asz > stride || (flags & afl) != afl {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!(
                    "access (size {asz} flags {afl}) exceeds one range step \
                     (stride {stride} flags {flags})"
                ),
            ));
            return None;
        }
        proven.push(aiid);
    }
    Some(proven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    /// The shape `RangeCoalescing` emits: per-iteration guards replaced
    /// by one `[buf, buf + n·8)` range guard in the preheader.
    const COALESCED: &str = r#"
module "opt"
declare void @carat_guard(ptr, i64, i32)
define i64 @sum(ptr %buf, i64 %n) {
entry:
  %rg.len = mul i64 %n, 8
  call void @carat_guard(ptr %buf, i64 %rg.len, i32 1)
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;

    fn range_ledger(stride: u64) -> ObligationLedger {
        ObligationLedger {
            obligations: vec![Obligation::Range {
                function: "sum".into(),
                guard: InstRef::parse("entry#1").unwrap(),
                header: "head".into(),
                stride,
                flags: 1,
                accesses: vec![InstRef::parse("body#1").unwrap()],
            }],
        }
    }

    #[test]
    fn ledger_text_round_trips() {
        let ledger = ObligationLedger {
            obligations: vec![
                Obligation::Elide {
                    function: "tx".into(),
                    guard: InstRef::parse("entry#0").unwrap(),
                    access: InstRef::parse("entry#4").unwrap(),
                    size: 8,
                    flags: 2,
                },
                range_ledger(8).obligations[0].clone(),
            ],
        };
        let text = ledger.to_text();
        assert!(text.starts_with(ObligationLedger::HEADER));
        let back = ObligationLedger::parse(&text).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn empty_ledger_round_trips_as_empty_string() {
        let ledger = ObligationLedger::empty();
        assert_eq!(ledger.to_text(), "");
        assert_eq!(ObligationLedger::parse("").unwrap(), ledger);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ObligationLedger::parse("obligations-v9\n").is_err());
        assert!(ObligationLedger::parse("obligations-v1\nfrob a=1\n").is_err());
        assert!(ObligationLedger::parse("obligations-v1\nelide fn=f\n").is_err());
        assert!(
            ObligationLedger::parse("obligations-v1\nelide fn=f guard=x access=y size=8 flags=1\n")
                .is_err(),
            "refs must be block#index"
        );
    }

    #[test]
    fn validated_range_obligation_proves_the_loop_body() {
        let m = parse_module(COALESCED).unwrap();
        // Without the ledger the loop load is unguarded…
        let bare = validate_module(&m, &ObligationLedger::empty());
        assert_eq!(bare.with_code(LintCode::UnguardedAccess).count(), 1);
        // …with it, the validator independently re-derives coverage.
        let r = validate_module(&m, &range_ledger(8));
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("obligations_range_ok"), 1);
        assert_eq!(r.stat("accesses_proven_by_range"), 1);
    }

    #[test]
    fn forged_stride_is_rejected_with_ka007() {
        let m = parse_module(COALESCED).unwrap();
        let r = validate_module(&m, &range_ledger(16));
        assert!(!r.is_clean());
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }

    #[test]
    fn range_guard_outside_preheader_is_rejected() {
        // Move the claimed guard ref to the loop body: KA007.
        let m = parse_module(COALESCED).unwrap();
        let mut ledger = range_ledger(8);
        let Obligation::Range { guard, .. } = &mut ledger.obligations[0] else {
            unreachable!()
        };
        *guard = InstRef::parse("body#0").unwrap();
        let r = validate_module(&m, &ledger);
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }

    #[test]
    fn dangling_elide_guard_is_rejected_with_ka006() {
        let m = parse_module(COALESCED).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "sum".into(),
                guard: InstRef::parse("entry#9").unwrap(),
                access: InstRef::parse("body#1").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert!(
            r.with_code(LintCode::ObligationUnfounded).count() >= 1,
            "{r}"
        );
    }

    #[test]
    fn valid_elide_obligation_is_accepted() {
        let src = r#"
module "el"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  %v = load i64, ptr %p
  store i64 %v, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("entry#0").unwrap(),
                access: InstRef::parse("entry#2").unwrap(),
                size: 8,
                flags: 2,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("obligations_elide_ok"), 1);
    }

    #[test]
    fn non_dominating_elide_guard_is_rejected_with_ka008() {
        // The guard lives on one branch only; the access is at the join.
        // Its fact covers the claim, but dominance fails — and the
        // coverage replay independently reports the unguarded access.
        let src = r#"
module "dom"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %a, %join
a:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("a#0").unwrap(),
                access: InstRef::parse("join#0").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert_eq!(r.with_code(LintCode::ObligationDominance).count(), 1, "{r}");
    }

    #[test]
    fn same_block_order_counts_as_dominance() {
        let src = r#"
module "sb"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  %v0 = load i64, ptr %p
  call void @carat_guard(ptr %p, i64 8, i32 1)
  ret i64 0
}
"#;
        // Guard placed *after* the access: same-block index order fails.
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("entry#1").unwrap(),
                access: InstRef::parse("entry#0").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert_eq!(r.with_code(LintCode::ObligationDominance).count(), 1, "{r}");
    }

    #[test]
    fn oversized_range_access_is_rejected() {
        let m = parse_module(COALESCED).unwrap();
        let mut ledger = range_ledger(8);
        let Obligation::Range { flags, .. } = &mut ledger.obligations[0] else {
            unreachable!()
        };
        // Claim write coverage the guard (flags=1) does not grant.
        *flags = 3;
        let r = validate_module(&m, &ledger);
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }
}
