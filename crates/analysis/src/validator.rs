//! The independent translation validator.
//!
//! The optimizer (in `kop-compiler`) may elide or coalesce guards, and
//! for every transform it records a machine-checkable [`Obligation`] in
//! a ledger that travels inside the attestation. This module is the
//! *other side* of that bargain: it re-derives each claim from nothing
//! but the module text and the ledger, using only the shared IR
//! infrastructure (`kop_ir::dom`, `kop_ir::loops`) — none of the
//! optimizer's analysis or transform code. A bug in the optimizer
//! therefore cannot vouch for itself: the validator refuses to sign (at
//! compile time) or load (at insmod, `Verification::Static`) a module
//! whose elisions it cannot independently justify.
//!
//! Checks, per obligation kind:
//!
//! * **elide** — the claimed dominating guard must exist, be a guard
//!   call whose fact covers the claimed `(size, flags)` on the access's
//!   pointer (KA006 otherwise), and must dominate the access per a
//!   freshly computed dominator tree (KA008 otherwise).
//! * **range** — the hoisted guard must sit in the preheader of a loop
//!   this module's own counted-loop recognizer accepts, its byte count
//!   must be literally `mul i64 trip_count, stride`, its base must be
//!   loop-invariant, and every access it claims to cover must be a
//!   `gep base, iv` element access of at most `stride` bytes inside the
//!   bounded region (KA007 on any deviation).
//!
//! After the per-obligation audit, the full guard-coverage replay of
//! [`crate::coverage`] runs with exactly the *validated* range accesses
//! exempted. With an empty ledger this degenerates to plain
//! [`crate::verify_guard_coverage`].

use core::fmt;
use std::collections::{HashMap, HashSet};

use kop_core::{AccessFlags, Region, Size, VAddr};
use kop_ir::dom::DomTree;
use kop_ir::loops::find_counted_loops;
use kop_ir::{BinOp, BlockId, Function, Inst, InstId, Module, Type, Value};

use crate::coverage::{
    access_key, diag, guard_fact, verify_function_with_exemptions, GUARD_SYMBOL,
};
use crate::diagnostics::{AnalysisReport, Diagnostic, LintCode};

/// A position-stable instruction reference: block label plus index into
/// that block's instruction list. Rendered as `block#index`.
///
/// Obligations address instructions this way (not by SSA name) so the
/// ledger survives printing and re-parsing the module, and so unnamed
/// instructions (stores, guard calls) are addressable.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct InstRef {
    /// Block label (without `%`).
    pub block: String,
    /// Index into the block's instruction list.
    pub index: usize,
}

impl InstRef {
    /// Parse `block#index`.
    pub fn parse(s: &str) -> Option<InstRef> {
        let (block, idx) = s.rsplit_once('#')?;
        if block.is_empty() {
            return None;
        }
        Some(InstRef {
            block: block.to_string(),
            index: idx.parse().ok()?,
        })
    }
}

impl fmt::Display for InstRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.block, self.index)
    }
}

/// One machine-checkable claim the optimizer made.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Obligation {
    /// "I removed a guard of `(size, flags)` before `access` because
    /// `guard` establishes a covering fact on every path to it."
    Elide {
        /// Enclosing function name.
        function: String,
        /// The surviving (dominating) guard call.
        guard: InstRef,
        /// The access the removed guard protected.
        access: InstRef,
        /// Byte count the removed guard granted.
        size: u64,
        /// Access-flag bits the removed guard granted.
        flags: u64,
    },
    /// "I re-lowered the guard at `guard` into an inline-bounds fast
    /// admit: `[lo, hi)` with permission bits `flags`, baked from the
    /// region that granted this site's observed address envelope
    /// `[env_lo, env_hi)` under snapshot generation `gen`."
    ///
    /// The validator does not trust the baked immediates: it asks a
    /// [`GrantOracle`] for the regions the cited generation actually
    /// held, recomputes which grant covers the envelope, and requires
    /// the baked bound to equal that grant exactly (KA009 forged /
    /// KA010 stale citation / KA011 bound-for-another-site otherwise).
    Inline {
        /// Enclosing function name.
        function: String,
        /// The guard call the bound was inlined into.
        guard: InstRef,
        /// Baked lower bound (inclusive).
        lo: u64,
        /// Baked upper bound (exclusive).
        hi: u64,
        /// Permission bits the baked region grants.
        flags: u64,
        /// Snapshot generation the bound was baked under.
        gen: u64,
        /// Lowest address the site was profiled touching.
        env_lo: u64,
        /// One past the highest profiled byte.
        env_hi: u64,
    },
    /// "I replaced per-iteration element guards in the counted loop
    /// headed at `header` with `guard`, a single range guard of
    /// `trip_count · stride` bytes; it covers exactly `accesses`."
    Range {
        /// Enclosing function name.
        function: String,
        /// The inserted range guard call (in the loop preheader).
        guard: InstRef,
        /// Header block label of the counted loop.
        header: String,
        /// Bytes per iteration step.
        stride: u64,
        /// Access-flag bits the range guard grants.
        flags: u64,
        /// The per-iteration accesses the range covers.
        accesses: Vec<InstRef>,
    },
}

impl fmt::Display for Obligation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Obligation::Elide {
                function,
                guard,
                access,
                size,
                flags,
            } => write!(
                f,
                "elide fn={function} guard={guard} access={access} size={size} flags={flags}"
            ),
            Obligation::Inline {
                function,
                guard,
                lo,
                hi,
                flags,
                gen,
                env_lo,
                env_hi,
            } => write!(
                f,
                "inline fn={function} guard={guard} lo={lo} hi={hi} flags={flags} gen={gen} \
                 elo={env_lo} ehi={env_hi}"
            ),
            Obligation::Range {
                function,
                guard,
                header,
                stride,
                flags,
                accesses,
            } => {
                let refs = accesses
                    .iter()
                    .map(InstRef::to_string)
                    .collect::<Vec<_>>()
                    .join(",");
                write!(
                    f,
                    "range fn={function} guard={guard} header={header} stride={stride} \
                     flags={flags} accesses={refs}"
                )
            }
        }
    }
}

/// The ordered list of obligations for one module, with a canonical
/// line-based text form (`obligations-v1`) that the attestation embeds.
#[derive(Clone, PartialEq, Eq, Debug, Default)]
pub struct ObligationLedger {
    /// The obligations, in the order the optimizer emitted them.
    pub obligations: Vec<Obligation>,
}

impl ObligationLedger {
    /// First line of a non-empty ledger carrying only v1 obligation
    /// kinds (elide, range).
    pub const HEADER: &'static str = "obligations-v1";

    /// First line of a ledger carrying inline-bounds obligations. A v2
    /// parser accepts v1 text unchanged; ledgers without inline
    /// obligations keep rendering as v1 so pre-existing attestations
    /// stay byte-identical.
    pub const HEADER_V2: &'static str = "obligations-v2";

    /// A ledger with no obligations.
    pub fn empty() -> ObligationLedger {
        ObligationLedger::default()
    }

    /// Whether the ledger carries no obligations.
    pub fn is_empty(&self) -> bool {
        self.obligations.is_empty()
    }

    /// Number of obligations.
    pub fn len(&self) -> usize {
        self.obligations.len()
    }

    /// Whether the ledger carries inline-bounds obligations (and thus
    /// requires the v2 text form).
    pub fn has_inline(&self) -> bool {
        self.obligations
            .iter()
            .any(|ob| matches!(ob, Obligation::Inline { .. }))
    }

    /// Canonical text form. The empty ledger renders as the empty
    /// string (attestations without optimizations stay byte-lean); a
    /// ledger with inline obligations renders under [`Self::HEADER_V2`],
    /// anything else under [`Self::HEADER`].
    pub fn to_text(&self) -> String {
        if self.obligations.is_empty() {
            return String::new();
        }
        let mut out = String::from(if self.has_inline() {
            Self::HEADER_V2
        } else {
            Self::HEADER
        });
        out.push('\n');
        for ob in &self.obligations {
            out.push_str(&ob.to_string());
            out.push('\n');
        }
        out
    }

    /// Parse the canonical text form. The empty string parses to the
    /// empty ledger; anything else must start with [`Self::HEADER`] or
    /// [`Self::HEADER_V2`]. Inline obligations under a v1 header are
    /// rejected — a v1 signer cannot have vouched for a kind it did not
    /// know.
    pub fn parse(text: &str) -> Result<ObligationLedger, String> {
        let mut lines = text.lines().filter(|l| !l.trim().is_empty());
        let Some(header) = lines.next() else {
            return Ok(ObligationLedger::empty());
        };
        let v2 = match header.trim() {
            h if h == Self::HEADER => false,
            h if h == Self::HEADER_V2 => true,
            other => return Err(format!("bad obligation ledger header {other:?}")),
        };
        let mut obligations = Vec::new();
        for line in lines {
            let ob = parse_line(line)?;
            if !v2 && matches!(ob, Obligation::Inline { .. }) {
                return Err("inline obligation under a v1 ledger header".to_string());
            }
            obligations.push(ob);
        }
        Ok(ObligationLedger { obligations })
    }
}

/// The validator's window into what the policy actually granted, at
/// which generation — implemented by the policy module's bounded
/// snapshot history. Returns `None` for generations no longer (or never)
/// retained: the validator must then refuse the citation (KA010), since
/// a bound it cannot recompute is a bound it cannot trust.
pub trait GrantOracle {
    /// The regions the policy table held at `generation`, if retained.
    fn regions_at(&self, generation: u64) -> Option<Vec<Region>>;
}

impl<F: Fn(u64) -> Option<Vec<Region>>> GrantOracle for F {
    fn regions_at(&self, generation: u64) -> Option<Vec<Region>> {
        self(generation)
    }
}

fn parse_line(line: &str) -> Result<Obligation, String> {
    let mut toks = line.split_whitespace();
    let kind = toks.next().expect("non-empty line");
    let mut kv: HashMap<&str, &str> = HashMap::new();
    for tok in toks {
        let (k, v) = tok
            .split_once('=')
            .ok_or_else(|| format!("malformed obligation token {tok:?}"))?;
        kv.insert(k, v);
    }
    let req = |key: &str| -> Result<&str, String> {
        kv.get(key)
            .copied()
            .ok_or_else(|| format!("obligation {kind:?} missing field {key:?}"))
    };
    let num = |key: &str| -> Result<u64, String> {
        req(key)?
            .parse()
            .map_err(|_| format!("obligation field {key:?} is not a number"))
    };
    let iref = |key: &str| -> Result<InstRef, String> {
        InstRef::parse(req(key)?)
            .ok_or_else(|| format!("obligation field {key:?} is not a block#index reference"))
    };
    match kind {
        "elide" => Ok(Obligation::Elide {
            function: req("fn")?.to_string(),
            guard: iref("guard")?,
            access: iref("access")?,
            size: num("size")?,
            flags: num("flags")?,
        }),
        "inline" => Ok(Obligation::Inline {
            function: req("fn")?.to_string(),
            guard: iref("guard")?,
            lo: num("lo")?,
            hi: num("hi")?,
            flags: num("flags")?,
            gen: num("gen")?,
            env_lo: num("elo")?,
            env_hi: num("ehi")?,
        }),
        "range" => {
            let accesses = req("accesses")?
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    InstRef::parse(s)
                        .ok_or_else(|| format!("bad access reference {s:?} in range obligation"))
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(Obligation::Range {
                function: req("fn")?.to_string(),
                guard: iref("guard")?,
                header: req("header")?.to_string(),
                stride: num("stride")?,
                flags: num("flags")?,
                accesses,
            })
        }
        other => Err(format!("unknown obligation kind {other:?}")),
    }
}

/// Resolve an [`InstRef`] inside `f`.
fn resolve(f: &Function, r: &InstRef) -> Option<(BlockId, usize, InstId)> {
    let bid = f.block_by_name(&r.block)?;
    let iid = *f.block(bid).insts.get(r.index)?;
    Some((bid, r.index, iid))
}

/// A diagnostic for a claim whose reference does not even resolve —
/// anchored to the claimed location, since no instruction exists there.
fn unresolved(code: LintCode, function: &str, at: &InstRef, message: String) -> Diagnostic {
    Diagnostic {
        code,
        function: function.to_string(),
        block: at.block.clone(),
        inst_index: at.index,
        inst: "<obligation>".to_string(),
        message,
    }
}

/// Validate `ledger` against `module` and re-prove guard coverage.
///
/// Every error-severity finding (KA001/KA002 from the coverage replay,
/// KA006/KA007/KA008 from the obligation audit) makes the module
/// unsignable and unloadable in static-verification mode. With an empty
/// ledger this is equivalent to [`crate::verify_guard_coverage`].
///
/// Inline-bounds obligations need a [`GrantOracle`] to be audited; with
/// none available this entry point rejects them (KA010) — use
/// [`validate_module_with_grants`].
pub fn validate_module(module: &Module, ledger: &ObligationLedger) -> AnalysisReport {
    validate_module_with_grants(module, ledger, None)
}

/// [`validate_module`] plus a grant oracle for auditing inline-bounds
/// obligations. Both checkpoints use this: the promotion pass before
/// installing a specialized tier (signing side) and the loader at insmod
/// (with the kernel's live policy as the oracle).
pub fn validate_module_with_grants(
    module: &Module,
    ledger: &ObligationLedger,
    grants: Option<&dyn GrantOracle>,
) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    // Accesses proven by a *validated* range obligation, per function.
    let mut exempt: HashMap<String, HashSet<InstId>> = HashMap::new();

    for ob in &ledger.obligations {
        report.bump("obligations_checked", 1);
        match ob {
            Obligation::Elide {
                function,
                guard,
                access,
                size,
                flags,
            } => {
                if check_elide(module, function, guard, access, *size, *flags, &mut report) {
                    report.bump("obligations_elide_ok", 1);
                }
            }
            Obligation::Inline { .. } => {
                if check_inline(module, ob, grants, &mut report) {
                    report.bump("obligations_inline_ok", 1);
                }
            }
            Obligation::Range {
                function,
                guard,
                header,
                stride,
                flags,
                accesses,
            } => {
                if let Some(proven) = check_range(
                    module,
                    function,
                    guard,
                    header,
                    *stride,
                    *flags,
                    accesses,
                    &mut report,
                ) {
                    report.bump("obligations_range_ok", 1);
                    exempt.entry(function.clone()).or_default().extend(proven);
                }
            }
        }
    }

    for f in &module.functions {
        let ex = exempt.remove(&f.name).unwrap_or_default();
        verify_function_with_exemptions(f, &mut report, &ex);
    }
    report.bump("functions_analyzed", module.functions.len() as u64);
    report
}

/// Audit one elide obligation. Pushes KA006/KA008 and returns false on
/// any failure.
#[allow(clippy::too_many_arguments)]
fn check_elide(
    module: &Module,
    function: &str,
    guard: &InstRef,
    access: &InstRef,
    size: u64,
    flags: u64,
    report: &mut AnalysisReport,
) -> bool {
    let code = LintCode::ObligationUnfounded;
    let Some(f) = module.function(function) else {
        report.push(unresolved(
            code,
            function,
            guard,
            format!("elide obligation names unknown function @{function}"),
        ));
        return false;
    };
    let Some((gb, gidx, giid)) = resolve(f, guard) else {
        report.push(unresolved(
            code,
            function,
            guard,
            format!("claimed dominating guard {guard} does not exist"),
        ));
        return false;
    };
    let Some(gfact) = guard_fact(f, giid) else {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            code,
            format!("claimed dominating guard {guard} is not a constant guard call"),
        ));
        return false;
    };
    let Some((ab, aidx, aiid)) = resolve(f, access) else {
        report.push(unresolved(
            code,
            function,
            access,
            format!("elide obligation names missing access {access}"),
        ));
        return false;
    };
    let Some((aptr, asz, afl)) = access_key(f, aiid) else {
        report.push(diag(
            f,
            ab,
            aidx,
            aiid,
            code,
            format!("elide obligation target {access} is not a load or store"),
        ));
        return false;
    };
    // The removed guard's claim must cover the access it protected…
    if size < asz || (flags & afl) != afl {
        report.push(diag(
            f,
            ab,
            aidx,
            aiid,
            code,
            format!(
                "elided guard claim (size {size} flags {flags}) does not cover the \
                 access (size {asz} flags {afl})"
            ),
        ));
        return false;
    }
    // …and the surviving guard must cover the full claim on that pointer.
    if !gfact.covers(&aptr, size, flags) {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            code,
            format!(
                "surviving guard (size {} flags {}) does not cover the elided claim \
                 (size {size} flags {flags}) on this pointer",
                gfact.size, gfact.flags
            ),
        ));
        return false;
    }
    // Independent dominance check — the optimizer's source-agreement
    // argument is not trusted; recompute from the CFG.
    let dom = DomTree::compute(f);
    let dominates = if gb == ab {
        gidx < aidx
    } else {
        dom.is_reachable(gb) && dom.is_reachable(ab) && dom.dominates(gb, ab)
    };
    if !dominates {
        report.push(diag(
            f,
            gb,
            gidx,
            giid,
            LintCode::ObligationDominance,
            format!("claimed dominating guard {guard} does not dominate access {access}"),
        ));
        return false;
    }
    true
}

/// Audit one inline-bounds obligation. The baked `[lo, hi)` is treated
/// as a *claim*, never a fact: the validator asks the grant oracle for
/// the regions the cited generation held, independently recomputes which
/// grant covers the site's profiled envelope, and accepts only if the
/// baked immediates equal that grant exactly. Pushes KA006 (dangling
/// guard reference), KA009 (forged bound), KA010 (unverifiable
/// citation), or KA011 (bound belongs to another site) and returns false
/// on any failure.
fn check_inline(
    module: &Module,
    ob: &Obligation,
    grants: Option<&dyn GrantOracle>,
    report: &mut AnalysisReport,
) -> bool {
    let Obligation::Inline {
        function,
        guard,
        lo,
        hi,
        flags,
        gen,
        env_lo,
        env_hi,
    } = ob
    else {
        return false;
    };
    let fail = |report: &mut AnalysisReport, code: LintCode, msg: String| {
        report.push(unresolved(code, function, guard, msg));
    };
    // Structural: the guard the bound was inlined into must exist and be
    // a guard call.
    let Some(f) = module.function(function) else {
        fail(
            report,
            LintCode::ObligationUnfounded,
            format!("inline obligation names unknown function @{function}"),
        );
        return false;
    };
    let guard_ok = resolve(f, guard).is_some_and(|(_, _, giid)| {
        matches!(f.inst(giid), Inst::Call { callee, args, .. }
            if callee == GUARD_SYMBOL && args.len() == 3)
    });
    if !guard_ok {
        fail(
            report,
            LintCode::ObligationUnfounded,
            format!("inlined guard {guard} does not exist or is not a guard call"),
        );
        return false;
    }
    let aflags = AccessFlags::from_raw(*flags as u32);
    if *lo >= *hi || aflags.is_empty() {
        fail(
            report,
            LintCode::InlineBoundForged,
            format!("baked bound [{lo:#x}, {hi:#x}) flags {flags} is vacuous"),
        );
        return false;
    }
    if *env_lo >= *env_hi || *env_lo < *lo || *env_hi > *hi {
        fail(
            report,
            LintCode::InlineBoundSiteMismatch,
            format!(
                "baked bound [{lo:#x}, {hi:#x}) does not cover the site's profiled \
                 envelope [{env_lo:#x}, {env_hi:#x})"
            ),
        );
        return false;
    }
    // Citation: recompute the grant from the cited generation.
    let Some(regions) = grants.and_then(|o| o.regions_at(*gen)) else {
        fail(
            report,
            LintCode::InlineBoundStale,
            format!("cited snapshot generation {gen} is not retained by any grant oracle"),
        );
        return false;
    };
    let span = Size(env_hi - env_lo);
    let granting = regions
        .iter()
        .find(|r| r.permits(VAddr(*env_lo), span, aflags));
    let bound_of = |r: &Region| (r.base.raw(), r.base.raw().saturating_add(r.len.raw()));
    match granting {
        Some(r) if bound_of(r) == (*lo, *hi) => true,
        _ => {
            // A real region of that generation with exactly this bound
            // means the immediates were lifted from the wrong site's
            // grant; otherwise they match nothing the table ever held.
            if regions.iter().any(|r| bound_of(r) == (*lo, *hi)) {
                fail(
                    report,
                    LintCode::InlineBoundSiteMismatch,
                    format!(
                        "baked bound [{lo:#x}, {hi:#x}) names a generation-{gen} grant \
                         that does not cover this site's envelope"
                    ),
                );
            } else {
                fail(
                    report,
                    LintCode::InlineBoundForged,
                    format!("baked bound [{lo:#x}, {hi:#x}) equals no grant generation {gen} held"),
                );
            }
            false
        }
    }
}

/// Audit one range obligation. Pushes KA007 and returns `None` on any
/// failure; on success returns the access instructions the validated
/// range covers.
#[allow(clippy::too_many_arguments)]
fn check_range(
    module: &Module,
    function: &str,
    guard: &InstRef,
    header: &str,
    stride: u64,
    flags: u64,
    accesses: &[InstRef],
    report: &mut AnalysisReport,
) -> Option<Vec<InstId>> {
    let code = LintCode::RangeUnproven;
    let fail = |report: &mut AnalysisReport, msg: String| {
        report.push(unresolved(code, function, guard, msg));
    };
    let Some(f) = module.function(function) else {
        fail(
            report,
            format!("range obligation names unknown function @{function}"),
        );
        return None;
    };
    if stride == 0 {
        fail(report, "range obligation claims a zero stride".to_string());
        return None;
    }
    let Some((gb, gidx, giid)) = resolve(f, guard) else {
        fail(
            report,
            format!("claimed range guard {guard} does not exist"),
        );
        return None;
    };
    let Inst::Call { callee, args, .. } = f.inst(giid) else {
        fail(report, format!("claimed range guard {guard} is not a call"));
        return None;
    };
    if callee != GUARD_SYMBOL || args.len() != 3 {
        fail(
            report,
            format!("claimed range guard {guard} is not a guard call"),
        );
        return None;
    }
    let base = args[0].clone();
    let size_v = args[1].clone();
    let Value::ConstInt(_, gflags) = args[2] else {
        fail(report, "range guard flags are not a constant".to_string());
        return None;
    };
    if (gflags & flags) != flags {
        fail(
            report,
            format!("range guard grants flags {gflags}, obligation claims {flags}"),
        );
        return None;
    }

    // Re-derive the loop from scratch with the shared recognizer.
    let Some(hbid) = f.block_by_name(header) else {
        fail(
            report,
            format!("range obligation names unknown header block %{header}"),
        );
        return None;
    };
    let dom = DomTree::compute(f);
    let loops = find_counted_loops(f, &dom);
    let Some(l) = loops.into_iter().find(|l| l.header == hbid) else {
        fail(
            report,
            format!("block %{header} does not head a recognizable counted loop"),
        );
        return None;
    };
    if gb != l.preheader {
        fail(
            report,
            format!("range guard {guard} is not in the loop preheader"),
        );
        return None;
    }
    // The guarded byte count must be literally `trip_count · stride`,
    // computed in the preheader before the guard.
    let Value::Inst(len) = size_v else {
        fail(
            report,
            "range guard byte count is not a computed value".to_string(),
        );
        return None;
    };
    let len_ok = match f.inst(len) {
        Inst::Bin {
            op: BinOp::Mul,
            ty: Type::I64,
            lhs,
            rhs,
        } => {
            (*lhs == l.bound && *rhs == Value::ConstInt(Type::I64, stride))
                || (*rhs == l.bound && *lhs == Value::ConstInt(Type::I64, stride))
        }
        _ => false,
    } && f.block(gb).insts[..gidx].contains(&len);
    if !len_ok {
        fail(
            report,
            format!(
                "range guard byte count is not `mul i64 trip_count, {stride}` \
                 computed in the preheader"
            ),
        );
        return None;
    }
    if l.varies(f, &base) {
        fail(
            report,
            "range guard base pointer varies within the loop".to_string(),
        );
        return None;
    }

    // Every claimed access must be a bounded per-iteration element access.
    let mut proven = Vec::with_capacity(accesses.len());
    for aref in accesses {
        let Some((ab, aidx, aiid)) = resolve(f, aref) else {
            fail(
                report,
                format!("range obligation names missing access {aref}"),
            );
            return None;
        };
        let Some((aptr, asz, afl)) = access_key(f, aiid) else {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!("range obligation target {aref} is not a load or store"),
            ));
            return None;
        };
        if !l.iv_bounded_in(ab) {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!("access {aref} is outside the bound-checked loop body"),
            ));
            return None;
        }
        let elem_ok = match &aptr {
            Value::Inst(g) => match f.inst(*g) {
                Inst::Gep {
                    base_ty,
                    ptr: gbase,
                    indices,
                } => {
                    *gbase == base
                        && indices.len() == 1
                        && indices[0] == Value::Inst(l.iv)
                        && base_ty.size_of() == stride
                }
                _ => false,
            },
            _ => false,
        };
        if !elem_ok {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!(
                    "access {aref} is not a stride-{stride} element access off the \
                     range base"
                ),
            ));
            return None;
        }
        if asz > stride || (flags & afl) != afl {
            report.push(diag(
                f,
                ab,
                aidx,
                aiid,
                code,
                format!(
                    "access (size {asz} flags {afl}) exceeds one range step \
                     (stride {stride} flags {flags})"
                ),
            ));
            return None;
        }
        proven.push(aiid);
    }
    Some(proven)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    /// The shape `RangeCoalescing` emits: per-iteration guards replaced
    /// by one `[buf, buf + n·8)` range guard in the preheader.
    const COALESCED: &str = r#"
module "opt"
declare void @carat_guard(ptr, i64, i32)
define i64 @sum(ptr %buf, i64 %n) {
entry:
  %rg.len = mul i64 %n, 8
  call void @carat_guard(ptr %buf, i64 %rg.len, i32 1)
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;

    fn range_ledger(stride: u64) -> ObligationLedger {
        ObligationLedger {
            obligations: vec![Obligation::Range {
                function: "sum".into(),
                guard: InstRef::parse("entry#1").unwrap(),
                header: "head".into(),
                stride,
                flags: 1,
                accesses: vec![InstRef::parse("body#1").unwrap()],
            }],
        }
    }

    #[test]
    fn ledger_text_round_trips() {
        let ledger = ObligationLedger {
            obligations: vec![
                Obligation::Elide {
                    function: "tx".into(),
                    guard: InstRef::parse("entry#0").unwrap(),
                    access: InstRef::parse("entry#4").unwrap(),
                    size: 8,
                    flags: 2,
                },
                range_ledger(8).obligations[0].clone(),
            ],
        };
        let text = ledger.to_text();
        assert!(text.starts_with(ObligationLedger::HEADER));
        let back = ObligationLedger::parse(&text).unwrap();
        assert_eq!(back, ledger);
    }

    #[test]
    fn empty_ledger_round_trips_as_empty_string() {
        let ledger = ObligationLedger::empty();
        assert_eq!(ledger.to_text(), "");
        assert_eq!(ObligationLedger::parse("").unwrap(), ledger);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(ObligationLedger::parse("obligations-v9\n").is_err());
        assert!(ObligationLedger::parse("obligations-v1\nfrob a=1\n").is_err());
        assert!(ObligationLedger::parse("obligations-v1\nelide fn=f\n").is_err());
        assert!(
            ObligationLedger::parse("obligations-v1\nelide fn=f guard=x access=y size=8 flags=1\n")
                .is_err(),
            "refs must be block#index"
        );
    }

    #[test]
    fn validated_range_obligation_proves_the_loop_body() {
        let m = parse_module(COALESCED).unwrap();
        // Without the ledger the loop load is unguarded…
        let bare = validate_module(&m, &ObligationLedger::empty());
        assert_eq!(bare.with_code(LintCode::UnguardedAccess).count(), 1);
        // …with it, the validator independently re-derives coverage.
        let r = validate_module(&m, &range_ledger(8));
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("obligations_range_ok"), 1);
        assert_eq!(r.stat("accesses_proven_by_range"), 1);
    }

    #[test]
    fn forged_stride_is_rejected_with_ka007() {
        let m = parse_module(COALESCED).unwrap();
        let r = validate_module(&m, &range_ledger(16));
        assert!(!r.is_clean());
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }

    #[test]
    fn range_guard_outside_preheader_is_rejected() {
        // Move the claimed guard ref to the loop body: KA007.
        let m = parse_module(COALESCED).unwrap();
        let mut ledger = range_ledger(8);
        let Obligation::Range { guard, .. } = &mut ledger.obligations[0] else {
            unreachable!()
        };
        *guard = InstRef::parse("body#0").unwrap();
        let r = validate_module(&m, &ledger);
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }

    #[test]
    fn dangling_elide_guard_is_rejected_with_ka006() {
        let m = parse_module(COALESCED).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "sum".into(),
                guard: InstRef::parse("entry#9").unwrap(),
                access: InstRef::parse("body#1").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert!(
            r.with_code(LintCode::ObligationUnfounded).count() >= 1,
            "{r}"
        );
    }

    #[test]
    fn valid_elide_obligation_is_accepted() {
        let src = r#"
module "el"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  %v = load i64, ptr %p
  store i64 %v, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("entry#0").unwrap(),
                access: InstRef::parse("entry#2").unwrap(),
                size: 8,
                flags: 2,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("obligations_elide_ok"), 1);
    }

    #[test]
    fn non_dominating_elide_guard_is_rejected_with_ka008() {
        // The guard lives on one branch only; the access is at the join.
        // Its fact covers the claim, but dominance fails — and the
        // coverage replay independently reports the unguarded access.
        let src = r#"
module "dom"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %a, %join
a:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("a#0").unwrap(),
                access: InstRef::parse("join#0").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert_eq!(r.with_code(LintCode::ObligationDominance).count(), 1, "{r}");
    }

    #[test]
    fn same_block_order_counts_as_dominance() {
        let src = r#"
module "sb"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  %v0 = load i64, ptr %p
  call void @carat_guard(ptr %p, i64 8, i32 1)
  ret i64 0
}
"#;
        // Guard placed *after* the access: same-block index order fails.
        let m = parse_module(src).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![Obligation::Elide {
                function: "f".into(),
                guard: InstRef::parse("entry#1").unwrap(),
                access: InstRef::parse("entry#0").unwrap(),
                size: 8,
                flags: 1,
            }],
        };
        let r = validate_module(&m, &ledger);
        assert_eq!(r.with_code(LintCode::ObligationDominance).count(), 1, "{r}");
    }

    /// A minimal fully-guarded function whose guard an inline obligation
    /// can cite.
    const GUARDED: &str = r#"
module "inl"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  %v = load i64, ptr %p
  ret i64 %v
}
"#;

    fn inline_ob() -> Obligation {
        Obligation::Inline {
            function: "f".into(),
            guard: InstRef::parse("entry#0").unwrap(),
            lo: 0x1000,
            hi: 0x2000,
            flags: 3,
            gen: 5,
            env_lo: 0x1100,
            env_hi: 0x1200,
        }
    }

    /// A grant oracle retaining only generation 5: an RW region at
    /// `[0x1000, 0x2000)`, a deny region over the same span's neighbour,
    /// and an unrelated RW region at `[0x8000, 0x8100)`.
    fn oracle(gen: u64) -> Option<Vec<kop_core::Region>> {
        use kop_core::Protection;
        (gen == 5).then(|| {
            vec![
                kop_core::Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap(),
                kop_core::Region::new(VAddr(0x8000), Size(0x100), Protection::READ_WRITE).unwrap(),
            ]
        })
    }

    #[test]
    fn inline_ledger_renders_v2_and_round_trips() {
        let ledger = ObligationLedger {
            obligations: vec![inline_ob()],
        };
        let text = ledger.to_text();
        assert!(text.starts_with(ObligationLedger::HEADER_V2), "{text}");
        assert_eq!(ObligationLedger::parse(&text).unwrap(), ledger);
        // Ledgers without inline obligations keep the v1 header.
        assert!(range_ledger(8).to_text().starts_with("obligations-v1\n"));
        // An inline line smuggled under a v1 header is refused.
        let smuggled = text.replacen("obligations-v2", "obligations-v1", 1);
        assert!(ObligationLedger::parse(&smuggled).is_err());
    }

    #[test]
    fn honest_inline_obligation_validates_against_the_oracle() {
        let m = parse_module(GUARDED).unwrap();
        let ledger = ObligationLedger {
            obligations: vec![inline_ob()],
        };
        let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("obligations_inline_ok"), 1);
    }

    #[test]
    fn forged_inline_bound_is_rejected_with_ka009() {
        let m = parse_module(GUARDED).unwrap();
        for (lo, hi) in [(0x1000, 0x2008), (0x0ff8, 0x2000)] {
            let mut ob = inline_ob();
            let Obligation::Inline { lo: l, hi: h, .. } = &mut ob else {
                unreachable!()
            };
            (*l, *h) = (lo, hi);
            let ledger = ObligationLedger {
                obligations: vec![ob],
            };
            let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
            assert_eq!(
                r.with_code(LintCode::InlineBoundForged).count(),
                1,
                "bound [{lo:#x},{hi:#x}): {r}"
            );
        }
    }

    #[test]
    fn stale_generation_citation_is_rejected_with_ka010() {
        let m = parse_module(GUARDED).unwrap();
        let mut ob = inline_ob();
        let Obligation::Inline { gen, .. } = &mut ob else {
            unreachable!()
        };
        *gen = 4; // evicted / never published
        let ledger = ObligationLedger {
            obligations: vec![ob],
        };
        let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
        assert_eq!(r.with_code(LintCode::InlineBoundStale).count(), 1, "{r}");
        // No oracle at all: same refusal — an unverifiable citation is
        // never trusted.
        let honest = ObligationLedger {
            obligations: vec![inline_ob()],
        };
        let r = validate_module(&m, &honest);
        assert_eq!(r.with_code(LintCode::InlineBoundStale).count(), 1, "{r}");
    }

    #[test]
    fn wrong_site_inline_bound_is_rejected_with_ka011() {
        let m = parse_module(GUARDED).unwrap();
        // The unrelated region's bound pasted onto this site's envelope.
        let mut ob = inline_ob();
        let Obligation::Inline { lo, hi, .. } = &mut ob else {
            unreachable!()
        };
        (*lo, *hi) = (0x8000, 0x8100);
        let ledger = ObligationLedger {
            obligations: vec![ob],
        };
        let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
        assert_eq!(
            r.with_code(LintCode::InlineBoundSiteMismatch).count(),
            1,
            "{r}"
        );
        // An envelope forced inside the wrong region: the bound names a
        // real grant, but not one covering what this site touches.
        let mut ob = inline_ob();
        let Obligation::Inline {
            flags,
            env_lo,
            env_hi,
            ..
        } = &mut ob
        else {
            unreachable!()
        };
        // Ask for EXEC the RW grant cannot give: the cited bound exists
        // but does not grant this envelope.
        *flags = 7;
        (*env_lo, *env_hi) = (0x1100, 0x1200);
        let ledger = ObligationLedger {
            obligations: vec![ob],
        };
        let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
        assert_eq!(
            r.with_code(LintCode::InlineBoundSiteMismatch).count(),
            1,
            "{r}"
        );
    }

    #[test]
    fn inline_obligation_must_cite_a_real_guard() {
        let m = parse_module(GUARDED).unwrap();
        let mut ob = inline_ob();
        let Obligation::Inline { guard, .. } = &mut ob else {
            unreachable!()
        };
        *guard = InstRef::parse("entry#1").unwrap(); // the load, not a guard
        let ledger = ObligationLedger {
            obligations: vec![ob],
        };
        let r = validate_module_with_grants(&m, &ledger, Some(&oracle));
        assert!(
            r.with_code(LintCode::ObligationUnfounded).count() >= 1,
            "{r}"
        );
    }

    #[test]
    fn oversized_range_access_is_rejected() {
        let m = parse_module(COALESCED).unwrap();
        let mut ledger = range_ledger(8);
        let Obligation::Range { flags, .. } = &mut ledger.obligations[0] else {
            unreachable!()
        };
        // Claim write coverage the guard (flags=1) does not grant.
        *flags = 3;
        let r = validate_module(&m, &ledger);
        assert!(r.with_code(LintCode::RangeUnproven).count() >= 1, "{r}");
    }
}
