//! PointerProvenance: classify where every pointer comes from.
//!
//! Provenance answers two questions the rest of the stack cares about:
//!
//! 1. **Which guards could be elided soundly?** An access through a
//!    pointer derived from a *non-escaping* `alloca` can only touch the
//!    module's own stack frame, so its guard is pure overhead (the
//!    CARAT CAKE-style optimization the paper skips). The analysis
//!    counts these as `elidable_accesses`.
//! 2. **Which pointers are suspicious?** `inttoptr` of a non-constant
//!    integer *launders* provenance — the classic rootkit trick for
//!    reaching kernel objects the module was never given (KA003).
//!    `inttoptr` of a constant is a fixed absolute address; when a
//!    policy snapshot is supplied, accesses through it are checked
//!    statically and violations are reported as KA005.
//!
//! The classification is a flat lattice solved to fixpoint per function
//! (phis and selects join; unequal classes collapse to `Unknown`).

use std::collections::{HashMap, HashSet};

use kop_core::{AccessFlags, Region, Size, VAddr};
use kop_ir::{CastOp, Function, Inst, InstId, Module, Type, Value};

use crate::coverage::GUARD_SYMBOL;
use crate::diagnostics::{AnalysisReport, Diagnostic, LintCode};

/// Where a pointer value comes from.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Provenance {
    /// The null pointer.
    Null,
    /// Derived from an `alloca` in this function; the id is the root
    /// allocation.
    Stack(InstId),
    /// Derived from a named global / kernel symbol.
    KernelSymbol(String),
    /// Derived from a formal parameter (the caller vouches for it).
    Argument(u32),
    /// The address of a function.
    FuncPtr(String),
    /// A constant absolute address materialized via `inttoptr`.
    Constant(u64),
    /// `inttoptr` applied to a non-constant integer: provenance erased.
    Laundered,
    /// Anything else (loaded from memory, returned from a call, or a
    /// join of different classes).
    Unknown,
}

impl Provenance {
    /// Flat-lattice join.
    fn join(&self, other: &Provenance) -> Provenance {
        if self == other {
            self.clone()
        } else {
            Provenance::Unknown
        }
    }

    /// Stable name for stats buckets.
    pub fn bucket(&self) -> &'static str {
        match self {
            Provenance::Null => "ptr_null",
            Provenance::Stack(_) => "ptr_stack",
            Provenance::KernelSymbol(_) => "ptr_kernel_symbol",
            Provenance::Argument(_) => "ptr_argument",
            Provenance::FuncPtr(_) => "ptr_func",
            Provenance::Constant(_) => "ptr_constant",
            Provenance::Laundered => "ptr_laundered",
            Provenance::Unknown => "ptr_unknown",
        }
    }
}

/// Per-function provenance solution.
#[derive(Clone, Debug)]
pub struct PointerProvenance {
    env: HashMap<InstId, Provenance>,
    escaped: HashSet<InstId>,
}

impl PointerProvenance {
    /// Solve provenance for one function.
    pub fn compute(f: &Function) -> PointerProvenance {
        let mut env: HashMap<InstId, Provenance> = HashMap::new();
        // Fixpoint: flat lattice of bounded height, so this terminates
        // in at most a few passes even through phi cycles.
        loop {
            let mut changed = false;
            for (_, iid) in f.placed_insts() {
                let new = transfer(f, iid, &env);
                if env.get(&iid) != Some(&new) {
                    env.insert(iid, new);
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }

        // Escape scan: a stack root escapes when a pointer derived from
        // it is stored to memory, passed to a non-guard call, returned,
        // or cast to an integer.
        let mut escaped: HashSet<InstId> = HashSet::new();
        let value_root = |v: &Value| -> Option<InstId> {
            match value_prov(f, v, &env) {
                Provenance::Stack(root) => Some(root),
                _ => None,
            }
        };
        for (bid, iid) in f.placed_insts() {
            match f.inst(iid) {
                Inst::Store { val, .. } => {
                    if let Some(root) = value_root(val) {
                        escaped.insert(root);
                    }
                }
                Inst::Call { callee, args, .. } if callee != GUARD_SYMBOL => {
                    for a in args {
                        if let Some(root) = value_root(a) {
                            escaped.insert(root);
                        }
                    }
                }
                Inst::Cast {
                    op: CastOp::PtrToInt,
                    val,
                    ..
                } => {
                    if let Some(root) = value_root(val) {
                        escaped.insert(root);
                    }
                }
                _ => {}
            }
            let _ = bid;
        }
        for bid in f.block_ids() {
            if let Some(kop_ir::Terminator::Ret(Some(v))) = &f.block(bid).term {
                if let Some(root) = value_root(v) {
                    escaped.insert(root);
                }
            }
        }

        PointerProvenance { env, escaped }
    }

    /// Provenance of an arbitrary operand in this function.
    pub fn of(&self, f: &Function, v: &Value) -> Provenance {
        value_prov(f, v, &self.env)
    }

    /// Whether a stack root's address leaves the function.
    pub fn escapes(&self, root: InstId) -> bool {
        self.escaped.contains(&root)
    }
}

fn value_prov(_f: &Function, v: &Value, env: &HashMap<InstId, Provenance>) -> Provenance {
    match v {
        Value::NullPtr => Provenance::Null,
        Value::Global(name) => Provenance::KernelSymbol(name.clone()),
        Value::FuncAddr(name) => Provenance::FuncPtr(name.clone()),
        Value::Arg(i) => Provenance::Argument(*i),
        Value::ConstInt(_, _) => Provenance::Unknown, // an int, not a pointer
        Value::Inst(id) => env.get(id).cloned().unwrap_or(Provenance::Unknown),
    }
}

fn transfer(f: &Function, iid: InstId, env: &HashMap<InstId, Provenance>) -> Provenance {
    match f.inst(iid) {
        Inst::Alloca { .. } => Provenance::Stack(iid),
        Inst::Gep { ptr, .. } => value_prov(f, ptr, env),
        Inst::Cast {
            op: CastOp::IntToPtr,
            val,
            ..
        } => match val {
            Value::ConstInt(_, addr) => Provenance::Constant(*addr),
            // A round-tripped pointer (ptrtoint→inttoptr) keeps its
            // class only when the int's source is itself a cast we
            // tracked; everything else is laundering.
            Value::Inst(id) => match f.inst(*id) {
                Inst::Cast {
                    op: CastOp::PtrToInt,
                    val: inner,
                    ..
                } => value_prov(f, inner, env),
                _ => Provenance::Laundered,
            },
            _ => Provenance::Laundered,
        },
        Inst::Select {
            then_val, else_val, ..
        } => value_prov(f, then_val, env).join(&value_prov(f, else_val, env)),
        Inst::Phi { incomings, ty } if *ty == Type::Ptr => {
            let mut it = incomings.iter();
            match it.next() {
                None => Provenance::Unknown,
                Some((_, first)) => it.fold(value_prov(f, first, env), |acc, (_, v)| {
                    acc.join(&value_prov(f, v, env))
                }),
            }
        }
        // Loads of pointers, call results, arithmetic, …: no provenance.
        _ => Provenance::Unknown,
    }
}

/// Run provenance over a module: classify every access pointer, flag
/// laundered accesses (KA003), and — when `allowed` is non-empty —
/// statically check constant-address accesses against it (KA005).
pub fn analyze_provenance(module: &Module, allowed: &[Region]) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    for f in &module.functions {
        if f.blocks.is_empty() {
            continue;
        }
        let prov = PointerProvenance::compute(f);
        for bid in f.block_ids() {
            for (idx, &iid) in f.block(bid).insts.iter().enumerate() {
                let (ptr, size, flags) = match f.inst(iid) {
                    Inst::Load { ty, ptr } => (ptr, ty.size_of(), AccessFlags::READ),
                    Inst::Store { ty, ptr, .. } => (ptr, ty.size_of(), AccessFlags::WRITE),
                    _ => continue,
                };
                let p = prov.of(f, ptr);
                report.bump(p.bucket(), 1);
                match p {
                    Provenance::Stack(root) if !prov.escapes(root) => {
                        report.bump("elidable_accesses", 1);
                    }
                    Provenance::Laundered => {
                        report.push(access_diag(
                            f,
                            bid,
                            idx,
                            iid,
                            LintCode::LaunderedPointer,
                            "pointer provenance erased by inttoptr; \
                             the guard cannot be elided and the access \
                             deserves scrutiny"
                                .to_string(),
                        ));
                    }
                    Provenance::Constant(addr) if !allowed.is_empty() => {
                        let ok = allowed
                            .iter()
                            .any(|r| r.permits(VAddr(addr), Size(size), flags));
                        if !ok {
                            report.push(access_diag(
                                f,
                                bid,
                                idx,
                                iid,
                                LintCode::PolicyViolation,
                                format!(
                                    "constant address {addr:#x} (+{size}) is outside \
                                     every permitted policy region for flags {}",
                                    flags.raw()
                                ),
                            ));
                        }
                    }
                    _ => {}
                }
            }
        }
    }
    report
}

fn access_diag(
    f: &Function,
    bid: kop_ir::BlockId,
    idx: usize,
    iid: InstId,
    code: LintCode,
    message: String,
) -> Diagnostic {
    let name = f.inst_name(iid);
    let inst = if name.is_empty() {
        format!("store #{idx}")
    } else {
        format!("%{name}")
    };
    Diagnostic {
        code,
        function: f.name.clone(),
        block: f.block(bid).name.clone(),
        inst_index: idx,
        inst,
        message,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_core::Protection;
    use kop_ir::parse_module;

    #[test]
    fn classifies_basic_sources() {
        let src = r#"
module "cls"
global @g : i64 = 0
define void @f(ptr %arg) {
entry:
  %slot = alloca i64, 1
  %gp = gep i64, ptr @g, i64 0
  %ap = gep i64, ptr %arg, i64 2
  store i64 1, ptr %slot
  store i64 2, ptr %gp
  store i64 3, ptr %ap
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let prov = PointerProvenance::compute(f);
        let slot = Value::Inst(InstId(0));
        assert_eq!(prov.of(f, &slot), Provenance::Stack(InstId(0)));
        assert_eq!(
            prov.of(f, &Value::Global("g".into())),
            Provenance::KernelSymbol("g".into())
        );
        assert_eq!(prov.of(f, &Value::Arg(0)), Provenance::Argument(0));
    }

    #[test]
    fn gep_preserves_provenance() {
        let src = r#"
module "gep"
define i64 @f(ptr %p) {
entry:
  %q = gep i64, ptr %p, i64 4
  %v = load i64, ptr %q
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let prov = PointerProvenance::compute(f);
        let q = f
            .block_by_name("entry")
            .map(|b| f.block(b).insts[0])
            .unwrap();
        assert_eq!(prov.of(f, &Value::Inst(q)), Provenance::Argument(0));
    }

    #[test]
    fn inttoptr_of_variable_launders_and_warns_ka003() {
        let src = r#"
module "rootkit"
define i64 @peek(i64 %addr) {
entry:
  %p = inttoptr i64 %addr to ptr
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = analyze_provenance(&m, &[]);
        assert_eq!(r.with_code(LintCode::LaunderedPointer).count(), 1);
        assert_eq!(r.stat("ptr_laundered"), 1);
        // A warning, not an error: runtime guards still police it.
        assert!(r.is_clean());
    }

    #[test]
    fn roundtrip_cast_keeps_provenance() {
        let src = r#"
module "rt"
define i64 @f(ptr %p) {
entry:
  %i = ptrtoint ptr %p to i64
  %q = inttoptr i64 %i to ptr
  %v = load i64, ptr %q
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let prov = PointerProvenance::compute(f);
        let q = f
            .block_by_name("entry")
            .map(|b| f.block(b).insts[1])
            .unwrap();
        assert_eq!(prov.of(f, &Value::Inst(q)), Provenance::Argument(0));
        let r = analyze_provenance(&m, &[]);
        assert_eq!(r.with_code(LintCode::LaunderedPointer).count(), 0);
    }

    #[test]
    fn constant_address_checked_against_policy() {
        let src = r#"
module "abs"
define i64 @f() {
entry:
  %p = inttoptr i64 4096 to ptr
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        // No policy: nothing to check.
        assert!(analyze_provenance(&m, &[]).is_clean());
        // Policy that covers 0x1000: clean.
        let covering = Region::new(VAddr(0x1000), Size(0x1000), Protection::READ_WRITE).unwrap();
        assert!(analyze_provenance(&m, &[covering]).is_clean());
        // Policy elsewhere: KA005.
        let elsewhere = Region::new(VAddr(0x100000), Size(0x1000), Protection::READ_WRITE).unwrap();
        let r = analyze_provenance(&m, &[elsewhere]);
        assert_eq!(r.with_code(LintCode::PolicyViolation).count(), 1);
        assert!(!r.is_clean());
    }

    #[test]
    fn nonescaping_alloca_accesses_are_elidable() {
        let src = r#"
module "stk"
define i64 @f() {
entry:
  %slot = alloca i64, 1
  store i64 7, ptr %slot
  %v = load i64, ptr %slot
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = analyze_provenance(&m, &[]);
        assert_eq!(r.stat("elidable_accesses"), 2);
        assert_eq!(r.stat("ptr_stack"), 2);
    }

    #[test]
    fn escaping_alloca_is_not_elidable() {
        let src = r#"
module "esc"
declare void @sink(ptr)
define i64 @f() {
entry:
  %slot = alloca i64, 1
  store i64 7, ptr %slot
  call void @sink(ptr %slot)
  %v = load i64, ptr %slot
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = analyze_provenance(&m, &[]);
        assert_eq!(r.stat("elidable_accesses"), 0);
        assert_eq!(r.stat("ptr_stack"), 2);
    }

    #[test]
    fn guard_call_does_not_escape_its_pointer() {
        let src = r#"
module "ge"
declare void @carat_guard(ptr, i64, i32)
define i64 @f() {
entry:
  %slot = alloca i64, 1
  call void @carat_guard(ptr %slot, i64 8, i32 2)
  store i64 7, ptr %slot
  %v = load i64, ptr %slot
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = analyze_provenance(&m, &[]);
        assert_eq!(r.stat("elidable_accesses"), 2);
    }

    #[test]
    fn phi_of_same_source_keeps_class_mixed_goes_unknown() {
        let src = r#"
module "phi"
global @a : i64 = 0
define i64 @f(i1 %c, ptr %p) {
entry:
  condbr i1 %c, %l, %r
l:
  %lp = gep i64, ptr %p, i64 0
  br %join
r:
  %rp = gep i64, ptr %p, i64 1
  br %join
join:
  %m = phi ptr [ %lp, %l ], [ %rp, %r ]
  %v = load i64, ptr %m
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.function("f").unwrap();
        let prov = PointerProvenance::compute(f);
        let join = f.block_by_name("join").unwrap();
        let phi = f.block(join).insts[0];
        assert_eq!(prov.of(f, &Value::Inst(phi)), Provenance::Argument(1));
    }
}
