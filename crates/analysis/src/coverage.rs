//! GuardCoverage: prove that every load/store is covered by a guard.
//!
//! A *guard fact* is the triple `(ptr, size, flags)` carried by a
//! `call @carat_guard(ptr, i64 size, i32 flags)`. The analysis is a
//! forward must-dataflow over those facts: a fact holds at a program
//! point iff a guard establishing it executes on **every** path from
//! the function entry to that point. An access `(p, sz, fl)` is covered
//! when some fact with the same pointer SSA value grants at least `sz`
//! bytes and all of `fl`.
//!
//! ## Soundness model
//!
//! Facts are *not* killed by intervening calls: guard validity is
//! per-module and control-flow based, matching the paper's policy model
//! (policies change per-module, not per-instruction), and matching what
//! `RangeCoalescing` already assumes when it hoists a range guard above
//! a loop containing calls. `RedundantGuardElim` (which works over the
//! stricter [`crate::available`] analysis) is strictly more conservative
//! than this verifier requires, so everything the optimizer produces
//! stays provably covered.
//!
//! Accesses in blocks unreachable from the entry are skipped — they
//! cannot execute, and the loader lays out only reachable code paths.

use std::collections::HashSet;

use kop_ir::dom::DomTree;
use kop_ir::{BlockId, Function, Inst, InstId, Module, Value};

use crate::dataflow::{solve, ForwardAnalysis};
use crate::diagnostics::{AnalysisReport, Diagnostic, LintCode};

/// The guard symbol whose calls establish facts. Mirrors
/// `kop_compiler::GUARD_SYMBOL` (duplicated to keep this crate
/// independent of the compiler — the loader must not trust it).
pub const GUARD_SYMBOL: &str = "carat_guard";

/// One proven guard: pointer SSA value, byte size, access-flag bits.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct GuardFact {
    /// The guarded pointer value.
    pub ptr: Value,
    /// Guarded byte count.
    pub size: u64,
    /// Granted `AccessFlags` bits.
    pub flags: u64,
}

impl GuardFact {
    /// Does this fact cover an access of `size` bytes with `flags` intent
    /// through the same pointer?
    pub fn covers(&self, ptr: &Value, size: u64, flags: u64) -> bool {
        &self.ptr == ptr && self.size >= size && (self.flags & flags) == flags
    }
}

/// Parse a placed instruction as a guard call with constant size/flags.
pub fn guard_fact(f: &Function, iid: InstId) -> Option<GuardFact> {
    if let Inst::Call { callee, args, .. } = f.inst(iid) {
        if callee == GUARD_SYMBOL && args.len() == 3 {
            if let (Value::ConstInt(_, size), Value::ConstInt(_, flags)) = (&args[1], &args[2]) {
                return Some(GuardFact {
                    ptr: args[0].clone(),
                    size: *size,
                    flags: *flags,
                });
            }
        }
    }
    None
}

/// The access key of a load/store: pointer, byte size, needed flags
/// (1 = read, 2 = write, per `kop_core::AccessFlags`).
pub(crate) fn access_key(f: &Function, iid: InstId) -> Option<(Value, u64, u64)> {
    match f.inst(iid) {
        Inst::Load { ty, ptr } => Some((ptr.clone(), ty.size_of(), 1)),
        Inst::Store { ty, ptr, .. } => Some((ptr.clone(), ty.size_of(), 2)),
        _ => None,
    }
}

/// The must-dataflow analysis over guard facts.
#[derive(Clone, Copy, Debug, Default)]
pub struct GuardCoverage;

impl ForwardAnalysis for GuardCoverage {
    type Domain = HashSet<GuardFact>;

    fn entry_state(&self, _f: &Function) -> Self::Domain {
        HashSet::new()
    }

    fn merge(&self, states: &[&Self::Domain]) -> Self::Domain {
        let mut it = states.iter();
        let first = (*it.next().expect("merge of ≥1 state")).clone();
        it.fold(first, |acc, s| acc.intersection(s).cloned().collect())
    }

    fn transfer(&self, f: &Function, _bid: BlockId, iid: InstId, state: &mut Self::Domain) {
        if let Some(fact) = guard_fact(f, iid) {
            state.insert(fact);
        }
    }

    fn on_block_entry(&self, f: &Function, bid: BlockId, state: &mut Self::Domain) {
        kill_redefined(f, bid, state);
    }
}

/// Drop facts whose pointer is an SSA value defined in `bid`: entering the
/// defining block (re-)executes the definition, so a surviving fact would
/// describe the *previous* runtime value of the same SSA name. Well-formed
/// SSA (def dominates use) makes such stale facts unreachable, but the
/// verifier runs on untrusted module text and must not assume the SSA
/// checker already ran — this kill closes the hole independently.
pub(crate) fn kill_redefined(f: &Function, bid: BlockId, state: &mut HashSet<GuardFact>) {
    state.retain(|fact| match fact.ptr {
        Value::Inst(d) => !f.block(bid).insts.contains(&d),
        _ => true,
    });
}

/// Prove guard coverage for every function in `module`.
///
/// Emits `KA001` for an access with no fact on its pointer, `KA002` when
/// a fact exists but grants too few bytes or the wrong intent, and
/// `KA004` (warning) for guards that cover no reachable access.
pub fn verify_guard_coverage(module: &Module) -> AnalysisReport {
    let mut report = AnalysisReport::new();
    for f in &module.functions {
        verify_function(f, &mut report);
    }
    report.bump("functions_analyzed", module.functions.len() as u64);
    report
}

pub(crate) fn diag(
    f: &Function,
    bid: BlockId,
    idx: usize,
    iid: InstId,
    code: LintCode,
    message: String,
) -> Diagnostic {
    let name = f.inst_name(iid);
    let inst = if name.is_empty() {
        // Unnamed instructions (stores, guard calls) get a rendered stub.
        match f.inst(iid) {
            Inst::Store { .. } => format!("store #{idx}"),
            Inst::Call { callee, .. } => format!("call @{callee} #{idx}"),
            other => format!("{other:?}"),
        }
    } else {
        format!("%{name}")
    };
    Diagnostic {
        code,
        function: f.name.clone(),
        block: f.block(bid).name.clone(),
        inst_index: idx,
        inst,
        message,
    }
}

fn verify_function(f: &Function, report: &mut AnalysisReport) {
    verify_function_with_exemptions(f, report, &HashSet::new());
}

/// Coverage replay with an exemption set: accesses in `exempt` are
/// treated as proven by other means (the translation validator passes
/// the accesses of its independently re-derived range obligations).
pub(crate) fn verify_function_with_exemptions(
    f: &Function,
    report: &mut AnalysisReport,
    exempt: &HashSet<InstId>,
) {
    if f.blocks.is_empty() {
        return;
    }
    let states = solve(f, &GuardCoverage);
    let dom = DomTree::compute(f);

    // Every guard occurrence, for the dead-guard pass:
    // (block, index-in-block, inst id, fact, covers-something).
    let mut guards: Vec<(BlockId, usize, InstId, GuardFact, bool)> = Vec::new();
    // Every reachable access: (block, index-in-block, key).
    let mut accesses: Vec<(BlockId, usize, (Value, u64, u64))> = Vec::new();

    for bid in f.block_ids() {
        let Some(in_state) = states.entry_of(bid) else {
            continue; // unreachable: cannot execute, nothing to prove
        };
        let mut state = in_state.clone();
        for (idx, &iid) in f.block(bid).insts.iter().enumerate() {
            if let Some(fact) = guard_fact(f, iid) {
                guards.push((bid, idx, iid, fact.clone(), false));
                state.insert(fact);
                continue;
            }
            let Some((ptr, size, flags)) = access_key(f, iid) else {
                continue;
            };
            report.bump("accesses_checked", 1);
            accesses.push((bid, idx, (ptr.clone(), size, flags)));
            if exempt.contains(&iid) {
                report.bump("accesses_proven", 1);
                report.bump("accesses_proven_by_range", 1);
                continue;
            }
            if state.iter().any(|g| g.covers(&ptr, size, flags)) {
                report.bump("accesses_proven", 1);
                continue;
            }
            // Not covered: mismatch if some fact names this pointer.
            let near: Vec<&GuardFact> = state.iter().filter(|g| g.ptr == ptr).collect();
            if near.is_empty() {
                report.push(diag(
                    f,
                    bid,
                    idx,
                    iid,
                    LintCode::UnguardedAccess,
                    format!(
                        "no guard for this pointer reaches the access on all paths \
                         (needs size {size}, flags {flags})"
                    ),
                ));
            } else {
                let have = near
                    .iter()
                    .map(|g| format!("size {} flags {}", g.size, g.flags))
                    .collect::<Vec<_>>()
                    .join(", ");
                report.push(diag(
                    f,
                    bid,
                    idx,
                    iid,
                    LintCode::GuardMismatch,
                    format!(
                        "guard on this pointer grants {have}, access needs \
                         size {size} flags {flags}"
                    ),
                ));
            }
        }
    }

    report.bump("guards_seen", guards.len() as u64);

    // Dead-guard scan: a guard is live if it can cover some reachable
    // access it precedes — same block and earlier, or in a block that
    // dominates the access's block.
    for (gb, gidx, giid, fact, live) in guards.iter_mut() {
        for (ab, aidx, (ptr, size, flags)) in &accesses {
            let ordered = if *gb == *ab {
                *gidx < *aidx
            } else {
                dom.dominates(*gb, *ab)
            };
            if ordered && fact.covers(ptr, *size, *flags) {
                *live = true;
                break;
            }
        }
        if !*live {
            let d = diag(
                f,
                *gb,
                *gidx,
                *giid,
                LintCode::DeadGuard,
                format!(
                    "guard (size {} flags {}) covers no reachable access",
                    fact.size, fact.flags
                ),
            );
            report.push(d);
            report.bump("dead_guards", 1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    /// Hand-guarded straight-line module (what GuardInjectionPass emits).
    const GUARDED: &str = r#"
module "g"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  ret i64 %v
}
"#;

    #[test]
    fn accepts_guarded_access() {
        let m = parse_module(GUARDED).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("accesses_checked"), 1);
        assert_eq!(r.stat("accesses_proven"), 1);
    }

    #[test]
    fn rejects_unguarded_access_with_ka001() {
        let src = r#"
module "u"
define i64 @f(ptr %p) {
entry:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(!r.is_clean());
        let d = r.with_code(LintCode::UnguardedAccess).next().unwrap();
        assert_eq!(d.function, "f");
        assert_eq!(d.inst, "%v", "diagnostic names the offending instruction");
    }

    #[test]
    fn rejects_undersized_guard_with_ka002() {
        let src = r#"
module "sz"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 4, i32 1)
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(!r.is_clean());
        assert_eq!(r.with_code(LintCode::GuardMismatch).count(), 1);
    }

    #[test]
    fn read_guard_does_not_cover_store() {
        let src = r#"
module "rw"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  store i64 0, ptr %p
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert_eq!(r.with_code(LintCode::GuardMismatch).count(), 1);
    }

    #[test]
    fn rw_guard_covers_both_directions() {
        let src = r#"
module "rw2"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 3)
  %v = load i64, ptr %p
  store i64 %v, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("accesses_proven"), 2);
    }

    #[test]
    fn guard_on_one_branch_only_is_rejected() {
        // The guard executes only on the `a` path; at the join it is not
        // a must-fact, so the access is KA001.
        let src = r#"
module "br"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
b:
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert_eq!(r.with_code(LintCode::UnguardedAccess).count(), 1);
    }

    #[test]
    fn guards_on_both_branches_are_accepted() {
        let src = r#"
module "br2"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, i1 %c) {
entry:
  condbr i1 %c, %a, %b
a:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
b:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %join
join:
  %v = load i64, ptr %p
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "{r}");
    }

    #[test]
    fn hoisted_guard_covers_loop_body() {
        // Guard in the preheader, access in the loop body — the shape
        // a hoisted/coalesced guard produces. Calls inside the loop must
        // not invalidate the fact.
        let src = r#"
module "hoisted"
global @acc : i64 = 0
declare void @carat_guard(ptr, i64, i32)
declare void @other()
define i64 @sum(i64 %n) {
entry:
  call void @carat_guard(ptr @acc, i64 8, i32 3)
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  call void @other()
  %v = load i64, ptr @acc
  %v2 = add i64 %v, 1
  store i64 %v2, ptr @acc
  %i2 = add i64 %i, 1
  br %head
exit:
  %r = load i64, ptr @acc
  ret i64 %r
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("accesses_proven"), 3);
    }

    #[test]
    fn dead_guard_warns_ka004_but_stays_clean() {
        let src = r#"
module "dead"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p, ptr %q) {
entry:
  call void @carat_guard(ptr %q, i64 8, i32 2)
  call void @carat_guard(ptr %p, i64 8, i32 2)
  store i64 0, ptr %p
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "dead guard is only a warning: {r}");
        assert_eq!(r.with_code(LintCode::DeadGuard).count(), 1);
        assert_eq!(r.stat("dead_guards"), 1);
    }

    #[test]
    fn unreachable_access_is_skipped() {
        let src = r#"
module "unreach"
define void @f(ptr %p) {
entry:
  ret void
dead:
  store i64 0, ptr %p
  ret void
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.stat("accesses_checked"), 0);
    }

    #[test]
    fn stale_fact_does_not_survive_reentry_of_defining_block() {
        // A guard that textually precedes the definition of the pointer it
        // names (invalid SSA, but parseable — the verifier must not assume
        // `verify_module` ran). Without kill-on-redefinition the fact on
        // `%p` flows around the back edge into `body`, where `%p` is
        // recomputed from the new `%i`, and the load would be "proven"
        // covered by a guard on a previous iteration's address.
        let src = r#"
module "stale"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %buf, i64 %n) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i.next, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %p = gep i64, ptr %buf, i64 %i
  %v = load i64, ptr %p
  %i.next = add i64 %i, 1
  br %head
exit:
  ret i64 0
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert_eq!(
            r.with_code(LintCode::UnguardedAccess).count(),
            1,
            "stale pre-definition fact must be killed on entry to the \
             defining block: {r}"
        );
    }

    #[test]
    fn fact_equality_is_on_ssa_value_not_name() {
        // Two distinct pointers with identical types: a guard on one must
        // not cover the other.
        let src = r#"
module "alias"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p, ptr %q) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %q
  ret i64 %v
}
"#;
        let m = parse_module(src).unwrap();
        let r = verify_guard_coverage(&m);
        assert_eq!(r.with_code(LintCode::UnguardedAccess).count(), 1);
    }
}
