//! # kop-vm — one-shot bytecode compilation of verified KIR
//!
//! The tree-walking interpreter in `kop-interp` re-discovers the same
//! facts on every executed instruction: which arena slot a value lives
//! in, what mask its type implies, which block offset a branch target
//! resolves to, whether a callee is internal, a kernel-ABI host
//! function, or a guard. All of that is a pure function of the verified
//! module and its insmod-time layout — so this crate computes it **once,
//! at insmod**, and emits a flat register-based bytecode the interpreter
//! can run with a tight dispatch loop.
//!
//! Lowering pre-resolves:
//!
//! * block targets → instruction offsets ([`Edge::target`]),
//! * phi nodes → per-edge move schedules executed on the branch
//!   ([`Edge::moves`]; staging is only paid on edges whose parallel
//!   moves actually conflict),
//! * globals / function addresses → immediate operands ([`Src::Imm`]),
//! * callees → internal function indices or prebuilt [`HostFn`] kernel
//!   ABI entries (unknown imports stay lazily-erroring, like the tree),
//! * guard sites → inline [`SiteId`]s, so tracing attribution costs no
//!   map probe,
//! * adjacent `carat_guard` + load/store pairs → fused guard-access
//!   superinstructions ([`Op::GuardLoad`] / [`Op::GuardStore`]) that
//!   call the policy path and perform the access in one dispatch.
//!
//! The bytecode preserves the tree interpreter's observable semantics
//! exactly — instruction/fuel accounting, squash ordering, masking
//! discipline, error messages — which the differential property tests in
//! the root crate check. Execution itself lives in `kop-interp` (it
//! needs the kernel); this crate is deliberately kernel-free so the
//! loader can depend on it.

#![warn(missing_docs)]

mod lower;

use std::collections::BTreeMap;
use std::sync::Arc;

use arc_swap::ArcSwap;

pub use lower::{lower_module, LowerError};

use kop_ir::{BinOp, CastOp, IcmpPred};
use kop_trace::SiteId;

/// A pre-resolved operand: where the tree interpreter pattern-matched a
/// [`kop_ir::Value`] per use, the bytecode reads a register, a formal
/// argument, or an immediate (constants, global addresses, function
/// addresses — all resolved at lowering time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Virtual register (one per arena instruction).
    Reg(u32),
    /// Formal parameter of the executing function.
    Arg(u32),
    /// Immediate, pre-masked to its IR type at lowering time.
    Imm(u64),
}

/// One scheduled phi move for a control-flow edge: `regs[dst] = mask &
/// eval(src)`. The whole schedule is a *parallel* assignment — see
/// [`Edge::staged`].
#[derive(Clone, Copy, Debug)]
pub struct Move {
    /// Destination register (the phi's arena slot).
    pub dst: u32,
    /// Incoming value for this edge.
    pub src: Src,
    /// Mask of the phi's type, applied to the staged value.
    pub mask: u64,
}

/// A pre-resolved control-flow edge: where to jump and which phi moves
/// to execute on the way.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Bytecode offset of the successor block's first op. (During
    /// lowering this temporarily holds the successor `BlockId`; it is
    /// patched to an offset before the function is published.)
    pub target: u32,
    /// Phi move schedule for this edge (empty for phi-less targets).
    pub moves: Box<[Move]>,
    /// Fuel charged after the moves — the successor's leading-phi count,
    /// matching the tree interpreter's per-phi accounting.
    pub phi_burn: u32,
    /// Whether any move reads a register another move writes: if so the
    /// executor stages all reads before the first write (the parallel
    /// semantics of phi nodes); conflict-free edges write directly.
    pub staged: bool,
}

/// A kernel-ABI host function, resolved from the callee symbol at
/// lowering time. `Unresolved` mirrors the tree interpreter's lazy
/// behaviour: the symbol only faults if the call actually executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostFn {
    /// `__wrmsr(msr, value)` privileged intrinsic.
    Wrmsr,
    /// `__rdmsr(msr) -> value` privileged intrinsic.
    Rdmsr,
    /// `__cli()` privileged intrinsic.
    Cli,
    /// `__sti()` privileged intrinsic.
    Sti,
    /// `__invlpg(addr)` privileged intrinsic (no-op in the model).
    Invlpg,
    /// `__hlt()` privileged intrinsic (panics the kernel).
    Hlt,
    /// `printk(i64)`.
    Printk,
    /// `kmalloc(i64) -> ptr`.
    Kmalloc,
    /// `kfree(ptr)`.
    Kfree,
    /// `panic(i64)`.
    Panic,
    /// Import that resolved to nothing: executing it raises
    /// `UnresolvedSymbol`, exactly like the tree interpreter.
    Unresolved(Box<str>),
}

impl HostFn {
    /// Resolve a callee symbol to its host entry.
    pub fn resolve(name: &str) -> HostFn {
        match name {
            "__wrmsr" => HostFn::Wrmsr,
            "__rdmsr" => HostFn::Rdmsr,
            "__cli" => HostFn::Cli,
            "__sti" => HostFn::Sti,
            "__invlpg" => HostFn::Invlpg,
            "__hlt" => HostFn::Hlt,
            "printk" => HostFn::Printk,
            "kmalloc" => HostFn::Kmalloc,
            "kfree" => HostFn::Kfree,
            "panic" => HostFn::Panic,
            other => HostFn::Unresolved(other.into()),
        }
    }
}

/// One flat bytecode instruction. Every op charges one fuel unit before
/// executing (the fused guard-access ops charge two — one per original
/// IR instruction — with the guard/access fuel checkpoint preserved).
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field meanings documented per variant
pub enum Op {
    /// Stack allocation; size/align precomputed from the IR type.
    Alloca { size: u64, align: u64, dst: u32 },
    /// Scalar load: `dst = mask & mem[ptr]` (`size` bytes).
    Load {
        size: u64,
        mask: u64,
        ptr: Src,
        dst: u32,
    },
    /// Scalar store: `mem[ptr] = mask & val` (`size` bytes).
    Store {
        size: u64,
        mask: u64,
        val: Src,
        ptr: Src,
    },
    /// Fused `carat_guard` + load superinstruction.
    GuardLoad {
        site: Option<SiteId>,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        ptr: Src,
        dst: u32,
    },
    /// Fused `carat_guard` + store superinstruction.
    GuardStore {
        site: Option<SiteId>,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        val: Src,
        ptr: Src,
    },
    /// Address arithmetic with constant contributions folded:
    /// `dst = base + offset + Σ scale·idx` (all wrapping).
    Gep {
        base: Src,
        offset: u64,
        terms: Box<[(u64, Src)]>,
        dst: u32,
    },
    /// Integer binary op; `mask`/`bits` precomputed from the type.
    Bin {
        op: BinOp,
        mask: u64,
        bits: u32,
        lhs: Src,
        rhs: Src,
        dst: u32,
    },
    /// Integer comparison; yields 0/1.
    Icmp {
        pred: IcmpPred,
        mask: u64,
        bits: u32,
        lhs: Src,
        rhs: Src,
        dst: u32,
    },
    /// Cast with both type masks precomputed.
    Cast {
        op: CastOp,
        from_mask: u64,
        from_bits: u32,
        to_mask: u64,
        val: Src,
        dst: u32,
    },
    /// Ternary select.
    Select {
        mask: u64,
        cond: Src,
        then_val: Src,
        else_val: Src,
        dst: u32,
    },
    /// Call into another function of the same module, by prebuilt index.
    CallInternal {
        func: u32,
        args: Box<[Src]>,
        dst: u32,
    },
    /// Call a kernel-ABI host function.
    CallHost {
        host: HostFn,
        args: Box<[Src]>,
        dst: u32,
    },
    /// Promoted form of [`Op::GuardLoad`]: the policy region bound is
    /// baked in as immediates (`lo`/`hi`/`perm`) tagged with the
    /// snapshot generation (`gen`) it was taken from. The executor
    /// admits with three compares when the generation still matches;
    /// any mismatch (generation bump, out-of-bounds request,
    /// insufficient permission) deopts to the general policy path using
    /// the retained original operands — never a stale admit. Fuel and
    /// observable semantics are identical to the general op on both
    /// paths.
    InlineGuardLoad {
        site: Option<SiteId>,
        lo: u64,
        hi: u64,
        perm: u32,
        gen: u64,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        ptr: Src,
        dst: u32,
    },
    /// Promoted form of [`Op::GuardStore`]; see [`Op::InlineGuardLoad`].
    InlineGuardStore {
        site: Option<SiteId>,
        lo: u64,
        hi: u64,
        perm: u32,
        gen: u64,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        val: Src,
        ptr: Src,
    },
    /// Promoted form of [`Op::Guard`]; see [`Op::InlineGuardLoad`].
    InlineGuard {
        site: Option<SiteId>,
        lo: u64,
        hi: u64,
        perm: u32,
        gen: u64,
        addr: Src,
        size: Src,
        flags: Src,
    },
    /// Standalone memory guard (not adjacent to its access — e.g. a
    /// hoisted loop-invariant guard).
    Guard {
        site: Option<SiteId>,
        addr: Src,
        size: Src,
        flags: Src,
    },
    /// Privileged-intrinsic guard (`carat_intrinsic_guard`).
    IntrinsicGuard { site: Option<SiteId>, id: Src },
    /// Inline assembly: faults on execution (attestation normally
    /// prevents it from ever being loaded).
    Asm,
    /// Unconditional branch through an edge.
    Jump(u32),
    /// Conditional branch: `cond & 1` selects the edge.
    CondJump {
        cond: Src,
        then_edge: u32,
        else_edge: u32,
    },
    /// Multi-way switch; `arms` hold pre-masked case constants, scanned
    /// first-match like the tree interpreter.
    SwitchJump {
        mask: u64,
        val: Src,
        arms: Box<[(u64, u32)]>,
        default_edge: u32,
    },
    /// Return, optionally with a value.
    Ret(Option<Src>),
    /// Unreachable: faults on execution.
    Unreachable,
}

/// One compiled function: flat code plus its edge table.
#[derive(Clone, Debug)]
pub struct CompiledFunc {
    /// Symbol name (for error messages and call-site attribution).
    pub name: String,
    /// Number of formal parameters (checked on entry, same message as
    /// the tree interpreter).
    pub n_params: usize,
    /// Virtual register count (one per arena instruction).
    pub n_regs: usize,
    /// Whether the function has any blocks; block-less declarations
    /// error on entry exactly like the tree.
    pub has_blocks: bool,
    /// Flat bytecode; execution starts at offset 0 (the entry block).
    pub code: Vec<Op>,
    /// Control-flow edges referenced by the jump ops.
    pub edges: Vec<Edge>,
}

/// The baked bound for one hot guard site, produced by the promotion
/// pass from a policy snapshot. `perm` holds raw access-flag bits; the
/// admit test is `lo <= addr && addr + size <= hi && perm ⊇ flags`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PromotionSpec {
    /// The guard site whose bound is being inlined.
    pub site: SiteId,
    /// Inclusive lower bound of the granted region.
    pub lo: u64,
    /// Exclusive upper bound of the granted region.
    pub hi: u64,
    /// Raw permission bits the grant carries (`AccessFlags::raw`).
    pub perm: u32,
}

/// One published generation of promoted code: the re-lowered functions
/// plus the snapshot generation their bounds were baked from. Swapped
/// wholesale — readers either see the complete tier or none of it.
#[derive(Debug, Default)]
pub struct PromotedTier {
    /// Snapshot generation every baked bound in this tier cites
    /// (0 = the empty tier; real generations start at 1).
    pub gen: u64,
    /// Revocation epoch the tier was baked under (0 = the empty tier;
    /// real epochs start at 1). A fleet-wide revoke advances the
    /// policy's epoch without republishing, so promoted frames compare
    /// this against the live epoch to deopt promptly.
    pub epoch: u64,
    funcs: BTreeMap<u32, Arc<CompiledFunc>>,
}

/// A module lowered to bytecode: built once at insmod, cached in the
/// loaded-module image, shared by every subsequent call.
///
/// The optional *promoted tier* holds re-lowered copies of hot
/// functions whose guard ops carry inlined bounds. It lives behind an
/// [`ArcSwap`] so the promotion pass can publish (and epoch bumps can
/// invalidate) without locking executors; clones of the module share
/// one tier.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// The module's name (used for policy lookup and diagnostics).
    pub module_name: String,
    funcs: Vec<CompiledFunc>,
    by_name: BTreeMap<String, u32>,
    promoted: Arc<ArcSwap<PromotedTier>>,
}

impl CompiledModule {
    pub(crate) fn new(module_name: String, funcs: Vec<CompiledFunc>) -> CompiledModule {
        let by_name = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        CompiledModule {
            module_name,
            funcs,
            by_name,
            promoted: Arc::new(ArcSwap::from_pointee(PromotedTier::default())),
        }
    }

    /// Index of a function by symbol name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Function by index (indices come from [`CompiledModule::func_index`]
    /// or [`Op::CallInternal`]).
    pub fn func(&self, idx: u32) -> &CompiledFunc {
        &self.funcs[idx as usize]
    }

    /// Number of compiled functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total number of bytecode ops across all functions.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Number of fused guard-access superinstructions across the module
    /// (diagnostics / tests).
    pub fn fused_guard_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.code.iter())
            .filter(|op| matches!(op, Op::GuardLoad { .. } | Op::GuardStore { .. }))
            .count()
    }

    /// Re-lower every function containing one of `specs`' sites into the
    /// promoted tier, replacing each matching guard op 1:1 with its
    /// inline form carrying the baked bound and `gen`. Offsets, edges,
    /// register counts, and fuel accounting are untouched — a promoted
    /// function is the same program with three compares where the policy
    /// call was. Publishes the new tier atomically (replacing any prior
    /// tier wholesale) and returns the number of guard ops promoted.
    ///
    /// Sites are promoted wherever they occur; sites in `specs` that
    /// match no guard op are skipped. An empty result publishes nothing
    /// and leaves the existing tier in place.
    ///
    /// `epoch` is the governing policy's revocation epoch at bake time;
    /// promoted frames deopt when it no longer matches the live epoch
    /// (fleet-wide revocation without generation churn).
    pub fn promote(&self, gen: u64, epoch: u64, specs: &[PromotionSpec]) -> usize {
        let by_site: BTreeMap<SiteId, &PromotionSpec> = specs.iter().map(|s| (s.site, s)).collect();
        let mut tier = PromotedTier {
            gen,
            epoch,
            funcs: BTreeMap::new(),
        };
        let mut promoted_ops = 0usize;
        for (idx, func) in self.funcs.iter().enumerate() {
            let hits = func
                .code
                .iter()
                .filter(|op| match op {
                    Op::GuardLoad { site: Some(s), .. }
                    | Op::GuardStore { site: Some(s), .. }
                    | Op::Guard { site: Some(s), .. } => by_site.contains_key(s),
                    _ => false,
                })
                .count();
            if hits == 0 {
                continue;
            }
            promoted_ops += hits;
            let mut clone = func.clone();
            for op in &mut clone.code {
                *op = match op.clone() {
                    Op::GuardLoad {
                        site: Some(s),
                        gaddr,
                        gsize,
                        gflags,
                        size,
                        mask,
                        ptr,
                        dst,
                    } if by_site.contains_key(&s) => {
                        let spec = by_site[&s];
                        Op::InlineGuardLoad {
                            site: Some(s),
                            lo: spec.lo,
                            hi: spec.hi,
                            perm: spec.perm,
                            gen,
                            gaddr,
                            gsize,
                            gflags,
                            size,
                            mask,
                            ptr,
                            dst,
                        }
                    }
                    Op::GuardStore {
                        site: Some(s),
                        gaddr,
                        gsize,
                        gflags,
                        size,
                        mask,
                        val,
                        ptr,
                    } if by_site.contains_key(&s) => {
                        let spec = by_site[&s];
                        Op::InlineGuardStore {
                            site: Some(s),
                            lo: spec.lo,
                            hi: spec.hi,
                            perm: spec.perm,
                            gen,
                            gaddr,
                            gsize,
                            gflags,
                            size,
                            mask,
                            val,
                            ptr,
                        }
                    }
                    Op::Guard {
                        site: Some(s),
                        addr,
                        size,
                        flags,
                    } if by_site.contains_key(&s) => {
                        let spec = by_site[&s];
                        Op::InlineGuard {
                            site: Some(s),
                            lo: spec.lo,
                            hi: spec.hi,
                            perm: spec.perm,
                            gen,
                            addr,
                            size,
                            flags,
                        }
                    }
                    other => other,
                };
            }
            tier.funcs.insert(idx as u32, Arc::new(clone));
        }
        if promoted_ops == 0 {
            return 0;
        }
        self.promoted.store(Arc::new(tier));
        promoted_ops
    }

    /// The promoted re-lowering of a function, if this tier has one.
    /// Callers dispatch through this at call entry; a `None` means run
    /// the general bytecode.
    pub fn promoted_func(&self, idx: u32) -> Option<Arc<CompiledFunc>> {
        self.promoted.load().funcs.get(&idx).cloned()
    }

    /// The promoted re-lowering of a function plus the revocation epoch
    /// the tier was baked under, from **one** tier load — so a frame
    /// entry can never pair one tier's function with another tier's
    /// epoch.
    pub fn promoted_entry(&self, idx: u32) -> Option<(Arc<CompiledFunc>, u64)> {
        let tier = self.promoted.load();
        tier.funcs.get(&idx).cloned().map(|f| (f, tier.epoch))
    }

    /// Snapshot generation of the current promoted tier (0 = none).
    pub fn promoted_generation(&self) -> u64 {
        self.promoted.load().gen
    }

    /// Revocation epoch of the current promoted tier (0 = none).
    pub fn promoted_epoch(&self) -> u64 {
        self.promoted.load().epoch
    }

    /// Number of functions with a promoted re-lowering in the current
    /// tier.
    pub fn promoted_func_count(&self) -> usize {
        self.promoted.load().funcs.len()
    }

    /// Number of inline (promoted) guard ops across the current tier.
    pub fn promoted_guard_count(&self) -> usize {
        self.promoted
            .load()
            .funcs
            .values()
            .flat_map(|f| f.code.iter())
            .filter(|op| {
                matches!(
                    op,
                    Op::InlineGuardLoad { .. }
                        | Op::InlineGuardStore { .. }
                        | Op::InlineGuard { .. }
                )
            })
            .count()
    }

    /// Atomically drop the promoted tier: every subsequent call entry
    /// sees the general bytecode. Used on epoch bumps / policy
    /// replacement so no executor can admit against a stale bound;
    /// in-flight promoted frames deopt per-op via the generation check.
    pub fn invalidate_promotions(&self) {
        self.promoted.store(Arc::new(PromotedTier::default()));
    }
}

#[cfg(test)]
mod promote_tests {
    use super::*;

    fn guard_func() -> CompiledFunc {
        CompiledFunc {
            name: "tx".into(),
            n_params: 1,
            n_regs: 4,
            has_blocks: true,
            code: vec![
                Op::GuardLoad {
                    site: Some(SiteId(7)),
                    gaddr: Src::Arg(0),
                    gsize: Src::Imm(4),
                    gflags: Src::Imm(1),
                    size: 4,
                    mask: u64::MAX,
                    ptr: Src::Arg(0),
                    dst: 0,
                },
                Op::Guard {
                    site: Some(SiteId(9)),
                    addr: Src::Arg(0),
                    size: Src::Imm(8),
                    flags: Src::Imm(2),
                },
                Op::GuardStore {
                    site: Some(SiteId(11)),
                    gaddr: Src::Arg(0),
                    gsize: Src::Imm(4),
                    gflags: Src::Imm(2),
                    size: 4,
                    mask: u64::MAX,
                    val: Src::Reg(0),
                    ptr: Src::Arg(0),
                },
                Op::Ret(Some(Src::Reg(0))),
            ],
            edges: Vec::new(),
        }
    }

    fn spec(site: u32, lo: u64, hi: u64) -> PromotionSpec {
        PromotionSpec {
            site: SiteId(site),
            lo,
            hi,
            perm: 3,
        }
    }

    #[test]
    fn promote_replaces_ops_one_to_one_and_bakes_the_bound() {
        let m = CompiledModule::new("m".into(), vec![guard_func()]);
        assert_eq!(m.promoted_generation(), 0);
        assert!(m.promoted_func(0).is_none());

        let n = m.promote(5, 1, &[spec(7, 0x1000, 0x2000), spec(11, 0x3000, 0x4000)]);
        assert_eq!(n, 2);
        assert_eq!(m.promoted_generation(), 5);
        assert_eq!(m.promoted_epoch(), 1);
        assert_eq!(m.promoted_func_count(), 1);
        assert_eq!(m.promoted_guard_count(), 2);

        let pf = m.promoted_func(0).expect("tier holds the function");
        // Same shape: offsets, edges, register counts all unchanged.
        assert_eq!(pf.code.len(), m.func(0).code.len());
        assert_eq!(pf.n_regs, m.func(0).n_regs);
        match &pf.code[0] {
            Op::InlineGuardLoad {
                site,
                lo,
                hi,
                perm,
                gen,
                ptr,
                ..
            } => {
                assert_eq!(*site, Some(SiteId(7)));
                assert_eq!((*lo, *hi, *perm, *gen), (0x1000, 0x2000, 3, 5));
                assert_eq!(*ptr, Src::Arg(0));
            }
            other => panic!("expected InlineGuardLoad, got {other:?}"),
        }
        // Unpromoted site 9 keeps its general op.
        assert!(matches!(&pf.code[1], Op::Guard { site: Some(s), .. } if *s == SiteId(9)));
        assert!(matches!(&pf.code[2], Op::InlineGuardStore { gen: 5, .. }));
        // The general tier is untouched.
        assert!(matches!(&m.func(0).code[0], Op::GuardLoad { .. }));
    }

    #[test]
    fn promoting_unknown_sites_publishes_nothing() {
        let m = CompiledModule::new("m".into(), vec![guard_func()]);
        m.promote(3, 1, &[spec(7, 0, 0x100)]);
        assert_eq!(m.promoted_generation(), 3);
        // A later pass with no matching sites must not clobber the tier.
        assert_eq!(m.promote(4, 1, &[spec(999, 0, 0x100)]), 0);
        assert_eq!(m.promoted_generation(), 3);
        assert!(m.promoted_func(0).is_some());
    }

    #[test]
    fn invalidate_drops_the_tier_and_clones_share_it() {
        let m = CompiledModule::new("m".into(), vec![guard_func()]);
        let alias = m.clone();
        m.promote(9, 1, &[spec(9, 0x10, 0x20)]);
        assert_eq!(alias.promoted_generation(), 9, "clones share the tier");
        assert_eq!(alias.promoted_entry(0).unwrap().1, 1, "entry carries epoch");
        assert!(matches!(
            &alias.promoted_func(0).unwrap().code[1],
            Op::InlineGuard { gen: 9, .. }
        ));
        alias.invalidate_promotions();
        assert_eq!(m.promoted_generation(), 0);
        assert!(m.promoted_func(0).is_none());
        // Re-promotion after invalidation works (lazy re-promote path).
        assert_eq!(m.promote(10, 2, &[spec(9, 0x10, 0x20)]), 1);
        assert_eq!(alias.promoted_generation(), 10);
    }
}
