//! # kop-vm — one-shot bytecode compilation of verified KIR
//!
//! The tree-walking interpreter in `kop-interp` re-discovers the same
//! facts on every executed instruction: which arena slot a value lives
//! in, what mask its type implies, which block offset a branch target
//! resolves to, whether a callee is internal, a kernel-ABI host
//! function, or a guard. All of that is a pure function of the verified
//! module and its insmod-time layout — so this crate computes it **once,
//! at insmod**, and emits a flat register-based bytecode the interpreter
//! can run with a tight dispatch loop.
//!
//! Lowering pre-resolves:
//!
//! * block targets → instruction offsets ([`Edge::target`]),
//! * phi nodes → per-edge move schedules executed on the branch
//!   ([`Edge::moves`]; staging is only paid on edges whose parallel
//!   moves actually conflict),
//! * globals / function addresses → immediate operands ([`Src::Imm`]),
//! * callees → internal function indices or prebuilt [`HostFn`] kernel
//!   ABI entries (unknown imports stay lazily-erroring, like the tree),
//! * guard sites → inline [`SiteId`]s, so tracing attribution costs no
//!   map probe,
//! * adjacent `carat_guard` + load/store pairs → fused guard-access
//!   superinstructions ([`Op::GuardLoad`] / [`Op::GuardStore`]) that
//!   call the policy path and perform the access in one dispatch.
//!
//! The bytecode preserves the tree interpreter's observable semantics
//! exactly — instruction/fuel accounting, squash ordering, masking
//! discipline, error messages — which the differential property tests in
//! the root crate check. Execution itself lives in `kop-interp` (it
//! needs the kernel); this crate is deliberately kernel-free so the
//! loader can depend on it.

#![warn(missing_docs)]

mod lower;

use std::collections::BTreeMap;

pub use lower::{lower_module, LowerError};

use kop_ir::{BinOp, CastOp, IcmpPred};
use kop_trace::SiteId;

/// A pre-resolved operand: where the tree interpreter pattern-matched a
/// [`kop_ir::Value`] per use, the bytecode reads a register, a formal
/// argument, or an immediate (constants, global addresses, function
/// addresses — all resolved at lowering time).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Src {
    /// Virtual register (one per arena instruction).
    Reg(u32),
    /// Formal parameter of the executing function.
    Arg(u32),
    /// Immediate, pre-masked to its IR type at lowering time.
    Imm(u64),
}

/// One scheduled phi move for a control-flow edge: `regs[dst] = mask &
/// eval(src)`. The whole schedule is a *parallel* assignment — see
/// [`Edge::staged`].
#[derive(Clone, Copy, Debug)]
pub struct Move {
    /// Destination register (the phi's arena slot).
    pub dst: u32,
    /// Incoming value for this edge.
    pub src: Src,
    /// Mask of the phi's type, applied to the staged value.
    pub mask: u64,
}

/// A pre-resolved control-flow edge: where to jump and which phi moves
/// to execute on the way.
#[derive(Clone, Debug)]
pub struct Edge {
    /// Bytecode offset of the successor block's first op. (During
    /// lowering this temporarily holds the successor `BlockId`; it is
    /// patched to an offset before the function is published.)
    pub target: u32,
    /// Phi move schedule for this edge (empty for phi-less targets).
    pub moves: Box<[Move]>,
    /// Fuel charged after the moves — the successor's leading-phi count,
    /// matching the tree interpreter's per-phi accounting.
    pub phi_burn: u32,
    /// Whether any move reads a register another move writes: if so the
    /// executor stages all reads before the first write (the parallel
    /// semantics of phi nodes); conflict-free edges write directly.
    pub staged: bool,
}

/// A kernel-ABI host function, resolved from the callee symbol at
/// lowering time. `Unresolved` mirrors the tree interpreter's lazy
/// behaviour: the symbol only faults if the call actually executes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum HostFn {
    /// `__wrmsr(msr, value)` privileged intrinsic.
    Wrmsr,
    /// `__rdmsr(msr) -> value` privileged intrinsic.
    Rdmsr,
    /// `__cli()` privileged intrinsic.
    Cli,
    /// `__sti()` privileged intrinsic.
    Sti,
    /// `__invlpg(addr)` privileged intrinsic (no-op in the model).
    Invlpg,
    /// `__hlt()` privileged intrinsic (panics the kernel).
    Hlt,
    /// `printk(i64)`.
    Printk,
    /// `kmalloc(i64) -> ptr`.
    Kmalloc,
    /// `kfree(ptr)`.
    Kfree,
    /// `panic(i64)`.
    Panic,
    /// Import that resolved to nothing: executing it raises
    /// `UnresolvedSymbol`, exactly like the tree interpreter.
    Unresolved(Box<str>),
}

impl HostFn {
    /// Resolve a callee symbol to its host entry.
    pub fn resolve(name: &str) -> HostFn {
        match name {
            "__wrmsr" => HostFn::Wrmsr,
            "__rdmsr" => HostFn::Rdmsr,
            "__cli" => HostFn::Cli,
            "__sti" => HostFn::Sti,
            "__invlpg" => HostFn::Invlpg,
            "__hlt" => HostFn::Hlt,
            "printk" => HostFn::Printk,
            "kmalloc" => HostFn::Kmalloc,
            "kfree" => HostFn::Kfree,
            "panic" => HostFn::Panic,
            other => HostFn::Unresolved(other.into()),
        }
    }
}

/// One flat bytecode instruction. Every op charges one fuel unit before
/// executing (the fused guard-access ops charge two — one per original
/// IR instruction — with the guard/access fuel checkpoint preserved).
#[derive(Clone, Debug)]
#[allow(missing_docs)] // field meanings documented per variant
pub enum Op {
    /// Stack allocation; size/align precomputed from the IR type.
    Alloca { size: u64, align: u64, dst: u32 },
    /// Scalar load: `dst = mask & mem[ptr]` (`size` bytes).
    Load {
        size: u64,
        mask: u64,
        ptr: Src,
        dst: u32,
    },
    /// Scalar store: `mem[ptr] = mask & val` (`size` bytes).
    Store {
        size: u64,
        mask: u64,
        val: Src,
        ptr: Src,
    },
    /// Fused `carat_guard` + load superinstruction.
    GuardLoad {
        site: Option<SiteId>,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        ptr: Src,
        dst: u32,
    },
    /// Fused `carat_guard` + store superinstruction.
    GuardStore {
        site: Option<SiteId>,
        gaddr: Src,
        gsize: Src,
        gflags: Src,
        size: u64,
        mask: u64,
        val: Src,
        ptr: Src,
    },
    /// Address arithmetic with constant contributions folded:
    /// `dst = base + offset + Σ scale·idx` (all wrapping).
    Gep {
        base: Src,
        offset: u64,
        terms: Box<[(u64, Src)]>,
        dst: u32,
    },
    /// Integer binary op; `mask`/`bits` precomputed from the type.
    Bin {
        op: BinOp,
        mask: u64,
        bits: u32,
        lhs: Src,
        rhs: Src,
        dst: u32,
    },
    /// Integer comparison; yields 0/1.
    Icmp {
        pred: IcmpPred,
        mask: u64,
        bits: u32,
        lhs: Src,
        rhs: Src,
        dst: u32,
    },
    /// Cast with both type masks precomputed.
    Cast {
        op: CastOp,
        from_mask: u64,
        from_bits: u32,
        to_mask: u64,
        val: Src,
        dst: u32,
    },
    /// Ternary select.
    Select {
        mask: u64,
        cond: Src,
        then_val: Src,
        else_val: Src,
        dst: u32,
    },
    /// Call into another function of the same module, by prebuilt index.
    CallInternal {
        func: u32,
        args: Box<[Src]>,
        dst: u32,
    },
    /// Call a kernel-ABI host function.
    CallHost {
        host: HostFn,
        args: Box<[Src]>,
        dst: u32,
    },
    /// Standalone memory guard (not adjacent to its access — e.g. a
    /// hoisted loop-invariant guard).
    Guard {
        site: Option<SiteId>,
        addr: Src,
        size: Src,
        flags: Src,
    },
    /// Privileged-intrinsic guard (`carat_intrinsic_guard`).
    IntrinsicGuard { site: Option<SiteId>, id: Src },
    /// Inline assembly: faults on execution (attestation normally
    /// prevents it from ever being loaded).
    Asm,
    /// Unconditional branch through an edge.
    Jump(u32),
    /// Conditional branch: `cond & 1` selects the edge.
    CondJump {
        cond: Src,
        then_edge: u32,
        else_edge: u32,
    },
    /// Multi-way switch; `arms` hold pre-masked case constants, scanned
    /// first-match like the tree interpreter.
    SwitchJump {
        mask: u64,
        val: Src,
        arms: Box<[(u64, u32)]>,
        default_edge: u32,
    },
    /// Return, optionally with a value.
    Ret(Option<Src>),
    /// Unreachable: faults on execution.
    Unreachable,
}

/// One compiled function: flat code plus its edge table.
#[derive(Clone, Debug)]
pub struct CompiledFunc {
    /// Symbol name (for error messages and call-site attribution).
    pub name: String,
    /// Number of formal parameters (checked on entry, same message as
    /// the tree interpreter).
    pub n_params: usize,
    /// Virtual register count (one per arena instruction).
    pub n_regs: usize,
    /// Whether the function has any blocks; block-less declarations
    /// error on entry exactly like the tree.
    pub has_blocks: bool,
    /// Flat bytecode; execution starts at offset 0 (the entry block).
    pub code: Vec<Op>,
    /// Control-flow edges referenced by the jump ops.
    pub edges: Vec<Edge>,
}

/// A module lowered to bytecode: built once at insmod, cached in the
/// loaded-module image, shared by every subsequent call.
#[derive(Clone, Debug)]
pub struct CompiledModule {
    /// The module's name (used for policy lookup and diagnostics).
    pub module_name: String,
    funcs: Vec<CompiledFunc>,
    by_name: BTreeMap<String, u32>,
}

impl CompiledModule {
    pub(crate) fn new(module_name: String, funcs: Vec<CompiledFunc>) -> CompiledModule {
        let by_name = funcs
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.clone(), i as u32))
            .collect();
        CompiledModule {
            module_name,
            funcs,
            by_name,
        }
    }

    /// Index of a function by symbol name.
    pub fn func_index(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Function by index (indices come from [`CompiledModule::func_index`]
    /// or [`Op::CallInternal`]).
    pub fn func(&self, idx: u32) -> &CompiledFunc {
        &self.funcs[idx as usize]
    }

    /// Number of compiled functions.
    pub fn func_count(&self) -> usize {
        self.funcs.len()
    }

    /// Total number of bytecode ops across all functions.
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Number of fused guard-access superinstructions across the module
    /// (diagnostics / tests).
    pub fn fused_guard_count(&self) -> usize {
        self.funcs
            .iter()
            .flat_map(|f| f.code.iter())
            .filter(|op| matches!(op, Op::GuardLoad { .. } | Op::GuardStore { .. }))
            .count()
    }
}
