//! KIR → bytecode lowering. Runs once per module, at insmod.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

use kop_core::VAddr;
use kop_ir::{BlockId, Function, Inst, InstId, Module, Terminator, Type, Value};
use kop_trace::{SiteTable, GUARD_SYMBOL, INTRINSIC_GUARD_SYMBOL};

use crate::{CompiledFunc, CompiledModule, Edge, HostFn, Move, Op, Src};

/// Why a module could not be lowered. On verified, insmod-laid-out
/// modules lowering always succeeds; these cover hand-built IR that
/// bypassed the verifier (the loader then falls back to the tree
/// engine rather than refusing the module).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LowerError {
    /// A `Value::Global` names a global with no laid-out address.
    UnknownGlobal {
        /// The global's symbol name.
        name: String,
    },
    /// Structurally invalid IR reached the lowerer (e.g. a guard call
    /// with fewer than three arguments, a phi with no incoming for a
    /// predecessor, a gep walking a non-aggregate).
    Malformed {
        /// Function the defect was found in.
        function: String,
        /// What was wrong.
        what: String,
    },
}

impl fmt::Display for LowerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LowerError::UnknownGlobal { name } => write!(f, "unknown global @{name}"),
            LowerError::Malformed { function, what } => {
                write!(f, "malformed IR in @{function}: {what}")
            }
        }
    }
}

impl std::error::Error for LowerError {}

/// The value mask a type implies: all-ones for 64-bit and non-integer
/// (pointer) types, `2^bits - 1` for narrower integers. `v & mask_of(ty)`
/// computes exactly the tree interpreter's `mask(ty, v)`.
fn mask_of(ty: &Type) -> u64 {
    match ty.int_bits() {
        Some(64) | None => u64::MAX,
        Some(bits) => (1u64 << bits) - 1,
    }
}

fn bits_of(ty: &Type) -> u32 {
    ty.int_bits().unwrap_or(64)
}

/// Lower a verified, layout-sealed module to bytecode against its
/// insmod-time address layout. `sites` is the tracer's guard-site table
/// for the module, so guard ops carry their [`kop_trace::SiteId`] inline.
pub fn lower_module(
    ir: &Module,
    globals: &BTreeMap<String, VAddr>,
    func_addrs: &BTreeMap<String, VAddr>,
    sites: Option<&SiteTable>,
) -> Result<CompiledModule, LowerError> {
    let func_index: BTreeMap<&str, u32> = ir
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.as_str(), i as u32))
        .collect();
    let mut funcs = Vec::with_capacity(ir.functions.len());
    for f in &ir.functions {
        let mut lowerer = FnLowerer {
            f,
            globals,
            func_addrs,
            func_index: &func_index,
            sites,
            code: Vec::new(),
            edges: Vec::new(),
        };
        funcs.push(lowerer.lower()?);
    }
    Ok(CompiledModule::new(ir.name.clone(), funcs))
}

struct FnLowerer<'a> {
    f: &'a Function,
    globals: &'a BTreeMap<String, VAddr>,
    func_addrs: &'a BTreeMap<String, VAddr>,
    func_index: &'a BTreeMap<&'a str, u32>,
    sites: Option<&'a SiteTable>,
    code: Vec<Op>,
    edges: Vec<Edge>,
}

impl<'a> FnLowerer<'a> {
    fn malformed(&self, what: impl Into<String>) -> LowerError {
        LowerError::Malformed {
            function: self.f.name.clone(),
            what: what.into(),
        }
    }

    fn value(&self, v: &Value) -> Result<Src, LowerError> {
        Ok(match v {
            // Pre-masked by the constant's own type, exactly like the
            // tree interpreter's eval of ConstInt.
            Value::ConstInt(ty, val) => Src::Imm(val & mask_of(ty)),
            Value::NullPtr => Src::Imm(0),
            Value::Global(name) => Src::Imm(
                self.globals
                    .get(name)
                    .ok_or_else(|| LowerError::UnknownGlobal { name: name.clone() })?
                    .raw(),
            ),
            // Unknown function addresses get the tree's poison value.
            Value::FuncAddr(name) => Src::Imm(
                self.func_addrs
                    .get(name)
                    .map(|a| a.raw())
                    .unwrap_or(0xffff_ffff_dead_0000),
            ),
            Value::Arg(i) => Src::Arg(*i),
            Value::Inst(id) => Src::Reg(id.0),
        })
    }

    /// Build the edge for `pred → succ`: target (as a BlockId, patched to
    /// an offset later), the phi move schedule, and its fuel charge.
    fn make_edge(&mut self, pred: BlockId, succ: BlockId) -> Result<u32, LowerError> {
        let phi_count = self.f.leading_phi_count(succ);
        let mut moves = Vec::with_capacity(phi_count);
        for &iid in &self.f.block(succ).insts[..phi_count] {
            let Inst::Phi { ty, incomings } = self.f.inst(iid) else {
                return Err(self.malformed("non-phi in leading-phi range"));
            };
            let (_, v) = incomings.iter().find(|(b, _)| *b == pred).ok_or_else(|| {
                self.malformed(format!(
                    "phi in block {} has no incoming for predecessor {}",
                    self.f.block(succ).name,
                    self.f.block(pred).name
                ))
            })?;
            moves.push(Move {
                dst: iid.0,
                src: self.value(v)?,
                mask: mask_of(ty),
            });
        }
        // Parallel-move semantics: only stage when some move reads a
        // register another move writes.
        let dsts: BTreeSet<u32> = moves.iter().map(|m| m.dst).collect();
        let staged = moves
            .iter()
            .any(|m| matches!(m.src, Src::Reg(r) if dsts.contains(&r)));
        let idx = self.edges.len() as u32;
        self.edges.push(Edge {
            target: succ.0, // patched to a code offset after all blocks lower
            moves: moves.into_boxed_slice(),
            phi_burn: phi_count as u32,
            staged,
        });
        Ok(idx)
    }

    fn lower_guard_operands(&self, args: &[Value]) -> Result<(Src, Src, Src), LowerError> {
        if args.len() < 3 {
            return Err(self.malformed(format!(
                "{GUARD_SYMBOL} call with {} argument(s), need 3",
                args.len()
            )));
        }
        Ok((
            self.value(&args[0])?,
            self.value(&args[1])?,
            self.value(&args[2])?,
        ))
    }

    fn site_of(&self, iid: InstId) -> Option<kop_trace::SiteId> {
        self.sites.and_then(|s| s.lookup(&self.f.name, iid.0))
    }

    fn lower_inst(&mut self, iid: InstId) -> Result<(), LowerError> {
        let dst = iid.0;
        let op = match self.f.inst(iid) {
            Inst::Phi { .. } => {
                return Err(self.malformed("phi past the leading-phi range"));
            }
            Inst::Alloca { ty, count } => Op::Alloca {
                size: ty.size_of().max(1) * count,
                align: ty.align_of().max(1),
                dst,
            },
            Inst::Load { ty, ptr } => Op::Load {
                size: ty.size_of(),
                mask: mask_of(ty),
                ptr: self.value(ptr)?,
                dst,
            },
            Inst::Store { ty, val, ptr } => Op::Store {
                size: ty.size_of(),
                mask: mask_of(ty),
                val: self.value(val)?,
                ptr: self.value(ptr)?,
            },
            Inst::Gep {
                base_ty,
                ptr,
                indices,
            } => {
                // Fold every constant contribution into one offset; keep
                // `scale · index` terms for the dynamic indices. Wrapping
                // addition is commutative, so the regrouping is exact.
                let mut offset = 0u64;
                let mut terms = Vec::new();
                fn push(offset: &mut u64, terms: &mut Vec<(u64, Src)>, scale: u64, src: Src) {
                    match src {
                        Src::Imm(v) => *offset = offset.wrapping_add(scale.wrapping_mul(v)),
                        src => terms.push((scale, src)),
                    }
                }
                let first = self.value(&indices[0])?;
                push(&mut offset, &mut terms, base_ty.size_of(), first);
                let mut cur_ty = base_ty;
                for idx in &indices[1..] {
                    match cur_ty {
                        Type::Array(elem, _) => {
                            let src = self.value(idx)?;
                            push(&mut offset, &mut terms, elem.size_of(), src);
                            cur_ty = elem;
                        }
                        Type::Struct(_) => {
                            let Value::ConstInt(_, c) = idx else {
                                return Err(self.malformed("non-constant struct gep index"));
                            };
                            let off = cur_ty
                                .struct_field_offset(*c as usize)
                                .ok_or_else(|| self.malformed("struct gep index out of range"))?;
                            offset = offset.wrapping_add(off);
                            cur_ty = cur_ty
                                .indexed_type(*c)
                                .ok_or_else(|| self.malformed("struct gep index out of range"))?;
                        }
                        _ => return Err(self.malformed("gep walks a non-aggregate type")),
                    }
                }
                Op::Gep {
                    base: self.value(ptr)?,
                    offset,
                    terms: terms.into_boxed_slice(),
                    dst,
                }
            }
            Inst::Bin { op, ty, lhs, rhs } => Op::Bin {
                op: *op,
                mask: mask_of(ty),
                bits: bits_of(ty),
                lhs: self.value(lhs)?,
                rhs: self.value(rhs)?,
                dst,
            },
            Inst::Icmp { pred, ty, lhs, rhs } => Op::Icmp {
                pred: *pred,
                mask: mask_of(ty),
                bits: bits_of(ty),
                lhs: self.value(lhs)?,
                rhs: self.value(rhs)?,
                dst,
            },
            Inst::Cast {
                op,
                from_ty,
                to_ty,
                val,
            } => Op::Cast {
                op: *op,
                from_mask: mask_of(from_ty),
                from_bits: bits_of(from_ty),
                to_mask: mask_of(to_ty),
                val: self.value(val)?,
                dst,
            },
            Inst::Select {
                ty,
                cond,
                then_val,
                else_val,
            } => Op::Select {
                mask: mask_of(ty),
                cond: self.value(cond)?,
                then_val: self.value(then_val)?,
                else_val: self.value(else_val)?,
                dst,
            },
            Inst::Call { callee, args, .. } => {
                let srcs: Result<Vec<Src>, LowerError> =
                    args.iter().map(|a| self.value(a)).collect();
                let srcs = srcs?.into_boxed_slice();
                // Internal functions shadow host symbols, exactly like
                // the tree interpreter's dispatch order.
                if let Some(&idx) = self.func_index.get(callee.as_str()) {
                    Op::CallInternal {
                        func: idx,
                        args: srcs,
                        dst,
                    }
                } else if callee == GUARD_SYMBOL {
                    let (addr, size, flags) = self.lower_guard_operands(args)?;
                    Op::Guard {
                        site: self.site_of(iid),
                        addr,
                        size,
                        flags,
                    }
                } else if callee == INTRINSIC_GUARD_SYMBOL {
                    Op::IntrinsicGuard {
                        site: self.site_of(iid),
                        id: srcs.first().copied().unwrap_or(Src::Imm(u64::MAX)),
                    }
                } else {
                    Op::CallHost {
                        host: HostFn::resolve(callee),
                        args: srcs,
                        dst,
                    }
                }
            }
            Inst::Asm { .. } => Op::Asm,
        };
        self.code.push(op);
        Ok(())
    }

    /// Fuse `carat_guard(addr, size, flags)` immediately followed by a
    /// load/store into one superinstruction. Purely positional: the fused
    /// op replicates the exact two-instruction sequencing (fuel, guard
    /// dispatch, squash-flag handoff), so no operand matching is needed —
    /// even a guard protecting a *different* address fuses soundly.
    fn try_fuse(&mut self, guard: InstId, access: InstId) -> Result<bool, LowerError> {
        let Inst::Call { callee, args, .. } = self.f.inst(guard) else {
            return Ok(false);
        };
        if callee != GUARD_SYMBOL || self.func_index.contains_key(callee.as_str()) {
            return Ok(false);
        }
        let site = self.site_of(guard);
        let (gaddr, gsize, gflags) = self.lower_guard_operands(args)?;
        match self.f.inst(access) {
            Inst::Load { ty, ptr } => {
                self.code.push(Op::GuardLoad {
                    site,
                    gaddr,
                    gsize,
                    gflags,
                    size: ty.size_of(),
                    mask: mask_of(ty),
                    ptr: self.value(ptr)?,
                    dst: access.0,
                });
                Ok(true)
            }
            Inst::Store { ty, val, ptr } => {
                self.code.push(Op::GuardStore {
                    site,
                    gaddr,
                    gsize,
                    gflags,
                    size: ty.size_of(),
                    mask: mask_of(ty),
                    val: self.value(val)?,
                    ptr: self.value(ptr)?,
                });
                Ok(true)
            }
            _ => Ok(false),
        }
    }

    fn lower_terminator(&mut self, bid: BlockId) -> Result<(), LowerError> {
        let term = self
            .f
            .block(bid)
            .term
            .as_ref()
            .ok_or_else(|| self.malformed(format!("block {} has no terminator", bid.0)))?
            .clone();
        let op = match term {
            Terminator::Br(succ) => Op::Jump(self.make_edge(bid, succ)?),
            Terminator::CondBr {
                cond,
                then_blk,
                else_blk,
            } => Op::CondJump {
                cond: self.value(&cond)?,
                then_edge: self.make_edge(bid, then_blk)?,
                else_edge: self.make_edge(bid, else_blk)?,
            },
            Terminator::Switch {
                ty,
                val,
                default,
                arms,
            } => {
                let mask = mask_of(&ty);
                let mut lowered = Vec::with_capacity(arms.len());
                for (c, succ) in &arms {
                    lowered.push((c & mask, self.make_edge(bid, *succ)?));
                }
                Op::SwitchJump {
                    mask,
                    val: self.value(&val)?,
                    arms: lowered.into_boxed_slice(),
                    default_edge: self.make_edge(bid, default)?,
                }
            }
            Terminator::Ret(None) => Op::Ret(None),
            Terminator::Ret(Some(v)) => Op::Ret(Some(self.value(&v)?)),
            Terminator::Unreachable => Op::Unreachable,
        };
        self.code.push(op);
        Ok(())
    }

    fn lower(&mut self) -> Result<CompiledFunc, LowerError> {
        let mut block_start = vec![0u32; self.f.blocks.len()];
        for bid in self.f.block_ids() {
            block_start[bid.0 as usize] = self.code.len() as u32;
            let phi_count = self.f.leading_phi_count(bid);
            let insts: Vec<InstId> = self.f.block(bid).insts[phi_count..].to_vec();
            let mut k = 0;
            while k < insts.len() {
                if let Some(&next) = insts.get(k + 1) {
                    if self.try_fuse(insts[k], next)? {
                        k += 2;
                        continue;
                    }
                }
                self.lower_inst(insts[k])?;
                k += 1;
            }
            self.lower_terminator(bid)?;
        }
        // Patch edge targets from block ids to code offsets.
        for e in &mut self.edges {
            e.target = block_start[e.target as usize];
        }
        Ok(CompiledFunc {
            name: self.f.name.clone(),
            n_params: self.f.params.len(),
            n_regs: self.f.inst_count(),
            has_blocks: self.f.entry().is_some(),
            code: std::mem::take(&mut self.code),
            edges: std::mem::take(&mut self.edges),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kop_ir::parse_module;

    fn lower(src: &str) -> CompiledModule {
        let mut m = parse_module(src).unwrap();
        m.seal_layout();
        let mut globals = BTreeMap::new();
        for g in &m.globals {
            globals.insert(g.name.clone(), VAddr(0xffff_ffff_a100_0000));
        }
        let func_addrs = m
            .functions
            .iter()
            .enumerate()
            .map(|(i, f)| {
                (
                    f.name.clone(),
                    VAddr(0xffff_ffff_a000_0000 + i as u64 * 0x100),
                )
            })
            .collect();
        lower_module(&m, &globals, &func_addrs, None).unwrap()
    }

    #[test]
    fn adjacent_guard_access_pairs_fuse() {
        let c = lower(
            r#"
module "m"
declare void @carat_guard(ptr, i64, i32)
define i64 @f(ptr %p) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 1)
  %v = load i64, ptr %p
  call void @carat_guard(ptr %p, i64 8, i32 2)
  store i64 %v, ptr %p
  ret i64 %v
}
"#,
        );
        assert_eq!(c.fused_guard_count(), 2);
        let f = c.func(c.func_index("f").unwrap());
        // Two fused ops + ret: three ops total, no standalone Guard.
        assert_eq!(f.code.len(), 3);
        assert!(matches!(f.code[0], Op::GuardLoad { .. }));
        assert!(matches!(f.code[1], Op::GuardStore { .. }));
        assert!(matches!(f.code[2], Op::Ret(Some(Src::Reg(_)))));
    }

    #[test]
    fn hoisted_guard_stays_standalone() {
        let c = lower(
            r#"
module "m"
declare void @carat_guard(ptr, i64, i32)
define void @f(ptr %p, i64 %v) {
entry:
  call void @carat_guard(ptr %p, i64 8, i32 2)
  %x = add i64 %v, 1
  store i64 %x, ptr %p
  ret void
}
"#,
        );
        assert_eq!(c.fused_guard_count(), 0);
        let f = c.func(0);
        assert!(matches!(f.code[0], Op::Guard { .. }));
        assert!(matches!(f.code[2], Op::Store { .. }));
    }

    #[test]
    fn phi_edges_carry_moves_and_burn() {
        let c = lower(
            r#"
module "m"
define i64 @sum(i64 %n) {
entry:
  br %head
head:
  %i = phi i64 [ 0, %entry ], [ %i2, %body ]
  %acc = phi i64 [ 0, %entry ], [ %acc2, %body ]
  %c = icmp ult i64 %i, %n
  condbr i1 %c, %body, %exit
body:
  %acc2 = add i64 %acc, %i
  %i2 = add i64 %i, 1
  br %head
exit:
  ret i64 %acc
}
"#,
        );
        let f = c.func(c.func_index("sum").unwrap());
        // entry→head and body→head both carry 2 moves and burn 2.
        let phi_edges: Vec<&Edge> = f.edges.iter().filter(|e| e.phi_burn == 2).collect();
        assert_eq!(phi_edges.len(), 2);
        for e in &phi_edges {
            assert_eq!(e.moves.len(), 2);
        }
        // Neither edge reads a register the schedule writes (%i2/%acc2
        // are plain adds): both write directly, no staging cost.
        assert!(phi_edges.iter().all(|e| !e.staged));
    }

    #[test]
    fn swapping_phis_force_staged_parallel_moves() {
        let c = lower(
            r#"
module "m"
define i64 @swap(i64 %n) {
entry:
  br %head
head:
  %a = phi i64 [ 1, %entry ], [ %b, %head ]
  %b = phi i64 [ 2, %entry ], [ %a, %head ]
  %c = icmp ult i64 %a, %n
  condbr i1 %c, %head, %exit
exit:
  ret i64 %b
}
"#,
        );
        let f = c.func(0);
        let back_edge = f
            .edges
            .iter()
            .find(|e| e.moves.iter().any(|m| matches!(m.src, Src::Reg(_))))
            .expect("back edge with register moves");
        // %a←%b while %b←%a: the parallel assignment must stage reads.
        assert!(back_edge.staged);
    }

    #[test]
    fn gep_constants_fold_into_offset() {
        let c = lower(
            r#"
module "m"
define ptr @f(ptr %ring, i64 %i) {
entry:
  %p = gep { i64, i32, i32 }, ptr %ring, i64 %i, i32 2
  %q = gep i8, ptr %ring, i64 24
  ret ptr %p
}
"#,
        );
        let f = c.func(0);
        // %p: one dynamic term (16 * %i) + folded field offset 12.
        let Op::Gep { offset, terms, .. } = &f.code[0] else {
            panic!("expected gep, got {:?}", f.code[0]);
        };
        assert_eq!(*offset, 12);
        assert_eq!(terms.len(), 1);
        assert_eq!(terms[0].0, 16);
        // %q: fully constant — no dynamic terms at all.
        let Op::Gep { offset, terms, .. } = &f.code[1] else {
            panic!("expected gep, got {:?}", f.code[1]);
        };
        assert_eq!(*offset, 24);
        assert!(terms.is_empty());
    }

    #[test]
    fn callees_resolve_to_internal_host_or_unresolved() {
        let c = lower(
            r#"
module "m"
declare void @printk(i64)
declare void @mystery(i64)
define void @leaf(i64 %x) {
entry:
  ret void
}
define void @f() {
entry:
  call void @leaf(i64 1)
  call void @printk(i64 2)
  call void @mystery(i64 3)
  ret void
}
"#,
        );
        let f = c.func(c.func_index("f").unwrap());
        assert!(matches!(f.code[0], Op::CallInternal { func, .. }
            if c.func(func).name == "leaf"));
        assert!(matches!(
            &f.code[1],
            Op::CallHost {
                host: HostFn::Printk,
                ..
            }
        ));
        assert!(
            matches!(&f.code[2], Op::CallHost { host: HostFn::Unresolved(n), .. }
            if &**n == "mystery")
        );
    }

    #[test]
    fn edge_targets_resolve_to_code_offsets() {
        let c = lower(
            r#"
module "m"
define i64 @f(i64 %x) {
entry:
  %c = icmp eq i64 %x, 0
  condbr i1 %c, %a, %b
a:
  ret i64 1
b:
  ret i64 2
}
"#,
        );
        let f = c.func(0);
        let Op::CondJump {
            then_edge,
            else_edge,
            ..
        } = f.code[1]
        else {
            panic!("expected condjump");
        };
        // entry = ops [0,1]; a = op 2; b = op 3.
        assert_eq!(f.edges[then_edge as usize].target, 2);
        assert_eq!(f.edges[else_edge as usize].target, 3);
        assert!(matches!(f.code[2], Op::Ret(Some(Src::Imm(1)))));
        assert!(matches!(f.code[3], Op::Ret(Some(Src::Imm(2)))));
    }
}
